/**
 * @file
 * Figure 7 — byte breakdown of a typical live-point (uncompressed)
 * versus the AW-MRRL live-state checkpoint and a conventional
 * (full-memory) checkpoint.
 *
 * Paper shape: a live-point is ~142KB uncompressed for the 8-way
 * maximum configuration, dominated by L2 tags, with ~16KB of memory
 * data; an AW-MRRL checkpoint is ~363KB dominated by the memory data
 * of its multi-million-instruction warming window; a conventional
 * checkpoint is ~105MB (the full memory footprint).
 */

#include <cstdio>

#include "bench_util.hh"
#include "codec/der.hh"
#include "func/functional.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Figure 7: breakdown of a typical live-point "
                "(uncompressed), benchmark gcc-2, 8-way maxima");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n =
        std::min<std::uint64_t>(sampleSize(b, cfg, s), 60);
    const SampleDesign design =
        SampleDesign::systematic(b.length, n, 1000, cfg.detailedWarming);

    // A live-point library at the 8-way maxima (as the paper's Figure 7
    // assumes the 8-way cache/branch predictor).
    LivePointBuilderConfig bc;
    bc.maxL1i = cfg.mem.l1i;
    bc.maxL1d = cfg.mem.l1d;
    bc.maxL2 = cfg.mem.l2;
    bc.maxItlb = cfg.mem.itlb;
    bc.maxDtlb = cfg.mem.dtlb;
    bc.bpredConfigs = {cfg.bpred};
    const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

    LivePointBreakdown avg;
    Blob scratch;
    LivePoint pt;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        lib.decodeInto(i, scratch, pt);
        const LivePointBreakdown one = pt.breakdown();
        avg.regsAndTlb += one.regsAndTlb;
        avg.memData += one.memData;
        avg.bpred += one.bpred;
        avg.l1iTags += one.l1iTags;
        avg.l1dTags += one.l1dTags;
        avg.l2Tags += one.l2Tags;
        avg.total += one.total;
    }
    const std::uint64_t k = lib.size();

    std::printf("[live-point, average of %zu]\n", lib.size());
    std::printf("  %-28s %12s\n", "registers + TLB records",
                fmtBytes(avg.regsAndTlb / k).c_str());
    std::printf("  %-28s %12s\n", "branch predictor",
                fmtBytes(avg.bpred / k).c_str());
    std::printf("  %-28s %12s\n", "L1-I cache tags",
                fmtBytes(avg.l1iTags / k).c_str());
    std::printf("  %-28s %12s\n", "L1-D cache tags",
                fmtBytes(avg.l1dTags / k).c_str());
    std::printf("  %-28s %12s\n", "L2 cache tags",
                fmtBytes(avg.l2Tags / k).c_str());
    std::printf("  %-28s %12s\n", "memory data (live-state)",
                fmtBytes(avg.memData / k).c_str());
    std::printf("  %-28s %12s\n", "TOTAL",
                fmtBytes(avg.total / k).c_str());

    // AW-MRRL checkpoint: architectural state for the warming window.
    // Its memory payload covers the blocks touched during the
    // (multi-hundred-thousand-instruction) MRRL warming period plus
    // the detailed window; no microarchitectural state is stored.
    const MrrlAnalysis mrrl = analyzeMrrl(
        b.prog, design.windowStarts(), design.windowLen());
    const std::uint64_t mid = n / 2;
    const InstCount warmLen = mrrl.warmingLengths[mid];
    const InstCount start = design.windowStart(mid);
    FunctionalSimulator sim(b.prog);
    sim.run(start - std::min<InstCount>(warmLen, start));
    MemoryImage awImage(64);
    sim.setCaptureImage(&awImage);
    sim.run(std::min<InstCount>(warmLen, start) + design.windowLen());
    sim.setCaptureImage(nullptr);
    const std::uint64_t awRegs = sim.regs().serialize().size();
    const std::uint64_t awMem = awImage.payloadBytes();

    std::printf("\n[AW-MRRL checkpoint, window %llu, warming %s "
                "instructions]\n",
                static_cast<unsigned long long>(mid),
                strfmt("%llu",
                       static_cast<unsigned long long>(warmLen))
                    .c_str());
    std::printf("  %-28s %12s\n", "registers",
                fmtBytes(awRegs).c_str());
    std::printf("  %-28s %12s\n", "memory data (warming window)",
                fmtBytes(awMem).c_str());
    std::printf("  %-28s %12s\n", "TOTAL",
                fmtBytes(awRegs + awMem).c_str());

    // Conventional checkpoint: the full architectural memory image.
    FunctionalSimulator whole(b.prog);
    while (!whole.finished())
        whole.run(10'000'000);
    std::printf("\n[conventional checkpoint]\n");
    std::printf("  %-28s %12s\n", "full memory footprint",
                fmtBytes(whole.memory().footprintBytes()).c_str());

    std::printf("\npaper shape: live-point total (~142KB, L2-tag "
                "dominated) << AW-MRRL (~363KB, memory-data dominated) "
                "<< conventional (~105MB footprint).\n");
    return 0;
}
