/**
 * @file
 * Ablation — the campaign engine's decode-once fan-out. Replaying K
 * configurations against one library costs K decodes per point when
 * each configuration runs separately; the campaign engine decodes
 * once and fans out, so the decompress + deserialize cost Figure 7
 * shows dominating per-point replay is amortized across the design
 * space. Measures aggregate replay throughput both ways (identical
 * results, verified), the campaign's decode-amortization factor, and
 * the worker migration a confidence-stopped campaign gets when cells
 * retire early. Emits machine-readable timings (LP_BENCH_JSON) so CI
 * tracks the trajectory.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/campaign.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: campaign decode-once fan-out (parser, "
                "4-config design space)");
    const PreparedBench b = prepareOne("parser", s);

    std::vector<CoreConfig> cfgs;
    cfgs.push_back(CoreConfig::eightWay());
    {
        CoreConfig c = cfgs[0];
        c.name = "mem-140";
        c.mem.memLatency = 140;
        cfgs.push_back(c);
    }
    {
        CoreConfig c = cfgs[0];
        c.name = "L2-512K";
        c.mem.l2.sizeBytes = 512 * 1024;
        cfgs.push_back(c);
    }
    {
        CoreConfig c = cfgs[0];
        c.name = "RUU-64";
        c.ruuSize = 64;
        cfgs.push_back(c);
    }

    const std::uint64_t n = sampleSize(b, cfgs[0], s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfgs[0].detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s);
    Rng rng(5, "campaign");
    lib.shuffle(rng);
    const std::size_t K = cfgs.size();
    const double cellPoints = static_cast<double>(lib.size()) *
                              static_cast<double>(K);

    // Reference: each configuration replayed separately — K decodes
    // per point.
    std::vector<double> sepCpi(K);
    double sepWall = 0.0;
    for (std::size_t c = 0; c < K; ++c) {
        LivePointRunOptions opt;
        opt.shuffleSeed = 7;
        const LivePointRunResult r =
            runLivePoints(b.prog, lib, cfgs[c], opt);
        sepCpi[c] = r.cpi();
        sepWall += r.wallSeconds;
    }

    // The campaign: one decode per point, K replays from it.
    CampaignOptions copt;
    copt.shuffleSeed = 7;
    CampaignEngine engine({{b.profile.name, &b.prog, &lib}}, cfgs,
                          copt);
    const CampaignResult fused = engine.run();

    // The fan-out must change scheduling only, never results.
    for (std::size_t c = 0; c < K; ++c)
        if (fused.cells[c].cpi() != sepCpi[c])
            panic("campaign CPI diverged from per-config replay "
                  "(config %zu)",
                  c);

    const double speedup = sepWall / fused.wallSeconds;
    std::printf("%-26s %10s %12s %12s %8s\n", "mode", "wall",
                "replays/s", "decodes", "CPI(8w)");
    std::printf("%-26s %10s %12.1f %12.0f %8.4f\n",
                "per-config (4 runs)", fmtTime(sepWall).c_str(),
                cellPoints / sepWall,
                cellPoints, sepCpi[0]);
    std::printf("%-26s %10s %12.1f %12llu %8.4f\n",
                "campaign (decode-once)",
                fmtTime(fused.wallSeconds).c_str(),
                cellPoints / fused.wallSeconds,
                static_cast<unsigned long long>(fused.pointsDecoded),
                fused.cells[0].cpi());
    std::printf("\naggregate speedup %.2fx; decode fan-out %.2f "
                "replays per decode (target: >= 1.3x for a 4-config "
                "campaign)\n",
                speedup,
                static_cast<double>(fused.replaysExecuted) /
                    static_cast<double>(
                        std::max<std::uint64_t>(fused.pointsDecoded,
                                                1)));

    // Worker migration: with per-cell confidence stopping, converged
    // cells retire and their replay slots go to the rest. The target
    // is calibrated from the measured full-library interval so cells
    // converge mid-run at any bench scale (sqrt(2) looser ~= half the
    // sample); per-cell variance differences then spread the stopping
    // points across barriers.
    CampaignOptions mopt;
    mopt.shuffleSeed = 7;
    mopt.stopAtConfidence = true;
    mopt.blockSize = 8;
    mopt.spec = ConfidenceSpec{
        0.95, fused.cells[0].stat.relHalfWidth(confidenceZ(0.95)) *
                  1.41};
    CampaignEngine mengine({{b.profile.name, &b.prog, &lib}}, cfgs,
                           mopt);
    const CampaignResult stopped = mengine.run();
    std::uint64_t maxCell = 0;
    for (const CampaignCell &cell : stopped.cells)
        maxCell = std::max<std::uint64_t>(maxCell, cell.processed);
    std::printf("\nconfidence-stopped campaign: %zu/%zu cells "
                "retired early, %llu of %llu cell-replays migrated "
                "to unconverged cells (%.1f%%)\n",
                stopped.retirements, stopped.cells.size(),
                static_cast<unsigned long long>(
                    stopped.migratedReplays),
                static_cast<unsigned long long>(maxCell * K),
                100.0 * static_cast<double>(stopped.migratedReplays) /
                    static_cast<double>(
                        std::max<std::uint64_t>(maxCell * K, 1)));

    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_campaign\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %zu,\n"
        "  \"configs\": %zu,\n  \"compressed_bytes\": %llu,\n"
        "  \"per_config\": {\"wall_seconds\": %.6f, "
        "\"replays_per_sec\": %.2f},\n"
        "  \"campaign\": {\"wall_seconds\": %.6f, "
        "\"replays_per_sec\": %.2f, \"speedup\": %.4f, "
        "\"points_decoded\": %llu, \"decode_fanout\": %.3f, "
        "\"bytes_decoded\": %llu},\n"
        "  \"migration\": {\"retirements\": %zu, "
        "\"migrated_replays\": %llu, \"folded_replays\": %llu}\n}\n",
        b.profile.name.c_str(), lib.size(), K,
        static_cast<unsigned long long>(lib.totalCompressedBytes()),
        sepWall, cellPoints / sepWall, fused.wallSeconds,
        cellPoints / fused.wallSeconds, speedup,
        static_cast<unsigned long long>(fused.pointsDecoded),
        static_cast<double>(fused.replaysExecuted) /
            static_cast<double>(
                std::max<std::uint64_t>(fused.pointsDecoded, 1)),
        static_cast<unsigned long long>(fused.bytesDecoded),
        stopped.retirements,
        static_cast<unsigned long long>(stopped.migratedReplays),
        static_cast<unsigned long long>(stopped.foldedReplays));
    if (writeBenchJson(s, json))
        std::printf("\ntimings written to %s\n", s.jsonPath.c_str());
    return 0;
}
