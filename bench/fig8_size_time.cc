/**
 * @file
 * Figure 8 — compressed checkpoint size and processing time versus the
 * library's maximum cache/branch-predictor configuration.
 *
 * Live-point size grows with the stored maximum L2 tag array (paired
 * with growing predictor tables, as in the paper's x-axis: 1MB L2/1K
 * bpred ... 16MB/16K); AW-MRRL checkpoints are microarchitecture-
 * independent, so their size is flat — there is a break-even point.
 * But live-point *processing time* (decompress + reconstruct) stays an
 * order of magnitude below adaptive warming at every size, because
 * loading warm state beats regenerating it functionally.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "bpred/bpred.hh"
#include "codec/zip.hh"
#include "func/functional.hh"
#include "func/warming.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Figure 8: compressed checkpoint size and processing "
                "time vs maximum configuration (gcc-2)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg8 = CoreConfig::eightWay();

    const std::uint64_t n = 40; // enough points to average over
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfg8.detailedWarming);

    // --- AW-MRRL reference: fixed-size arch checkpoints + functional
    // warming per window. ---
    const MrrlAnalysis mrrl = analyzeMrrl(
        b.prog, design.windowStarts(), design.windowLen());
    const std::uint64_t mid = n / 2;
    const InstCount awWarm = mrrl.warmingLengths[mid];
    const InstCount start = design.windowStart(mid);
    FunctionalSimulator sim(b.prog);
    sim.run(start - std::min<InstCount>(awWarm, start));
    MemoryImage awImage(64);
    sim.setCaptureImage(&awImage);
    sim.run(std::min<InstCount>(awWarm, start));
    sim.setCaptureImage(nullptr);
    // Serialise + compress the AW checkpoint payload.
    Blob awBytes;
    awImage.forEach([&awBytes](Addr, const std::vector<std::uint8_t> &v) {
        awBytes.insert(awBytes.end(), v.begin(), v.end());
    });
    const std::uint64_t awSize = zipCompress(awBytes).size();
    // AW processing time = functional warming of the window's period.
    const auto awT0 = std::chrono::steady_clock::now();
    {
        FunctionalSimulator warmSim(b.prog);
        MemHierarchy h(cfg8.mem);
        BranchPredictor bp(cfg8.bpred);
        FunctionalWarming fw(warmSim);
        fw.attachHierarchy(&h);
        fw.attachPredictor(&bp);
        fw.warm(awWarm);
    }
    const double awMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - awT0)
            .count();

    std::printf("%-22s | %14s %14s | %14s %14s\n", "max configuration",
                "LP size", "LP load (ms)", "AW size", "AW warm (ms)");

    std::string jsonRows;
    for (unsigned step = 0; step < 5; ++step) {
        const std::uint64_t l2Size = (1ull << step) * 1024 * 1024;
        const unsigned bpredK = 1u << step;

        LivePointBuilderConfig bc;
        bc.maxL1i = cfg8.mem.l1i;
        bc.maxL1d = cfg8.mem.l1d;
        bc.maxL2 = {l2Size, 8, 128};
        bc.maxItlb = cfg8.mem.itlb;
        bc.maxDtlb = cfg8.mem.dtlb;
        BpredConfig bp = cfg8.bpred;
        bp.tableEntries = bpredK * 1024;
        bc.bpredConfigs = {bp};
        const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

        const std::uint64_t avgSize =
            lib.totalCompressedBytes() / lib.size();

        // Processing (load) time: decompress + decode + reconstruct
        // the warm state at the target geometry (the 8-way config,
        // clipped to the library maximum for the small steps). The
        // decode goes through the allocation-free span path, like the
        // replay engine's producers.
        CoreConfig target = cfg8;
        target.bpred = bp;
        if (target.mem.l2.sizeBytes > l2Size)
            target.mem.l2.sizeBytes = l2Size;
        const auto t0 = std::chrono::steady_clock::now();
        Blob scratch;
        LivePoint pt;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            lib.decodeInto(i, scratch, pt);
            MemHierarchy hier(target.mem);
            pt.l1i.reconstruct(hier.l1i());
            pt.l1d.reconstruct(hier.l1d());
            pt.l2.reconstruct(hier.l2());
            pt.itlb.reconstruct(hier.itlb());
            pt.dtlb.reconstruct(hier.dtlb());
            BranchPredictor pred(target.bpred);
            pred.deserialize(*pt.findBpredImage(target.bpred.key()));
        }
        const double loadMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            static_cast<double>(lib.size());

        std::printf("%2lluMB L2 / %2uK bpred   | %14s %14.2f | %14s "
                    "%14.2f\n",
                    static_cast<unsigned long long>(l2Size >> 20),
                    bpredK, fmtBytes(avgSize).c_str(), loadMs,
                    fmtBytes(awSize).c_str(), awMs);
        jsonRows += strfmt(
            "%s    {\"l2_mb\": %llu, \"bpred_k\": %u, "
            "\"lp_bytes_per_point\": %llu, \"lp_load_ms\": %.4f, "
            "\"aw_bytes\": %llu, \"aw_warm_ms\": %.4f}",
            jsonRows.empty() ? "" : ",\n",
            static_cast<unsigned long long>(l2Size >> 20), bpredK,
            static_cast<unsigned long long>(avgSize), loadMs,
            static_cast<unsigned long long>(awSize), awMs);
    }
    const std::string json = strfmt(
        "{\n  \"bench\": \"fig8_size_time\",\n  \"benchmark\": "
        "\"%s\",\n  \"points\": %llu,\n  \"results\": [\n%s\n  ]\n}\n",
        b.profile.name.c_str(), static_cast<unsigned long long>(n),
        jsonRows.c_str());
    if (writeBenchJson(s, json))
        std::printf("\ntimings written to %s\n", s.jsonPath.c_str());

    std::printf("\npaper shape: LP size grows with the max tag arrays "
                "and crosses the flat AW size near 4MB; LP load time "
                "stays ~10x below AW functional warming throughout.\n");
    return 0;
}
