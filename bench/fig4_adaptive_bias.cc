/**
 * @file
 * Figure 4 — additional CPI bias of adaptive warming (AW-MRRL at a
 * 99.9% reuse probability) relative to full warming, per benchmark,
 * on the 8-way configuration. Also reports the Section 4.2 headline
 * numbers: the MRRL warming fraction of the full-warming interval and
 * the unstitched-variant bias.
 *
 * Paper shape: average additional bias ~1.1%, worst case ~5.4%
 * (stitched); ~1.9% avg / 11% worst unstitched; warming ~20% of the
 * inter-window interval.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

struct Row
{
    std::string name;
    double biasStitched = 0;
    double biasUnstitched = 0;
    double warmFraction = 0;
};

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Figure 4: adaptive-warming (AW-MRRL) additional CPI "
                "bias vs full warming, 8-way");
    const CoreConfig cfg = CoreConfig::eightWay();
    std::vector<Row> rows;

    for (const PreparedBench &b : prepareSuite(s)) {
        // Cap the sample so the sampling period is not absurdly dense
        // at the quick-mode benchmark scale: the paper's inter-window
        // period is ~1700 windows' worth; at 1/4 length a full-size
        // sample would leave almost no gap for warming to be partial.
        const std::uint64_t n =
            std::min<std::uint64_t>(sampleSize(b, cfg, s), 120);
        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);
        const SampledEstimate full = runSmarts(b.prog, cfg, design);
        const MrrlAnalysis mrrl = analyzeMrrl(
            b.prog, design.windowStarts(), design.windowLen());
        const SampledEstimate st =
            runAdaptiveWarming(b.prog, cfg, design, mrrl, true);
        const SampledEstimate un =
            runAdaptiveWarming(b.prog, cfg, design, mrrl, false);
        Row r;
        r.name = b.profile.name;
        r.biasStitched =
            std::fabs(st.cpi() - full.cpi()) / full.cpi();
        r.biasUnstitched =
            std::fabs(un.cpi() - full.cpi()) / full.cpi();
        // Effective warming actually performed (MRRL requests are
        // clamped to the inter-window gap), as a fraction of the gap.
        const double windows = static_cast<double>(design.count);
        const double gapInsts =
            windows * static_cast<double>(design.period() -
                                          design.windowLen());
        r.warmFraction =
            (static_cast<double>(st.warmedInsts) -
             windows * static_cast<double>(design.windowLen())) /
            gapInsts;
        rows.push_back(r);
        std::fprintf(stderr, "  [fig4] %s done\n", r.name.c_str());
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.biasStitched > b.biasStitched;
              });

    std::printf("%-10s %18s %18s %14s\n", "benchmark",
                "add. bias (stitch)", "add. bias (no-st)",
                "warm fraction");
    double sumS = 0;
    double sumU = 0;
    double sumW = 0;
    double worstS = 0;
    double worstU = 0;
    for (const Row &r : rows) {
        std::printf("%-10s %17.2f%% %17.2f%% %13.1f%%\n",
                    r.name.c_str(), 100 * r.biasStitched,
                    100 * r.biasUnstitched, 100 * r.warmFraction);
        sumS += r.biasStitched;
        sumU += r.biasUnstitched;
        sumW += r.warmFraction;
        worstS = std::max(worstS, r.biasStitched);
        worstU = std::max(worstU, r.biasUnstitched);
    }
    const double inv = 1.0 / static_cast<double>(rows.size());
    std::printf("%-10s %17.2f%% %17.2f%% %13.1f%%\n", "average",
                100 * sumS * inv, 100 * sumU * inv, 100 * sumW * inv);
    std::printf("%-10s %17.2f%% %17.2f%%\n", "worst", 100 * worstS,
                100 * worstU);
    std::printf("\npaper: avg 1.1%% / worst 5.4%% (stitched); avg "
                "1.9%% / worst 11%% (unstitched); warming ~20%% of "
                "the full interval.\n");
    return 0;
}
