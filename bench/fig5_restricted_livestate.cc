/**
 * @file
 * Figure 5 — additional CPI bias of *restricted* live-state: when only
 * correct-path state is stored, wrong-path instructions cannot be
 * simulated accurately, perturbing the schedule of the commit stream.
 * Measured as the per-benchmark difference between live-point runs
 * with exact wrong-path simulation and with the restricted
 * approximation, 8-way.
 *
 * The storage side of the same economics: each benchmark is also
 * built as a *restricted-tier* library (restrictedBuilderConfig over
 * the 8-way baseline alone, instead of the full 16-way maxima).
 * Bytes/point shrink; the replayed estimate must not move at all —
 * LRU inclusion makes the covered configuration's reconstruction
 * exact, so the tier bias column is a structural zero, checked here
 * on every benchmark.
 *
 * Paper shape: average additional CPI bias ~0.1%, worst ~3.3%; the
 * worst benchmarks are branchy/load-dependent (mcf, parser, gcc,
 * gzip). Also reports the Section 5 companion number: unavailable
 * wrong-path values enter the pipeline less than about once per
 * window under (full) live-state.
 *
 * With LP_BENCH_JSON set, emits per-benchmark rows (bytes/point per
 * tier, wrong-path bias, tier bias) for the CI perf trajectory.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Figure 5: restricted live-state additional CPI bias, "
                "8-way");
    const CoreConfig cfg = CoreConfig::eightWay();

    struct Row
    {
        std::string name;
        double bias;
        double unavailPerWindow;
        double bppFull;       //!< compressed bytes/point, full maxima
        double bppRestricted; //!< compressed bytes/point, 8-way tier
        double tierBias;      //!< |restricted-tier CPI - full CPI| rel
    };
    std::vector<Row> rows;

    for (const PreparedBench &b : prepareSuite(s)) {
        const std::uint64_t n = sampleSize(b, cfg, s);
        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);
        LivePointBuilderConfig bc = defaultBuilderConfig();
        const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

        // The restricted tier: store only what the 8-way baseline
        // consumes. Same windows, same warming — less live state.
        const LivePointBuilderConfig tierBc =
            restrictedBuilderConfig({cfg}, bc);
        const LivePointLibrary tierLib =
            cachedLibrary(b, design, tierBc, s);

        LivePointRunOptions exact;
        LivePointRunOptions restricted;
        restricted.approxWrongPath = true;
        const LivePointRunResult re =
            runLivePoints(b.prog, lib, cfg, exact);
        const LivePointRunResult rr =
            runLivePoints(b.prog, lib, cfg, restricted);
        const LivePointRunResult rt =
            runLivePoints(b.prog, tierLib, cfg, exact);
        const double tierBias =
            std::fabs(rt.cpi() - re.cpi()) / re.cpi();
        if (tierBias != 0.0)
            warn("fig5: restricted-tier estimate moved on %s "
                 "(%.6f vs %.6f) — LRU inclusion violated",
                 b.profile.name.c_str(), rt.cpi(), re.cpi());
        rows.push_back(
            {b.profile.name,
             std::fabs(rr.cpi() - re.cpi()) / re.cpi(),
             static_cast<double>(re.unavailableLoads) /
                 static_cast<double>(re.processed),
             static_cast<double>(lib.totalCompressedBytes()) /
                 static_cast<double>(n),
             static_cast<double>(tierLib.totalCompressedBytes()) /
                 static_cast<double>(n),
             tierBias});
        std::fprintf(stderr, "  [fig5] %s done\n",
                     b.profile.name.c_str());
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.bias > b.bias; });

    std::printf("%-10s %16s %20s %11s %11s %10s\n", "benchmark",
                "wrong-path bias", "unavail. / window", "full B/pt",
                "tier B/pt", "tier bias");
    double sum = 0;
    double worst = 0;
    double sumUnavail = 0;
    double sumCut = 0;
    std::string jsonRows;
    for (const Row &r : rows) {
        std::printf("%-10s %15.2f%% %20.3f %11.0f %11.0f %9.2f%%\n",
                    r.name.c_str(), 100 * r.bias, r.unavailPerWindow,
                    r.bppFull, r.bppRestricted, 100 * r.tierBias);
        sum += r.bias;
        worst = std::max(worst, r.bias);
        sumUnavail += r.unavailPerWindow;
        sumCut += r.bppFull / r.bppRestricted;
        jsonRows += strfmt(
            "%s    {\"benchmark\": \"%s\", \"wrong_path_bias\": %.6f, "
            "\"unavail_per_window\": %.4f, "
            "\"bytes_per_point_full\": %.1f, "
            "\"bytes_per_point_restricted\": %.1f, "
            "\"tier_bias\": %.6f}",
            jsonRows.empty() ? "" : ",\n", r.name.c_str(), r.bias,
            r.unavailPerWindow, r.bppFull, r.bppRestricted,
            r.tierBias);
    }
    const double nRows = static_cast<double>(rows.size());
    std::printf("%-10s %15.2f%% %20.3f\n", "average", 100 * sum / nRows,
                sumUnavail / nRows);
    std::printf("%-10s %15.2f%%\n", "worst", 100 * worst);
    std::printf("restricted tier: %.2fx bytes/point cut on average, "
                "zero added bias (LRU inclusion)\n", sumCut / nRows);
    std::printf("\npaper: avg ~0.1%%, worst ~3.3%% additional bias; "
                "<1 unavailable value per window on average.\n");

    const std::string json = strfmt(
        "{\n  \"bench\": \"fig5_restricted_livestate\",\n"
        "  \"avg_wrong_path_bias\": %.6f,\n"
        "  \"worst_wrong_path_bias\": %.6f,\n"
        "  \"avg_unavail_per_window\": %.4f,\n"
        "  \"avg_tier_cut\": %.3f,\n"
        "  \"rows\": [\n%s\n  ]\n}\n",
        sum / nRows, worst, sumUnavail / nRows, sumCut / nRows,
        jsonRows.c_str());
    if (writeBenchJson(s, json))
        std::printf("timings written to %s\n", s.jsonPath.c_str());
    return 0;
}
