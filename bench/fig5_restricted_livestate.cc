/**
 * @file
 * Figure 5 — additional CPI bias of *restricted* live-state: when only
 * correct-path state is stored, wrong-path instructions cannot be
 * simulated accurately, perturbing the schedule of the commit stream.
 * Measured as the per-benchmark difference between live-point runs
 * with exact wrong-path simulation and with the restricted
 * approximation, 8-way.
 *
 * Paper shape: average additional CPI bias ~0.1%, worst ~3.3%; the
 * worst benchmarks are branchy/load-dependent (mcf, parser, gcc,
 * gzip). Also reports the Section 5 companion number: unavailable
 * wrong-path values enter the pipeline less than about once per
 * window under (full) live-state.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Figure 5: restricted live-state additional CPI bias, "
                "8-way");
    const CoreConfig cfg = CoreConfig::eightWay();

    struct Row
    {
        std::string name;
        double bias;
        double unavailPerWindow;
    };
    std::vector<Row> rows;

    for (const PreparedBench &b : prepareSuite(s)) {
        const std::uint64_t n = sampleSize(b, cfg, s);
        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);
        LivePointBuilderConfig bc = defaultBuilderConfig();
        const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

        LivePointRunOptions exact;
        LivePointRunOptions restricted;
        restricted.approxWrongPath = true;
        const LivePointRunResult re =
            runLivePoints(b.prog, lib, cfg, exact);
        const LivePointRunResult rr =
            runLivePoints(b.prog, lib, cfg, restricted);
        rows.push_back(
            {b.profile.name,
             std::fabs(rr.cpi() - re.cpi()) / re.cpi(),
             static_cast<double>(re.unavailableLoads) /
                 static_cast<double>(re.processed)});
        std::fprintf(stderr, "  [fig5] %s done\n",
                     b.profile.name.c_str());
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.bias > b.bias; });

    std::printf("%-10s %20s %24s\n", "benchmark", "additional CPI bias",
                "unavail. loads / window");
    double sum = 0;
    double worst = 0;
    double sumUnavail = 0;
    for (const Row &r : rows) {
        std::printf("%-10s %19.2f%% %24.3f\n", r.name.c_str(),
                    100 * r.bias, r.unavailPerWindow);
        sum += r.bias;
        worst = std::max(worst, r.bias);
        sumUnavail += r.unavailPerWindow;
    }
    std::printf("%-10s %19.2f%% %24.3f\n", "average",
                100 * sum / rows.size(), sumUnavail / rows.size());
    std::printf("%-10s %19.2f%%\n", "worst", 100 * worst);
    std::printf("\npaper: avg ~0.1%%, worst ~3.3%% additional bias; "
                "<1 unavailable value per window on average.\n");
    return 0;
}
