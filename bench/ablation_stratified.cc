/**
 * @file
 * Ablation — stratified sampling over a live-point library (the
 * optimization the paper cites from Wunderlich et al., WDDD 2004).
 * Compares measurements needed by the uniform random-order estimator
 * and the stratified estimator with greedy Neyman allocation to reach
 * the same confidence target. Only independent checkpoints make this
 * optimization possible: functional warming forces program order.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/stratified.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: stratified vs uniform sampling (8-way)");
    const CoreConfig cfg = CoreConfig::eightWay();

    // A relaxed target so early stopping is reachable at bench scale.
    ConfidenceSpec spec{0.997, 0.06};

    std::printf("%-10s %10s | %10s %10s | %10s\n", "benchmark", "CPI",
                "uniform n", "strat. n", "reduction");
    for (const char *name : {"gcc-2", "vpr-route", "ammp", "mgrid"}) {
        const PreparedBench b = prepareOne(name, s);
        const std::uint64_t n = sampleSize(b, cfg, s);
        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);
        LivePointBuilderConfig bc = defaultBuilderConfig();
        const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

        LivePointRunOptions uopt;
        uopt.spec = spec;
        uopt.stopAtConfidence = true;
        uopt.shuffleSeed = 17;
        const LivePointRunResult uniform =
            runLivePoints(b.prog, lib, cfg, uopt);

        StratifiedOptions sopt;
        sopt.spec = spec;
        const StratifiedResult strat =
            runStratified(b.prog, lib, cfg, sopt);

        std::printf("%-10s %10.3f | %10zu %10zu | %9.2fx%s\n", name,
                    strat.mean, uniform.processed, strat.processed,
                    static_cast<double>(uniform.processed) /
                        static_cast<double>(strat.processed),
                    (uniform.finalSnapshot.satisfied || strat.satisfied)
                        ? ""
                        : "  (library exhausted)");
    }
    std::printf("\nstratification exploits program phases: per-stratum "
                "variance is below population variance, so the same "
                "confidence needs fewer windows.\n");
    return 0;
}
