/**
 * @file
 * Table 2 — runtimes of the four simulation strategies per benchmark:
 * complete detailed simulation (sim-outorder equivalent, extrapolated
 * from a measured slice), SMARTS full warming, AW-MRRL adaptive
 * warming, and live-points. Reports min/avg/max per strategy and the
 * headline speedup ratios.
 *
 * Absolute wall-clock values are host- and scale-dependent; the
 * paper-shape claims are the *ratios* and their per-benchmark
 * identities (perlbmk fastest under O(B) strategies, parser slowest;
 * low-variance benchmarks fastest under live-points).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

struct Row
{
    std::string name;
    double complete = 0;   //!< extrapolated complete-sim seconds
    double smarts = 0;     //!< full-warming seconds
    double aw = 0;         //!< AW-MRRL seconds (warming + detailed)
    double livepoints = 0; //!< live-point run seconds
    std::uint64_t n = 0;
    BuilderStats build;          //!< zeroed when cache-hit
    std::uint64_t libBytes = 0;  //!< compressed library size
    double replayPointsPerSec = 0;
};

void
printRows(const char *config, const std::vector<Row> &rows)
{
    std::printf("\n[%s]\n", config);
    std::printf("%-10s %6s | %12s %12s %12s %12s\n", "benchmark", "n",
                "complete*", "SMARTS", "AW-MRRL", "live-points");
    for (const Row &r : rows)
        std::printf("%-10s %6llu | %12s %12s %12s %12s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.n),
                    fmtTime(r.complete).c_str(),
                    fmtTime(r.smarts).c_str(), fmtTime(r.aw).c_str(),
                    fmtTime(r.livepoints).c_str());

    auto summarize = [&](auto field, const char *label) {
        double mn = 1e30;
        double mx = 0;
        double sum = 0;
        std::string mnb;
        std::string mxb;
        for (const Row &r : rows) {
            const double v = field(r);
            sum += v;
            if (v < mn) {
                mn = v;
                mnb = r.name;
            }
            if (v > mx) {
                mx = v;
                mxb = r.name;
            }
        }
        std::printf("%-12s min %10s (%s)  avg %10s  max %10s (%s)\n",
                    label, fmtTime(mn).c_str(), mnb.c_str(),
                    fmtTime(sum / rows.size()).c_str(),
                    fmtTime(mx).c_str(), mxb.c_str());
    };
    std::printf("\n");
    summarize([](const Row &r) { return r.complete; }, "complete*");
    summarize([](const Row &r) { return r.smarts; }, "SMARTS");
    summarize([](const Row &r) { return r.aw; }, "AW-MRRL");
    summarize([](const Row &r) { return r.livepoints; }, "live-points");

    double sumS = 0;
    double sumA = 0;
    double sumL = 0;
    double sumC = 0;
    for (const Row &r : rows) {
        sumC += r.complete;
        sumS += r.smarts;
        sumA += r.aw;
        sumL += r.livepoints;
    }
    std::printf("\nspeedups (avg): SMARTS vs complete %.1fx | "
                "live-points vs SMARTS %.1fx | vs AW-MRRL %.1fx\n",
                sumC / sumS, sumS / sumL, sumA / sumL);
    std::printf("paper (unscaled SPEC2K): SMARTS vs complete ~19x; "
                "live-points vs SMARTS ~277x; vs AW-MRRL ~59x\n"
                "(our ratios shrink with the scaled-down benchmark "
                "length; see bench/scaling_runtime and EXPERIMENTS.md)\n");
}

Row
runOne(const PreparedBench &b, const CoreConfig &cfg,
       const BenchSettings &s)
{
    Row row;
    row.name = b.profile.name;
    row.n = sampleSize(b, cfg, s);
    const SampleDesign design =
        SampleDesign::systematic(b.length, row.n, 1000,
                                 cfg.detailedWarming);

    // Complete detailed simulation, extrapolated from a 1M-inst slice
    // (detailed-simulation time is linear in instructions).
    const InstCount slice = std::min<InstCount>(1'000'000, b.length);
    const CompleteSimResult cs = runCompleteDetailed(b.prog, cfg, slice);
    row.complete = cs.wallSeconds * static_cast<double>(b.length) /
                   static_cast<double>(cs.insts);

    const SampledEstimate sm = runSmarts(b.prog, cfg, design);
    row.smarts = sm.wallSeconds;

    const MrrlAnalysis mrrl = analyzeMrrl(
        b.prog, design.windowStarts(), design.windowLen());
    const SampledEstimate aw =
        runAdaptiveWarming(b.prog, cfg, design, mrrl, true);
    row.aw = aw.wallSeconds;

    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s, &row.build);
    row.libBytes = lib.totalCompressedBytes();
    Rng rng(2025, "table2-shuffle");
    lib.shuffle(rng);
    LivePointRunOptions opt;
    const LivePointRunResult lp = runLivePoints(b.prog, lib, cfg, opt);
    row.livepoints = lp.wallSeconds;
    row.replayPointsPerSec =
        static_cast<double>(lp.processed) / lp.wallSeconds;
    return row;
}

/**
 * Build-throughput JSON rows (one per benchmark that was actually
 * built this run): the creation-side numbers CI tracks alongside the
 * replay trajectory.
 */
std::string
buildJsonRows(const std::vector<Row> &rows)
{
    std::string out;
    for (const Row &r : rows) {
        if (r.build.wallSeconds <= 0)
            continue; // cache hit: no fresh timing to report
        out += strfmt(
            "%s    {\"benchmark\": \"%s\", \"points\": %llu, "
            "\"build_seconds\": %.6f, \"build_insts_per_sec\": %.1f, "
            "\"build_points_per_sec\": %.2f, \"bytes_per_point\": "
            "%llu, \"shards\": %u, \"replay_points_per_sec\": %.2f}",
            out.empty() ? "" : ",\n", r.name.c_str(),
            static_cast<unsigned long long>(r.n), r.build.wallSeconds,
            static_cast<double>(r.build.instsSimulated) /
                r.build.wallSeconds,
            static_cast<double>(r.build.points) / r.build.wallSeconds,
            static_cast<unsigned long long>(r.n ? r.libBytes / r.n : 0),
            r.build.shards, r.replayPointsPerSec);
    }
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader(strfmt("Table 2: runtimes per benchmark "
                       "(%s suite, scale=%.2f, n<=%llu)",
                       s.full ? "full" : "quick", s.scale,
                       static_cast<unsigned long long>(
                           s.maxSampleSize)));
    const auto suite = prepareSuite(s);

    std::string jsonSections;
    for (const CoreConfig &cfg :
         {CoreConfig::eightWay(), CoreConfig::sixteenWay()}) {
        std::vector<Row> rows;
        for (const PreparedBench &b : suite) {
            rows.push_back(runOne(b, cfg, s));
            std::fprintf(stderr, "  [table2/%s] %s done\n",
                         cfg.name.c_str(),
                         rows.back().name.c_str());
        }
        printRows(cfg.name.c_str(), rows);
        const std::string buildRows = buildJsonRows(rows);
        if (!buildRows.empty())
            jsonSections += strfmt(
                "%s  {\"config\": \"%s\", \"builds\": [\n%s\n  ]}",
                jsonSections.empty() ? "" : ",\n", cfg.name.c_str(),
                buildRows.c_str());
    }
    if (!jsonSections.empty()) {
        const std::string json = strfmt(
            "{\n  \"bench\": \"table2_runtimes\",\n"
            "  \"build_threads\": %u,\n  \"sections\": [\n%s\n  ]\n}\n",
            s.buildThreads, jsonSections.c_str());
        if (writeBenchJson(s, json))
            std::printf("\nbuild timings written to %s\n",
                        s.jsonPath.c_str());
    }
    std::printf("\n* complete-simulation time extrapolated from a "
                "measured 1M-instruction slice.\n");
    return 0;
}
