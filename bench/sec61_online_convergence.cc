/**
 * @file
 * Section 6.1 — online (anytime) result reporting. Processes a
 * shuffled live-point library and prints the running CPI estimate and
 * its confidence as the sample grows; also contrasts the random-order
 * trajectory with program-order processing, which is biased early
 * (a program-order prefix over-represents the benchmark's beginning).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Section 6.1: online results and convergence (ammp, "
                "8-way)");
    const PreparedBench b = prepareOne("ammp", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design =
        SampleDesign::systematic(b.length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    const LivePointLibrary lib = cachedLibrary(b, design, bc, s);

    LivePointRunOptions shuffled;
    shuffled.shuffleSeed = 97;
    shuffled.recordTrajectory = true;
    const LivePointRunResult rs = runLivePoints(b.prog, lib, cfg,
                                                shuffled);

    LivePointRunOptions inOrder;
    inOrder.recordTrajectory = true;
    const LivePointRunResult ro = runLivePoints(b.prog, lib, cfg,
                                                inOrder);

    const double final = rs.cpi();
    std::printf("final estimate: CPI = %.4f over %zu live-points\n\n",
                final, rs.processed);
    std::printf("%8s | %21s | %21s\n", "n",
                "random order (unbiased)", "program order (biased)");
    std::printf("%8s | %10s %10s | %10s %10s\n", "", "CPI", "+/-%",
                "CPI", "+/-%");
    for (std::size_t i : {29ul, 49ul, 99ul, 199ul, 399ul, 799ul}) {
        if (i >= rs.trajectory.size())
            break;
        const OnlineSnapshot &a = rs.trajectory[i];
        const OnlineSnapshot &c = ro.trajectory[i];
        std::printf("%8zu | %10.4f %9.1f%% | %10.4f %9.1f%%\n", i + 1,
                    a.mean, 100 * a.relHalfWidth, c.mean,
                    100 * c.relHalfWidth);
    }
    const std::size_t last = rs.trajectory.size() - 1;
    std::printf("%8zu | %10.4f %9.1f%% | %10.4f %9.1f%%\n", last + 1,
                rs.trajectory[last].mean,
                100 * rs.trajectory[last].relHalfWidth,
                ro.trajectory[last].mean,
                100 * ro.trajectory[last].relHalfWidth);

    // Early-prefix error vs the final value, both orders.
    const std::size_t probe =
        std::min<std::size_t>(minCltSample + 20, last);
    const double errRandom =
        std::fabs(rs.trajectory[probe].mean - final) / final;
    const double errOrder =
        std::fabs(ro.trajectory[probe].mean - final) / final;
    std::printf("\nerror of the n=%zu prefix estimate: random order "
                "%.1f%%, program order %.1f%%\n",
                probe + 1, 100 * errRandom, 100 * errOrder);
    std::printf("paper: a shuffled prefix is always an unbiased random "
                "sub-sample; confidence tightens as n grows and the "
                "simulation can stop at any time.\n");
    return 0;
}
