/**
 * @file
 * Ablation — Cache Set Record vs Memory Timestamp Record (Section 4.3,
 * Barr et al.): the MTR reconstructs arbitrary geometries but its
 * storage grows with the application's touched footprint; the CSR is
 * bounded by the chosen maximum tag array. This bench quantifies both
 * representations' serialised sizes and reconstruction times across
 * workload footprints.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "cache/warmstate.hh"
#include "codec/zip.hh"
#include "func/functional.hh"
#include "func/warming.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: CSR vs MTR warm-state storage and "
                "reconstruction time");
    const CoreConfig cfg = CoreConfig::eightWay();

    std::printf("%10s | %12s %12s | %12s %12s | %12s\n", "footprint",
                "CSR bytes", "CSR rec(ms)", "MTR bytes", "MTR rec(ms)",
                "MTR/CSR");

    for (std::uint64_t mib : {1ull, 4ull, 16ull, 32ull}) {
        WorkloadProfile p = findProfile("gcc-2");
        p.name = strfmt("gcc2-%lluMiB", static_cast<unsigned long long>(mib));
        p.footprintBytes = mib << 20;
        p.targetInsts = static_cast<InstCount>(6'000'000 * s.scale * 4);
        const Program prog = generateProgram(p);

        FunctionalSimulator sim(prog);
        MemHierarchyConfig memCfg = cfg.mem;
        MemHierarchy hier(memCfg);
        MemoryTimestampRecord mtr(32);
        FunctionalWarming fw(sim);
        fw.attachHierarchy(&hier);
        fw.attachMtr(&mtr);
        fw.warm(p.targetInsts);

        const CacheSetRecord csr(hier.l2());
        const Blob csrZ = zipCompress(csr.serialize());
        const Blob mtrZ = zipCompress(mtr.serialize());

        CacheModel target(cfg.mem.l2, "target");
        auto t0 = std::chrono::steady_clock::now();
        csr.reconstruct(target);
        const double csrMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        t0 = std::chrono::steady_clock::now();
        mtr.reconstruct(target);
        const double mtrMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        std::printf("%9lluM | %12s %12.2f | %12s %12.2f | %11.1fx\n",
                    static_cast<unsigned long long>(mib),
                    fmtBytes(csrZ.size()).c_str(), csrMs,
                    fmtBytes(mtrZ.size()).c_str(), mtrMs,
                    static_cast<double>(mtrZ.size()) /
                        static_cast<double>(csrZ.size()));
    }
    std::printf("\nshape: CSR storage is bounded by the maximum tag "
                "array (flat); MTR grows with the touched footprint — "
                "this is why live-points bound the maximum cache "
                "instead of storing an MTR.\n");
    return 0;
}
