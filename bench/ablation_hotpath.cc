/**
 * @file
 * Ablation — replay hot path. Measures the three layers the hot-path
 * overhaul touched, on one library:
 *
 *  - **Decode throughput**: single-thread MB/s of the batched LZSS
 *    decoder over every compressed record, against the retained
 *    byte-at-a-time reference decoder on the same bytes in the same
 *    process. Their outputs are cross-checked bit-for-bit; the ratio
 *    (decode_speedup) is machine-normalized by construction and must
 *    stay >= 1.5x.
 *  - **Replay throughput**: single-thread decode+simulate points/s
 *    and cycles/point (rdtsc where available) through a pooled
 *    ReplayContext — the per-point cost everything downstream pays.
 *  - **Normalized replay**: points/s divided by the reference
 *    decoder's MB/s on the same machine, a machine-speed-normalized
 *    trajectory number comparable across runners.
 *
 * With LP_BENCH_JSON set, emits BENCH_6.json. The regression gate
 * compares the two normalized metrics (decode_speedup,
 * points_per_norm) against a committed baseline and fails the run on
 * a >10% regression:
 *
 *   LP_BENCH_BASELINE=path  baseline JSON (default
 *                           bench/BENCH_6.baseline.json, the CI
 *                           working-directory-relative committed
 *                           file); "none" skips the gate
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "bench_util.hh"
#include "codec/zip.hh"
#include "core/replay.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

double
secSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t
cycleCounter()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return 0;
#endif
}

/**
 * One decoder's sustained MB/s over every record of the library:
 * repeated full passes until the measurement window is long enough to
 * damp scheduler noise, best pass reported.
 */
double
decodeMBps(const LivePointLibrary &lib,
           void (*decode)(const std::uint8_t *, std::size_t, Blob &),
           Blob &scratch)
{
    std::uint64_t rawBytes = 0;
    for (std::size_t i = 0; i < lib.size(); ++i)
        rawBytes += lib.rawSize(i);
    double best = 0.0;
    double elapsed = 0.0;
    int passes = 0;
    while (elapsed < 0.25 || passes < 3) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lib.size(); ++i) {
            const ByteSpan rec = lib.record(i);
            decode(rec.data, rec.size, scratch);
        }
        const double dt = secSince(t0);
        best = std::max(best,
                        static_cast<double>(rawBytes) / dt / 1e6);
        elapsed += dt;
        ++passes;
    }
    return best;
}

/** Pull `"key": <number>` out of a JSON blob; nan when absent. */
double
jsonNumber(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return std::nan("");
    std::size_t p = at + needle.size();
    while (p < json.size() && (json[p] == ':' || json[p] == ' '))
        ++p;
    return std::strtod(json.c_str() + p, nullptr);
}

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: replay hot path (gcc-2)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfg.detailedWarming);
    const LivePointLibrary lib =
        cachedLibrary(b, design, defaultBuilderConfig(), s);

    // --- Decode: batched vs reference, bit-for-bit then MB/s -------
    Blob fast;
    Blob ref;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const ByteSpan rec = lib.record(i);
        zipDecompressInto(rec.data, rec.size, fast);
        zipDecompressReferenceInto(rec.data, rec.size, ref);
        if (fast != ref)
            panic("ablation_hotpath: batched decode of record %zu "
                  "differs from the reference decoder",
                  i);
    }
    const double mbpsBatched = decodeMBps(lib, zipDecompressInto, fast);
    const double mbpsReference =
        decodeMBps(lib, zipDecompressReferenceInto, ref);
    const double speedup = mbpsBatched / mbpsReference;

    // --- Replay: single-thread decode+simulate points/s ------------
    ReplayContext ctx(b.prog, cfg);
    Blob scratch;
    LivePoint point;
    // Warm pass: grows every pooled buffer to its high-water mark so
    // the measured passes run the steady (allocation-free) state.
    double cpiSum = 0.0;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        lib.decodeInto(i, scratch, point);
        cpiSum += ctx.simulate(point).cpi;
    }
    double bestPps = 0.0;
    double bestCyclesPerPoint = 0.0;
    double elapsed = 0.0;
    int passes = 0;
    while (elapsed < 0.5 || passes < 2) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t c0 = cycleCounter();
        for (std::size_t i = 0; i < lib.size(); ++i) {
            lib.decodeInto(i, scratch, point);
            ctx.simulate(point);
        }
        const std::uint64_t c1 = cycleCounter();
        const double dt = secSince(t0);
        const double pps = static_cast<double>(lib.size()) / dt;
        if (pps > bestPps) {
            bestPps = pps;
            bestCyclesPerPoint = static_cast<double>(c1 - c0) /
                                 static_cast<double>(lib.size());
        }
        elapsed += dt;
        ++passes;
    }
    const double pointsPerNorm = bestPps / mbpsReference;

    std::printf("library: %llu points, %s compressed (%s raw), mean "
                "CPI %.3f\n\n",
                static_cast<unsigned long long>(lib.size()),
                fmtBytes(lib.totalCompressedBytes()).c_str(),
                fmtBytes(lib.totalUncompressedBytes()).c_str(),
                cpiSum / static_cast<double>(lib.size()));
    std::printf("decode   : batched %8.1f MB/s | reference %8.1f "
                "MB/s | speedup %.2fx\n",
                mbpsBatched, mbpsReference, speedup);
    std::printf("replay   : %8.1f points/s | %.0f cycles/point "
                "(decode + simulate, 1 thread)\n",
                bestPps, bestCyclesPerPoint);
    std::printf("normalized: %.3f points/s per reference-MB/s\n\n",
                pointsPerNorm);

    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_hotpath\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %llu,\n"
        "  \"compressed_bytes\": %llu,\n  \"raw_bytes\": %llu,\n"
        "  \"decode_mbps_batched\": %.2f,\n"
        "  \"decode_mbps_reference\": %.2f,\n"
        "  \"decode_speedup\": %.3f,\n"
        "  \"points_per_sec\": %.2f,\n"
        "  \"cycles_per_point\": %.0f,\n"
        "  \"points_per_norm\": %.4f,\n"
        "  \"decode_identical\": true\n}\n",
        b.profile.name.c_str(),
        static_cast<unsigned long long>(lib.size()),
        static_cast<unsigned long long>(lib.totalCompressedBytes()),
        static_cast<unsigned long long>(lib.totalUncompressedBytes()),
        mbpsBatched, mbpsReference, speedup, bestPps,
        bestCyclesPerPoint, pointsPerNorm);
    if (writeBenchJson(s, json))
        std::printf("timings written to %s\n", s.jsonPath.c_str());

    // --- Regression gate --------------------------------------------
    // Hard floor first: the overhaul's acceptance target.
    if (speedup < 1.5)
        panic("ablation_hotpath: decode speedup %.2fx is below the "
              "1.5x floor",
              speedup);

    const char *baseEnv = std::getenv("LP_BENCH_BASELINE");
    const std::string basePath =
        baseEnv ? baseEnv : "bench/BENCH_6.baseline.json";
    if (basePath == "none") {
        std::printf("baseline gate skipped (LP_BENCH_BASELINE=none)\n");
        return 0;
    }
    const std::string baseline = readFile(basePath);
    if (baseline.empty()) {
        std::printf("baseline gate skipped: '%s' not found (set "
                    "LP_BENCH_BASELINE, or run from the repo root)\n",
                    basePath.c_str());
        return 0;
    }
    // Only the machine-normalized metrics gate — absolute MB/s and
    // points/s track runner speed, the two ratios track the code.
    struct Gate
    {
        const char *key;
        double now;
    };
    const Gate gates[] = {
        {"decode_speedup", speedup},
        {"points_per_norm", pointsPerNorm},
    };
    bool failed = false;
    for (const Gate &g : gates) {
        const double base = jsonNumber(baseline, g.key);
        if (std::isnan(base) || base <= 0) {
            std::printf("baseline gate: '%s' missing from %s, "
                        "skipped\n",
                        g.key, basePath.c_str());
            continue;
        }
        const double rel = g.now / base;
        const bool ok = rel >= 0.9;
        std::printf("baseline gate: %-16s %8.3f vs %8.3f baseline "
                    "(%+.1f%%)%s\n",
                    g.key, g.now, base, (rel - 1.0) * 100.0,
                    ok ? "" : "  ** REGRESSION **");
        failed = failed || !ok;
    }
    if (failed) {
        std::fprintf(stderr,
                     "ablation_hotpath: >10%% regression against %s\n",
                     basePath.c_str());
        return 1;
    }
    std::printf("\nbatched decode reproduced the reference bytes on "
                "every record; normalized metrics within 10%% of "
                "baseline.\n");
    return 0;
}
