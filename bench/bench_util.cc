#include "bench_util.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/log.hh"

namespace lpbench
{

using namespace lp;

BenchSettings
settings()
{
    BenchSettings s;
    if (const char *v = std::getenv("LP_BENCH_FULL"); v && v[0] == '1') {
        s.full = true;
        s.scale = 1.0;
        s.maxSampleSize = 2000;
    }
    if (const char *v = std::getenv("LP_BENCH_SCALE"))
        s.scale = std::atof(v);
    if (const char *v = std::getenv("LP_BENCH_MAXN"))
        s.maxSampleSize = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("LP_BENCH_CACHE"))
        s.cacheDir = v;
    if (const char *v = std::getenv("LP_BENCH_JSON"))
        s.jsonPath = v;
    if (const char *v = std::getenv("LP_BENCH_BUILD_THREADS"))
        s.buildThreads = static_cast<unsigned>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = std::getenv("LP_BENCH_BUILD_PREFIX"))
        s.buildPrefix = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("LP_BENCH_RESIDENT_BUDGET"))
        s.residentBudget = std::strtoull(v, nullptr, 10);
    if (s.buildThreads == 0)
        s.buildThreads = 1;
    std::filesystem::create_directories(s.cacheDir);
    return s;
}

bool
writeBenchJson(const BenchSettings &s, const std::string &json)
{
    if (s.jsonPath.empty())
        return false;
    FILE *f = std::fopen(s.jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write '%s'\n",
                     s.jsonPath.c_str());
        return false;
    }
    const bool wrote = std::fputs(json.c_str(), f) >= 0;
    const bool closed = std::fclose(f) == 0;
    if (wrote && closed)
        return true;
    std::fprintf(stderr, "warning: short write to '%s'\n",
                 s.jsonPath.c_str());
    return false;
}

std::vector<std::string>
quickSet()
{
    return {"perlbmk", "gcc-2", "gzip-1", "mcf",   "parser",
            "eon-2",   "swim",  "mgrid",  "ammp"};
}

namespace
{

PreparedBench
prepare(WorkloadProfile p, const BenchSettings &s)
{
    p.targetInsts = static_cast<InstCount>(
        static_cast<double>(p.targetInsts) * s.scale);
    if (p.targetInsts < 2'000'000)
        p.targetInsts = 2'000'000;
    // Keep the phase/reuse structure proportional to the scaled length
    // (see suite.cc) so MRRL warming fractions stay paper-like.
    p.phaseInsts = std::clamp<InstCount>(
        p.targetInsts / (400 * static_cast<InstCount>(p.phases)),
        5'000, 150'000);
    PreparedBench b;
    b.profile = p;
    b.prog = generateProgram(p);
    b.length = measureProgramLength(b.prog);
    return b;
}

} // namespace

std::vector<PreparedBench>
prepareSuite(const BenchSettings &s)
{
    std::vector<PreparedBench> out;
    if (s.full) {
        for (const WorkloadProfile &p : spec2kSuite())
            out.push_back(prepare(p, s));
    } else {
        for (const std::string &name : quickSet())
            out.push_back(prepare(findProfile(name), s));
    }
    return out;
}

PreparedBench
prepareOne(const std::string &name, const BenchSettings &s)
{
    return prepare(findProfile(name), s);
}

double
pilotCov(const PreparedBench &b, const CoreConfig &cfg,
         const BenchSettings &s)
{
    const std::string path =
        s.cacheDir + "/pilot-" + b.profile.name + "-" + cfg.name + "-" +
        std::to_string(b.length) + ".txt";
    if (FILE *f = std::fopen(path.c_str(), "r")) {
        double cov = 0.0;
        const int got = std::fscanf(f, "%lf", &cov);
        std::fclose(f);
        if (got == 1)
            return cov;
    }
    const SampleDesign pilot = SampleDesign::systematic(
        b.length, 40, 1000, cfg.detailedWarming);
    const SampledEstimate e = runSmarts(b.prog, cfg, pilot);
    const double cov = e.stat.cov();
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%.9f\n", cov);
        std::fclose(f);
    }
    return cov;
}

std::uint64_t
sampleSize(const PreparedBench &b, const CoreConfig &cfg,
           const BenchSettings &s, ConfidenceSpec spec)
{
    std::uint64_t n = requiredSampleSize(pilotCov(b, cfg, s), spec);
    n = std::min(n, s.maxSampleSize);
    n = std::min(n, SampleDesign::maxCount(b.length, 1000,
                                           cfg.detailedWarming));
    return std::max<std::uint64_t>(n, minCltSample);
}

LivePointLibrary
cachedLibrary(const PreparedBench &b, const SampleDesign &design,
              const LivePointBuilderConfig &bc, const BenchSettings &s,
              BuilderStats *stats)
{
    LivePointBuilderConfig cfg = bc;
    cfg.buildThreads = s.buildThreads;
    cfg.shardPrefixInsts = s.buildPrefix;

    std::string bpKeys;
    for (const BpredConfig &c : bc.bpredConfigs)
        bpKeys += "-" + c.key();
    // Sharded builds (S>1) are keyed separately: their warm state
    // differs from the exact full-warming library's.
    std::string shardKey;
    if (cfg.buildThreads > 1)
        shardKey = strfmt("-S%u.p%llu", cfg.buildThreads,
                          static_cast<unsigned long long>(
                              cfg.shardPrefixInsts));
    // Encoding variants (shared dictionary, delta chains) and
    // restricted-tier geometries store different bytes: key them
    // apart so a bench never replays the wrong variant from cache.
    std::string encKey;
    if (cfg.sharedDictionary)
        encKey += strfmt("-D%llu", static_cast<unsigned long long>(
                                       cfg.dictionaryBytes));
    if (cfg.deltaEncode)
        encKey += strfmt("-d%u", cfg.maxDeltaChain);
    const std::string path = strfmt(
        "%s/lib-%s-n%llu-w%llu-L2.%llu.%u%s%s%s.lpl", s.cacheDir.c_str(),
        b.profile.name.c_str(),
        static_cast<unsigned long long>(design.count),
        static_cast<unsigned long long>(design.warmLen),
        static_cast<unsigned long long>(bc.maxL2.sizeBytes),
        bc.maxL2.assoc, bpKeys.c_str(), shardKey.c_str(),
        encKey.c_str());
    if (std::filesystem::exists(path)) {
        try {
            LivePointLibrary lib = LivePointLibrary::load(path);
            if (lib.design() == design) {
                if (stats)
                    *stats = BuilderStats{};
                return lib;
            }
        } catch (const std::exception &) {
            // Unreadable cache entry (e.g. older format): rebuild.
        }
        // Stale cache entry (e.g. length changed): rebuild below.
    }
    LivePointBuilder builder(cfg);
    LivePointLibrary lib = builder.build(b.prog, design);
    if (stats)
        *stats = builder.stats();
    lib.save(path);
    return lib;
}

LivePointBuilderConfig
defaultBuilderConfig()
{
    LivePointBuilderConfig bc;
    const CoreConfig e8 = CoreConfig::eightWay();
    const CoreConfig s16 = CoreConfig::sixteenWay();
    bc.maxL1i = s16.mem.l1i;
    bc.maxL1d = s16.mem.l1d;
    bc.maxL2 = s16.mem.l2;
    bc.maxItlb = s16.mem.itlb;
    bc.maxDtlb = s16.mem.dtlb;
    bc.bpredConfigs = {e8.bpred, s16.bpred};
    return bc;
}

namespace
{

/** Read "<key>:  <n> kB" from /proc/self/status; 0 if absent. */
std::uint64_t
procStatusKb(const char *key)
{
    FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    const std::size_t keyLen = std::strlen(key);
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, key, keyLen) == 0 &&
            line[keyLen] == ':') {
            kb = std::strtoull(line + keyLen + 1, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kb;
}

} // namespace

std::uint64_t
currentRssBytes()
{
    return procStatusKb("VmRSS") * 1024;
}

std::uint64_t
peakRssBytes()
{
    if (const std::uint64_t kb = procStatusKb("VmHWM"))
        return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss); // bytes
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

std::string
fmtTime(double seconds)
{
    if (seconds < 0.001)
        return strfmt("%.2f ms", seconds * 1000.0);
    if (seconds < 120.0)
        return strfmt("%.2f s", seconds);
    if (seconds < 7200.0)
        return strfmt("%.1f m", seconds / 60.0);
    if (seconds < 48.0 * 3600.0)
        return strfmt("%.1f h", seconds / 3600.0);
    return strfmt("%.1f d", seconds / 86400.0);
}

std::string
fmtBytes(std::uint64_t bytes)
{
    if (bytes < 10ull * 1024)
        return strfmt("%llu B", static_cast<unsigned long long>(bytes));
    if (bytes < 10ull * 1024 * 1024)
        return strfmt("%.1f KB", static_cast<double>(bytes) / 1024.0);
    if (bytes < 10ull * 1024 * 1024 * 1024)
        return strfmt("%.1f MB",
                      static_cast<double>(bytes) / (1024.0 * 1024.0));
    return strfmt("%.1f GB",
                  static_cast<double>(bytes) /
                      (1024.0 * 1024.0 * 1024.0));
}

void
printHeader(const std::string &title)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("  %s\n", title.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

} // namespace lpbench
