/**
 * @file
 * Ablation — parallel live-point processing (Section 6: independent
 * live-points parallelise up to the sample size). Measures the replay
 * engine's throughput scaling with worker threads on one library, and
 * optionally emits machine-readable timings (LP_BENCH_JSON) so CI can
 * track the perf trajectory.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: parallel live-point processing (parser, "
                "8-way)");
    const PreparedBench b = prepareOne("parser", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design =
        SampleDesign::systematic(b.length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s);
    Rng rng(5, "parallel");
    lib.shuffle(rng);

    std::printf("%8s | %12s %10s | %10s %12s | %10s\n", "threads",
                "wall", "speedup", "points/s", "decoded/s", "CPI");
    double base = 0.0;
    std::string rows;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        LivePointRunOptions opt;
        opt.threads = threads;
        const LivePointRunResult r = runLivePoints(b.prog, lib, cfg, opt);
        if (threads == 1)
            base = r.wallSeconds;
        const double pps =
            static_cast<double>(r.processed) / r.wallSeconds;
        const double bps =
            static_cast<double>(r.bytesDecoded) / r.wallSeconds;
        std::printf("%8u | %12s %9.2fx | %10.1f %11s/s | %10.4f\n",
                    threads, fmtTime(r.wallSeconds).c_str(),
                    base / r.wallSeconds, pps,
                    fmtBytes(static_cast<std::uint64_t>(bps)).c_str(),
                    r.cpi());
        rows += strfmt("%s    {\"threads\": %u, \"wall_seconds\": "
                       "%.6f, \"speedup\": %.4f, \"points_per_sec\": "
                       "%.2f, \"bytes_decoded_per_sec\": %.1f}",
                       rows.empty() ? "" : ",\n", threads,
                       r.wallSeconds, base / r.wallSeconds, pps, bps);
    }
    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_parallel\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %zu,\n"
        "  \"compressed_bytes\": %llu,\n  \"results\": [\n%s\n  ]\n}\n",
        b.profile.name.c_str(), lib.size(),
        static_cast<unsigned long long>(lib.totalCompressedBytes()),
        rows.c_str());
    if (writeBenchJson(s, json))
        std::printf("\ntimings written to %s\n", s.jsonPath.c_str());
    std::printf("\nthe estimate is bit-identical at every thread count "
                "(block-synchronous folding); wall time scales with "
                "cores because live-points are mutually independent.\n");
    return 0;
}
