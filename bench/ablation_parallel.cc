/**
 * @file
 * Ablation — parallel live-point processing (Section 6: independent
 * live-points parallelise up to the sample size). Measures throughput
 * scaling with worker threads on one library.
 */

#include <cstdio>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: parallel live-point processing (parser, "
                "8-way)");
    const PreparedBench b = prepareOne("parser", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design =
        SampleDesign::systematic(b.length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s);
    Rng rng(5, "parallel");
    lib.shuffle(rng);

    std::printf("%8s | %12s %10s | %10s\n", "threads", "wall",
                "speedup", "CPI");
    double base = 0.0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        LivePointRunOptions opt;
        opt.threads = threads;
        const LivePointRunResult r = runLivePoints(b.prog, lib, cfg, opt);
        if (threads == 1)
            base = r.wallSeconds;
        std::printf("%8u | %12s %9.2fx | %10.4f\n", threads,
                    fmtTime(r.wallSeconds).c_str(),
                    base / r.wallSeconds, r.cpi());
    }
    std::printf("\nthe estimate is identical at every thread count "
                "(same sample); wall time scales with cores because "
                "live-points are mutually independent.\n");
    return 0;
}
