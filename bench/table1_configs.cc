/**
 * @file
 * Table 1 — microarchitectural configurations. Prints the two presets
 * so the reproduction's parameters can be checked against the paper.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace lp;

namespace
{

void
printConfig(const CoreConfig &c)
{
    std::printf("%-22s %s\n", "Configuration", c.name.c_str());
    std::printf("%-22s %u\n", "Width", c.width);
    std::printf("%-22s %u/%u\n", "RUU/LSQ size", c.ruuSize, c.lsqSize);
    std::printf("%-22s %lluKB %u-way L1I/D, %u ports, %u MSHRs\n",
                "L1 caches",
                static_cast<unsigned long long>(c.mem.l1d.sizeBytes /
                                                1024),
                c.mem.l1d.assoc, c.mem.l1dPorts, c.mem.mshrs);
    std::printf("%-22s %lluMB %u-way, %llu-entry store buffer\n", "L2",
                static_cast<unsigned long long>(c.mem.l2.sizeBytes /
                                                (1024 * 1024)),
                c.mem.l2.assoc,
                static_cast<unsigned long long>(
                    c.mem.storeBufferEntries));
    std::printf("%-22s %llu/%llu bytes\n", "L1/L2 line size",
                static_cast<unsigned long long>(c.mem.l1d.lineBytes),
                static_cast<unsigned long long>(c.mem.l2.lineBytes));
    std::printf("%-22s %llu/%llu/%llu cycles\n", "L1/L2/mem latency",
                static_cast<unsigned long long>(c.mem.l1Latency),
                static_cast<unsigned long long>(c.mem.l2Latency),
                static_cast<unsigned long long>(c.mem.memLatency));
    std::printf("%-22s %llu-entry ITLB / %llu-entry DTLB, %llu-cycle "
                "miss\n",
                "TLBs",
                static_cast<unsigned long long>(c.mem.itlb.numLines()),
                static_cast<unsigned long long>(c.mem.dtlb.numLines()),
                static_cast<unsigned long long>(c.mem.tlbMissLatency));
    std::printf("%-22s %u I-ALU, %u I-MUL/DIV, %u FP-ALU, %u "
                "FP-MUL/DIV\n",
                "Functional units", c.fus.intAlu, c.fus.intMulDiv,
                c.fus.fpAlu, c.fus.fpMulDiv);
    std::printf("%-22s combined %uK tables, %llu-cycle mispred., "
                "%u prediction(s)/cycle\n",
                "Branch predictor", c.bpred.tableEntries / 1024,
                static_cast<unsigned long long>(
                    c.bpred.mispredictPenalty),
                c.bpred.predictionsPerCycle);
    std::printf("%-22s %llu instructions\n", "Detailed warming",
                static_cast<unsigned long long>(c.detailedWarming));
    std::printf("\n");
}

} // namespace

int
main()
{
    lpbench::printHeader(
        "Table 1: microarchitectural configurations (paper p.3)");
    printConfig(CoreConfig::eightWay());
    printConfig(CoreConfig::sixteenWay());
    std::printf("Paper: 8-way 128/64 RUU/LSQ, 32KB 2-way L1, 1MB 4-way "
                "L2, comb. 2K bpred;\n"
                "       16-way 256/128, 64KB L1, 4MB 8-way L2, comb. 8K "
                "bpred. Matches above.\n");
    return 0;
}
