/**
 * @file
 * Scaling ablation (supports Table 3's O(B) vs O(sample) row and the
 * paper's core argument): hold the sample size fixed and grow the
 * benchmark length. SMARTS runtime grows linearly with B because
 * functional warming must traverse the whole benchmark; live-point
 * runtime is flat; live-point *creation* (a one-time cost amortised
 * over the library's reuses) grows linearly like SMARTS.
 */

#include <cstdio>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Scaling: runtime vs benchmark length at fixed sample "
                "size (gzip-1 profile, n=100, 8-way)");
    const CoreConfig cfg = CoreConfig::eightWay();
    const std::uint64_t n = 100;

    std::printf("%12s | %12s %12s %12s | %10s\n", "length B",
                "SMARTS", "live-points", "creation", "S/LP ratio");

    WorkloadProfile base = findProfile("gzip-1");
    for (double mult : {0.25, 0.5, 1.0, 2.0}) {
        WorkloadProfile p = base;
        p.targetInsts = static_cast<InstCount>(
            static_cast<double>(base.targetInsts) * s.scale * mult);
        if (p.targetInsts < 2'000'000)
            p.targetInsts = 2'000'000;
        p.name = strfmt("gzip-1@%.2gx", mult);
        PreparedBench b;
        b.profile = p;
        b.prog = generateProgram(p);
        b.length = measureProgramLength(b.prog);

        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);
        const SampledEstimate sm = runSmarts(b.prog, cfg, design);

        LivePointBuilderConfig bc = defaultBuilderConfig();
        BuilderStats bstats;
        const LivePointLibrary lib =
            cachedLibrary(b, design, bc, s, &bstats);
        const double creation = bstats.wallSeconds;
        LivePointRunOptions opt;
        const LivePointRunResult lp =
            runLivePoints(b.prog, lib, cfg, opt);

        std::printf("%11.1fM | %12s %12s %12s | %9.1fx\n",
                    static_cast<double>(b.length) / 1e6,
                    fmtTime(sm.wallSeconds).c_str(),
                    fmtTime(lp.wallSeconds).c_str(),
                    creation > 0 ? fmtTime(creation).c_str() : "cached",
                    sm.wallSeconds / lp.wallSeconds);
    }
    std::printf("\npaper claim: live-point turnaround is independent "
                "of benchmark length (O(sample)); SMARTS and creation "
                "are O(B). The S/LP ratio therefore grows linearly "
                "with B — extrapolating to SPEC2K lengths (~50e9 "
                "instructions) reproduces the paper's ~277x.\n");
    return 0;
}
