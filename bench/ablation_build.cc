/**
 * @file
 * Ablation — parallel live-point *creation* (the one-time cost the
 * paper amortises; Table 2 / Figure 8 economics). Measures build
 * throughput versus warming shards on one benchmark: instructions
 * warmed per second, points per second, compressed bytes per point,
 * and container save/load time. The single-shard pipelined build is
 * verified bit-identical to the sequential reference; sharded builds
 * trade a bounded (MRRL-licensed) warm-state bias at shard-leading
 * windows for near-linear creation speedup.
 *
 * With LP_BENCH_JSON set, emits BENCH_3-style machine-readable
 * timings so CI can track the creation-side trajectory alongside the
 * replay one.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: parallel live-point creation (gcc-2, "
                "8-way+16-way maxima)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design =
        SampleDesign::systematic(b.length, n, 1000, cfg.detailedWarming);
    const LivePointBuilderConfig bc = defaultBuilderConfig();

    // Sequential reference: the PR-2 build path (simulate, serialize,
    // and compress on one thread).
    LivePointBuilderConfig seqCfg = bc;
    seqCfg.buildThreads = 1;
    seqCfg.pipelineEncode = false;
    LivePointBuilder seqBuilder(seqCfg);
    const LivePointLibrary seqLib = seqBuilder.build(b.prog, design);
    const BuilderStats seqStats = seqBuilder.stats();

    std::printf("%8s | %12s %9s | %12s %10s | %11s\n", "shards",
                "wall", "speedup", "insts/s", "points/s", "bytes/pt");
    std::printf("%8s | %12s %9s | %12.3gM %10.1f | %11llu\n", "seq",
                fmtTime(seqStats.wallSeconds).c_str(), "1.00x",
                static_cast<double>(seqStats.instsSimulated) /
                    seqStats.wallSeconds / 1e6,
                static_cast<double>(n) / seqStats.wallSeconds,
                static_cast<unsigned long long>(
                    seqLib.totalCompressedBytes() / n));

    std::string rows;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        LivePointBuilderConfig cfg2 = bc;
        cfg2.buildThreads = shards;
        cfg2.shardPrefixInsts = s.buildPrefix;
        LivePointBuilder builder(cfg2);
        const LivePointLibrary lib = builder.build(b.prog, design);
        const BuilderStats st = builder.stats();
        const bool identical =
            shards == 1 && identicalRecords(lib, seqLib);
        // The regression gate CI relies on: the pipelined build must
        // reproduce the sequential library byte for byte.
        if (shards == 1 && !identical)
            panic("ablation_build: pipelined S=1 build is not "
                  "bit-identical to the sequential reference");
        const double pps = static_cast<double>(n) / st.wallSeconds;
        std::printf("%8u | %12s %8.2fx | %12.3gM %10.1f | %11llu%s\n",
                    shards, fmtTime(st.wallSeconds).c_str(),
                    seqStats.wallSeconds / st.wallSeconds,
                    static_cast<double>(st.instsSimulated) /
                        st.wallSeconds / 1e6,
                    pps, static_cast<unsigned long long>(
                             lib.totalCompressedBytes() / n),
                    shards == 1 ? "  (bit-identical)" : "");
        rows += strfmt(
            "%s    {\"shards\": %u, \"wall_seconds\": %.6f, "
            "\"speedup\": %.4f, \"build_insts_per_sec\": %.1f, "
            "\"build_points_per_sec\": %.2f, \"bytes_per_point\": "
            "%llu, \"prepass_insts\": %llu, \"identical_to_seq\": "
            "%s}",
            rows.empty() ? "" : ",\n", shards, st.wallSeconds,
            seqStats.wallSeconds / st.wallSeconds,
            static_cast<double>(st.instsSimulated) / st.wallSeconds,
            pps,
            static_cast<unsigned long long>(
                lib.totalCompressedBytes() / n),
            static_cast<unsigned long long>(st.prePassInsts),
            shards == 1 ? (identical ? "true" : "false") : "null");
    }

    // Container I/O: streaming LPLIB3 save, zero-copy load.
    const std::string path = s.cacheDir + "/ablation-build-io.lpl";
    const auto tSave = std::chrono::steady_clock::now();
    seqLib.save(path);
    const double saveMs = msSince(tSave);
    const auto tLoad = std::chrono::steady_clock::now();
    const LivePointLibrary loaded = LivePointLibrary::load(path);
    const double loadMs = msSince(tLoad);
    const std::uint64_t fileBytes = std::filesystem::file_size(path);
    std::filesystem::remove(path);
    if (loaded.size() != seqLib.size() ||
        loaded.totalCompressedBytes() != seqLib.totalCompressedBytes())
        panic("ablation_build: container round-trip mismatch");
    std::printf("\ncontainer: %s on disk, save %.2f ms, load %.2f ms "
                "(LPLIB3, streamed write / zero-copy read)\n",
                fmtBytes(fileBytes).c_str(), saveMs, loadMs);

    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_build\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %llu,\n"
        "  \"seq_wall_seconds\": %.6f,\n"
        "  \"seq_build_points_per_sec\": %.2f,\n"
        "  \"library_file_bytes\": %llu,\n"
        "  \"save_ms\": %.3f,\n  \"load_ms\": %.3f,\n"
        "  \"results\": [\n%s\n  ]\n}\n",
        b.profile.name.c_str(), static_cast<unsigned long long>(n),
        seqStats.wallSeconds,
        static_cast<double>(n) / seqStats.wallSeconds,
        static_cast<unsigned long long>(fileBytes), saveMs, loadMs,
        rows.c_str());
    if (writeBenchJson(s, json))
        std::printf("timings written to %s\n", s.jsonPath.c_str());

    std::printf("\nthe S=1 pipelined build is bit-identical to the "
                "sequential reference (encoding moves off the "
                "simulating thread); S>1 shards the warming pass over "
                "the pool with MRRL-bounded prefixes, so creation "
                "scales with cores the same way replay does.\n");
    return 0;
}
