/**
 * @file
 * Shared infrastructure for the paper-reproduction bench binaries:
 * benchmark-suite selection and scaling, live-point library caching on
 * disk, pilot-variance caching, and table formatting.
 *
 * Environment knobs (all optional):
 *   LP_BENCH_FULL=1    run the full 24-benchmark suite at full length
 *                      (default: an 8-benchmark subset at 1/4 length)
 *   LP_BENCH_SCALE=f   override the benchmark-length scale factor
 *   LP_BENCH_MAXN=n    override the sample-size cap per benchmark
 *   LP_BENCH_CACHE=dir live-point/pilot cache directory
 *                      (default ./lp-cache)
 *   LP_BENCH_JSON=path write machine-readable timings to this file
 *                      (benches that support it; CI uploads them to
 *                      track the perf trajectory)
 *   LP_BENCH_BUILD_THREADS=n  warming shards for library creation
 *                      (default 1: exact full warming, encode
 *                      pipelined; n>1 shards the sample)
 *   LP_BENCH_BUILD_PREFIX=n   fixed per-shard warming prefix in
 *                      instructions (default 0: MRRL-derived)
 *   LP_BENCH_RESIDENT_BUDGET=n  resident-budget streaming replay:
 *                      bound the in-flight decode window to n bytes
 *                      (benches that replay honor it; 0 = off)
 *   LP_NO_MMAP=1       force the owned-buffer storage backend (read
 *                      by the io layer itself; affects every binary)
 *   LP_HUGEPAGES=1     request MADV_HUGEPAGE on mmap'ed library
 *                      backings (read by the io layer; benches that
 *                      replay mapped libraries report whether the
 *                      hint was applied)
 *   LP_BENCH_ECON_JSON=path  checkpoint-economics numbers from
 *                      ablation_storage (CI publishes BENCH_10.json)
 *   LP_BENCH_BASELINE=path  committed baseline JSON for the benches
 *                      that gate (ablation_hotpath: BENCH_6,
 *                      ablation_storage: BENCH_10); "none" skips
 */

#ifndef LP_BENCH_BENCH_UTIL_HH
#define LP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hh"
#include "core/library.hh"
#include "core/runners.hh"
#include "uarch/config.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace lpbench
{

/** Resolved bench-wide settings. */
struct BenchSettings
{
    bool full = false;
    double scale = 0.25;
    std::uint64_t maxSampleSize = 300;
    std::string cacheDir = "lp-cache";
    std::string jsonPath;         //!< empty: no JSON output
    unsigned buildThreads = 1;    //!< warming shards for creation
    std::uint64_t buildPrefix = 0; //!< fixed shard prefix; 0 = MRRL
    std::uint64_t residentBudget = 0; //!< streaming replay budget; 0 = off
};

/** Read settings from the environment. */
BenchSettings settings();

/** One prepared benchmark: program + measured length. */
struct PreparedBench
{
    lp::WorkloadProfile profile;
    lp::Program prog;
    lp::InstCount length = 0;
};

/** The benchmark names used in quick (subset) mode. */
std::vector<std::string> quickSet();

/**
 * Prepare the bench suite: quick subset or full suite, with lengths
 * scaled by settings().scale.
 */
std::vector<PreparedBench> prepareSuite(const BenchSettings &s);

/** Prepare one named benchmark at the configured scale. */
PreparedBench prepareOne(const std::string &name,
                         const BenchSettings &s);

/**
 * Pilot CPI coefficient-of-variation for (benchmark, config), cached
 * in the cache directory (one SMARTS pass with 40 windows).
 */
double pilotCov(const PreparedBench &b, const lp::CoreConfig &cfg,
                const BenchSettings &s);

/** Sample size for a benchmark: required n, capped and fitted. */
std::uint64_t sampleSize(const PreparedBench &b,
                         const lp::CoreConfig &cfg,
                         const BenchSettings &s,
                         lp::ConfidenceSpec spec = {});

/**
 * Build (or load from cache) a live-point library for the benchmark
 * with the given design and builder configuration, applying the
 * settings' build-parallelism knobs. When the library is built, the
 * builder's statistics (wall time, warmed instructions, shards) are
 * written to @p stats; when it is loaded from cache, @p stats is
 * zeroed (wallSeconds 0 marks a cache hit).
 */
lp::LivePointLibrary cachedLibrary(const PreparedBench &b,
                                   const lp::SampleDesign &design,
                                   const lp::LivePointBuilderConfig &bc,
                                   const BenchSettings &s,
                                   lp::BuilderStats *stats = nullptr);

/** Default builder config covering both Table 1 configurations. */
lp::LivePointBuilderConfig defaultBuilderConfig();

/**
 * Write @p json to settings().jsonPath if LP_BENCH_JSON is set;
 * returns true when the file was fully written, false (with a
 * warning on stderr, never a throw) otherwise.
 */
bool writeBenchJson(const BenchSettings &s, const std::string &json);

/**
 * Current resident-set size of this process in bytes (Linux:
 * /proc/self/status VmRSS), or 0 where unavailable.
 */
std::uint64_t currentRssBytes();

/**
 * Lifetime peak resident-set size of this process in bytes (Linux:
 * VmHWM, else getrusage ru_maxrss), or 0 where unavailable. Note the
 * peak is monotonic over the process lifetime — phase-over-phase
 * deltas need currentRssBytes().
 */
std::uint64_t peakRssBytes();

/** Format seconds as the paper does (s / m / h / d). */
std::string fmtTime(double seconds);

/** Format a byte count as KB/MB/GB with one decimal. */
std::string fmtBytes(std::uint64_t bytes);

/** Print a horizontal rule + centered title. */
void printHeader(const std::string &title);

} // namespace lpbench

#endif // LP_BENCH_BENCH_UTIL_HH
