/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot components:
 * the codecs (DER + zlib) that bound live-point load time, the cache
 * and branch-predictor models that bound warming speed, the functional
 * simulator, and the detailed core (the floor of all sampled
 * simulation, per the paper's conclusion: "live-points reduce
 * simulation time to the limit imposed by detailed simulation").
 */

#include <benchmark/benchmark.h>

#include "bpred/bpred.hh"
#include "cache/cache.hh"
#include "cache/warmstate.hh"
#include "codec/der.hh"
#include "codec/zip.hh"
#include "func/functional.hh"
#include "func/warming.hh"
#include "mem/memport.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace
{

using namespace lp;

void
BM_DerEncode(benchmark::State &state)
{
    for (auto _ : state) {
        DerWriter w;
        w.beginSequence();
        for (int i = 0; i < 1000; ++i)
            w.putUint(0x123456789aull + static_cast<std::uint64_t>(i));
        w.endSequence();
        benchmark::DoNotOptimize(w.finish().size());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DerEncode);

void
BM_DerDecode(benchmark::State &state)
{
    DerWriter w;
    w.beginSequence();
    for (int i = 0; i < 1000; ++i)
        w.putUint(0x123456789aull + static_cast<std::uint64_t>(i));
    w.endSequence();
    const Blob data = w.finish();
    for (auto _ : state) {
        DerReader top(data);
        DerReader seq = top.getSequence();
        std::uint64_t sum = 0;
        while (!seq.atEnd())
            sum += seq.getUint();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DerDecode);

void
BM_ZipCompress(benchmark::State &state)
{
    Rng rng(1);
    Blob data(256 * 1024);
    // Semi-compressible content (like live-point tag payloads).
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>((i >> 4) ^ (rng.next() & 3));
    for (auto _ : state)
        benchmark::DoNotOptimize(zipCompress(data).size());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_ZipCompress);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheModel cache({1024 * 1024, 4, 128}, "L2");
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(16 << 20), false).hit);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_CsrReconstruct(benchmark::State &state)
{
    CacheModel maxCache({4 * 1024 * 1024, 8, 128}, "max");
    Rng rng(9);
    for (int i = 0; i < 200000; ++i)
        maxCache.access(rng.nextBounded(64 << 20), rng.nextBool(0.3));
    const CacheSetRecord csr(maxCache);
    CacheModel target({1024 * 1024, 4, 128}, "tgt");
    for (auto _ : state)
        csr.reconstruct(target);
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(csr.entryCount()));
}
BENCHMARK(BM_CsrReconstruct);

void
BM_BpredWarm(benchmark::State &state)
{
    BranchPredictor bp(BpredConfig{});
    Rng rng(11);
    Instruction br;
    br.op = Opcode::Bne;
    br.target = 10;
    for (auto _ : state) {
        const PcIndex pc = rng.nextBounded(4096);
        bp.warmBranch(pc, br, rng.nextBool(0.6), 10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BpredWarm);

void
BM_FunctionalSim(benchmark::State &state)
{
    const Program prog = generateProgram(tinyProfile(10'000'000, 1));
    auto sim = std::make_unique<FunctionalSimulator>(prog);
    for (auto _ : state) {
        if (sim->finished()) {
            state.PauseTiming();
            sim = std::make_unique<FunctionalSimulator>(prog);
            state.ResumeTiming();
        }
        sim->run(10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FunctionalSim);

void
BM_FunctionalWarming(benchmark::State &state)
{
    const Program prog = generateProgram(tinyProfile(10'000'000, 2));
    const CoreConfig cfg = CoreConfig::eightWay();
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    auto sim = std::make_unique<FunctionalSimulator>(prog);
    auto fw = std::make_unique<FunctionalWarming>(*sim);
    fw->attachHierarchy(&hier);
    fw->attachPredictor(&bp);
    for (auto _ : state) {
        if (sim->finished()) {
            state.PauseTiming();
            sim = std::make_unique<FunctionalSimulator>(prog);
            fw = std::make_unique<FunctionalWarming>(*sim);
            fw->attachHierarchy(&hier);
            fw->attachPredictor(&bp);
            state.ResumeTiming();
        }
        fw->warm(10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FunctionalWarming);

void
BM_DetailedCore(benchmark::State &state)
{
    const Program prog = generateProgram(tinyProfile(10'000'000, 3));
    const CoreConfig cfg = CoreConfig::eightWay();
    SparseMemory mem;
    mem.writeBytes(prog.dataBase, prog.dataInit.data(),
                   prog.dataInit.size());
    DirectMemPort port(mem);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    CoreBindings b;
    b.prog = &prog;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    auto core = std::make_unique<OoOCore>(cfg, b);
    for (auto _ : state) {
        if (core->programEnded()) {
            state.PauseTiming();
            core = std::make_unique<OoOCore>(cfg, b);
            state.ResumeTiming();
        }
        core->commitRun(5000);
    }
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_DetailedCore);

} // namespace

BENCHMARK_MAIN();
