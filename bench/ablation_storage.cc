/**
 * @file
 * Ablation — pluggable library storage. Measures, for each storage
 * backend (owned-buffer slurp vs zero-copy mmap), container load time
 * and replay throughput, plus process RSS; then gates the
 * resident-budget streaming mode: a replay of a library whose
 * in-flight window is >= 4x the configured budget must finish with
 * the engine's peak resident window under the budget — and every
 * backend and budget setting must produce bit-identical estimates
 * (the storage layer may never change results, only where bytes
 * live). Also exercises the sharded fleet store: lazy open, shard
 * replay identity, and resident accounting.
 *
 * The checkpoint-economics section builds the same design three ways
 * — plain, shared-dictionary, and dictionary+delta — and measures
 * bytes/point on disk, stored-order decode MB/s, and replays/s for
 * each, verifying every variant replays bit-identically (with and
 * without a resident budget). The dictionary+delta variant must cut
 * bytes/point by >= 2x (hard floor), and the machine-normalized
 * metrics (bytes_per_point_cut, decode_norm, replay_norm) gate
 * against a committed baseline in the BENCH_6 style:
 *
 *   LP_BENCH_ECON_JSON=path write the checkpoint-economics numbers
 *                           (CI publishes them as BENCH_10.json)
 *   LP_BENCH_BASELINE=path  baseline JSON (default
 *                           bench/BENCH_10.baseline.json); "none"
 *                           skips the gate
 *   LP_HUGEPAGES=1          request MADV_HUGEPAGE on mmap backings;
 *                           whether it was applied is reported
 *
 * With LP_BENCH_JSON set, emits BENCH_5-style machine-readable
 * numbers (load ms, replays/s, peak RSS, budget gate) so CI tracks
 * the storage trajectory. LP_BENCH_RESIDENT_BUDGET overrides the
 * default budget (library window / 4); the 4x gate is enforced only
 * for the default.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/library_set.hh"
#include "core/runners.hh"
#include "io/mapped_file.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Estimates must match to the bit, not to a tolerance. */
bool
sameResult(const LivePointRunResult &a, const LivePointRunResult &b)
{
    return a.processed == b.processed && a.cpi() == b.cpi() &&
           a.finalSnapshot.relHalfWidth ==
               b.finalSnapshot.relHalfWidth &&
           a.unavailableLoads == b.unavailableLoads;
}

/**
 * Stored-order decode throughput (MB of raw bytes per second) through
 * the replay-facing decodeInto path — the chain cache makes this the
 * pattern a streaming replay pays. Best of repeated passes.
 */
double
decodePassMBps(const LivePointLibrary &lib)
{
    std::uint64_t rawBytes = 0;
    for (std::size_t i = 0; i < lib.size(); ++i)
        rawBytes += lib.rawSize(i);
    LivePointDecodeScratch scratch;
    LivePoint pt;
    double best = 0.0;
    double elapsed = 0.0;
    int passes = 0;
    while (elapsed < 0.25 || passes < 3) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lib.size(); ++i)
            lib.decodeInto(i, scratch, pt);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        best = std::max(best, static_cast<double>(rawBytes) / dt / 1e6);
        elapsed += dt;
        ++passes;
    }
    return best;
}

/** Best replays/s over a few runs (damps scheduler noise). */
double
bestReplaysPerSec(const Program &prog, const LivePointLibrary &lib,
                  const CoreConfig &cfg, const LivePointRunOptions &opt,
                  const LivePointRunResult &ref)
{
    double best = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        const LivePointRunResult r = runLivePoints(prog, lib, cfg, opt);
        if (!sameResult(r, ref))
            panic("ablation_storage: encoded-library replay changed "
                  "the estimate");
        best = std::max(best, static_cast<double>(r.processed) /
                                  r.wallSeconds);
    }
    return best;
}

/** Pull `"key": <number>` out of a JSON blob; nan when absent. */
double
jsonNumber(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return std::nan("");
    std::size_t p = at + needle.size();
    while (p < json.size() && (json[p] == ':' || json[p] == ' '))
        ++p;
    return std::strtod(json.c_str() + p, nullptr);
}

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: pluggable library storage (gcc-2)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfg.detailedWarming);
    const LivePointLibrary built =
        cachedLibrary(b, design, defaultBuilderConfig(), s);

    const std::string path = s.cacheDir + "/ablation-storage.lpl";
    built.save(path);
    const std::uint64_t fileBytes = std::filesystem::file_size(path);

    // All runs share one fixed block size so their fold trees — and
    // therefore their bits — are comparable.
    LivePointRunOptions ropt;
    ropt.blockSize = 8;
    ropt.shuffleSeed = 7;

    // The reference: the owned-buffer backend (the PR-3 behaviour).
    const LivePointLibrary refLib =
        LivePointLibrary::load(path, StorageBackend::buffer);
    const LivePointRunResult ref =
        runLivePoints(b.prog, refLib, cfg, ropt);

    struct Backend
    {
        const char *name;
        StorageBackend backend;
    };
    std::vector<Backend> backends{{"owned-buffer",
                                   StorageBackend::buffer}};
    if (mmapSupported() && !mmapDisabledByEnv())
        backends.push_back({"mmap", StorageBackend::mapped});

    std::printf("library: %llu points, %s on disk\n\n",
                static_cast<unsigned long long>(n),
                fmtBytes(fileBytes).c_str());
    std::printf("%14s | %9s | %10s | %10s | %10s\n", "backend",
                "load ms", "replays/s", "pinned", "peak RSS");

    std::string backendRows;
    for (const Backend &bk : backends) {
        const auto tLoad = std::chrono::steady_clock::now();
        const LivePointLibrary lib =
            LivePointLibrary::load(path, bk.backend);
        const double loadMs = msSince(tLoad);
        const LivePointRunResult r =
            runLivePoints(b.prog, lib, cfg, ropt);
        if (!sameResult(r, ref))
            panic("ablation_storage: backend '%s' changed the "
                  "estimate",
                  bk.name);
        const double rps =
            static_cast<double>(r.processed) / r.wallSeconds;
        std::printf("%14s | %9.3f | %10.1f | %10s | %10s\n", bk.name,
                    loadMs, rps, fmtBytes(lib.pinnedBytes()).c_str(),
                    fmtBytes(peakRssBytes()).c_str());
        backendRows += strfmt(
            "%s    {\"backend\": \"%s\", \"load_ms\": %.3f, "
            "\"replays_per_sec\": %.2f, \"pinned_bytes\": %llu, "
            "\"current_rss_bytes\": %llu, \"peak_rss_bytes\": %llu, "
            "\"identical\": true}",
            backendRows.empty() ? "" : ",\n", bk.name, loadMs, rps,
            static_cast<unsigned long long>(lib.pinnedBytes()),
            static_cast<unsigned long long>(currentRssBytes()),
            static_cast<unsigned long long>(peakRssBytes()));
    }

    // Resident-budget streaming: the replay window (compressed +
    // decoded bytes in flight) must stay under the budget while the
    // whole library streams through — with the default budget sized
    // so the library is >= 4x it.
    std::uint64_t windowBytes = 0;
    for (std::size_t i = 0; i < refLib.size(); ++i)
        windowBytes += refLib.compressedSize(i) + refLib.rawSize(i);
    const bool budgetFromEnv = s.residentBudget != 0;
    const std::uint64_t budget =
        budgetFromEnv ? s.residentBudget : windowBytes / 4;

    const LivePointLibrary streamLib = LivePointLibrary::load(path);
    LivePointRunOptions bopt = ropt;
    bopt.residentBudgetBytes = budget;
    const LivePointRunResult br =
        runLivePoints(b.prog, streamLib, cfg, bopt);
    if (!sameResult(br, ref))
        panic("ablation_storage: resident-budget replay changed the "
              "estimate");
    bopt.threads = 2;
    if (!sameResult(runLivePoints(b.prog, streamLib, cfg, bopt), ref))
        panic("ablation_storage: resident-budget replay is not "
              "thread-count invariant");
    const bool underBudget = br.peakResidentBytes <= budget;
    // The acceptance gate: with the default (window/4) budget the
    // peak in-flight bytes must stay under it.
    if (!budgetFromEnv && !underBudget)
        panic("ablation_storage: peak resident %llu exceeds budget "
              "%llu",
              static_cast<unsigned long long>(br.peakResidentBytes),
              static_cast<unsigned long long>(budget));
    std::printf("\nresident budget: %s window streamed through %s "
                "budget, peak %s (%.1f%% of budget)%s\n",
                fmtBytes(windowBytes).c_str(),
                fmtBytes(budget).c_str(),
                fmtBytes(br.peakResidentBytes).c_str(),
                100.0 * static_cast<double>(br.peakResidentBytes) /
                    static_cast<double>(budget ? budget : 1),
                underBudget ? "" : "  ** OVER BUDGET **");

    // The sharded fleet store: open lazily, replay one shard, leave
    // the other untouched.
    const std::string setDir = s.cacheDir + "/ablation-storage-set";
    std::filesystem::remove_all(setDir);
    {
        LibrarySetWriter writer(setDir);
        writer.addShard("gcc-2", built);
        writer.addShard("gcc-2-alt", built);
    }
    const LibrarySet set = LibrarySet::open(setDir);
    const bool lazyOk = set.loadedCount() == 0;
    const LivePointRunResult sr =
        runLivePoints(b.prog, set.shard(0), cfg, ropt);
    if (!sameResult(sr, ref))
        panic("ablation_storage: fleet-store shard replay changed "
              "the estimate");
    const bool oneShard = set.loadedCount() == 1;
    if (!lazyOk || !oneShard)
        panic("ablation_storage: fleet store opened shards eagerly");
    std::printf("fleet store: %zu shards, %zu opened for a one-shard "
                "replay (%s mapped, %s pinned)\n",
                set.size(), set.loadedCount(),
                fmtBytes(set.mappedBytes()).c_str(),
                fmtBytes(set.pinnedBytes()).c_str());

    // --- Checkpoint economics: shared dictionary + delta chains ----
    // The same design built three ways. Encoding may only change
    // where bytes go, never a decoded bit — every variant must
    // reproduce the reference estimate exactly.
    std::printf("\ncheckpoint economics (same design, three "
                "encodings):\n");
    std::printf("%14s | %10s | %11s | %10s | %10s\n", "encoding",
                "file B/pt", "decode MB/s", "replays/s", "delta recs");

    LivePointBuilderConfig bcDict = defaultBuilderConfig();
    bcDict.sharedDictionary = true;
    LivePointBuilderConfig bcDelta = bcDict;
    bcDelta.deltaEncode = true;
    const LivePointLibrary dictLib = cachedLibrary(b, design, bcDict, s);
    const LivePointLibrary deltaLib =
        cachedLibrary(b, design, bcDelta, s);

    struct Variant
    {
        const char *name;
        const LivePointLibrary *lib;
        double bytesPerPoint = 0.0;
        double decodeMbps = 0.0;
        double rps = 0.0;
    };
    Variant variants[] = {{"plain", &refLib},
                          {"dict", &dictLib},
                          {"dict+delta", &deltaLib}};
    for (Variant &v : variants) {
        const std::string vpath =
            s.cacheDir + "/ablation-storage-econ.lpl";
        v.lib->save(vpath);
        v.bytesPerPoint =
            static_cast<double>(std::filesystem::file_size(vpath)) /
            static_cast<double>(n);
        v.decodeMbps = decodePassMBps(*v.lib);
        v.rps = bestReplaysPerSec(b.prog, *v.lib, cfg, ropt, ref);
        std::printf("%14s | %10.0f | %11.1f | %10.1f | %10zu\n",
                    v.name, v.bytesPerPoint, v.decodeMbps, v.rps,
                    v.lib->deltaCount());
        std::filesystem::remove(vpath);
    }

    // Budgeted, loaded replay of the delta variant: chains charge
    // their whole length, and the bits still match.
    bool econHugepages = false;
    {
        const std::string dpath =
            s.cacheDir + "/ablation-storage-delta.lpl";
        deltaLib.save(dpath);
        const LivePointLibrary loaded = LivePointLibrary::load(dpath);
        econHugepages = loaded.hugepagesApplied();
        std::uint64_t charge = 0;
        for (std::size_t i = 0; i < loaded.size(); ++i)
            charge += loaded.chargeBytes(i);
        LivePointRunOptions dopt = ropt;
        dopt.residentBudgetBytes = charge / 4;
        if (!sameResult(runLivePoints(b.prog, loaded, cfg, dopt), ref))
            panic("ablation_storage: budgeted delta replay changed "
                  "the estimate");
        dopt.threads = 2;
        if (!sameResult(runLivePoints(b.prog, loaded, cfg, dopt), ref))
            panic("ablation_storage: budgeted delta replay is not "
                  "thread-count invariant");
        std::filesystem::remove(dpath);
    }

    const double bppCut =
        variants[0].bytesPerPoint / variants[2].bytesPerPoint;
    const double decodeNorm =
        variants[2].decodeMbps / variants[0].decodeMbps;
    const double replayNorm = variants[2].rps / variants[0].rps;
    std::printf("dictionary %s, bytes/point cut %.2fx, decode norm "
                "%.2f, replay norm %.2f\n",
                fmtBytes(deltaLib.dictionary().size()).c_str(), bppCut,
                decodeNorm, replayNorm);
    std::printf("hugepages: requested %s, applied %s (mmap backing)\n",
                hugepagesRequestedByEnv() ? "yes" : "no",
                econHugepages ? "yes" : "no");

    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_storage\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %llu,\n"
        "  \"library_file_bytes\": %llu,\n"
        "  \"window_bytes\": %llu,\n"
        "  \"backends\": [\n%s\n  ],\n"
        "  \"budget\": {\"budget_bytes\": %llu, \"from_env\": %s, "
        "\"peak_resident_bytes\": %llu, \"window_to_budget\": %.2f, "
        "\"replays_per_sec\": %.2f, \"under_budget\": %s, "
        "\"identical\": true},\n"
        "  \"fleet\": {\"shards\": %zu, \"opened\": %zu, "
        "\"mapped_bytes\": %llu, \"pinned_bytes\": %llu, "
        "\"identical\": true}\n}\n",
        b.profile.name.c_str(), static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(fileBytes),
        static_cast<unsigned long long>(windowBytes),
        backendRows.c_str(), static_cast<unsigned long long>(budget),
        budgetFromEnv ? "true" : "false",
        static_cast<unsigned long long>(br.peakResidentBytes),
        budget ? static_cast<double>(windowBytes) /
                     static_cast<double>(budget)
               : 0.0,
        static_cast<double>(br.processed) / br.wallSeconds,
        underBudget ? "true" : "false", set.size(), set.loadedCount(),
        static_cast<unsigned long long>(set.mappedBytes()),
        static_cast<unsigned long long>(set.pinnedBytes()));
    if (writeBenchJson(s, json))
        std::printf("timings written to %s\n", s.jsonPath.c_str());

    // BENCH_10: the checkpoint-economics trajectory numbers.
    const std::string econJson = strfmt(
        "{\n  \"bench\": \"ablation_storage_econ\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %llu,\n"
        "  \"bytes_per_point_plain\": %.1f,\n"
        "  \"bytes_per_point_dict\": %.1f,\n"
        "  \"bytes_per_point_delta\": %.1f,\n"
        "  \"bytes_per_point_cut\": %.3f,\n"
        "  \"dictionary_bytes\": %zu,\n"
        "  \"delta_records\": %zu,\n"
        "  \"decode_mbps_plain\": %.2f,\n"
        "  \"decode_mbps_delta\": %.2f,\n"
        "  \"decode_norm\": %.4f,\n"
        "  \"replays_per_sec_plain\": %.2f,\n"
        "  \"replays_per_sec_delta\": %.2f,\n"
        "  \"replay_norm\": %.4f,\n"
        "  \"hugepages_requested\": %s,\n"
        "  \"hugepages_applied\": %s,\n"
        "  \"identical\": true\n}\n",
        b.profile.name.c_str(), static_cast<unsigned long long>(n),
        variants[0].bytesPerPoint, variants[1].bytesPerPoint,
        variants[2].bytesPerPoint, bppCut,
        deltaLib.dictionary().size(), deltaLib.deltaCount(),
        variants[0].decodeMbps, variants[2].decodeMbps, decodeNorm,
        variants[0].rps, variants[2].rps, replayNorm,
        hugepagesRequestedByEnv() ? "true" : "false",
        econHugepages ? "true" : "false");
    if (const char *econPath = std::getenv("LP_BENCH_ECON_JSON")) {
        BenchSettings es = s;
        es.jsonPath = econPath;
        if (writeBenchJson(es, econJson))
            std::printf("economics written to %s\n", econPath);
    }

    std::filesystem::remove_all(setDir);
    std::filesystem::remove(path);

    // --- Regression gates -------------------------------------------
    // Hard floor first: the checkpoint-economics acceptance target.
    if (bppCut < 2.0)
        panic("ablation_storage: dictionary+delta bytes/point cut "
              "%.2fx is below the 2x floor",
              bppCut);

    const char *baseEnv = std::getenv("LP_BENCH_BASELINE");
    const std::string basePath =
        baseEnv ? baseEnv : "bench/BENCH_10.baseline.json";
    if (basePath != "none") {
        const std::string baseline = readFile(basePath);
        if (baseline.empty()) {
            std::printf("baseline gate skipped: '%s' not found (set "
                        "LP_BENCH_BASELINE, or run from the repo "
                        "root)\n",
                        basePath.c_str());
        } else {
            // Only machine-normalized ratios gate — absolute MB/s
            // and replays/s track runner speed, the ratios track the
            // code.
            struct Gate
            {
                const char *key;
                double now;
            };
            const Gate gates[] = {
                {"bytes_per_point_cut", bppCut},
                {"decode_norm", decodeNorm},
                {"replay_norm", replayNorm},
            };
            bool failed = false;
            for (const Gate &g : gates) {
                const double base = jsonNumber(baseline, g.key);
                if (std::isnan(base) || base <= 0) {
                    std::printf("baseline gate: '%s' missing from "
                                "%s, skipped\n",
                                g.key, basePath.c_str());
                    continue;
                }
                const double rel = g.now / base;
                const bool ok = rel >= 0.9;
                std::printf("baseline gate: %-20s %8.3f vs %8.3f "
                            "baseline (%+.1f%%)%s\n",
                            g.key, g.now, base, (rel - 1.0) * 100.0,
                            ok ? "" : "  ** REGRESSION **");
                failed = failed || !ok;
            }
            if (failed) {
                std::fprintf(stderr,
                             "ablation_storage: >10%% regression "
                             "against %s\n",
                             basePath.c_str());
                return 1;
            }
        }
    } else {
        std::printf("baseline gate skipped (LP_BENCH_BASELINE=none)\n");
    }

    std::printf("\nevery backend, budget setting, and encoding "
                "variant reproduced the owned-buffer estimate to the "
                "bit; only where (and how many) bytes live differs.\n");
    return 0;
}
