/**
 * @file
 * Ablation — pluggable library storage. Measures, for each storage
 * backend (owned-buffer slurp vs zero-copy mmap), container load time
 * and replay throughput, plus process RSS; then gates the
 * resident-budget streaming mode: a replay of a library whose
 * in-flight window is >= 4x the configured budget must finish with
 * the engine's peak resident window under the budget — and every
 * backend and budget setting must produce bit-identical estimates
 * (the storage layer may never change results, only where bytes
 * live). Also exercises the sharded fleet store: lazy open, shard
 * replay identity, and resident accounting.
 *
 * With LP_BENCH_JSON set, emits BENCH_5-style machine-readable
 * numbers (load ms, replays/s, peak RSS, budget gate) so CI tracks
 * the storage trajectory. LP_BENCH_RESIDENT_BUDGET overrides the
 * default budget (library window / 4); the 4x gate is enforced only
 * for the default.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/library_set.hh"
#include "core/runners.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Estimates must match to the bit, not to a tolerance. */
bool
sameResult(const LivePointRunResult &a, const LivePointRunResult &b)
{
    return a.processed == b.processed && a.cpi() == b.cpi() &&
           a.finalSnapshot.relHalfWidth ==
               b.finalSnapshot.relHalfWidth &&
           a.unavailableLoads == b.unavailableLoads;
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: pluggable library storage (gcc-2)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig cfg = CoreConfig::eightWay();

    const std::uint64_t n = sampleSize(b, cfg, s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfg.detailedWarming);
    const LivePointLibrary built =
        cachedLibrary(b, design, defaultBuilderConfig(), s);

    const std::string path = s.cacheDir + "/ablation-storage.lpl";
    built.save(path);
    const std::uint64_t fileBytes = std::filesystem::file_size(path);

    // All runs share one fixed block size so their fold trees — and
    // therefore their bits — are comparable.
    LivePointRunOptions ropt;
    ropt.blockSize = 8;
    ropt.shuffleSeed = 7;

    // The reference: the owned-buffer backend (the PR-3 behaviour).
    const LivePointLibrary refLib =
        LivePointLibrary::load(path, StorageBackend::buffer);
    const LivePointRunResult ref =
        runLivePoints(b.prog, refLib, cfg, ropt);

    struct Backend
    {
        const char *name;
        StorageBackend backend;
    };
    std::vector<Backend> backends{{"owned-buffer",
                                   StorageBackend::buffer}};
    if (mmapSupported() && !mmapDisabledByEnv())
        backends.push_back({"mmap", StorageBackend::mapped});

    std::printf("library: %llu points, %s on disk\n\n",
                static_cast<unsigned long long>(n),
                fmtBytes(fileBytes).c_str());
    std::printf("%14s | %9s | %10s | %10s | %10s\n", "backend",
                "load ms", "replays/s", "pinned", "peak RSS");

    std::string backendRows;
    for (const Backend &bk : backends) {
        const auto tLoad = std::chrono::steady_clock::now();
        const LivePointLibrary lib =
            LivePointLibrary::load(path, bk.backend);
        const double loadMs = msSince(tLoad);
        const LivePointRunResult r =
            runLivePoints(b.prog, lib, cfg, ropt);
        if (!sameResult(r, ref))
            panic("ablation_storage: backend '%s' changed the "
                  "estimate",
                  bk.name);
        const double rps =
            static_cast<double>(r.processed) / r.wallSeconds;
        std::printf("%14s | %9.3f | %10.1f | %10s | %10s\n", bk.name,
                    loadMs, rps, fmtBytes(lib.pinnedBytes()).c_str(),
                    fmtBytes(peakRssBytes()).c_str());
        backendRows += strfmt(
            "%s    {\"backend\": \"%s\", \"load_ms\": %.3f, "
            "\"replays_per_sec\": %.2f, \"pinned_bytes\": %llu, "
            "\"current_rss_bytes\": %llu, \"peak_rss_bytes\": %llu, "
            "\"identical\": true}",
            backendRows.empty() ? "" : ",\n", bk.name, loadMs, rps,
            static_cast<unsigned long long>(lib.pinnedBytes()),
            static_cast<unsigned long long>(currentRssBytes()),
            static_cast<unsigned long long>(peakRssBytes()));
    }

    // Resident-budget streaming: the replay window (compressed +
    // decoded bytes in flight) must stay under the budget while the
    // whole library streams through — with the default budget sized
    // so the library is >= 4x it.
    std::uint64_t windowBytes = 0;
    for (std::size_t i = 0; i < refLib.size(); ++i)
        windowBytes += refLib.compressedSize(i) + refLib.rawSize(i);
    const bool budgetFromEnv = s.residentBudget != 0;
    const std::uint64_t budget =
        budgetFromEnv ? s.residentBudget : windowBytes / 4;

    const LivePointLibrary streamLib = LivePointLibrary::load(path);
    LivePointRunOptions bopt = ropt;
    bopt.residentBudgetBytes = budget;
    const LivePointRunResult br =
        runLivePoints(b.prog, streamLib, cfg, bopt);
    if (!sameResult(br, ref))
        panic("ablation_storage: resident-budget replay changed the "
              "estimate");
    bopt.threads = 2;
    if (!sameResult(runLivePoints(b.prog, streamLib, cfg, bopt), ref))
        panic("ablation_storage: resident-budget replay is not "
              "thread-count invariant");
    const bool underBudget = br.peakResidentBytes <= budget;
    // The acceptance gate: with the default (window/4) budget the
    // peak in-flight bytes must stay under it.
    if (!budgetFromEnv && !underBudget)
        panic("ablation_storage: peak resident %llu exceeds budget "
              "%llu",
              static_cast<unsigned long long>(br.peakResidentBytes),
              static_cast<unsigned long long>(budget));
    std::printf("\nresident budget: %s window streamed through %s "
                "budget, peak %s (%.1f%% of budget)%s\n",
                fmtBytes(windowBytes).c_str(),
                fmtBytes(budget).c_str(),
                fmtBytes(br.peakResidentBytes).c_str(),
                100.0 * static_cast<double>(br.peakResidentBytes) /
                    static_cast<double>(budget ? budget : 1),
                underBudget ? "" : "  ** OVER BUDGET **");

    // The sharded fleet store: open lazily, replay one shard, leave
    // the other untouched.
    const std::string setDir = s.cacheDir + "/ablation-storage-set";
    std::filesystem::remove_all(setDir);
    {
        LibrarySetWriter writer(setDir);
        writer.addShard("gcc-2", built);
        writer.addShard("gcc-2-alt", built);
    }
    const LibrarySet set = LibrarySet::open(setDir);
    const bool lazyOk = set.loadedCount() == 0;
    const LivePointRunResult sr =
        runLivePoints(b.prog, set.shard(0), cfg, ropt);
    if (!sameResult(sr, ref))
        panic("ablation_storage: fleet-store shard replay changed "
              "the estimate");
    const bool oneShard = set.loadedCount() == 1;
    if (!lazyOk || !oneShard)
        panic("ablation_storage: fleet store opened shards eagerly");
    std::printf("fleet store: %zu shards, %zu opened for a one-shard "
                "replay (%s mapped, %s pinned)\n",
                set.size(), set.loadedCount(),
                fmtBytes(set.mappedBytes()).c_str(),
                fmtBytes(set.pinnedBytes()).c_str());

    const std::string json = strfmt(
        "{\n  \"bench\": \"ablation_storage\",\n"
        "  \"benchmark\": \"%s\",\n  \"points\": %llu,\n"
        "  \"library_file_bytes\": %llu,\n"
        "  \"window_bytes\": %llu,\n"
        "  \"backends\": [\n%s\n  ],\n"
        "  \"budget\": {\"budget_bytes\": %llu, \"from_env\": %s, "
        "\"peak_resident_bytes\": %llu, \"window_to_budget\": %.2f, "
        "\"replays_per_sec\": %.2f, \"under_budget\": %s, "
        "\"identical\": true},\n"
        "  \"fleet\": {\"shards\": %zu, \"opened\": %zu, "
        "\"mapped_bytes\": %llu, \"pinned_bytes\": %llu, "
        "\"identical\": true}\n}\n",
        b.profile.name.c_str(), static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(fileBytes),
        static_cast<unsigned long long>(windowBytes),
        backendRows.c_str(), static_cast<unsigned long long>(budget),
        budgetFromEnv ? "true" : "false",
        static_cast<unsigned long long>(br.peakResidentBytes),
        budget ? static_cast<double>(windowBytes) /
                     static_cast<double>(budget)
               : 0.0,
        static_cast<double>(br.processed) / br.wallSeconds,
        underBudget ? "true" : "false", set.size(), set.loadedCount(),
        static_cast<unsigned long long>(set.mappedBytes()),
        static_cast<unsigned long long>(set.pinnedBytes()));
    if (writeBenchJson(s, json))
        std::printf("timings written to %s\n", s.jsonPath.c_str());

    std::filesystem::remove_all(setDir);
    std::filesystem::remove(path);
    std::printf("\nevery backend and budget setting reproduced the "
                "owned-buffer estimate to the bit; only where the "
                "bytes live differs.\n");
    return 0;
}
