/**
 * @file
 * Section 6.2 — matched-pair comparative experiments. Reproduces the
 * paper's sensitivity-study style: a set of microarchitectural design
 * changes (latencies, queue sizes, functional-unit mix, cache sizes)
 * evaluated against the 8-way baseline on the same live-points, with
 * the per-change sample-size reduction factor vs absolute estimation,
 * plus the 16-way-vs-8-way comparative of Figure 6 step 5.
 *
 * The sensitivity sweep runs as ONE campaign: all ten design points
 * replay from the same decode of each live-point, so the whole table
 * costs one pass over the library instead of nine, and the per-pair
 * deltas are exactly what individual runMatchedPair calls produce
 * (common random numbers; asserted in tests/test_campaign.cc).
 *
 * Paper shape: reductions of 3.5x-150x; no-impact changes resolve with
 * ~a 30-50 measurement sample; the 16-way comparative reaches target
 * confidence ~3x faster than an absolute 16-way estimate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "core/campaign.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Section 6.2: matched-pair comparative studies (gcc-2, "
                "vs 8-way baseline)");
    const PreparedBench b = prepareOne("gcc-2", s);
    const CoreConfig base = CoreConfig::eightWay();
    const CoreConfig cfg16 = CoreConfig::sixteenWay();

    // The library must cover the 16-way's longer detailed warming.
    const std::uint64_t n = sampleSize(b, base, s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfg16.detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s);
    Rng rng(11, "sec62");
    lib.shuffle(rng);

    struct Variant
    {
        const char *name;
        std::function<void(CoreConfig &)> tweak;
    };
    const std::vector<Variant> variants{
        {"mem latency 100->140",
         [](CoreConfig &c) { c.mem.memLatency = 140; }},
        {"L2 latency 12->20",
         [](CoreConfig &c) { c.mem.l2Latency = 20; }},
        {"int ALU latency 1->2",
         [](CoreConfig &c) { c.lat.intAlu = 2; }},
        {"RUU 128->64",
         [](CoreConfig &c) { c.ruuSize = 64; }},
        {"I-ALUs 4->2", [](CoreConfig &c) { c.fus.intAlu = 2; }},
        {"mispredict 7->10",
         [](CoreConfig &c) { c.bpred.mispredictPenalty = 10; }},
        {"L1D 32KB->16KB",
         [](CoreConfig &c) { c.mem.l1d.sizeBytes = 16 * 1024; }},
        {"L2 1MB->2MB (likely nil)",
         [](CoreConfig &c) { c.mem.l2.sizeBytes = 2 * 1024 * 1024; }},
        {"store buffer 16->8",
         [](CoreConfig &c) { c.mem.storeBufferEntries = 8; }},
    };

    // One campaign over the whole sensitivity space: configs[0] is
    // the baseline every delta is measured against.
    std::vector<CoreConfig> space;
    space.push_back(base);
    for (const Variant &v : variants) {
        CoreConfig test = base;
        v.tweak(test);
        test.name = v.name;
        space.push_back(test);
    }
    CampaignOptions copt;
    CampaignEngine engine({{b.profile.name, &b.prog, &lib}}, space,
                          copt);
    const CampaignResult camp = engine.run();

    const ConfidenceSpec spec{};
    const double z = confidenceZ(spec.level);
    const double baseMean = camp.cells[0].stat.mean();

    std::printf("%-26s %10s %10s %8s %8s %9s\n", "design change",
                "dCPI", "rel", "n(pair)", "n(abs)", "reduction");
    double minRed = 1e30;
    double maxRed = 0;
    for (std::size_t c = 1; c < space.size(); ++c) {
        const CampaignPair *p = camp.pair(0, 0, c);
        const RunningStat &delta = p->delta;
        // Sample sizes to reach the spec: paired (estimate the delta
        // to within the noise floor) vs absolute (estimate the test
        // CPI) — the same helpers runMatchedPair reports through.
        const std::uint64_t nPair =
            pairedSampleSize(delta, baseMean, spec);
        const std::uint64_t nAbs = requiredSampleSize(
            camp.cells[c].stat.cov(), spec);
        const bool significant =
            delta.count() >= minCltSample &&
            std::fabs(delta.mean()) > delta.halfWidth(z);
        const double red = static_cast<double>(nAbs) /
                           static_cast<double>(
                               std::max<std::uint64_t>(nPair, 1));
        std::printf("%-26s %+10.4f %9.2f%% %8llu %8llu %8.1fx%s\n",
                    space[c].name.c_str(), delta.mean(),
                    baseMean != 0.0 ? 100 * delta.mean() / baseMean
                                    : 0.0,
                    static_cast<unsigned long long>(nPair),
                    static_cast<unsigned long long>(nAbs), red,
                    significant ? "" : "  (no sig. diff)");
        if (red > 0) {
            minRed = std::min(minRed, red);
            maxRed = std::max(maxRed, red);
        }
    }
    std::printf("\nsample-size reduction range: %.1fx .. %.1fx "
                "(paper: 3.5x .. 150x); whole table from ONE pass "
                "over the library (%llu decodes, %.1f replays each)\n",
                minRed, maxRed,
                static_cast<unsigned long long>(camp.pointsDecoded),
                static_cast<double>(camp.replaysExecuted) /
                    static_cast<double>(std::max<std::uint64_t>(
                        camp.pointsDecoded, 1)));

    // The 16-way comparative vs absolute (paper: 2.4 min vs 7.6 min).
    // Pair-level early stopping is runMatchedPair's own contract, so
    // this step stays on the standalone runner.
    LivePointRunOptions stopOpt;
    stopOpt.stopAtConfidence = true;
    stopOpt.shuffleSeed = 3;
    const MatchedPairOutcome cmp16 =
        runMatchedPair(b.prog, lib, base, cfg16, stopOpt);
    const LivePointRunResult abs16 =
        runLivePoints(b.prog, lib, cfg16, stopOpt);
    std::printf("\n16-way vs 8-way comparative: %zu pairs, %s; "
                "absolute 16-way estimate: %zu points, %s "
                "(paper: 2.4 min vs 7.6 min => ~3x)\n",
                cmp16.processed, fmtTime(cmp16.wallSeconds).c_str(),
                abs16.processed, fmtTime(abs16.wallSeconds).c_str());
    return 0;
}
