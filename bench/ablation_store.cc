/**
 * @file
 * Ablation — the fleet result store. A re-submitted (or widened)
 * design-space campaign against a populated store pays O(lookup)
 * instead of O(replay): every overlapping cell restores its fold
 * state from the LPRES1 container, bit-identical to replaying by the
 * engine's determinism contract. Measures the cold populate run, the
 * fully-memoized warm run, and the store's own serialize/load costs,
 * and verifies zero replays and bit-identical CPIs on the warm path.
 * Emits machine-readable timings (LP_BENCH_JSON) so CI tracks the
 * lookup-vs-replay speedup.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/campaign.hh"
#include "store/result_store.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Ablation: fleet result store (parser, 4-config "
                "design space, memoized resubmission)");
    const PreparedBench b = prepareOne("parser", s);

    std::vector<CoreConfig> cfgs;
    cfgs.push_back(CoreConfig::eightWay());
    {
        CoreConfig c = cfgs[0];
        c.name = "mem-140";
        c.mem.memLatency = 140;
        cfgs.push_back(c);
    }
    {
        CoreConfig c = cfgs[0];
        c.name = "L2-512K";
        c.mem.l2.sizeBytes = 512 * 1024;
        cfgs.push_back(c);
    }
    {
        CoreConfig c = cfgs[0];
        c.name = "RUU-64";
        c.ruuSize = 64;
        cfgs.push_back(c);
    }

    const std::uint64_t n = sampleSize(b, cfgs[0], s);
    const SampleDesign design = SampleDesign::systematic(
        b.length, n, 1000, cfgs[0].detailedWarming);
    LivePointBuilderConfig bc = defaultBuilderConfig();
    LivePointLibrary lib = cachedLibrary(b, design, bc, s);
    Rng rng(5, "store-bench");
    lib.shuffle(rng);
    const std::size_t K = cfgs.size();

    CampaignOptions copt;
    copt.shuffleSeed = 7;

    // Cold: replay the whole grid and publish it.
    const auto t0 = std::chrono::steady_clock::now();
    CampaignEngine cold({{b.profile.name, &b.prog, &lib}}, cfgs, copt);
    const CampaignResult coldRes = cold.run();
    const double coldWall = secondsSince(t0);

    ResultStore store;
    const auto tPub = std::chrono::steady_clock::now();
    const std::size_t published = cold.publish(coldRes, store);
    const std::string storePath = s.cacheDir + "/bench-results.lpres";
    store.save(storePath);
    const double publishWall = secondsSince(tPub);

    // Warm: the same grid again, resolved entirely from the store
    // (loaded fresh from disk, so the lookup cost includes the
    // corruption-strict parse).
    const auto tWarm = std::chrono::steady_clock::now();
    ResultStore reloaded;
    reloaded.load(storePath);
    CampaignOptions wopt = copt;
    wopt.resultStore = &reloaded;
    CampaignEngine warm({{b.profile.name, &b.prog, &lib}}, cfgs, wopt);
    const CampaignResult warmRes = warm.run();
    const double warmWall = secondsSince(tWarm);

    // The warm path must be pure lookup, bit-identical to replaying.
    if (warmRes.memoizedCells != K)
        panic("store bench: expected %zu memoized cells, got %zu", K,
              warmRes.memoizedCells);
    if (warmRes.replaysExecuted != 0 || warmRes.pointsDecoded != 0)
        panic("store bench: warm run replayed/decoded");
    for (std::size_t c = 0; c < K; ++c)
        if (doubleBits(warmRes.cells[c].cpi()) !=
            doubleBits(coldRes.cells[c].cpi()))
            panic("store bench: memoized CPI diverged (config %zu)",
                  c);

    const double speedup = coldWall / warmWall;
    const double cellPoints =
        static_cast<double>(lib.size()) * static_cast<double>(K);
    std::printf("%-28s %10s %12s %10s\n", "mode", "wall", "replays/s",
                "cells");
    std::printf("%-28s %10s %12.1f %10zu\n", "cold (replay+publish)",
                fmtTime(coldWall).c_str(), cellPoints / coldWall, K);
    std::printf("%-28s %10s %12s %10zu\n", "warm (store lookup)",
                fmtTime(warmWall).c_str(), "-", K);
    std::printf("\npublish+save: %s (%zu records)   "
                "lookup-vs-replay speedup: %.0fx\n",
                fmtTime(publishWall).c_str(), published, speedup);

    std::string json = strfmt(
        "{\n"
        "  \"bench\": \"ablation_store\",\n"
        "  \"benchmark\": \"%s\",\n"
        "  \"configs\": %zu,\n"
        "  \"live_points\": %zu,\n"
        "  \"cold_wall_s\": %.6f,\n"
        "  \"publish_wall_s\": %.6f,\n"
        "  \"warm_wall_s\": %.6f,\n"
        "  \"speedup\": %.2f,\n"
        "  \"memoized_cells\": %zu,\n"
        "  \"warm_replays_executed\": %llu,\n"
        "  \"records_published\": %zu,\n"
        "  \"bit_identical\": true\n"
        "}\n",
        b.profile.name.c_str(), K, lib.size(), coldWall, publishWall,
        warmWall, speedup, warmRes.memoizedCells,
        static_cast<unsigned long long>(warmRes.replaysExecuted),
        published);
    writeBenchJson(s, json);
    return 0;
}
