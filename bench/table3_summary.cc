/**
 * @file
 * Table 3 — summary of the simulation-sampling warming methods:
 * average/worst CPI bias (measured against complete detailed
 * simulation on a subset), average benchmark runtime, scaling
 * behaviour, checkpoint independence, library size, and the
 * microarchitectural parameters each method fixes.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"

using namespace lp;
using namespace lpbench;

int
main()
{
    setQuiet(true);
    const BenchSettings s = settings();
    printHeader("Table 3: summary of warming methods (bias vs complete "
                "simulation on a 4-benchmark subset, 8-way)");
    const CoreConfig cfg = CoreConfig::eightWay();

    // Bias subset: complete detailed simulation is expensive, so the
    // true-CPI reference uses four short benchmarks.
    const std::vector<std::string> biasSet{"perlbmk", "gcc-2", "eon-2",
                                           "gzip-1"};

    struct Bias
    {
        double fullW = 0, aw = 0, lp = 0;
    };
    std::vector<Bias> biases;
    double runSmartsSum = 0;
    double runAwSum = 0;
    double runLpSum = 0;
    std::uint64_t libBytes = 0;

    for (const std::string &name : biasSet) {
        const PreparedBench b = prepareOne(name, s);
        const std::uint64_t n = sampleSize(b, cfg, s);
        const SampleDesign design = SampleDesign::systematic(
            b.length, n, 1000, cfg.detailedWarming);

        const CompleteSimResult truth = runCompleteDetailed(b.prog, cfg);
        const SampledEstimate full = runSmarts(b.prog, cfg, design);
        const MrrlAnalysis mrrl = analyzeMrrl(
            b.prog, design.windowStarts(), design.windowLen());
        const SampledEstimate aw =
            runAdaptiveWarming(b.prog, cfg, design, mrrl, true);
        LivePointBuilderConfig bc = defaultBuilderConfig();
        LivePointLibrary lib = cachedLibrary(b, design, bc, s);
        LivePointRunOptions opt;
        const LivePointRunResult lp = runLivePoints(b.prog, lib, cfg, opt);

        Bias bias;
        bias.fullW = std::fabs(full.cpi() - truth.cpi) / truth.cpi;
        bias.aw = std::fabs(aw.cpi() - truth.cpi) / truth.cpi;
        bias.lp = std::fabs(lp.cpi() - truth.cpi) / truth.cpi;
        biases.push_back(bias);

        runSmartsSum += full.wallSeconds;
        runAwSum += aw.wallSeconds;
        runLpSum += lp.wallSeconds;
        libBytes += lib.totalCompressedBytes();
        std::fprintf(stderr, "  [table3] %s done\n", name.c_str());
    }

    auto stat = [&](auto field) {
        double sum = 0;
        double worst = 0;
        for (const Bias &b : biases) {
            sum += field(b);
            worst = std::max(worst, field(b));
        }
        return std::pair<double, double>(sum / biases.size(), worst);
    };
    const auto [fwAvg, fwWorst] = stat([](const Bias &b) { return b.fullW; });
    const auto [awAvg, awWorst] = stat([](const Bias &b) { return b.aw; });
    const auto [lpAvg, lpWorst] = stat([](const Bias &b) { return b.lp; });
    const double k = static_cast<double>(biasSet.size());

    std::printf("%-28s %16s %16s %16s\n", "", "Full warming",
                "AW-MRRL", "Live-points");
    std::printf("%-28s %7.2f%% (%5.2f%%) %7.2f%% (%5.2f%%) %7.2f%% "
                "(%5.2f%%)\n",
                "avg (worst) CPI bias*", 100 * fwAvg, 100 * fwWorst,
                100 * awAvg, 100 * awWorst, 100 * lpAvg, 100 * lpWorst);
    std::printf("%-28s %16s %16s %16s\n", "avg benchmark runtime",
                fmtTime(runSmartsSum / k).c_str(),
                fmtTime(runAwSum / k).c_str(),
                fmtTime(runLpSum / k).c_str());
    std::printf("%-28s %16s %16s %16s\n", "runtime scaling", "O(B)",
                "O(0.2 B)", "O(sample)");
    std::printf("%-28s %16s %16s %16s\n", "independent checkpoints",
                "n/a", "no (stitched)", "yes");
    std::printf("%-28s %16s %16s %16s\n", "checkpoint library",
                "none", "arch state",
                fmtBytes(libBytes / biasSet.size()).c_str());
    std::printf("%-28s %16s %16s %16s\n", "fixed uarch parameters",
                "none", "none", "max cache/TLB,");
    std::printf("%-28s %16s %16s %16s\n", "", "", "", "bpred set");
    std::printf("\n* bias vs complete detailed simulation; includes "
                "sampling error of the finite sample (the paper's "
                "bias-only numbers are 0.6%%/1.6%% for full warming "
                "and live-points, 1.1%%/5.4%% for AW-MRRL).\n");
    std::printf("paper runtime column: 7h (SMARTS), 1.5h (AW-MRRL), "
                "91s (live-points) at SPEC2K scale.\n");
    return 0;
}
