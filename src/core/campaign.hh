/**
 * @file
 * The campaign engine — design-space exploration as a first-class
 * workload. A campaign is a (workload x configuration) grid of cells:
 * every workload's live-point library is replayed against every core
 * configuration. The engine schedules the grid on one shared
 * ThreadPool and replays with **decode-once fan-out**: a worker
 * decodes a live-point into its reusable buffer once and replays it
 * through all still-active configurations, so the decompress +
 * deserialize cost that dominates per-point replay (Figure 7) is paid
 * once per point instead of once per cell.
 *
 * Guarantees:
 *  - **Per-cell bit-identity.** Each cell's estimate, confidence
 *    trajectory, and stopping point are bit-identical to a standalone
 *    runLivePoints() of that (workload, config) with the same seed
 *    and block size, at every thread count.
 *  - **Common random numbers.** All configurations of a point replay
 *    from the same decode in the same order, so any pair of cells
 *    yields the exact per-point deltas runMatchedPair() produces.
 *  - **Independent stopping, shared workers.** Cells reach their
 *    confidence target independently (OnlineEstimator fold at block
 *    barriers) and retire; the workers they free migrate to the
 *    still-unconverged cells automatically, because the fan-out per
 *    decode shrinks.
 *  - **Resumability.** With a manifest path set, per-cell fold state
 *    is checkpointed (DER-encoded, keyed by library hash and config
 *    digest) at every block barrier; a killed campaign resumes
 *    without re-replaying finished work and finishes with results
 *    bit-identical to the uninterrupted run.
 *  - **Crash safety.** The manifest is an append-only ledger of
 *    self-delimited, checksummed barrier records. A crash mid-append
 *    (kill -9, power loss, ENOSPC) leaves at worst a torn tail
 *    record; recovery scans forward, truncates at the first invalid
 *    record, and resumes from the last durable barrier — never from
 *    corrupt state, never by throwing. Each append is fsync'd, and
 *    the ledger is compacted (atomically) when it grows long.
 *  - **Degraded-set tolerance.** A workload whose shard is
 *    quarantined (see LibrarySet::openRecover) or fails to open is
 *    marked failed-with-reason cell by cell; the campaign keeps
 *    going and its workers migrate to the healthy workloads.
 *    Transient open errors (EINTR/EAGAIN) are retried with backoff
 *    before the workload is declared failed.
 */

#ifndef LP_CORE_CAMPAIGN_HH
#define LP_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "core/library.hh"
#include "core/library_set.hh"
#include "core/sample.hh"
#include "stats/running_stat.hh"
#include "uarch/config.hh"
#include "util/cancel.hh"
#include "workload/generator.hh"

namespace lp
{

class ResultStore;
struct CellRecord;

/**
 * One row of the campaign grid. The library comes from exactly one of
 * two places: a resident LivePointLibrary (@p lib), or a shard of a
 * sharded fleet store (@p set + @p shard). A set-backed workload is
 * opened lazily when its run begins — its metadata (point count,
 * content hash, used for scheduling and manifest keying) comes from
 * the set index — and is unloaded again once the workload finishes,
 * so a fleet larger than RAM streams through the campaign one shard
 * at a time and never loads workloads the resume manifest already
 * finished.
 */
struct CampaignWorkload
{
    std::string name;
    const Program *prog = nullptr;
    const LivePointLibrary *lib = nullptr;
    const LibrarySet *set = nullptr; //!< used when lib == nullptr
    std::size_t shard = 0;           //!< shard index within *set
};

struct CampaignOptions
{
    ConfidenceSpec spec{};

    /** Retire each cell as soon as it satisfies the spec. */
    bool stopAtConfidence = false;

    bool approxWrongPath = false;

    /** Per-workload processing order; 0 = stored order. */
    std::uint64_t shuffleSeed = 0;

    unsigned threads = 1;       //!< simulation workers
    unsigned decodeThreads = 0; //!< decode producers; 0 = auto
    std::size_t blockSize = 0;  //!< fold/stopping block; 0 = default

    /**
     * Global replay budget: the campaign stops (gracefully, at a
     * block barrier) once this many (point, config) replays have been
     * folded, counting work restored from a manifest. 0 = unlimited.
     * The check uses folded — not executed — replays, so the stopping
     * point is identical at every thread count.
     */
    std::uint64_t maxFoldedReplays = 0;

    /**
     * Checkpoint file. When set, per-cell fold state is written at
     * every block barrier, and an existing file is loaded and
     * validated before the run (mismatched campaigns throw). Empty =
     * no checkpointing.
     */
    std::string manifestPath;

    /**
     * Per-workload resident-budget streaming replay (0 = off); see
     * LivePointRunOptions::residentBudgetBytes. Bit-identical to the
     * unbudgeted campaign.
     */
    std::uint64_t residentBudgetBytes = 0;

    /**
     * Unload a set-backed workload's shard when its run finishes
     * (only shards this campaign opened), keeping the fleet's
     * resident set to roughly one shard.
     */
    bool unloadFinishedShards = true;

    /**
     * Supervision hook (optional; the caller keeps ownership).
     * control->cancel stops the campaign gracefully at the next block
     * barrier — after the barrier's manifest write, so the stop is a
     * valid resume point and a later resumption is bit-identical to
     * the uninterrupted run. control->progress and
     * control->failStuck are threaded through to the replay engine
     * (see ReplayEngineOptions::control).
     */
    ReplayControl *control = nullptr;

    /**
     * Wall-clock budget: when it expires the campaign stops at the
     * next block barrier exactly like a cancellation (manifest
     * consistent, resumable). Default: never.
     */
    Deadline deadline;

    /**
     * Fleet result store (optional; the caller keeps ownership).
     * Before any replay starts, each cell's full replay identity —
     * (library contentHash, config digest, shuffle seed, block size,
     * wrong-path mode, stopping mode, confidence spec) — is looked
     * up; a hit restores the stored fold state instead of replaying,
     * bit-identical to a fresh run by the engine's determinism
     * contract (the restore cross-checks the stored CPI bits and
     * throws on mismatch). Memoized cells never open their shard, are
     * excluded from the manifest and the replay budget, and pairs
     * where both cells are memoized restore their matched-pair delta
     * from the store. The store is read-only during run(); call
     * publish() afterwards to add this run's completed cells.
     */
    ResultStore *resultStore = nullptr;
};

/**
 * Machine-readable reason a cell failed — the stable vocabulary
 * reports and clients match on (free text lives in
 * CampaignCell::failureReason / the report's "detail").
 */
enum class CellFailReason
{
    none,             //!< healthy
    shardQuarantined, //!< the workload's shard is quarantined
    shardUnavailable, //!< the shard would not open
    replayFault,      //!< a replay error (injected or real)
    cellStuck,        //!< a stalled replay aborted by the supervisor
    staleFoldState    //!< resumed cell was below the fold frontier
};

/** Stable token for @p r (e.g. "cell_stuck"); never changes meaning. */
const char *cellFailReasonToken(CellFailReason r);

/** One (workload, configuration) cell's outcome. */
struct CampaignCell
{
    std::size_t workload = 0;
    std::size_t config = 0;
    OnlineSnapshot estimate;
    RunningStat stat;          //!< per-window CPI observations
    std::size_t processed = 0; //!< points folded, restored included
    std::size_t restored = 0;  //!< of which restored from the manifest
    std::uint64_t unavailableLoads = 0;
    bool converged = false;    //!< retired by its confidence target

    /**
     * The cell failed before it finished (quarantined or unopenable
     * shard, a contained per-cell replay fault or stuck-worker
     * verdict, or stale resume state): the estimate covers only the
     * points folded before the failure. Converged cells retired
     * before the failure are not marked.
     */
    bool failed = false;
    CellFailReason reason = CellFailReason::none;
    std::string failureReason; //!< free-text detail ("" when healthy)

    /**
     * Restored from the result store without replaying: processed /
     * stat / estimate are the stored run's, bit-identical to what
     * replaying would have produced.
     */
    bool memoized = false;

    double cpi() const { return estimate.mean; }
};

/**
 * A matched pair of cells on one workload: per-point CPI deltas
 * (configs[test] - configs[base]) over the prefix both cells were
 * active for — exactly what runMatchedPair() folds, because both
 * cells replay from the same decodes in the same order.
 */
struct CampaignPair
{
    std::size_t workload = 0;
    std::size_t base = 0;
    std::size_t test = 0;
    RunningStat delta;

    double meanDelta() const { return delta.mean(); }
};

struct CampaignResult
{
    std::vector<CampaignCell> cells; //!< workload-major grid
    std::vector<CampaignPair> pairs; //!< all config pairs per workload
    double wallSeconds = 0.0;
    std::uint64_t bytesDecoded = 0;
    std::uint64_t pointsDecoded = 0;   //!< decode calls this run
    std::uint64_t replaysExecuted = 0; //!< incl. speculative overshoot
    std::uint64_t foldedReplays = 0;   //!< deterministic, incl. restored
    std::uint64_t restoredReplays = 0; //!< replays skipped via manifest
    std::uint64_t migratedReplays = 0; //!< replays freed by retirement
    /** Peak budget-window bytes over all workload runs (0 = off). */
    std::uint64_t peakResidentBytes = 0;
    std::size_t retirements = 0;       //!< cells stopped early
    std::size_t failedCells = 0;       //!< cells failed-with-reason
    std::size_t memoizedCells = 0;     //!< cells resolved by the store
    /** Replays the result store made unnecessary this run. */
    std::uint64_t memoizedReplays = 0;
    bool budgetExhausted = false;

    /**
     * The run stopped early at a block barrier on a cancellation
     * request or an expired deadline. The manifest (when enabled)
     * holds the stop as a valid resume point; cells are not marked
     * failed.
     */
    bool cancelled = false;
    std::string cancelReason;

    const CampaignCell &cell(std::size_t workload, std::size_t config,
                             std::size_t numConfigs) const
    {
        return cells[workload * numConfigs + config];
    }

    /** Delta stat for (base, test) on a workload; null if not found. */
    const CampaignPair *pair(std::size_t workload, std::size_t base,
                             std::size_t test) const;
};

class CampaignEngine
{
  public:
    CampaignEngine(std::vector<CampaignWorkload> workloads,
                   std::vector<CoreConfig> configs,
                   const CampaignOptions &opt);

    std::size_t workloadCount() const { return workloads_.size(); }
    std::size_t configCount() const { return configs_.size(); }
    const CoreConfig &config(std::size_t i) const { return configs_[i]; }

    /**
     * Run (or resume) the campaign. Throws if an existing manifest
     * belongs to a different campaign (other libraries, configs,
     * seed, block size, or spec).
     */
    CampaignResult run();

    /**
     * The machine-readable campaign report: one JSON object with the
     * grid, per-cell estimates, matched-pair deltas at the campaign's
     * confidence level, and decode-amortization totals. Every
     * free-text field (names, failure details, cancel reasons) is
     * JSON-escaped; the output always parses.
     */
    std::string jsonReport(const CampaignResult &r) const;

    /**
     * Publish @p r's completed cells into @p store: every cell that
     * is not failed and either converged or consumed its whole
     * library, keyed by its full replay identity, plus the
     * matched-pair deltas between published cells. Memoized cells
     * republish their (identical) stored records, so publishing is
     * idempotent. Returns the number of records written. The caller
     * saves the store when it chooses.
     */
    std::size_t publish(const CampaignResult &r,
                        ResultStore &store) const;

  private:
    struct Manifest;

    Manifest loadManifest() const;
    void saveManifest(const Manifest &m) const;
    void appendLedgerRecord(const Blob &image) const;

    std::vector<CampaignWorkload> workloads_;
    std::vector<CoreConfig> configs_;
    std::vector<std::uint64_t> digests_;
    std::vector<std::uint64_t> libHashes_; //!< computed once; libraries
                                           //!< are immutable during a run
    std::vector<std::uint64_t> libSizes_;  //!< per-workload point count
    CampaignOptions opt_;
    std::size_t blockSize_;
    mutable std::uint64_t ledgerRecords_ = 0; //!< appended since compaction
};

} // namespace lp

#endif // LP_CORE_CAMPAIGN_HH
