#include "core/library_set.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "codec/der.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "io/source.hh"
#include "util/failpoint.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

constexpr std::uint64_t kSetMagic = 0x4c50'5345'5431ull; // "LPSET1"
constexpr std::uint64_t kSetVersion = 1;
constexpr const char *kIndexFile = "lpset.idx";

std::string
joinPath(const std::string &dir, const std::string &file)
{
    return (std::filesystem::path(dir) / file).string();
}

/**
 * A shard's container file name: the workload name with anything
 * outside [A-Za-z0-9._-] replaced, made unique by the shard ordinal.
 */
std::string
shardFileName(std::size_t ordinal, const std::string &name)
{
    std::string safe;
    safe.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        safe.push_back(ok ? c : '_');
    }
    return strfmt("shard-%03zu-%s.lpl", ordinal, safe.c_str());
}

bool
isShardFileName(const std::string &name)
{
    return name.size() > 4 &&
           name.compare(name.size() - 4, 4, ".lpl") == 0 &&
           !AtomicFileWriter::isTempFileName(name);
}

} // namespace

const char *
LibrarySet::indexFileName()
{
    return kIndexFile;
}

LibrarySet::LibrarySet(LibrarySet &&other) noexcept
    : dir_(std::move(other.dir_)), backend_(other.backend_),
      entries_(std::move(other.entries_)),
      recovery_(std::move(other.recovery_)),
      loaded_(std::move(other.loaded_))
{
}

LibrarySet &
LibrarySet::operator=(LibrarySet &&other) noexcept
{
    if (this != &other) {
        dir_ = std::move(other.dir_);
        backend_ = other.backend_;
        entries_ = std::move(other.entries_);
        recovery_ = std::move(other.recovery_);
        loaded_ = std::move(other.loaded_);
    }
    return *this;
}

LibrarySet
LibrarySet::open(const std::string &dir, StorageBackend backend)
{
    return openImpl(dir, backend, false);
}

LibrarySet
LibrarySet::openRecover(const std::string &dir, StorageBackend backend)
{
    return openImpl(dir, backend, true);
}

LibrarySet
LibrarySet::openImpl(const std::string &dir, StorageBackend backend,
                     bool recover)
{
    const std::string indexPath = joinPath(dir, kIndexFile);

    LibrarySet set;
    set.dir_ = dir;
    set.backend_ = backend;

    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("set.index.load");
        if (o.fail) {
            if (!recover)
                throwIoError("read", "library-set index", indexPath,
                             o.err);
            set.rescanShards(ioErrorMsg("read", "library-set index",
                                        indexPath, o.err));
            return set;
        }
    }

    Blob data;
    try {
        data = readWholeFile(indexPath, "library-set index");
    } catch (const std::exception &e) {
        if (!recover)
            throw;
        set.rescanShards(e.what());
        return set;
    }

    auto malformed = [&indexPath](const char *why) {
        return std::runtime_error(
            strfmt("'%s' is not a valid library-set index (%s)",
                   indexPath.c_str(), why));
    };

    // The integrity footer makes a torn index write detectable
    // before parsing. A footer whose MAGIC is present but whose
    // checksum fails is corruption — never parsed. Footer-less
    // indexes (written before the footer existed) still parse, but
    // must then be consumed byte-exactly: trailing garbage (a
    // partially-truncated footer) is rejected, not ignored.
    std::size_t payloadSize = data.size();
    const bool hasFooter =
        checksummedPayload(data.data(), data.size(), &payloadSize);

    try {
        if (!hasFooter &&
            checksumFooterPresent(data.data(), data.size()))
            throw malformed("checksum mismatch");
        DerReader top(
            ByteSpan(data.data(), hasFooter ? payloadSize
                                            : data.size()));
        DerReader seq = top.getSequence();
        if (seq.getUint() != kSetMagic ||
            seq.getUint() != kSetVersion)
            throw malformed("bad magic or version");
        const std::uint64_t count = seq.getUint();
        // Bound the reserve by what could possibly fit (every entry
        // encodes to at least one byte) so a corrupt count cannot
        // trigger a huge allocation before parsing fails.
        if (count > data.size())
            throw malformed("implausible shard count");
        set.entries_.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            DerReader es = seq.getSequence();
            Entry e;
            e.name = es.getString();
            e.file = es.getString();
            e.points = es.getUint();
            e.hash = es.getUint();
            e.bytes = es.getUint();
            for (const Entry &have : set.entries_)
                if (have.name == e.name)
                    throw malformed("duplicate shard name");
            set.entries_.push_back(std::move(e));
        }
        if (!seq.atEnd())
            throw malformed("trailing bytes");
        if (!hasFooter && !top.atEnd())
            throw malformed("trailing bytes");
    } catch (const std::exception &e) {
        if (!recover)
            throw malformed(hasFooter ? "malformed entries"
                                      : "torn or corrupt");
        set.entries_.clear();
        set.rescanShards(
            strfmt("index '%s' is torn or corrupt (%s)",
                   indexPath.c_str(), e.what()));
        return set;
    }

    set.loaded_.resize(set.entries_.size());
    if (recover)
        set.validateShardFiles();
    return set;
}

/**
 * Index-less recovery: rebuild the entry table from the shard
 * containers themselves. Shard names come from each container's
 * benchmark metadata; point counts and content hashes are recomputed
 * by loading each container once (buffer-backed so nothing stays
 * mapped). Unloadable containers are quarantined, not fatal.
 */
void
LibrarySet::rescanShards(const std::string &reason)
{
    recovery_.degraded = true;
    recovery_.indexRebuilt = true;
    recovery_.notes.push_back(
        strfmt("index unusable, rescanned shards: %s",
               reason.c_str()));

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        if (isShardFileName(name))
            files.push_back(name);
    }
    if (ec)
        throwIoError("scan", "library-set directory", dir_,
                     ec.value());
    // Shard files are named shard-%03zu-<name>.lpl, so sorting by
    // file name restores the original append order.
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        Entry e;
        e.file = file;
        const std::string path = joinPath(dir_, file);
        std::error_code sec;
        const std::uintmax_t bytes =
            std::filesystem::file_size(path, sec);
        e.bytes = sec ? 0 : static_cast<std::uint64_t>(bytes);
        try {
            const LivePointLibrary lib =
                LivePointLibrary::load(path, StorageBackend::buffer);
            e.name = lib.benchmark();
            e.points = lib.size();
            e.hash = lib.contentHash();
        } catch (const std::exception &ex) {
            // Keep the shard listed (stable indices for grids that
            // reference it) but quarantined.
            e.name = file;
            e.quarantine = strfmt("shard '%s' failed rescan: %s",
                                  file.c_str(), ex.what());
            recovery_.notes.push_back(e.quarantine);
        }
        // Rescan can surface duplicate benchmark names (two shards
        // of the same workload); keep both, uniquified by file name,
        // so nothing is silently dropped.
        for (const Entry &have : entries_)
            if (!e.name.empty() && have.name == e.name)
                e.name = e.name + "@" + file;
        entries_.push_back(std::move(e));
    }
    loaded_.resize(entries_.size());
}

/**
 * Cheap per-entry validation for a recovering open with a healthy
 * index: the shard file must exist with the recorded size. Content
 * corruption inside a right-sized file is caught at shard() load
 * time (count + content hash verification).
 */
void
LibrarySet::validateShardFiles()
{
    for (Entry &e : entries_) {
        const std::string path = joinPath(dir_, e.file);
        std::error_code ec;
        const std::uintmax_t bytes =
            std::filesystem::file_size(path, ec);
        if (ec) {
            e.quarantine = ioErrorMsg("find", "shard container", path,
                                      ec.value());
        } else if (static_cast<std::uint64_t>(bytes) != e.bytes &&
                   e.bytes != 0) {
            e.quarantine = strfmt(
                "shard container '%s' is %llu bytes, index records "
                "%llu (torn write?)",
                path.c_str(),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(e.bytes));
        } else {
            continue;
        }
        recovery_.degraded = true;
        recovery_.notes.push_back(e.quarantine);
    }
}

std::size_t
LibrarySet::find(const std::string &name) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].name == name)
            return i;
    return npos;
}

std::string
LibrarySet::shardPath(std::size_t i) const
{
    return joinPath(dir_, entries_[i].file);
}

const LivePointLibrary &
LibrarySet::shard(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    if (!loaded_[i]) {
        const Entry &e = entries_[i];
        if (!e.quarantine.empty())
            throw std::runtime_error(strfmt(
                "library-set shard '%s' is quarantined (set '%s'): "
                "%s",
                e.name.c_str(), dir_.c_str(), e.quarantine.c_str()));
        if (failpointsArmed()) {
            const FailpointOutcome o =
                failpointFire("set.shard.load");
            if (o.fail)
                throwIoError("load", "library-set shard",
                             shardPath(i), o.err);
        }
        auto lib = std::make_unique<LivePointLibrary>(
            LivePointLibrary::load(shardPath(i), backend_));
        // The index metadata is load-bearing (campaign manifests key
        // resume state by it), so a swapped or stale shard file must
        // fail loudly, not replay different points.
        if (lib->size() != e.points ||
            lib->contentHash() != e.hash)
            throw std::runtime_error(
                strfmt("library-set shard '%s' does not match its "
                       "index entry (set '%s'): %zu points hash "
                       "%016llx, index says %llu points hash %016llx",
                       e.name.c_str(), dir_.c_str(), lib->size(),
                       static_cast<unsigned long long>(
                           lib->contentHash()),
                       static_cast<unsigned long long>(e.points),
                       static_cast<unsigned long long>(e.hash)));
        loaded_[i] = std::move(lib);
    }
    return *loaded_[i];
}

bool
LibrarySet::isLoaded(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    return loaded_[i] != nullptr;
}

std::size_t
LibrarySet::loadedCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::size_t n = 0;
    for (const auto &p : loaded_)
        n += p != nullptr;
    return n;
}

void
LibrarySet::unload(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    loaded_[i].reset();
}

std::uint64_t
LibrarySet::pinnedBytes() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::uint64_t total = 0;
    for (const auto &p : loaded_)
        if (p)
            total += p->pinnedBytes();
    return total;
}

std::uint64_t
LibrarySet::mappedBytes() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::uint64_t total = 0;
    for (const auto &p : loaded_)
        if (p && p->mappedBacking())
            total += p->backingBytes();
    return total;
}

LibrarySetWriter::LibrarySetWriter(const std::string &dir) : dir_(dir)
{
    std::filesystem::create_directories(dir_);

    // Sweep staging temps a crashed writer left behind: they are not
    // referenced by any index and would otherwise accumulate.
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        if (AtomicFileWriter::isTempFileName(name)) {
            std::error_code rec;
            std::filesystem::remove(de.path(), rec);
            if (!rec)
                warn("library set '%s': removed orphaned temp '%s'",
                     dir_.c_str(), name.c_str());
        }
    }

    const std::string indexPath = joinPath(dir_, kIndexFile);
    if (std::filesystem::exists(indexPath)) {
        // Recovering open: a torn index rebuilds from the shards,
        // and quarantined (unloadable) shards are dropped so the
        // next writeIndex() publishes a repaired, fully-healthy set.
        LibrarySet set = LibrarySet::openRecover(dir_);
        for (const std::string &note : set.recovery().notes)
            warn("library set '%s': %s", dir_.c_str(), note.c_str());
        for (LibrarySet::Entry &e : set.entries_)
            if (e.quarantine.empty())
                entries_.push_back(std::move(e));
    }
}

void
LibrarySetWriter::addShard(const std::string &name,
                           const LivePointLibrary &lib)
{
    for (const LibrarySet::Entry &e : entries_)
        if (e.name == name)
            throw std::invalid_argument(
                strfmt("library set '%s' already has a shard '%s'",
                       dir_.c_str(), name.c_str()));
    LibrarySet::Entry e;
    e.name = name;
    e.file = shardFileName(entries_.size(), name);
    e.points = lib.size();
    e.hash = lib.contentHash();
    const std::string path = joinPath(dir_, e.file);
    lib.save(path);
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    e.bytes = ec ? 0 : static_cast<std::uint64_t>(bytes);
    entries_.push_back(std::move(e));
    writeIndex();
}

void
LibrarySetWriter::writeIndex() const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("set.index.write");
        if (o.fail)
            throwIoError("write", "library-set index",
                         joinPath(dir_, kIndexFile), o.err);
    }
    DerWriter w;
    w.beginSequence();
    w.putUint(kSetMagic);
    w.putUint(kSetVersion);
    w.putUint(entries_.size());
    for (const LibrarySet::Entry &e : entries_) {
        w.beginSequence();
        w.putString(e.name);
        w.putString(e.file);
        w.putUint(e.points);
        w.putUint(e.hash);
        w.putUint(e.bytes);
        w.endSequence();
    }
    w.endSequence();
    Blob data = w.finish();
    appendChecksumFooter(data);

    // write-temp → fsync → rename → dir-fsync: the index on disk is
    // always one of the valid states, never a torn write, and the
    // publish is durable before the writer moves on.
    writeFileAtomic(joinPath(dir_, kIndexFile), data.data(),
                    data.size(), "library-set index");
}

} // namespace lp
