#include "core/library_set.hh"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/log.hh"

namespace lp
{

namespace
{

constexpr std::uint64_t kSetMagic = 0x4c50'5345'5431ull; // "LPSET1"
constexpr std::uint64_t kSetVersion = 1;
constexpr const char *kIndexFile = "lpset.idx";

std::string
joinPath(const std::string &dir, const std::string &file)
{
    return (std::filesystem::path(dir) / file).string();
}

/**
 * A shard's container file name: the workload name with anything
 * outside [A-Za-z0-9._-] replaced, made unique by the shard ordinal.
 */
std::string
shardFileName(std::size_t ordinal, const std::string &name)
{
    std::string safe;
    safe.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        safe.push_back(ok ? c : '_');
    }
    return strfmt("shard-%03zu-%s.lpl", ordinal, safe.c_str());
}

} // namespace

const char *
LibrarySet::indexFileName()
{
    return kIndexFile;
}

LibrarySet::LibrarySet(LibrarySet &&other) noexcept
    : dir_(std::move(other.dir_)), backend_(other.backend_),
      entries_(std::move(other.entries_)),
      loaded_(std::move(other.loaded_))
{
}

LibrarySet &
LibrarySet::operator=(LibrarySet &&other) noexcept
{
    if (this != &other) {
        dir_ = std::move(other.dir_);
        backend_ = other.backend_;
        entries_ = std::move(other.entries_);
        loaded_ = std::move(other.loaded_);
    }
    return *this;
}

LibrarySet
LibrarySet::open(const std::string &dir, StorageBackend backend)
{
    const std::string indexPath = joinPath(dir, kIndexFile);
    const Blob data = readWholeFile(indexPath, "library-set index");

    auto malformed = [&indexPath]() {
        return std::runtime_error(
            strfmt("'%s' is not a valid library-set index",
                   indexPath.c_str()));
    };

    LibrarySet set;
    set.dir_ = dir;
    set.backend_ = backend;
    try {
        DerReader top(data);
        DerReader seq = top.getSequence();
        if (seq.getUint() != kSetMagic ||
            seq.getUint() != kSetVersion)
            throw malformed();
        const std::uint64_t count = seq.getUint();
        // Bound the reserve by what could possibly fit (every entry
        // encodes to at least one byte) so a corrupt count cannot
        // trigger a huge allocation before parsing fails.
        if (count > data.size())
            throw malformed();
        set.entries_.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            DerReader es = seq.getSequence();
            Entry e;
            e.name = es.getString();
            e.file = es.getString();
            e.points = es.getUint();
            e.hash = es.getUint();
            e.bytes = es.getUint();
            for (const Entry &have : set.entries_)
                if (have.name == e.name)
                    throw malformed();
            set.entries_.push_back(std::move(e));
        }
        if (!seq.atEnd())
            throw malformed();
    } catch (const std::runtime_error &) {
        throw;
    } catch (const std::exception &) {
        throw malformed();
    }
    set.loaded_.resize(set.entries_.size());
    return set;
}

std::size_t
LibrarySet::find(const std::string &name) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].name == name)
            return i;
    return npos;
}

std::string
LibrarySet::shardPath(std::size_t i) const
{
    return joinPath(dir_, entries_[i].file);
}

const LivePointLibrary &
LibrarySet::shard(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    if (!loaded_[i]) {
        const Entry &e = entries_[i];
        auto lib = std::make_unique<LivePointLibrary>(
            LivePointLibrary::load(shardPath(i), backend_));
        // The index metadata is load-bearing (campaign manifests key
        // resume state by it), so a swapped or stale shard file must
        // fail loudly, not replay different points.
        if (lib->size() != e.points ||
            lib->contentHash() != e.hash)
            throw std::runtime_error(
                strfmt("library-set shard '%s' does not match its "
                       "index entry (set '%s')",
                       e.name.c_str(), dir_.c_str()));
        loaded_[i] = std::move(lib);
    }
    return *loaded_[i];
}

bool
LibrarySet::isLoaded(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    return loaded_[i] != nullptr;
}

std::size_t
LibrarySet::loadedCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::size_t n = 0;
    for (const auto &p : loaded_)
        n += p != nullptr;
    return n;
}

void
LibrarySet::unload(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    loaded_[i].reset();
}

std::uint64_t
LibrarySet::pinnedBytes() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::uint64_t total = 0;
    for (const auto &p : loaded_)
        if (p)
            total += p->pinnedBytes();
    return total;
}

std::uint64_t
LibrarySet::mappedBytes() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::uint64_t total = 0;
    for (const auto &p : loaded_)
        if (p && p->mappedBacking())
            total += p->backingBytes();
    return total;
}

LibrarySetWriter::LibrarySetWriter(const std::string &dir) : dir_(dir)
{
    std::filesystem::create_directories(dir_);
    const std::string indexPath = joinPath(dir_, kIndexFile);
    if (std::filesystem::exists(indexPath))
        entries_ = LibrarySet::open(dir_).entries_;
}

void
LibrarySetWriter::addShard(const std::string &name,
                           const LivePointLibrary &lib)
{
    for (const LibrarySet::Entry &e : entries_)
        if (e.name == name)
            throw std::invalid_argument(
                strfmt("library set '%s' already has a shard '%s'",
                       dir_.c_str(), name.c_str()));
    LibrarySet::Entry e;
    e.name = name;
    e.file = shardFileName(entries_.size(), name);
    e.points = lib.size();
    e.hash = lib.contentHash();
    const std::string path = joinPath(dir_, e.file);
    lib.save(path);
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    e.bytes = ec ? 0 : static_cast<std::uint64_t>(bytes);
    entries_.push_back(std::move(e));
    writeIndex();
}

void
LibrarySetWriter::writeIndex() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(kSetMagic);
    w.putUint(kSetVersion);
    w.putUint(entries_.size());
    for (const LibrarySet::Entry &e : entries_) {
        w.beginSequence();
        w.putString(e.name);
        w.putString(e.file);
        w.putUint(e.points);
        w.putUint(e.hash);
        w.putUint(e.bytes);
        w.endSequence();
    }
    w.endSequence();
    const Blob data = w.finish();

    // tmp + rename: the index on disk is always one of the valid
    // states, never a torn write.
    const std::string path = joinPath(dir_, kIndexFile);
    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw std::runtime_error(
            strfmt("cannot write library-set index '%s'", tmp.c_str()));
    const bool ok =
        std::fwrite(data.data(), 1, data.size(), f) == data.size();
    if (std::fclose(f) != 0 || !ok)
        throw std::runtime_error(
            strfmt("short write to library-set index '%s'",
                   tmp.c_str()));
    std::filesystem::rename(tmp, path);
}

} // namespace lp
