/**
 * @file
 * The sharded fleet store: a directory of per-workload LPLIB3 shards
 * under one small DER index. A campaign grid over many workloads maps
 * each row to a shard and opens it lazily — inactive workloads cost
 * nothing (not even a map), and a finished workload's shard can be
 * unloaded so a fleet larger than RAM streams through a run one
 * shard at a time.
 *
 * On-disk layout:
 *
 *   <dir>/lpset.idx         DER index: magic, version, per shard
 *                           {name, file, points, contentHash, bytes}
 *   <dir>/<shard>.lpl       one LPLIB3 container per workload
 *
 * The index carries each shard's point count and content hash, so
 * metadata consumers (campaign manifests, schedulers) never touch the
 * shard files themselves. The writer appends shards streaming — each
 * shard is written and released before the next is built — and
 * rewrites the index atomically (tmp + rename) after every append,
 * so a killed fleet build leaves a valid set of the shards completed
 * so far.
 */

#ifndef LP_CORE_LIBRARY_SET_HH
#define LP_CORE_LIBRARY_SET_HH

#include <mutex>
#include <string>
#include <vector>

#include "core/library.hh"

namespace lp
{

class LibrarySet
{
  public:
    /** The index file's name inside the set directory. */
    static const char *indexFileName();

    LibrarySet() = default;

    // Movable (the mutex guards only the lazy shard cache and is
    // recreated fresh); not copyable — shards cache into one owner.
    LibrarySet(LibrarySet &&other) noexcept;
    LibrarySet &operator=(LibrarySet &&other) noexcept;
    LibrarySet(const LibrarySet &) = delete;
    LibrarySet &operator=(const LibrarySet &) = delete;

    /**
     * Open the set at @p dir by reading only its index; no shard is
     * touched. @p backend selects how shards open when first
     * accessed. Throws when the index is missing or malformed.
     */
    static LibrarySet
    open(const std::string &dir,
         StorageBackend backend = StorageBackend::autoSelect);

    std::size_t size() const { return entries_.size(); }
    const std::string &dir() const { return dir_; }

    const std::string &name(std::size_t i) const
    {
        return entries_[i].name;
    }

    /** Index of the shard named @p name, or npos. */
    std::size_t find(const std::string &name) const;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Live-point count of shard @p i, from the index alone. */
    std::uint64_t points(std::size_t i) const
    {
        return entries_[i].points;
    }

    /**
     * Content hash of shard @p i as recorded at write time — equal to
     * LivePointLibrary::contentHash() of the shard, without opening
     * it. Campaign manifests key resumable fold state by this value.
     */
    std::uint64_t contentHash(std::size_t i) const
    {
        return entries_[i].hash;
    }

    /** Container file bytes of shard @p i, from the index. */
    std::uint64_t fileBytes(std::size_t i) const
    {
        return entries_[i].bytes;
    }

    /** Full path of shard @p i's container file. */
    std::string shardPath(std::size_t i) const;

    /**
     * The shard's library, opened through the set's backend on first
     * access and cached. Validates the container against the index
     * (point count and content hash are load-bearing for manifest
     * resume). Thread-safe; the reference stays valid until unload().
     */
    const LivePointLibrary &shard(std::size_t i) const;

    /** True when shard @p i is currently open. */
    bool isLoaded(std::size_t i) const;

    /** Shards currently open. */
    std::size_t loadedCount() const;

    /**
     * Drop shard @p i's library (mapping or buffer). References from
     * a previous shard() call become invalid; a later shard() call
     * reopens it.
     */
    void unload(std::size_t i) const;

    /** Heap bytes pinned by the open shards (see pinnedBytes()). */
    std::uint64_t pinnedBytes() const;

    /** Backing bytes of open shards held in file mappings. */
    std::uint64_t mappedBytes() const;

  private:
    struct Entry
    {
        std::string name; //!< workload name (unique in the set)
        std::string file; //!< container file name inside dir_
        std::uint64_t points = 0;
        std::uint64_t hash = 0;
        std::uint64_t bytes = 0; //!< container file size
    };

    friend class LibrarySetWriter;

    std::string dir_;
    StorageBackend backend_ = StorageBackend::autoSelect;
    std::vector<Entry> entries_;
    mutable std::mutex m_; //!< guards loaded_
    mutable std::vector<std::unique_ptr<LivePointLibrary>> loaded_;
};

/**
 * Streaming writer for a LibrarySet: each addShard() writes one
 * container and atomically rewrites the index, so the set on disk is
 * valid after every append and the caller can release the library
 * immediately — a fleet build never holds more than the shard under
 * construction resident. Opening an existing set directory appends
 * to it.
 */
class LibrarySetWriter
{
  public:
    /**
     * Create (or append to) the set at @p dir. The directory is
     * created if missing; an existing index is loaded so new shards
     * extend the set.
     */
    explicit LibrarySetWriter(const std::string &dir);

    /**
     * Write @p lib as the shard for workload @p name (unique per
     * set; reusing a name throws). Streams the container to disk via
     * LivePointLibrary::save and records {points, contentHash,
     * bytes} in the index.
     */
    void addShard(const std::string &name, const LivePointLibrary &lib);

    std::size_t shards() const { return entries_.size(); }

  private:
    void writeIndex() const;

    std::string dir_;
    std::vector<LibrarySet::Entry> entries_;
};

} // namespace lp

#endif // LP_CORE_LIBRARY_SET_HH
