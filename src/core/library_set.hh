/**
 * @file
 * The sharded fleet store: a directory of per-workload LPLIB3 shards
 * under one small DER index. A campaign grid over many workloads maps
 * each row to a shard and opens it lazily — inactive workloads cost
 * nothing (not even a map), and a finished workload's shard can be
 * unloaded so a fleet larger than RAM streams through a run one
 * shard at a time.
 *
 * On-disk layout:
 *
 *   <dir>/lpset.idx         DER index: magic, version, per shard
 *                           {name, file, points, contentHash, bytes}
 *   <dir>/<shard>.lpl       one LPLIB3 container per workload
 *
 * The index carries each shard's point count and content hash, so
 * metadata consumers (campaign manifests, schedulers) never touch the
 * shard files themselves. The writer appends shards streaming — each
 * shard is written and released before the next is built — and
 * rewrites the index atomically (write-temp → fsync → rename →
 * dir-fsync, with a checksummed integrity footer) after every append,
 * so a killed fleet build leaves a valid set of the shards completed
 * so far.
 *
 * Durability: open() is strict — a torn or corrupt index throws.
 * openRecover() never gives up on a torn index: it falls back to
 * rescanning the shard files themselves (names, point counts, and
 * content hashes are recomputed from the containers), quarantines
 * any shard that fails to load or mismatches its index entry, and
 * reports what happened through recovery(). A quarantined shard
 * stays listed (indices stay stable for campaign grids) but shard()
 * on it throws with the quarantine reason — the campaign engine
 * turns that into per-cell failed-with-reason results instead of
 * aborting the run. Orphaned `*.tmp` staging files from a crashed
 * writer are ignored by scans and swept by the writer.
 */

#ifndef LP_CORE_LIBRARY_SET_HH
#define LP_CORE_LIBRARY_SET_HH

#include <mutex>
#include <string>
#include <vector>

#include "core/library.hh"

namespace lp
{

class LibrarySet
{
  public:
    /** The index file's name inside the set directory. */
    static const char *indexFileName();

    /** How an open (or recovery) of the set went. */
    struct Recovery
    {
        /** Anything below par: rebuilt index or quarantined shards. */
        bool degraded = false;

        /** The index was missing/torn; entries came from a rescan. */
        bool indexRebuilt = false;

        /** Human-readable notes (one per anomaly found). */
        std::vector<std::string> notes;
    };

    LibrarySet() = default;

    // Movable (the mutex guards only the lazy shard cache and is
    // recreated fresh); not copyable — shards cache into one owner.
    LibrarySet(LibrarySet &&other) noexcept;
    LibrarySet &operator=(LibrarySet &&other) noexcept;
    LibrarySet(const LibrarySet &) = delete;
    LibrarySet &operator=(const LibrarySet &) = delete;

    /**
     * Open the set at @p dir by reading only its index; no shard is
     * touched. @p backend selects how shards open when first
     * accessed. Throws when the index is missing, malformed, or has
     * a torn/invalid integrity footer.
     */
    static LibrarySet
    open(const std::string &dir,
         StorageBackend backend = StorageBackend::autoSelect);

    /**
     * Open the set at @p dir, recovering instead of throwing on a
     * damaged index: a missing or torn index is rebuilt by rescanning
     * the shard containers (shard names come from each container's
     * benchmark metadata), and a shard that is missing, unloadable,
     * or inconsistent with its index entry is quarantined — it stays
     * listed (indices stay stable) but shard() on it throws the
     * quarantine reason. Inspect recovery() for what happened. Only
     * throws when the directory itself cannot be read.
     */
    static LibrarySet
    openRecover(const std::string &dir,
                StorageBackend backend = StorageBackend::autoSelect);

    /** What open/openRecover found (empty for a healthy strict open). */
    const Recovery &recovery() const { return recovery_; }

    /** True when shard @p i is quarantined (shard() would throw). */
    bool quarantined(std::size_t i) const
    {
        return !entries_[i].quarantine.empty();
    }

    /** Why shard @p i is quarantined ("" when healthy). */
    const std::string &quarantineReason(std::size_t i) const
    {
        return entries_[i].quarantine;
    }

    std::size_t size() const { return entries_.size(); }
    const std::string &dir() const { return dir_; }

    const std::string &name(std::size_t i) const
    {
        return entries_[i].name;
    }

    /** Index of the shard named @p name, or npos. */
    std::size_t find(const std::string &name) const;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Live-point count of shard @p i, from the index alone. */
    std::uint64_t points(std::size_t i) const
    {
        return entries_[i].points;
    }

    /**
     * Content hash of shard @p i as recorded at write time — equal to
     * LivePointLibrary::contentHash() of the shard, without opening
     * it. Campaign manifests key resumable fold state by this value.
     */
    std::uint64_t contentHash(std::size_t i) const
    {
        return entries_[i].hash;
    }

    /** Container file bytes of shard @p i, from the index. */
    std::uint64_t fileBytes(std::size_t i) const
    {
        return entries_[i].bytes;
    }

    /** Full path of shard @p i's container file. */
    std::string shardPath(std::size_t i) const;

    /**
     * The shard's library, opened through the set's backend on first
     * access and cached. Validates the container against the index
     * (point count and content hash are load-bearing for manifest
     * resume). Thread-safe; the reference stays valid until unload().
     */
    const LivePointLibrary &shard(std::size_t i) const;

    /** True when shard @p i is currently open. */
    bool isLoaded(std::size_t i) const;

    /** Shards currently open. */
    std::size_t loadedCount() const;

    /**
     * Drop shard @p i's library (mapping or buffer). References from
     * a previous shard() call become invalid; a later shard() call
     * reopens it.
     */
    void unload(std::size_t i) const;

    /** Heap bytes pinned by the open shards (see pinnedBytes()). */
    std::uint64_t pinnedBytes() const;

    /** Backing bytes of open shards held in file mappings. */
    std::uint64_t mappedBytes() const;

  private:
    struct Entry
    {
        std::string name; //!< workload name (unique in the set)
        std::string file; //!< container file name inside dir_
        std::uint64_t points = 0;
        std::uint64_t hash = 0;
        std::uint64_t bytes = 0; //!< container file size
        std::string quarantine;  //!< non-empty: why shard() throws
    };

    friend class LibrarySetWriter;

    static LibrarySet openImpl(const std::string &dir,
                               StorageBackend backend, bool recover);
    void rescanShards(const std::string &reason);
    void validateShardFiles();

    std::string dir_;
    StorageBackend backend_ = StorageBackend::autoSelect;
    std::vector<Entry> entries_;
    Recovery recovery_;
    mutable std::mutex m_; //!< guards loaded_
    mutable std::vector<std::unique_ptr<LivePointLibrary>> loaded_;
};

/**
 * Streaming writer for a LibrarySet: each addShard() writes one
 * container and atomically rewrites the index, so the set on disk is
 * valid after every append and the caller can release the library
 * immediately — a fleet build never holds more than the shard under
 * construction resident. Opening an existing set directory appends
 * to it.
 */
class LibrarySetWriter
{
  public:
    /**
     * Create (or append to) the set at @p dir. The directory is
     * created if missing; an existing index is loaded so new shards
     * extend the set. Opening recovers: orphaned `*.tmp` staging
     * files from a crashed writer are removed, a torn index is
     * rebuilt from the shard files, and quarantined (corrupt) shards
     * are dropped from the index so the next writeIndex() repairs
     * the set on disk.
     */
    explicit LibrarySetWriter(const std::string &dir);

    /**
     * Write @p lib as the shard for workload @p name (unique per
     * set; reusing a name throws). Streams the container to disk via
     * LivePointLibrary::save and records {points, contentHash,
     * bytes} in the index.
     */
    void addShard(const std::string &name, const LivePointLibrary &lib);

    std::size_t shards() const { return entries_.size(); }

  private:
    void writeIndex() const;

    std::string dir_;
    std::vector<LibrarySet::Entry> entries_;
};

} // namespace lp

#endif // LP_CORE_LIBRARY_SET_HH
