#include "core/builder.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "codec/zip.hh"
#include "func/functional.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"
#include "util/threadpool.hh"

namespace lp
{

namespace
{

MemHierarchyConfig
maxMemConfig(const LivePointBuilderConfig &cfg)
{
    MemHierarchyConfig mem;
    mem.l1i = cfg.maxL1i;
    mem.l1d = cfg.maxL1d;
    mem.l2 = cfg.maxL2;
    mem.itlb = cfg.maxItlb;
    mem.dtlb = cfg.maxDtlb;
    return mem;
}

/**
 * One shard's warming state: a functional simulator with the
 * library-maximum hierarchy and every covered predictor attached.
 */
struct WarmingRig
{
    WarmingRig(const Program &prog, const LivePointBuilderConfig &cfg)
        : sim(prog), hier(maxMemConfig(cfg))
    {
        for (const BpredConfig &bc : cfg.bpredConfigs)
            preds.push_back(std::make_unique<BranchPredictor>(bc));
        sim.setHierarchy(&hier);
        for (auto &bp : preds)
            sim.addPredictor(bp.get());
    }

    /**
     * Warm to window @p i's start, snapshot the point, then keep
     * warming through the window while capturing its live-state.
     */
    LivePoint capture(const LivePointBuilderConfig &cfg,
                      const SampleDesign &design, std::uint64_t i)
    {
        const InstCount start = design.windowStart(i);
        sim.run(start - sim.regs().instIndex);

        LivePoint point;
        point.index = i;
        point.windowStart = start;
        point.warmLen = design.warmLen;
        point.measureLen = design.measureLen;
        point.regs = sim.regs();
        point.l1i = CacheSetRecord(hier.l1i());
        point.l1d = CacheSetRecord(hier.l1d());
        point.l2 = CacheSetRecord(hier.l2());
        point.itlb = CacheSetRecord(hier.itlb());
        point.dtlb = CacheSetRecord(hier.dtlb());
        for (std::size_t b = 0; b < preds.size(); ++b)
            point.bpredImages.emplace(cfg.bpredConfigs[b].key(),
                                      preds[b]->serialize());

        // Capture the window's restricted live-state while warming
        // continues through it.
        MemoryImage image(cfg.imageBlockBytes);
        sim.setCaptureImage(&image);
        sim.run(design.windowLen());
        sim.setCaptureImage(nullptr);
        point.memImage = std::move(image);
        return point;
    }

    FunctionalSimulator sim;
    MemHierarchy hier;
    std::vector<std::unique_ptr<BranchPredictor>> preds;
};

/**
 * Deterministic sequential pre-pass for the shared dictionary: warm
 * and serialize the first few points exactly as the real build will,
 * then distill their payloads. The pre-pass re-simulates a short
 * program prefix, so training cost is a few windows of warming —
 * noise against the full build.
 */
Blob
trainSharedDictionary(const LivePointBuilderConfig &cfg,
                      const Program &prog, const SampleDesign &design)
{
    const std::uint64_t n = std::min<std::uint64_t>(
        design.count,
        std::max<std::size_t>(cfg.dictionarySamples, 1));
    WarmingRig rig(prog, cfg);
    std::vector<Blob> payloads;
    payloads.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        payloads.push_back(rig.capture(cfg, design, i).serialize());
    std::vector<ByteSpan> samples;
    samples.reserve(payloads.size());
    for (const Blob &p : payloads)
        samples.emplace_back(p);
    return zipTrainDictionary(samples, cfg.dictionaryBytes);
}

/** One record's bytes plus the metadata addEncoded() wants. */
struct EncodedRecord
{
    Blob bytes;
    std::uint8_t flags = 0;
    std::uint64_t rawHash = 0;
};

/**
 * Encode one payload: compress directly (dictionary-primed when the
 * library has one) and, when @p prevRaw is given, also as a delta
 * against the predecessor — then keep whichever is smaller, so delta
 * encoding never costs bytes. Deterministic in its inputs alone; the
 * parallel build's encoder threads can run it in any order.
 */
EncodedRecord
encodeRecord(const Blob &raw, const Blob *prevRaw, const Blob &dict)
{
    EncodedRecord rec;
    Blob direct = zipCompress(raw, ByteSpan(dict));
    if (prevRaw) {
        Blob delta = zipCompressDelta(raw, ByteSpan(*prevRaw));
        if (delta.size() < direct.size()) {
            rec.bytes = std::move(delta);
            rec.flags = LivePointLibrary::kFlagDelta;
            rec.rawHash = livePointRawHash(raw.data(), raw.size());
            return rec;
        }
    }
    rec.bytes = std::move(direct);
    if (!dict.empty()) {
        rec.flags = LivePointLibrary::kFlagDict;
        rec.rawHash = livePointRawHash(raw.data(), raw.size());
    }
    return rec;
}

/**
 * Smallest geometry whose set records cover both arguments: the
 * covering relation (cache/warmstate.hh) needs the target's sets and
 * associativity to divide the stored maximum's, so the cover keeps
 * the larger set count and the larger associativity per level. Line
 * sizes must agree — a set record cannot be re-binned across them.
 */
CacheGeometry
coverGeometry(const char *what, const CacheGeometry &a,
              const CacheGeometry &b)
{
    if (a.lineBytes != b.lineBytes)
        throw std::invalid_argument(
            strfmt("restricted build: %s line sizes differ "
                   "(%llu vs %llu)",
                   what, static_cast<unsigned long long>(a.lineBytes),
                   static_cast<unsigned long long>(b.lineBytes)));
    CacheGeometry g;
    g.lineBytes = a.lineBytes;
    g.assoc = std::max(a.assoc, b.assoc);
    const std::uint64_t sets = std::max(a.numSets(), b.numSets());
    g.sizeBytes = sets * g.assoc * g.lineBytes;
    return g;
}

} // namespace

LivePointBuilderConfig
restrictedBuilderConfig(const std::vector<CoreConfig> &configs,
                        const LivePointBuilderConfig &base)
{
    if (configs.empty())
        throw std::invalid_argument(
            "restrictedBuilderConfig: no configurations given");
    LivePointBuilderConfig cfg = base;
    cfg.maxL1i = configs[0].mem.l1i;
    cfg.maxL1d = configs[0].mem.l1d;
    cfg.maxL2 = configs[0].mem.l2;
    cfg.maxItlb = configs[0].mem.itlb;
    cfg.maxDtlb = configs[0].mem.dtlb;
    cfg.bpredConfigs.clear();
    for (const CoreConfig &c : configs) {
        cfg.maxL1i = coverGeometry("L1I", cfg.maxL1i, c.mem.l1i);
        cfg.maxL1d = coverGeometry("L1D", cfg.maxL1d, c.mem.l1d);
        cfg.maxL2 = coverGeometry("L2", cfg.maxL2, c.mem.l2);
        cfg.maxItlb = coverGeometry("ITLB", cfg.maxItlb, c.mem.itlb);
        cfg.maxDtlb = coverGeometry("DTLB", cfg.maxDtlb, c.mem.dtlb);
        bool known = false;
        for (const BpredConfig &bc : cfg.bpredConfigs)
            known = known || bc.key() == c.bpred.key();
        if (!known)
            cfg.bpredConfigs.push_back(c.bpred);
    }
    return cfg;
}

LivePointBuilder::LivePointBuilder(const LivePointBuilderConfig &cfg)
    : cfg_(cfg)
{
}

LivePointLibrary
LivePointBuilder::build(const Program &prog, const SampleDesign &design)
{
    const auto t0 = std::chrono::steady_clock::now();
    stats_ = BuilderStats{};

    const bool parallel =
        design.count > 0 && (cfg_.buildThreads > 1 || cfg_.pipelineEncode);
    LivePointLibrary lib = parallel ? buildParallel(prog, design)
                                    : buildSequential(prog, design);

    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    stats_.points = design.count;
    return lib;
}

BuilderStats
LivePointBuilder::buildInto(LibrarySetWriter &set,
                            const std::string &name, const Program &prog,
                            const SampleDesign &design)
{
    // The shard streams to disk and its in-memory arena dies here —
    // the fleet build's resident footprint is one shard, not the set.
    const LivePointLibrary lib = build(prog, design);
    set.addShard(name, lib);
    return stats_;
}

LivePointLibrary
LivePointBuilder::buildSequential(const Program &prog,
                                  const SampleDesign &design)
{
    LivePointLibrary lib(prog.name, design);
    if (cfg_.sharedDictionary && design.count > 0)
        lib.setDictionary(trainSharedDictionary(cfg_, prog, design));

    WarmingRig rig(prog, cfg_);
    if (!cfg_.deltaEncode && !cfg_.sharedDictionary) {
        for (std::uint64_t i = 0; i < design.count; ++i)
            lib.add(rig.capture(cfg_, design, i));
    } else {
        const std::uint64_t chain = std::max(cfg_.maxDeltaChain, 1u);
        Blob prevRaw;
        for (std::uint64_t i = 0; i < design.count; ++i) {
            Blob raw = rig.capture(cfg_, design, i).serialize();
            // Keyframe every maxDeltaChain points bounds the chain a
            // replay must rebuild (and the bytes the budget charges).
            const bool allowDelta =
                cfg_.deltaEncode && i > 0 && i % chain != 0;
            const EncodedRecord rec = encodeRecord(
                raw, allowDelta ? &prevRaw : nullptr, lib.dictionary());
            lib.addEncoded(rec.bytes, raw.size(), i, rec.flags,
                           rec.rawHash);
            prevRaw = std::move(raw);
        }
    }
    stats_.instsSimulated = rig.sim.regs().instIndex;
    stats_.shards = 1;
    return lib;
}

LivePointLibrary
LivePointBuilder::buildParallel(const Program &prog,
                                const SampleDesign &design)
{
    const std::uint64_t count = design.count;
    const unsigned S = static_cast<unsigned>(std::min<std::uint64_t>(
        std::max(cfg_.buildThreads, 1u), count));
    stats_.shards = S;

    // Contiguous shard ranges: shard s owns windows [lo[s], lo[s+1]).
    std::vector<std::uint64_t> lo(S + 1);
    for (unsigned s = 0; s <= S; ++s)
        lo[s] = count * s / S;

    // Warming prefix ahead of each shard's first window: MRRL-derived
    // by default (the reuse-latency bound of the shard's leading
    // window), or the configured fixed length. Shard 0 warms from
    // program start and is exact.
    std::vector<InstCount> prefix(S, 0);
    if (S > 1) {
        if (cfg_.shardPrefixInsts > 0) {
            for (unsigned s = 1; s < S; ++s)
                prefix[s] = cfg_.shardPrefixInsts;
        } else {
            std::vector<InstCount> starts;
            for (unsigned s = 1; s < S; ++s)
                starts.push_back(design.windowStart(lo[s]));
            const MrrlAnalysis m =
                analyzeMrrl(prog, starts, design.windowLen());
            for (unsigned s = 1; s < S; ++s)
                prefix[s] = m.warmingLengths[s - 1];
        }
    }

    // Arch-only pre-pass: capture registers + memory where each
    // shard's warming begins. No hierarchy, predictors, or capture
    // attached — this pass costs a fraction of functional warming.
    std::vector<ArchRegs> snapRegs(S);
    std::vector<SparseMemory> snapMem(S);
    if (S > 1) {
        FunctionalSimulator pre(prog);
        for (unsigned s = 1; s < S; ++s) {
            const InstCount ws = design.windowStart(lo[s]);
            const InstCount pos = ws > prefix[s] ? ws - prefix[s] : 0;
            // Snapshot positions are visited in one forward pass; a
            // prefix reaching back past the previous snapshot starts
            // where the pass already is. That truncation shortens the
            // warming below the MRRL bound, so it is accounted and
            // warned, not silently absorbed.
            if (pos > pre.regs().instIndex) {
                pre.run(pos - pre.regs().instIndex);
            } else {
                stats_.prefixShortfallInsts +=
                    pre.regs().instIndex - pos;
            }
            snapRegs[s] = pre.regs();
            snapMem[s] = pre.memory().clone();
        }
        stats_.prePassInsts = pre.regs().instIndex;
        if (stats_.prefixShortfallInsts)
            warn("sharded build: %llu warming insts truncated by "
                 "overlapping shard prefixes (use fewer shards or a "
                 "shorter prefix)",
                 static_cast<unsigned long long>(
                     stats_.prefixShortfallInsts));
    }

    // Cross-point encodings (shared dictionary / delta) need each
    // record's *raw* predecessor bytes, so this variant serializes on
    // the simulating thread (publishing raws[i] before slot i is
    // queued) and lets encoder threads compress slots in any order —
    // encodeRecord() is deterministic in its inputs, so the library
    // bytes are schedule-independent. Delta chains restart at every
    // shard boundary (shard-leading warm state differs under S>1
    // anyway) and every maxDeltaChain windows within a shard.
    if (cfg_.deltaEncode || cfg_.sharedDictionary) {
        LivePointLibrary lib(prog.name, design);
        if (cfg_.sharedDictionary)
            lib.setDictionary(trainSharedDictionary(cfg_, prog, design));
        const std::uint64_t chain = std::max(cfg_.maxDeltaChain, 1u);

        std::vector<std::uint8_t> eligible(count, 0);
        if (cfg_.deltaEncode)
            for (unsigned s = 0; s < S; ++s)
                for (std::uint64_t i = lo[s] + 1; i < lo[s + 1]; ++i)
                    eligible[i] = (i - lo[s]) % chain != 0;

        // raws[i] feeds slot i's encode and, when i+1 is
        // delta-eligible, slot i+1's; free on the last use so the
        // resident raw payloads track the queue depth, not the count.
        std::vector<Blob> raws(count);
        std::vector<unsigned> rawUses(count);
        for (std::uint64_t i = 0; i < count; ++i)
            rawUses[i] = 1u + (i + 1 < count && eligible[i + 1] ? 1u : 0u);

        const unsigned E = cfg_.encodeThreads
                               ? cfg_.encodeThreads
                               : std::max(1u, (S + 1) / 2);
        std::mutex m;
        std::condition_variable cvSpace;
        std::condition_variable cvWork;
        std::deque<std::uint64_t> queue;
        const std::size_t cap = 2 * E + 2;
        unsigned liveShards = S;
        std::atomic<bool> failed{false};

        std::vector<Blob> recs(count);
        std::vector<std::uint64_t> rawSizes(count);
        std::vector<std::uint64_t> indices(count);
        std::vector<std::uint8_t> recFlags(count);
        std::vector<std::uint64_t> recHashes(count);
        std::atomic<InstCount> warmed{0};

        auto halt = [&]() {
            failed.store(true);
            {
                std::lock_guard<std::mutex> lk(m);
            }
            cvSpace.notify_all();
            cvWork.notify_all();
        };

        auto shardWorker = [&](unsigned s) {
            WarmingRig rig(prog, cfg_);
            if (s > 0)
                rig.sim.restore(snapRegs[s], std::move(snapMem[s]));
            const InstCount simStart = rig.sim.regs().instIndex;
            for (std::uint64_t i = lo[s]; i < lo[s + 1]; ++i) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                LivePoint point = rig.capture(cfg_, design, i);
                raws[i] = point.serialize();
                indices[i] = point.index;
                std::unique_lock<std::mutex> lk(m);
                cvSpace.wait(lk, [&]() {
                    return failed.load() || queue.size() < cap;
                });
                if (failed.load())
                    return;
                queue.push_back(i);
                lk.unlock();
                cvWork.notify_one();
            }
            warmed.fetch_add(rig.sim.regs().instIndex - simStart,
                             std::memory_order_relaxed);
            std::unique_lock<std::mutex> lk(m);
            if (--liveShards == 0) {
                lk.unlock();
                cvWork.notify_all();
            }
        };

        auto encoder = [&]() {
            while (true) {
                std::uint64_t i = 0;
                {
                    std::unique_lock<std::mutex> lk(m);
                    cvWork.wait(lk, [&]() {
                        return failed.load() || !queue.empty() ||
                               liveShards == 0;
                    });
                    if (failed.load())
                        return;
                    if (queue.empty())
                        return;
                    i = queue.front();
                    queue.pop_front();
                }
                cvSpace.notify_one();
                EncodedRecord rec = encodeRecord(
                    raws[i], eligible[i] ? &raws[i - 1] : nullptr,
                    lib.dictionary());
                rawSizes[i] = raws[i].size();
                recs[i] = std::move(rec.bytes);
                recFlags[i] = rec.flags;
                recHashes[i] = rec.rawHash;
                std::lock_guard<std::mutex> lk(m);
                if (--rawUses[i] == 0)
                    Blob().swap(raws[i]);
                if (eligible[i] && --rawUses[i - 1] == 0)
                    Blob().swap(raws[i - 1]);
            }
        };

        ThreadPool pool(S + E);
        pool.run([&](unsigned id) {
            try {
                if (id < S)
                    shardWorker(id);
                else
                    encoder();
            } catch (...) {
                halt();
                throw;
            }
        });

        std::uint64_t totalBytes = 0;
        for (const Blob &r : recs)
            totalBytes += r.size();
        lib.reserve(totalBytes, count);
        for (std::uint64_t i = 0; i < count; ++i) {
            lib.addEncoded(recs[i], rawSizes[i], indices[i], recFlags[i],
                           recHashes[i]);
            Blob().swap(recs[i]);
        }
        stats_.instsSimulated = warmed.load();
        return lib;
    }

    // Simulating shards hand finished points to encoder threads
    // through a bounded queue; encoders serialize + compress into
    // per-slot buffers, so record bytes land in window order no
    // matter which thread produced them.
    const unsigned E = cfg_.encodeThreads ? cfg_.encodeThreads
                                          : std::max(1u, (S + 1) / 2);
    struct Job
    {
        std::uint64_t slot = 0;
        LivePoint point;
    };
    std::mutex m;
    std::condition_variable cvSpace; //!< shards wait for queue room
    std::condition_variable cvWork;  //!< encoders wait for points
    std::deque<Job> queue;
    const std::size_t cap = 2 * E + 2;
    unsigned liveShards = S; //!< guarded by m
    std::atomic<bool> failed{false};

    std::vector<Blob> recs(count);
    std::vector<std::uint64_t> rawSizes(count);
    std::vector<std::uint64_t> indices(count);
    std::atomic<InstCount> warmed{0};

    auto halt = [&]() {
        failed.store(true);
        {
            std::lock_guard<std::mutex> lk(m);
        }
        cvSpace.notify_all();
        cvWork.notify_all();
    };

    auto shardWorker = [&](unsigned s) {
        WarmingRig rig(prog, cfg_);
        if (s > 0)
            rig.sim.restore(snapRegs[s], std::move(snapMem[s]));
        const InstCount simStart = rig.sim.regs().instIndex;
        for (std::uint64_t i = lo[s]; i < lo[s + 1]; ++i) {
            if (failed.load(std::memory_order_relaxed))
                return;
            LivePoint point = rig.capture(cfg_, design, i);
            std::unique_lock<std::mutex> lk(m);
            cvSpace.wait(lk, [&]() {
                return failed.load() || queue.size() < cap;
            });
            if (failed.load())
                return;
            queue.push_back(Job{i, std::move(point)});
            lk.unlock();
            cvWork.notify_one();
        }
        warmed.fetch_add(rig.sim.regs().instIndex - simStart,
                         std::memory_order_relaxed);
        std::unique_lock<std::mutex> lk(m);
        if (--liveShards == 0) {
            lk.unlock();
            cvWork.notify_all();
        }
    };

    auto encoder = [&]() {
        while (true) {
            Job job;
            {
                std::unique_lock<std::mutex> lk(m);
                cvWork.wait(lk, [&]() {
                    return failed.load() || !queue.empty() ||
                           liveShards == 0;
                });
                if (failed.load())
                    return;
                if (queue.empty())
                    return; // every shard done and queue drained
                job = std::move(queue.front());
                queue.pop_front();
            }
            cvSpace.notify_one();
            const Blob raw = job.point.serialize();
            recs[job.slot] = zipCompress(raw);
            rawSizes[job.slot] = raw.size();
            indices[job.slot] = job.point.index;
        }
    };

    ThreadPool pool(S + E);
    pool.run([&](unsigned id) {
        try {
            if (id < S)
                shardWorker(id);
            else
                encoder();
        } catch (...) {
            halt();
            throw;
        }
    });

    LivePointLibrary lib(prog.name, design);
    std::uint64_t totalBytes = 0;
    for (const Blob &r : recs)
        totalBytes += r.size();
    lib.reserve(totalBytes, count);
    for (std::uint64_t i = 0; i < count; ++i) {
        lib.addCompressed(recs[i], rawSizes[i], indices[i]);
        Blob().swap(recs[i]); // keep peak memory at ~one library
    }
    stats_.instsSimulated = warmed.load();
    return lib;
}

} // namespace lp
