#include "core/builder.hh"

#include <chrono>
#include <memory>

#include "func/functional.hh"

namespace lp
{

LivePointBuilder::LivePointBuilder(const LivePointBuilderConfig &cfg)
    : cfg_(cfg)
{
}

LivePointLibrary
LivePointBuilder::build(const Program &prog, const SampleDesign &design)
{
    const auto t0 = std::chrono::steady_clock::now();

    MemHierarchyConfig maxMem;
    maxMem.l1i = cfg_.maxL1i;
    maxMem.l1d = cfg_.maxL1d;
    maxMem.l2 = cfg_.maxL2;
    maxMem.itlb = cfg_.maxItlb;
    maxMem.dtlb = cfg_.maxDtlb;
    MemHierarchy hier(maxMem);

    std::vector<std::unique_ptr<BranchPredictor>> preds;
    for (const BpredConfig &bc : cfg_.bpredConfigs)
        preds.push_back(std::make_unique<BranchPredictor>(bc));

    FunctionalSimulator sim(prog);
    sim.setHierarchy(&hier);
    for (auto &bp : preds)
        sim.addPredictor(bp.get());

    LivePointLibrary lib(prog.name, design);
    for (std::uint64_t i = 0; i < design.count; ++i) {
        const InstCount start = design.windowStart(i);
        sim.run(start - sim.regs().instIndex);

        LivePoint point;
        point.index = i;
        point.windowStart = start;
        point.warmLen = design.warmLen;
        point.measureLen = design.measureLen;
        point.regs = sim.regs();
        point.l1i = CacheSetRecord(hier.l1i());
        point.l1d = CacheSetRecord(hier.l1d());
        point.l2 = CacheSetRecord(hier.l2());
        point.itlb = CacheSetRecord(hier.itlb());
        point.dtlb = CacheSetRecord(hier.dtlb());
        for (std::size_t b = 0; b < preds.size(); ++b)
            point.bpredImages.emplace(cfg_.bpredConfigs[b].key(),
                                      preds[b]->serialize());

        // Capture the window's restricted live-state while warming
        // continues through it.
        MemoryImage image(cfg_.imageBlockBytes);
        sim.setCaptureImage(&image);
        sim.run(design.windowLen());
        sim.setCaptureImage(nullptr);
        point.memImage = std::move(image);

        lib.add(point);
    }

    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    stats_.points = design.count;
    stats_.instsSimulated = sim.regs().instIndex;
    return lib;
}

} // namespace lp
