#include "core/builder.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "codec/zip.hh"
#include "func/functional.hh"
#include "mrrl/mrrl.hh"
#include "util/log.hh"
#include "util/threadpool.hh"

namespace lp
{

namespace
{

MemHierarchyConfig
maxMemConfig(const LivePointBuilderConfig &cfg)
{
    MemHierarchyConfig mem;
    mem.l1i = cfg.maxL1i;
    mem.l1d = cfg.maxL1d;
    mem.l2 = cfg.maxL2;
    mem.itlb = cfg.maxItlb;
    mem.dtlb = cfg.maxDtlb;
    return mem;
}

/**
 * One shard's warming state: a functional simulator with the
 * library-maximum hierarchy and every covered predictor attached.
 */
struct WarmingRig
{
    WarmingRig(const Program &prog, const LivePointBuilderConfig &cfg)
        : sim(prog), hier(maxMemConfig(cfg))
    {
        for (const BpredConfig &bc : cfg.bpredConfigs)
            preds.push_back(std::make_unique<BranchPredictor>(bc));
        sim.setHierarchy(&hier);
        for (auto &bp : preds)
            sim.addPredictor(bp.get());
    }

    /**
     * Warm to window @p i's start, snapshot the point, then keep
     * warming through the window while capturing its live-state.
     */
    LivePoint capture(const LivePointBuilderConfig &cfg,
                      const SampleDesign &design, std::uint64_t i)
    {
        const InstCount start = design.windowStart(i);
        sim.run(start - sim.regs().instIndex);

        LivePoint point;
        point.index = i;
        point.windowStart = start;
        point.warmLen = design.warmLen;
        point.measureLen = design.measureLen;
        point.regs = sim.regs();
        point.l1i = CacheSetRecord(hier.l1i());
        point.l1d = CacheSetRecord(hier.l1d());
        point.l2 = CacheSetRecord(hier.l2());
        point.itlb = CacheSetRecord(hier.itlb());
        point.dtlb = CacheSetRecord(hier.dtlb());
        for (std::size_t b = 0; b < preds.size(); ++b)
            point.bpredImages.emplace(cfg.bpredConfigs[b].key(),
                                      preds[b]->serialize());

        // Capture the window's restricted live-state while warming
        // continues through it.
        MemoryImage image(cfg.imageBlockBytes);
        sim.setCaptureImage(&image);
        sim.run(design.windowLen());
        sim.setCaptureImage(nullptr);
        point.memImage = std::move(image);
        return point;
    }

    FunctionalSimulator sim;
    MemHierarchy hier;
    std::vector<std::unique_ptr<BranchPredictor>> preds;
};

} // namespace

LivePointBuilder::LivePointBuilder(const LivePointBuilderConfig &cfg)
    : cfg_(cfg)
{
}

LivePointLibrary
LivePointBuilder::build(const Program &prog, const SampleDesign &design)
{
    const auto t0 = std::chrono::steady_clock::now();
    stats_ = BuilderStats{};

    const bool parallel =
        design.count > 0 && (cfg_.buildThreads > 1 || cfg_.pipelineEncode);
    LivePointLibrary lib = parallel ? buildParallel(prog, design)
                                    : buildSequential(prog, design);

    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    stats_.points = design.count;
    return lib;
}

BuilderStats
LivePointBuilder::buildInto(LibrarySetWriter &set,
                            const std::string &name, const Program &prog,
                            const SampleDesign &design)
{
    // The shard streams to disk and its in-memory arena dies here —
    // the fleet build's resident footprint is one shard, not the set.
    const LivePointLibrary lib = build(prog, design);
    set.addShard(name, lib);
    return stats_;
}

LivePointLibrary
LivePointBuilder::buildSequential(const Program &prog,
                                  const SampleDesign &design)
{
    WarmingRig rig(prog, cfg_);
    LivePointLibrary lib(prog.name, design);
    for (std::uint64_t i = 0; i < design.count; ++i)
        lib.add(rig.capture(cfg_, design, i));
    stats_.instsSimulated = rig.sim.regs().instIndex;
    stats_.shards = 1;
    return lib;
}

LivePointLibrary
LivePointBuilder::buildParallel(const Program &prog,
                                const SampleDesign &design)
{
    const std::uint64_t count = design.count;
    const unsigned S = static_cast<unsigned>(std::min<std::uint64_t>(
        std::max(cfg_.buildThreads, 1u), count));
    stats_.shards = S;

    // Contiguous shard ranges: shard s owns windows [lo[s], lo[s+1]).
    std::vector<std::uint64_t> lo(S + 1);
    for (unsigned s = 0; s <= S; ++s)
        lo[s] = count * s / S;

    // Warming prefix ahead of each shard's first window: MRRL-derived
    // by default (the reuse-latency bound of the shard's leading
    // window), or the configured fixed length. Shard 0 warms from
    // program start and is exact.
    std::vector<InstCount> prefix(S, 0);
    if (S > 1) {
        if (cfg_.shardPrefixInsts > 0) {
            for (unsigned s = 1; s < S; ++s)
                prefix[s] = cfg_.shardPrefixInsts;
        } else {
            std::vector<InstCount> starts;
            for (unsigned s = 1; s < S; ++s)
                starts.push_back(design.windowStart(lo[s]));
            const MrrlAnalysis m =
                analyzeMrrl(prog, starts, design.windowLen());
            for (unsigned s = 1; s < S; ++s)
                prefix[s] = m.warmingLengths[s - 1];
        }
    }

    // Arch-only pre-pass: capture registers + memory where each
    // shard's warming begins. No hierarchy, predictors, or capture
    // attached — this pass costs a fraction of functional warming.
    std::vector<ArchRegs> snapRegs(S);
    std::vector<SparseMemory> snapMem(S);
    if (S > 1) {
        FunctionalSimulator pre(prog);
        for (unsigned s = 1; s < S; ++s) {
            const InstCount ws = design.windowStart(lo[s]);
            const InstCount pos = ws > prefix[s] ? ws - prefix[s] : 0;
            // Snapshot positions are visited in one forward pass; a
            // prefix reaching back past the previous snapshot starts
            // where the pass already is. That truncation shortens the
            // warming below the MRRL bound, so it is accounted and
            // warned, not silently absorbed.
            if (pos > pre.regs().instIndex) {
                pre.run(pos - pre.regs().instIndex);
            } else {
                stats_.prefixShortfallInsts +=
                    pre.regs().instIndex - pos;
            }
            snapRegs[s] = pre.regs();
            snapMem[s] = pre.memory().clone();
        }
        stats_.prePassInsts = pre.regs().instIndex;
        if (stats_.prefixShortfallInsts)
            warn("sharded build: %llu warming insts truncated by "
                 "overlapping shard prefixes (use fewer shards or a "
                 "shorter prefix)",
                 static_cast<unsigned long long>(
                     stats_.prefixShortfallInsts));
    }

    // Simulating shards hand finished points to encoder threads
    // through a bounded queue; encoders serialize + compress into
    // per-slot buffers, so record bytes land in window order no
    // matter which thread produced them.
    const unsigned E = cfg_.encodeThreads ? cfg_.encodeThreads
                                          : std::max(1u, (S + 1) / 2);
    struct Job
    {
        std::uint64_t slot = 0;
        LivePoint point;
    };
    std::mutex m;
    std::condition_variable cvSpace; //!< shards wait for queue room
    std::condition_variable cvWork;  //!< encoders wait for points
    std::deque<Job> queue;
    const std::size_t cap = 2 * E + 2;
    unsigned liveShards = S; //!< guarded by m
    std::atomic<bool> failed{false};

    std::vector<Blob> recs(count);
    std::vector<std::uint64_t> rawSizes(count);
    std::vector<std::uint64_t> indices(count);
    std::atomic<InstCount> warmed{0};

    auto halt = [&]() {
        failed.store(true);
        {
            std::lock_guard<std::mutex> lk(m);
        }
        cvSpace.notify_all();
        cvWork.notify_all();
    };

    auto shardWorker = [&](unsigned s) {
        WarmingRig rig(prog, cfg_);
        if (s > 0)
            rig.sim.restore(snapRegs[s], std::move(snapMem[s]));
        const InstCount simStart = rig.sim.regs().instIndex;
        for (std::uint64_t i = lo[s]; i < lo[s + 1]; ++i) {
            if (failed.load(std::memory_order_relaxed))
                return;
            LivePoint point = rig.capture(cfg_, design, i);
            std::unique_lock<std::mutex> lk(m);
            cvSpace.wait(lk, [&]() {
                return failed.load() || queue.size() < cap;
            });
            if (failed.load())
                return;
            queue.push_back(Job{i, std::move(point)});
            lk.unlock();
            cvWork.notify_one();
        }
        warmed.fetch_add(rig.sim.regs().instIndex - simStart,
                         std::memory_order_relaxed);
        std::unique_lock<std::mutex> lk(m);
        if (--liveShards == 0) {
            lk.unlock();
            cvWork.notify_all();
        }
    };

    auto encoder = [&]() {
        while (true) {
            Job job;
            {
                std::unique_lock<std::mutex> lk(m);
                cvWork.wait(lk, [&]() {
                    return failed.load() || !queue.empty() ||
                           liveShards == 0;
                });
                if (failed.load())
                    return;
                if (queue.empty())
                    return; // every shard done and queue drained
                job = std::move(queue.front());
                queue.pop_front();
            }
            cvSpace.notify_one();
            const Blob raw = job.point.serialize();
            recs[job.slot] = zipCompress(raw);
            rawSizes[job.slot] = raw.size();
            indices[job.slot] = job.point.index;
        }
    };

    ThreadPool pool(S + E);
    pool.run([&](unsigned id) {
        try {
            if (id < S)
                shardWorker(id);
            else
                encoder();
        } catch (...) {
            halt();
            throw;
        }
    });

    LivePointLibrary lib(prog.name, design);
    std::uint64_t totalBytes = 0;
    for (const Blob &r : recs)
        totalBytes += r.size();
    lib.reserve(totalBytes, count);
    for (std::uint64_t i = 0; i < count; ++i) {
        lib.addCompressed(recs[i], rawSizes[i], indices[i]);
        Blob().swap(recs[i]); // keep peak memory at ~one library
    }
    stats_.instsSimulated = warmed.load();
    return lib;
}

} // namespace lp
