/**
 * @file
 * The pooled parallel replay engine. Live-point replay is the hot
 * path of everything downstream of a library, so the engine removes
 * every per-point cost the naive loop pays:
 *
 *  - **Pooled contexts.** Each worker owns one ReplayContext per core
 *    configuration whose SparseMemory, MemHierarchy, BranchPredictor,
 *    and OoOCore are reset and reused across points (zero-realloc
 *    reconstruction) instead of heap-constructed per point.
 *  - **Decode pipeline.** Dedicated producer threads decompress and
 *    deserialize points into a bounded ring of reusable slot buffers,
 *    so simulation workers never block on the library codec.
 *  - **Work stealing.** Points are claimed from an atomic counter, so
 *    a straggling point never serializes the tail the way static
 *    striding does.
 *  - **Block-synchronous folding.** Results are folded on the calling
 *    thread in deterministic block order; confidence checks (early
 *    stopping) happen at block barriers. Estimates are therefore
 *    bit-identical at every thread count, early stopping included.
 */

#ifndef LP_CORE_REPLAY_HH
#define LP_CORE_REPLAY_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "core/library.hh"
#include "uarch/core.hh"
#include "util/threadpool.hh"

namespace lp
{

/** Fold granularity used when an options struct leaves it 0. */
inline constexpr std::size_t defaultFoldBlock = 32;

struct ReplayEngineOptions
{
    unsigned threads = 1;       //!< simulation workers
    unsigned decodeThreads = 0; //!< decode producers; 0 = auto
    bool approxWrongPath = false;
    std::size_t ringSlots = 0;  //!< decode ring depth; 0 = auto
};

/**
 * One worker's reusable replay state for one core configuration. All
 * owned structures are reset in place per point; nothing is
 * reallocated between points.
 */
class ReplayContext
{
  public:
    ReplayContext(const Program &prog, const CoreConfig &cfg);

    ReplayContext(const ReplayContext &) = delete;
    ReplayContext &operator=(const ReplayContext &) = delete;

    const CoreConfig &config() const { return cfg_; }

    /** Reconstruct @p point into the pooled state and replay it. */
    WindowResult simulate(const LivePoint &point,
                          bool approxWrongPath = false);

  private:
    const Program &prog_;
    CoreConfig cfg_;
    std::string bpredKey_;
    SparseMemory mem_;
    DirectMemPort port_;
    MemHierarchy hier_;
    BranchPredictor bp_;
    OoOCore core_;
};

class ReplayEngine
{
  public:
    /**
     * Build an engine simulating every point under each of @p cfgs
     * (one config for absolute estimation, two for matched pairs —
     * all configs of a point run back-to-back on the same worker, so
     * pairing stays exact).
     */
    ReplayEngine(const Program &prog, std::vector<CoreConfig> cfgs,
                 const ReplayEngineOptions &opt);

    unsigned threads() const { return threads_; }
    unsigned decodeThreads() const { return producers_; }
    std::size_t configCount() const { return cfgs_.size(); }

    /** Raw live-point bytes decoded so far, across all calls. */
    std::uint64_t bytesDecoded() const
    {
        return bytesDecoded_.load(std::memory_order_relaxed);
    }

    /**
     * Replay lib[order[k]] for every k. foldPoint(k, results) runs on
     * the calling thread for k = 0, 1, ... strictly in order
     * (results[c] is the k-th point's outcome under cfgs[c]);
     * foldBarrier(end) runs after each block of @p blockSize folds
     * and returns false to stop early. With @p stopEarly, workers are
     * throttled to stay near the fold frontier so stopping actually
     * saves work; without it they free-run to the end.
     */
    void run(const LivePointLibrary &lib,
             const std::vector<std::size_t> &order,
             std::size_t blockSize, bool stopEarly,
             const std::function<void(std::size_t, const WindowResult *)>
                 &foldPoint,
             const std::function<bool(std::size_t)> &foldBarrier);

    /**
     * Decode and replay a single point on the calling thread using a
     * dedicated pooled context (config @p cfgIdx) — the sequential
     * path adaptive algorithms such as stratified allocation take
     * between batches.
     */
    WindowResult simulateOne(const LivePointLibrary &lib,
                             std::size_t pos, std::size_t cfgIdx = 0);

  private:
    const Program &prog_;
    std::vector<CoreConfig> cfgs_;
    bool approxWrongPath_;
    unsigned threads_;
    unsigned producers_;
    std::size_t ringSlots_;
    std::vector<std::unique_ptr<ReplayContext>> ctx_; //!< worker-major
    std::vector<std::unique_ptr<ReplayContext>> callerCtx_;
    Blob callerScratch_;
    LivePoint callerPoint_;
    std::atomic<std::uint64_t> bytesDecoded_{0};
    ThreadPool pool_;
};

} // namespace lp

#endif // LP_CORE_REPLAY_HH
