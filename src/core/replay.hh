/**
 * @file
 * The pooled parallel replay engine. Live-point replay is the hot
 * path of everything downstream of a library, so the engine removes
 * every per-point cost the naive loop pays:
 *
 *  - **Pooled contexts.** Each worker owns one ReplayContext whose
 *    SparseMemory, MemHierarchy, BranchPredictor, and OoOCore are
 *    reset and reused across points (zero-realloc reconstruction)
 *    instead of heap-constructed per point.
 *  - **Decode-once fan-out.** A context binds every configuration of
 *    the run at once: the worker decodes a live-point and applies its
 *    memory image a single time, then replays it through each active
 *    configuration over a write-private overlay — the decode and
 *    live-state cost Figure 7 shows dominating per-point replay is
 *    paid once per point, not once per configuration.
 *  - **Decode pipeline.** Dedicated producer threads decompress and
 *    deserialize points into a bounded ring of reusable slot buffers,
 *    so simulation workers never block on the library codec.
 *  - **Work stealing.** Points are claimed from an atomic counter, so
 *    a straggling point never serializes the tail the way static
 *    striding does.
 *  - **Block-synchronous folding.** Results are folded on the calling
 *    thread in deterministic block order; confidence checks (early
 *    stopping) happen at block barriers, and the barrier can retire
 *    individual configurations (a campaign cell that reached its
 *    confidence target) so freed workers migrate to the rest.
 *    Estimates are therefore bit-identical at every thread count,
 *    early stopping included.
 */

#ifndef LP_CORE_REPLAY_HH
#define LP_CORE_REPLAY_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/library.hh"
#include "uarch/core.hh"
#include "util/cancel.hh"
#include "util/threadpool.hh"

namespace lp
{

/** Fold granularity used when an options struct leaves it 0. */
inline constexpr std::size_t defaultFoldBlock = 32;

/** Configurations an engine can fan one decode out to (mask width). */
inline constexpr std::size_t maxReplayConfigs = 64;

/** Active-configuration mask with the low @p nc bits set. */
inline constexpr std::uint64_t
replayMaskAll(std::size_t nc)
{
    return nc >= maxReplayConfigs ? ~0ull : (1ull << nc) - 1;
}

/**
 * The canonical processing order every replay runner uses: identity,
 * or a seed-deterministic Fisher-Yates permutation when @p shuffleSeed
 * is nonzero. Shared so a campaign cell and a standalone
 * runLivePoints() with the same seed visit points identically — the
 * precondition for their results being bit-identical.
 */
std::vector<std::size_t> replayOrder(std::size_t n,
                                     std::uint64_t shuffleSeed);

struct ReplayEngineOptions
{
    unsigned threads = 1;       //!< simulation workers
    unsigned decodeThreads = 0; //!< decode producers; 0 = auto
    bool approxWrongPath = false;
    std::size_t ringSlots = 0;  //!< decode ring depth; 0 = auto

    /**
     * Resident-budget streaming mode (0 = off). A nonzero budget
     * bounds the engine's in-flight window: each point is charged
     * its compressed + raw bytes — summed over its delta chain when
     * the library delta-encodes, since decoding a delta point
     * materializes its bases — when a decode producer admits it
     * (with a backend prefetch hint issued ahead of the simulation
     * claim counter) and credited back when the fold barrier passes
     * it (with a release hint, so a mapped backend's pages can be
     * dropped behind the run). Admission is strictly ordered and
     * only ever *delays* decodes, so estimates, stopping points, and
     * manifests are bit-identical to the unbudgeted run at every
     * thread count. The fold-frontier block is always admitted
     * regardless of budget (the barrier cannot release bytes until
     * its block completes), so a budget below one block's bytes
     * degrades to block-at-a-time streaming instead of deadlocking.
     */
    std::uint64_t residentBudgetBytes = 0;

    /**
     * Run on this pool instead of constructing one per engine (the
     * campaign engine shares one pool across every workload's run).
     * Must hold at least threads + decode producers workers; the
     * caller keeps ownership and must not run anything else on it
     * while this engine runs.
     */
    ThreadPool *sharedPool = nullptr;

    /**
     * Supervision hook (optional; the caller keeps ownership). The
     * engine bumps control->progress once per simulated point — the
     * heartbeat a watchdog monitors — and honors control->failStuck
     * by aborting replays parked at the `replay.cell` hang site as
     * contained per-configuration faults (see ReplayEngine fault
     * accessors) instead of killing the run.
     */
    ReplayControl *control = nullptr;
};

/**
 * Decode producers an engine built with @p opt will use — what a
 * caller supplying a shared pool must size for (threads + this).
 */
unsigned replayDecodeThreads(const ReplayEngineOptions &opt);

/**
 * Cross-run schedule for ReplayEngine::run — where the run begins and
 * which configurations start active. The default plan replays every
 * configuration from point 0, which is what every non-resumed run
 * wants; a resumed campaign offsets the run to its fold frontier
 * (every unconverged cell sits exactly there) and masks out the
 * already-converged configurations, so finished work is never
 * replayed.
 */
struct ReplayPlan
{
    /**
     * First point position (into `order`) the run decodes, simulates,
     * and folds. Must be a multiple of the fold block size.
     */
    std::size_t firstPoint = 0;

    /** Configurations active at firstPoint. */
    std::uint64_t initialMask = ~0ull;
};

/**
 * One worker's reusable replay state for a fixed set of core
 * configurations. All owned structures are reset in place per point;
 * nothing is reallocated between points. The single-configuration
 * form replays directly against the pooled memory; the
 * multi-configuration form loads a point's live state once and
 * replays each configuration over a write-private overlay, so the
 * per-point state cost is paid once, not once per configuration —
 * with results bit-identical to single-configuration replay (the
 * overlay is exact for the core's 8-aligned 8-byte accesses).
 */
class ReplayContext
{
  public:
    ReplayContext(const Program &prog, const CoreConfig &cfg);
    ReplayContext(const Program &prog,
                  const std::vector<CoreConfig> &cfgs);

    ReplayContext(const ReplayContext &) = delete;
    ReplayContext &operator=(const ReplayContext &) = delete;

    std::size_t configCount() const { return units_.size(); }
    const CoreConfig &config(std::size_t i = 0) const;

    /**
     * Reconstruct @p point into the pooled state and replay it under
     * configuration 0 — the single-configuration hot path.
     */
    WindowResult simulate(const LivePoint &point,
                          bool approxWrongPath = false);

    /**
     * Load @p point's live state (memory image) into the pooled
     * memory once, for any number of replay() calls. @p point must
     * stay alive until the last of them.
     */
    void loadPoint(const LivePoint &point);

    /**
     * Replay the loaded point under configuration @p cfgIdx on the
     * write-private overlay. Callable in any order and for any subset
     * of configurations after one loadPoint().
     */
    WindowResult replay(std::size_t cfgIdx, bool approxWrongPath = false);

  private:
    /** Per-configuration rebindable microarchitectural state. */
    struct Unit
    {
        Unit(const Program &prog, const CoreConfig &config,
             MemPort &port);

        CoreConfig cfg;
        std::string bpredKey;
        MemHierarchy hier;
        BranchPredictor bp;
        OoOCore core;
    };

    WindowResult runUnit(std::size_t unitIdx, const LivePoint &point,
                         MemPort &port, bool approxWrongPath);

    /**
     * Pristine reconstructed warm state shared by every unit of one
     * cache-geometry (or predictor-table) group: the first unit of
     * the group to replay a point reconstructs from the record and
     * snapshots here, the rest memcpy the snapshot instead of
     * replaying the record again. `epoch` says which loadPoint() the
     * snapshot belongs to.
     */
    struct CacheStash
    {
        std::unique_ptr<MemHierarchy> hier;
        std::uint64_t epoch = 0;
    };
    struct BpredStash
    {
        std::unique_ptr<BranchPredictor> bp;
        std::uint64_t epoch = 0;
    };

    const Program &prog_;
    SparseMemory mem_;
    DirectMemPort direct_;
    OverlayMemPort overlay_;
    const LivePoint *loaded_ = nullptr;
    std::vector<std::unique_ptr<Unit>> units_;
    std::uint64_t pointEpoch_ = 0;
    std::vector<const Blob *> bpredImage_; //!< per unit, per point
    std::vector<int> cacheStashOf_;        //!< unit -> stash, -1 = none
    std::vector<int> bpredStashOf_;        //!< unit -> stash, -1 = none
    std::vector<CacheStash> cacheStash_;
    std::vector<BpredStash> bpredStash_;
};

class ReplayEngine
{
  public:
    /**
     * Build an engine simulating every point under each of @p cfgs
     * (one config for absolute estimation, two for matched pairs, a
     * whole campaign's design space for decode-once fan-out — all
     * configs of a point run back-to-back on the same worker from one
     * decode, so common-random-numbers pairing stays exact).
     */
    ReplayEngine(const Program &prog, std::vector<CoreConfig> cfgs,
                 const ReplayEngineOptions &opt);

    unsigned threads() const { return threads_; }
    unsigned decodeThreads() const { return producers_; }
    std::size_t configCount() const { return cfgs_.size(); }

    /** Raw live-point bytes decoded so far, across all calls. */
    std::uint64_t bytesDecoded() const
    {
        return bytesDecoded_.load(std::memory_order_relaxed);
    }

    /** Points decoded so far (each may fan out to many replays). */
    std::uint64_t pointsDecoded() const
    {
        return pointsDecoded_.load(std::memory_order_relaxed);
    }

    /** (point, config) replays executed so far, across all calls. */
    std::uint64_t replaysExecuted() const
    {
        return replaysExecuted_.load(std::memory_order_relaxed);
    }

    /**
     * Peak of the resident-budget accounting window (compressed +
     * decoded bytes of points admitted but not yet folded) across
     * all run() calls. 0 when the budget mode was never on. Stays at
     * or under residentBudgetBytes except when a single fold block
     * alone exceeds the budget (see ReplayEngineOptions).
     */
    std::uint64_t peakResidentBytes() const
    {
        return peakResidentBytes_.load(std::memory_order_relaxed);
    }

    /**
     * Configurations that took a contained per-cell fault (mask).
     * Faults come from the `replay.cell` failpoint: an injected error
     * fails the configuration immediately; an injected hang parks the
     * worker until a supervisor flips control->failStuck (the stuck
     * verdict) or the site is disarmed (a recovered stall). A faulted
     * configuration's pending results are invalid — a fold callback
     * that observes the bit here must stop consuming that
     * configuration (visibility is guaranteed: the fault is recorded
     * before the faulting point's block completes).
     */
    std::uint64_t faultedConfigs() const
    {
        return faultMask_.load(std::memory_order_acquire);
    }

    /** Details of config @p c's first fault (valid once its bit is set). */
    struct CellFaultInfo
    {
        bool stuck = false;     //!< aborted by the supervisor verdict
        std::size_t point = 0;  //!< order position where it faulted
        std::string reason;
    };
    CellFaultInfo cellFault(std::size_t c) const;

    /**
     * Replay lib[order[k]] for every k. foldPoint(k, results) runs on
     * the calling thread for k = firstPoint, firstPoint + 1, ...
     * strictly in order (results[c] is the k-th point's outcome under
     * cfgs[c], valid only for configs scheduled at k); foldBarrier(end)
     * runs after each block of @p blockSize folds and returns the mask
     * of configurations to keep replaying — 0 stops the run, dropped
     * bits retire converged configurations so workers spend the freed
     * time on the rest. With @p stopEarly, workers are throttled to
     * stay near the fold frontier so stopping actually saves work;
     * without it they free-run to the end. @p plan (optional) offsets
     * the run for a campaign resume.
     */
    void run(const LivePointLibrary &lib,
             const std::vector<std::size_t> &order,
             std::size_t blockSize, bool stopEarly,
             const std::function<void(std::size_t, const WindowResult *)>
                 &foldPoint,
             const std::function<std::uint64_t(std::size_t)> &foldBarrier,
             const ReplayPlan *plan = nullptr);

    /**
     * Decode and replay a single point on the calling thread using a
     * dedicated pooled context (config @p cfgIdx) — the sequential
     * path adaptive algorithms such as stratified allocation take
     * between batches.
     */
    WindowResult simulateOne(const LivePointLibrary &lib,
                             std::size_t pos, std::size_t cfgIdx = 0);

  private:
    void recordCellFault(std::size_t c, std::size_t point, bool stuck,
                         const std::string &reason);

    const Program &prog_;
    std::vector<CoreConfig> cfgs_;
    bool approxWrongPath_;
    unsigned threads_;
    unsigned producers_;
    std::size_t ringSlots_;
    std::vector<std::unique_ptr<ReplayContext>> ctx_; //!< one per worker
    std::vector<std::unique_ptr<ReplayContext>> callerCtx_;
    LivePointDecodeScratch callerScratch_;
    LivePoint callerPoint_;
    std::uint64_t residentBudget_;
    std::atomic<std::uint64_t> bytesDecoded_{0};
    std::atomic<std::uint64_t> pointsDecoded_{0};
    std::atomic<std::uint64_t> replaysExecuted_{0};
    std::atomic<std::uint64_t> peakResidentBytes_{0};
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_;
    ReplayControl *control_;
    std::atomic<std::uint64_t> faultMask_{0};
    mutable std::mutex faultM_;
    std::vector<CellFaultInfo> faults_; //!< per config, first fault wins
};

} // namespace lp

#endif // LP_CORE_REPLAY_HH
