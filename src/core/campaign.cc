#include "core/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/replay.hh"
#include "util/log.hh"
#include "util/threadpool.hh"

namespace lp
{

namespace
{

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kManifestMagic = 0x4c50'434d'4631ull; // LPCMF1
constexpr std::uint64_t kManifestVersion = 1;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
putStatState(DerWriter &w, const RunningStat &s)
{
    const RunningStat::State st = s.state();
    w.beginSequence();
    w.putUint(st.n);
    w.putDouble(st.mean);
    w.putDouble(st.m2);
    w.putDouble(st.min);
    w.putDouble(st.max);
    w.endSequence();
}

RunningStat
getStatState(DerReader &r)
{
    DerReader seq = r.getSequence();
    RunningStat::State st;
    st.n = seq.getUint();
    st.mean = seq.getDouble();
    st.m2 = seq.getDouble();
    st.min = seq.getDouble();
    st.max = seq.getDouble();
    return RunningStat::fromState(st);
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

const CampaignPair *
CampaignResult::pair(std::size_t workload, std::size_t base,
                     std::size_t test) const
{
    for (const CampaignPair &p : pairs) {
        if (p.workload != workload)
            continue;
        if (p.base == base && p.test == test)
            return &p;
    }
    return nullptr;
}

/**
 * The checkpoint image: per workload, the fold frontier and every
 * cell's and pair's accumulator state. Restoring a stat and folding
 * onward is arithmetically identical to never having stopped, which
 * is what makes resume exact.
 */
struct CampaignEngine::Manifest
{
    struct Cell
    {
        std::uint64_t processed = 0;
        bool converged = false;
        std::uint64_t unavailable = 0;
        RunningStat stat;
    };

    struct Workload
    {
        std::uint64_t frontier = 0; //!< points folded so far
        std::vector<Cell> cells;
        std::vector<RunningStat> pairs; //!< delta stats, (a<b) order
    };

    std::vector<Workload> workloads;
    bool restored = false; //!< loaded from disk (a resume)
};

CampaignEngine::CampaignEngine(std::vector<CampaignWorkload> workloads,
                               std::vector<CoreConfig> configs,
                               const CampaignOptions &opt)
    : workloads_(std::move(workloads)), configs_(std::move(configs)),
      opt_(opt),
      blockSize_(opt.blockSize ? opt.blockSize : defaultFoldBlock)
{
    if (workloads_.empty())
        throw std::invalid_argument("campaign: no workloads");
    if (configs_.empty())
        throw std::invalid_argument("campaign: no configurations");
    if (configs_.size() > maxReplayConfigs)
        throw std::invalid_argument(
            "campaign: too many configurations for one decode fan-out");
    for (const CampaignWorkload &w : workloads_) {
        if (!w.prog || (!w.lib && !w.set))
            throw std::invalid_argument(
                strfmt("campaign: workload '%s' has no program or "
                       "library",
                       w.name.c_str()));
        if (!w.lib && w.shard >= w.set->size())
            throw std::invalid_argument(
                strfmt("campaign: workload '%s' references shard %zu "
                       "of a %zu-shard set",
                       w.name.c_str(), w.shard, w.set->size()));
    }
    digests_.reserve(configs_.size());
    for (const CoreConfig &c : configs_)
        digests_.push_back(configDigest(c));
    // Hashing a resident library touches every record byte; the
    // manifest writes at every block barrier, so pay the scan once up
    // front. Set-backed workloads read the hash (and point count)
    // from the set index instead — no shard is opened here.
    libHashes_.reserve(workloads_.size());
    libSizes_.reserve(workloads_.size());
    for (const CampaignWorkload &w : workloads_) {
        libHashes_.push_back(w.lib ? w.lib->contentHash()
                                   : w.set->contentHash(w.shard));
        libSizes_.push_back(w.lib ? w.lib->size()
                                  : w.set->points(w.shard));
    }
}

void
CampaignEngine::saveManifest(const Manifest &m) const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(kManifestMagic);
    w.putUint(kManifestVersion);
    w.putUint(opt_.shuffleSeed);
    w.putUint(blockSize_);
    w.putUint(doubleBits(opt_.spec.level));
    w.putUint(doubleBits(opt_.spec.relativeError));
    w.putUint(opt_.stopAtConfidence ? 1 : 0);
    w.putUint(opt_.approxWrongPath ? 1 : 0);
    w.putUint(workloads_.size());
    w.putUint(configs_.size());
    w.beginSequence();
    for (const std::uint64_t d : digests_)
        w.putUint(d);
    w.endSequence();
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        const Manifest::Workload &mw = m.workloads[i];
        w.beginSequence();
        w.putString(workloads_[i].name);
        w.putUint(libHashes_[i]);
        w.putUint(libSizes_[i]);
        w.putUint(mw.frontier);
        for (const Manifest::Cell &c : mw.cells) {
            w.beginSequence();
            w.putUint(c.processed);
            w.putUint(c.converged ? 1 : 0);
            w.putUint(c.unavailable);
            putStatState(w, c.stat);
            w.endSequence();
        }
        for (const RunningStat &p : mw.pairs)
            putStatState(w, p);
        w.endSequence();
    }
    w.endSequence();
    const Blob data = w.finish();

    const std::string tmp = opt_.manifestPath + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw std::runtime_error(
            strfmt("campaign: cannot write manifest '%s'", tmp.c_str()));
    const bool ok =
        std::fwrite(data.data(), 1, data.size(), f) == data.size();
    if (std::fclose(f) != 0 || !ok)
        throw std::runtime_error(
            strfmt("campaign: short write to manifest '%s'",
                   tmp.c_str()));
    std::filesystem::rename(tmp, opt_.manifestPath);
}

CampaignEngine::Manifest
CampaignEngine::loadManifest() const
{
    const std::size_t numPairs =
        configs_.size() * (configs_.size() - 1) / 2;
    Manifest m;
    m.workloads.resize(workloads_.size());
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        m.workloads[i].cells.resize(configs_.size());
        m.workloads[i].pairs.resize(numPairs);
    }
    if (opt_.manifestPath.empty())
        return m;
    std::error_code ec;
    const std::uintmax_t size =
        std::filesystem::file_size(opt_.manifestPath, ec);
    if (ec)
        return m; // no manifest yet: a fresh campaign

    FILE *f = std::fopen(opt_.manifestPath.c_str(), "rb");
    if (!f)
        throw std::runtime_error(
            strfmt("campaign: cannot open manifest '%s'",
                   opt_.manifestPath.c_str()));
    Blob data(static_cast<std::size_t>(size));
    const bool ok = data.empty() ||
                    std::fread(data.data(), 1, data.size(), f) ==
                        data.size();
    std::fclose(f);
    if (!ok)
        throw std::runtime_error(
            strfmt("campaign: short read from manifest '%s'",
                   opt_.manifestPath.c_str()));

    auto mismatch = [this](const char *what) {
        return std::runtime_error(
            strfmt("campaign: manifest '%s' belongs to a different "
                   "campaign (%s changed); delete it to start over",
                   opt_.manifestPath.c_str(), what));
    };

    DerReader top(data);
    DerReader seq = top.getSequence();
    if (seq.getUint() != kManifestMagic ||
        seq.getUint() != kManifestVersion)
        throw mismatch("format");
    if (seq.getUint() != opt_.shuffleSeed)
        throw mismatch("shuffle seed");
    if (seq.getUint() != blockSize_)
        throw mismatch("block size");
    if (seq.getUint() != doubleBits(opt_.spec.level) ||
        seq.getUint() != doubleBits(opt_.spec.relativeError))
        throw mismatch("confidence spec");
    if (seq.getUint() != (opt_.stopAtConfidence ? 1u : 0u))
        throw mismatch("stopping mode");
    if (seq.getUint() != (opt_.approxWrongPath ? 1u : 0u))
        throw mismatch("wrong-path mode");
    if (seq.getUint() != workloads_.size() ||
        seq.getUint() != configs_.size())
        throw mismatch("grid shape");
    {
        DerReader ds = seq.getSequence();
        for (const std::uint64_t d : digests_)
            if (ds.getUint() != d)
                throw mismatch("configuration");
    }
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        Manifest::Workload &mw = m.workloads[i];
        DerReader ws = seq.getSequence();
        if (ws.getString() != workloads_[i].name)
            throw mismatch("workload name");
        if (ws.getUint() != libHashes_[i])
            throw mismatch("library content");
        if (ws.getUint() != libSizes_[i])
            throw mismatch("library size");
        mw.frontier = ws.getUint();
        for (Manifest::Cell &c : mw.cells) {
            DerReader cs = ws.getSequence();
            c.processed = cs.getUint();
            c.converged = cs.getUint() != 0;
            c.unavailable = cs.getUint();
            c.stat = getStatState(cs);
        }
        for (RunningStat &p : mw.pairs)
            p = getStatState(ws);
    }
    m.restored = true;
    return m;
}

CampaignResult
CampaignEngine::run()
{
    const auto t0 = Clock::now();
    const std::size_t nc = configs_.size();
    const std::size_t numPairs = nc * (nc - 1) / 2;
    auto pairIndex = [nc](std::size_t a, std::size_t b) {
        // (a < b) pairs in lexicographic order.
        return a * nc - a * (a + 1) / 2 + (b - a - 1);
    };

    Manifest m = loadManifest();

    CampaignResult res;
    res.cells.resize(workloads_.size() * nc);
    res.pairs.reserve(workloads_.size() * numPairs);

    ReplayEngineOptions ropt;
    ropt.threads = std::max(opt_.threads, 1u);
    ropt.decodeThreads = opt_.decodeThreads;
    ropt.approxWrongPath = opt_.approxWrongPath;
    ropt.residentBudgetBytes = opt_.residentBudgetBytes;
    ropt.decodeThreads = replayDecodeThreads(ropt);
    ThreadPool pool(ropt.threads + ropt.decodeThreads);
    ropt.sharedPool = &pool;

    // Replays folded so far, campaign-wide, restored work included —
    // the deterministic quantity the global budget is charged against.
    std::uint64_t folded = 0;
    for (const Manifest::Workload &mw : m.workloads)
        for (const Manifest::Cell &c : mw.cells) {
            folded += c.processed;
            res.restoredReplays += c.processed;
        }
    res.foldedReplays = folded;
    // A resumed campaign may already satisfy the budget; without this
    // the first barrier only notices after replaying one more block.
    if (opt_.maxFoldedReplays && folded >= opt_.maxFoldedReplays)
        res.budgetExhausted = true;
    const bool stopping =
        opt_.stopAtConfidence || opt_.maxFoldedReplays != 0;

    for (std::size_t w = 0; w < workloads_.size(); ++w) {
        const CampaignWorkload &wk = workloads_[w];
        Manifest::Workload &mw = m.workloads[w];
        const std::size_t n =
            static_cast<std::size_t>(libSizes_[w]);

        // Rebuild the live fold state from the manifest image. Every
        // still-active cell sits exactly at the workload's frontier
        // (cells only leave the frontier by retiring), so one
        // first-point offset resumes them all.
        struct CellRun
        {
            OnlineEstimator est;
            RunningStat block;
            bool active = true;
        };
        std::vector<CellRun> cells;
        cells.reserve(nc);
        std::vector<std::size_t> restoredAtStart(nc, 0);
        std::uint64_t initialMask = 0;
        for (std::size_t c = 0; c < nc; ++c) {
            restoredAtStart[c] =
                m.restored
                    ? static_cast<std::size_t>(mw.cells[c].processed)
                    : 0;
            cells.push_back(CellRun{OnlineEstimator(opt_.spec),
                                    RunningStat{}, true});
            if (mw.cells[c].stat.count())
                cells[c].est.fold(mw.cells[c].stat);
            cells[c].active =
                !mw.cells[c].converged && mw.frontier < n;
            if (cells[c].active)
                initialMask |= 1ull << c;
        }

        if (initialMask != 0 && !res.budgetExhausted) {
            // A set-backed workload's shard opens here — only now,
            // only because this workload actually has work left — and
            // closes again below. Workloads the manifest already
            // finished (or the budget never reaches) stay on disk.
            const bool lazyShard =
                !wk.lib && !wk.set->isLoaded(wk.shard);
            const LivePointLibrary &lib =
                wk.lib ? *wk.lib : wk.set->shard(wk.shard);
            const std::vector<std::size_t> order =
                replayOrder(n, opt_.shuffleSeed);
            ReplayEngine engine(*wk.prog, configs_, ropt);

            ReplayPlan plan;
            plan.firstPoint = static_cast<std::size_t>(mw.frontier);
            plan.initialMask = initialMask;

            engine.run(
                lib, order, blockSize_, stopping,
                [&](std::size_t, const WindowResult *row) {
                    for (std::size_t c = 0; c < nc; ++c) {
                        if (!cells[c].active)
                            continue;
                        cells[c].block.add(row[c].cpi);
                        mw.cells[c].unavailable +=
                            row[c].unavailableLoads;
                    }
                    for (std::size_t a = 0; a < nc; ++a) {
                        if (!cells[a].active)
                            continue;
                        for (std::size_t b = a + 1; b < nc; ++b) {
                            if (!cells[b].active)
                                continue;
                            mw.pairs[pairIndex(a, b)].add(row[b].cpi -
                                                          row[a].cpi);
                        }
                    }
                },
                [&](std::size_t end) -> std::uint64_t {
                    std::uint64_t keep = 0;
                    for (std::size_t c = 0; c < nc; ++c) {
                        if (!cells[c].active)
                            continue;
                        const OnlineSnapshot snap =
                            cells[c].est.fold(cells[c].block);
                        cells[c].block = RunningStat();
                        folded += end - mw.frontier;
                        mw.cells[c].processed = end;
                        mw.cells[c].stat = cells[c].est.stat();
                        if (opt_.stopAtConfidence && snap.satisfied) {
                            cells[c].active = false;
                            mw.cells[c].converged = true;
                        } else {
                            keep |= 1ull << c;
                        }
                    }
                    mw.frontier = end;
                    if (opt_.maxFoldedReplays &&
                        folded >= opt_.maxFoldedReplays) {
                        res.budgetExhausted = true;
                        keep = 0;
                    }
                    if (!opt_.manifestPath.empty())
                        saveManifest(m);
                    return keep;
                },
                &plan);

            res.bytesDecoded += engine.bytesDecoded();
            res.pointsDecoded += engine.pointsDecoded();
            res.replaysExecuted += engine.replaysExecuted();
            res.peakResidentBytes = std::max(
                res.peakResidentBytes, engine.peakResidentBytes());
            if (lazyShard && opt_.unloadFinishedShards)
                wk.set->unload(wk.shard);
        }

        // Publish the workload's cells and pairs.
        for (std::size_t c = 0; c < nc; ++c) {
            CampaignCell &cell = res.cells[w * nc + c];
            cell.workload = w;
            cell.config = c;
            cell.stat = mw.cells[c].stat;
            cell.estimate = cells[c].est.snapshot();
            cell.processed =
                static_cast<std::size_t>(mw.cells[c].processed);
            cell.restored = restoredAtStart[c];
            cell.unavailableLoads = mw.cells[c].unavailable;
            cell.converged = mw.cells[c].converged;
            if (cell.converged)
                ++res.retirements;
            res.migratedReplays += mw.frontier - mw.cells[c].processed;
        }
        for (std::size_t a = 0; a < nc; ++a)
            for (std::size_t b = a + 1; b < nc; ++b) {
                CampaignPair p;
                p.workload = w;
                p.base = a;
                p.test = b;
                p.delta = mw.pairs[pairIndex(a, b)];
                res.pairs.push_back(std::move(p));
            }
    }

    res.foldedReplays = folded;
    res.wallSeconds = seconds(t0);
    return res;
}

std::string
CampaignEngine::jsonReport(const CampaignResult &r) const
{
    const std::size_t nc = configs_.size();
    const double z = confidenceZ(opt_.spec.level);
    std::string out = "{\n  \"workloads\": [";
    for (std::size_t w = 0; w < workloads_.size(); ++w)
        out += strfmt("%s\"%s\"", w ? ", " : "",
                      workloads_[w].name.c_str());
    out += "],\n  \"configs\": [";
    for (std::size_t c = 0; c < nc; ++c)
        out += strfmt("%s\n    {\"name\": \"%s\", \"digest\": "
                      "\"%016llx\"}",
                      c ? "," : "", configs_[c].name.c_str(),
                      static_cast<unsigned long long>(digests_[c]));
    out += "\n  ],\n  \"cells\": [";
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
        const CampaignCell &cell = r.cells[i];
        out += strfmt(
            "%s\n    {\"workload\": %zu, \"config\": %zu, "
            "\"points\": %zu, \"cpi\": %.9f, \"rel_half_width\": %.6f, "
            "\"converged\": %s, \"unavailable_loads\": %llu}",
            i ? "," : "", cell.workload, cell.config, cell.processed,
            cell.estimate.mean, cell.estimate.relHalfWidth,
            cell.converged ? "true" : "false",
            static_cast<unsigned long long>(cell.unavailableLoads));
    }
    out += "\n  ],\n  \"pairs\": [";
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
        const CampaignPair &p = r.pairs[i];
        const double hw = p.delta.halfWidth(z);
        const double base =
            r.cells[p.workload * nc + p.base].estimate.mean;
        const bool significant =
            p.delta.count() >= minCltSample &&
            std::fabs(p.delta.mean()) > hw;
        out += strfmt(
            "%s\n    {\"workload\": %zu, \"base\": %zu, \"test\": %zu, "
            "\"pairs\": %llu, \"mean_delta\": %.9f, \"rel_delta\": "
            "%.6f, \"half_width\": %.9f, \"significant\": %s}",
            i ? "," : "", p.workload, p.base, p.test,
            static_cast<unsigned long long>(p.delta.count()),
            p.delta.mean(),
            base != 0.0 ? p.delta.mean() / base : 0.0, hw,
            significant ? "true" : "false");
    }
    out += strfmt(
        "\n  ],\n  \"totals\": {\"wall_seconds\": %.6f, "
        "\"bytes_decoded\": %llu, \"points_decoded\": %llu, "
        "\"replays_executed\": %llu, \"folded_replays\": %llu, "
        "\"restored_replays\": %llu, \"migrated_replays\": %llu, "
        "\"peak_resident_bytes\": %llu, "
        "\"retirements\": %zu, \"budget_exhausted\": %s, "
        "\"decode_fanout\": %.3f}\n}\n",
        r.wallSeconds, static_cast<unsigned long long>(r.bytesDecoded),
        static_cast<unsigned long long>(r.pointsDecoded),
        static_cast<unsigned long long>(r.replaysExecuted),
        static_cast<unsigned long long>(r.foldedReplays),
        static_cast<unsigned long long>(r.restoredReplays),
        static_cast<unsigned long long>(r.migratedReplays),
        static_cast<unsigned long long>(r.peakResidentBytes),
        r.retirements, r.budgetExhausted ? "true" : "false",
        r.pointsDecoded
            ? static_cast<double>(r.replaysExecuted) /
                  static_cast<double>(r.pointsDecoded)
            : 0.0);
    return out;
}

} // namespace lp
