#include "core/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/replay.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "io/source.hh"
#include "store/result_store.hh"
#include "util/failpoint.hh"
#include "util/log.hh"
#include "util/threadpool.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_HAVE_FSYNC 1
#include <unistd.h>
#else
#define LP_HAVE_FSYNC 0
#endif

namespace lp
{

namespace
{

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kManifestMagic = 0x4c50'434d'4631ull; // LPCMF1
constexpr std::uint64_t kManifestVersion = 1;

// The manifest ledger: a 16-byte header, then self-delimited
// checksummed records, each holding one complete DER manifest image.
// Barriers append; recovery scans forward and truncates at the first
// invalid record. The first byte on disk is 'L' (0x4C); a legacy
// single-image DER manifest starts with the SEQUENCE tag 0x30, so
// the two formats are distinguished by one byte.
constexpr std::uint64_t kLedgerMagic = 0x000a'3152'474c'504cull;  // "LPLGR1\n\0"
constexpr std::uint64_t kLedgerVersion = 1;
constexpr std::uint64_t kRecordMagic = 0x000a'3143'4552'504cull;  // "LPREC1\n\0"
constexpr std::size_t kLedgerHeaderBytes = 16;
constexpr std::size_t kRecordHeaderBytes = 24; // magic, length, fnv1a
constexpr std::uint64_t kCompactRecords = 512; //!< compact beyond this
constexpr int kManifestAttempts = 3; //!< tries for transient errors

/**
 * A manifest append failure. Distinct from replay faults so run()'s
 * per-workload containment can rethrow it: a campaign that cannot
 * checkpoint must abort loudly, not keep replaying undurably.
 */
struct ManifestWriteError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
truncateFile(const std::string &path, std::uint64_t size)
{
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec)
        throwIoError("truncate", "campaign manifest ledger", path,
                     ec.value());
}

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
putStatState(DerWriter &w, const RunningStat &s)
{
    const RunningStat::State st = s.state();
    w.beginSequence();
    w.putUint(st.n);
    w.putDouble(st.mean);
    w.putDouble(st.m2);
    w.putDouble(st.min);
    w.putDouble(st.max);
    w.endSequence();
}

RunningStat
getStatState(DerReader &r)
{
    DerReader seq = r.getSequence();
    RunningStat::State st;
    st.n = seq.getUint();
    st.mean = seq.getDouble();
    st.m2 = seq.getDouble();
    st.min = seq.getDouble();
    st.max = seq.getDouble();
    return RunningStat::fromState(st);
}

} // namespace

const char *
cellFailReasonToken(CellFailReason r)
{
    switch (r) {
    case CellFailReason::shardQuarantined:
        return "shard_quarantined";
    case CellFailReason::shardUnavailable:
        return "shard_unavailable";
    case CellFailReason::replayFault:
        return "replay_fault";
    case CellFailReason::cellStuck:
        return "cell_stuck";
    case CellFailReason::staleFoldState:
        return "stale_fold_state";
    case CellFailReason::none:
    default:
        return "none";
    }
}

const CampaignPair *
CampaignResult::pair(std::size_t workload, std::size_t base,
                     std::size_t test) const
{
    for (const CampaignPair &p : pairs) {
        if (p.workload != workload)
            continue;
        if (p.base == base && p.test == test)
            return &p;
    }
    return nullptr;
}

/**
 * The checkpoint image: per workload, the fold frontier and every
 * cell's and pair's accumulator state. Restoring a stat and folding
 * onward is arithmetically identical to never having stopped, which
 * is what makes resume exact.
 */
struct CampaignEngine::Manifest
{
    struct Cell
    {
        std::uint64_t processed = 0;
        bool converged = false;
        std::uint64_t unavailable = 0;
        RunningStat stat;
    };

    struct Workload
    {
        std::uint64_t frontier = 0; //!< points folded so far
        std::vector<Cell> cells;
        std::vector<RunningStat> pairs; //!< delta stats, (a<b) order
    };

    std::vector<Workload> workloads;
    bool restored = false; //!< loaded from disk (a resume)
};

CampaignEngine::CampaignEngine(std::vector<CampaignWorkload> workloads,
                               std::vector<CoreConfig> configs,
                               const CampaignOptions &opt)
    : workloads_(std::move(workloads)), configs_(std::move(configs)),
      opt_(opt),
      blockSize_(opt.blockSize ? opt.blockSize : defaultFoldBlock)
{
    if (workloads_.empty())
        throw std::invalid_argument("campaign: no workloads");
    if (configs_.empty())
        throw std::invalid_argument("campaign: no configurations");
    if (configs_.size() > maxReplayConfigs)
        throw std::invalid_argument(
            "campaign: too many configurations for one decode fan-out");
    for (const CampaignWorkload &w : workloads_) {
        if (!w.prog || (!w.lib && !w.set))
            throw std::invalid_argument(
                strfmt("campaign: workload '%s' has no program or "
                       "library",
                       w.name.c_str()));
        if (!w.lib && w.shard >= w.set->size())
            throw std::invalid_argument(
                strfmt("campaign: workload '%s' references shard %zu "
                       "of a %zu-shard set",
                       w.name.c_str(), w.shard, w.set->size()));
    }
    digests_.reserve(configs_.size());
    for (const CoreConfig &c : configs_)
        digests_.push_back(configDigest(c));
    // Hashing a resident library touches every record byte; the
    // manifest writes at every block barrier, so pay the scan once up
    // front. Set-backed workloads read the hash (and point count)
    // from the set index instead — no shard is opened here.
    libHashes_.reserve(workloads_.size());
    libSizes_.reserve(workloads_.size());
    for (const CampaignWorkload &w : workloads_) {
        libHashes_.push_back(w.lib ? w.lib->contentHash()
                                   : w.set->contentHash(w.shard));
        libSizes_.push_back(w.lib ? w.lib->size()
                                  : w.set->points(w.shard));
    }
}

void
CampaignEngine::saveManifest(const Manifest &m) const
{
    // The per-barrier site: `crash` here kills the campaign at a
    // block barrier before any checkpoint bytes move — the coarsest
    // point in the crash matrix.
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("campaign.barrier");
        if (o.fail)
            throw ManifestWriteError(
                ioErrorMsg("checkpoint", "campaign manifest",
                           opt_.manifestPath, o.err));
    }
    DerWriter w;
    w.beginSequence();
    w.putUint(kManifestMagic);
    w.putUint(kManifestVersion);
    w.putUint(opt_.shuffleSeed);
    w.putUint(blockSize_);
    w.putUint(doubleBits(opt_.spec.level));
    w.putUint(doubleBits(opt_.spec.relativeError));
    w.putUint(opt_.stopAtConfidence ? 1 : 0);
    w.putUint(opt_.approxWrongPath ? 1 : 0);
    w.putUint(workloads_.size());
    w.putUint(configs_.size());
    w.beginSequence();
    for (const std::uint64_t d : digests_)
        w.putUint(d);
    w.endSequence();
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        const Manifest::Workload &mw = m.workloads[i];
        w.beginSequence();
        w.putString(workloads_[i].name);
        w.putUint(libHashes_[i]);
        w.putUint(libSizes_[i]);
        w.putUint(mw.frontier);
        for (const Manifest::Cell &c : mw.cells) {
            w.beginSequence();
            w.putUint(c.processed);
            w.putUint(c.converged ? 1 : 0);
            w.putUint(c.unavailable);
            putStatState(w, c.stat);
            w.endSequence();
        }
        for (const RunningStat &p : mw.pairs)
            putStatState(w, p);
        w.endSequence();
    }
    w.endSequence();
    appendLedgerRecord(w.finish());
}

namespace
{

/**
 * One append attempt: seek to the end, write (header if the file is
 * fresh, then) frame + payload, flush, fsync. Any failure rewinds
 * the file to its pre-append length so a retry — or the next barrier
 * — starts from a clean tail, then throws IoError. Stdio buffers are
 * flushed between stages so a crash failpoint tears the record at a
 * deterministic on-disk boundary.
 */
void
appendLedgerOnce(const std::string &path, const Blob &image)
{
    FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        throwIoError("append to", "campaign manifest ledger", path,
                     errno);
    std::fseek(f, 0, SEEK_END);
    const long start = std::ftell(f);
    auto fail = [&](const char *verb, int err) {
        std::fclose(f);
        if (start >= 0)
            truncateFile(path, static_cast<std::uint64_t>(start));
        throwIoError(verb, "campaign manifest ledger", path, err);
    };

    if (start == 0) {
        std::uint8_t hdr[kLedgerHeaderBytes];
        putU64(hdr, kLedgerMagic);
        putU64(hdr + 8, kLedgerVersion);
        if (std::fwrite(hdr, 1, sizeof(hdr), f) != sizeof(hdr))
            fail("write header to", errno ? errno : EIO);
    }

    if (failpointsArmed()) {
        const FailpointOutcome o =
            failpointFire("campaign.ledger.frame");
        if (o.fail)
            fail("write record frame to", o.err);
    }
    std::uint8_t frame[kRecordHeaderBytes];
    putU64(frame, kRecordMagic);
    putU64(frame + 8, image.size());
    putU64(frame + 16, fnv1a(image.data(), image.size()));
    if (std::fwrite(frame, 1, sizeof(frame), f) != sizeof(frame))
        fail("write record frame to", errno ? errno : EIO);
    std::fflush(f);

    // Crash here → frame on disk, no payload: the torn tail the
    // recovery scan must truncate.
    if (failpointsArmed()) {
        const FailpointOutcome o =
            failpointFire("campaign.ledger.payload");
        if (o.shortOp) {
            std::fwrite(image.data(), 1, image.size() / 2, f);
            std::fflush(f);
            fail("write record payload to", o.err ? o.err : EIO);
        }
        if (o.fail)
            fail("write record payload to", o.err);
    }
    if (std::fwrite(image.data(), 1, image.size(), f) != image.size())
        fail("write record payload to", errno ? errno : EIO);
    if (std::fflush(f) != 0)
        fail("flush", errno ? errno : EIO);

    // Crash here → complete record on disk, not yet durable: valid
    // either way once the OS flushes.
    if (failpointsArmed()) {
        const FailpointOutcome o =
            failpointFire("campaign.ledger.sync");
        if (o.fail)
            fail("sync", o.err);
    }
#if LP_HAVE_FSYNC
    if (::fsync(::fileno(f)) != 0)
        fail("sync", errno ? errno : EIO);
#endif
    if (std::fclose(f) != 0) {
        if (start >= 0)
            truncateFile(path, static_cast<std::uint64_t>(start));
        throwIoError("close", "campaign manifest ledger", path,
                     errno ? errno : EIO);
    }
}

} // namespace

void
CampaignEngine::appendLedgerRecord(const Blob &image) const
{
    const std::string &path = opt_.manifestPath;

    // Compaction: once the ledger is long, republish it as header +
    // latest record via the atomic-write path (temp, fsync, rename)
    // instead of appending — the file stays bounded and the swap is
    // crash-safe.
    if (ledgerRecords_ >= kCompactRecords) {
        Blob out(kLedgerHeaderBytes + kRecordHeaderBytes +
                 image.size());
        putU64(out.data(), kLedgerMagic);
        putU64(out.data() + 8, kLedgerVersion);
        putU64(out.data() + kLedgerHeaderBytes, kRecordMagic);
        putU64(out.data() + kLedgerHeaderBytes + 8, image.size());
        putU64(out.data() + kLedgerHeaderBytes + 16,
               fnv1a(image.data(), image.size()));
        std::memcpy(out.data() + kLedgerHeaderBytes +
                        kRecordHeaderBytes,
                    image.data(), image.size());
        try {
            writeFileAtomic(path, out.data(), out.size(),
                            "campaign manifest ledger");
        } catch (const std::exception &e) {
            throw ManifestWriteError(e.what());
        }
        ledgerRecords_ = 1;
        return;
    }

    for (int attempt = 0;; ++attempt) {
        try {
            appendLedgerOnce(path, image);
            ++ledgerRecords_;
            return;
        } catch (const IoError &e) {
            if (e.transient() && attempt + 1 < kManifestAttempts) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1 << attempt));
                continue;
            }
            throw ManifestWriteError(e.what());
        }
    }
}

CampaignEngine::Manifest
CampaignEngine::loadManifest() const
{
    const std::size_t numPairs =
        configs_.size() * (configs_.size() - 1) / 2;
    Manifest m;
    m.workloads.resize(workloads_.size());
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        m.workloads[i].cells.resize(configs_.size());
        m.workloads[i].pairs.resize(numPairs);
    }
    if (opt_.manifestPath.empty())
        return m;
    std::error_code ec;
    if (!std::filesystem::exists(opt_.manifestPath, ec) || ec)
        return m; // no manifest yet: a fresh campaign

    if (failpointsArmed()) {
        const FailpointOutcome o =
            failpointFire("campaign.manifest.load");
        if (o.fail)
            throwIoError("read", "campaign manifest",
                         opt_.manifestPath, o.err);
    }
    const Blob data =
        readWholeFile(opt_.manifestPath, "campaign manifest");
    if (data.empty())
        return m; // empty ledger: nothing checkpointed yet

    // Extract the newest durable manifest image. A ledger is scanned
    // record by record; the scan stops at the first invalid record
    // (torn tail, flipped byte, truncation) and the file is cut back
    // to the last valid boundary. A legacy single-image DER manifest
    // (first byte = SEQUENCE tag 0x30) is accepted whole and
    // converted to a ledger below.
    Blob image;
    bool isLedger = false;
    std::uint64_t records = 0;
    if (data[0] == 0x30) {
        image = data;
    } else {
        if (data.size() < kLedgerHeaderBytes) {
            // Torn before the header finished: an empty ledger.
            truncateFile(opt_.manifestPath, 0);
            return m;
        }
        if (getU64(data.data()) != kLedgerMagic)
            throw std::runtime_error(
                strfmt("campaign: '%s' is not a campaign manifest "
                       "(bad ledger magic)",
                       opt_.manifestPath.c_str()));
        if (getU64(data.data() + 8) != kLedgerVersion)
            throw std::runtime_error(
                strfmt("campaign: manifest ledger '%s' has an "
                       "unsupported version",
                       opt_.manifestPath.c_str()));
        isLedger = true;
        std::size_t offset = kLedgerHeaderBytes;
        std::size_t valid = offset;
        while (offset + kRecordHeaderBytes <= data.size()) {
            const std::uint8_t *rec = data.data() + offset;
            if (getU64(rec) != kRecordMagic)
                break;
            const std::uint64_t len = getU64(rec + 8);
            if (len == 0 ||
                len > data.size() - offset - kRecordHeaderBytes)
                break;
            const std::uint8_t *payload = rec + kRecordHeaderBytes;
            if (fnv1a(payload, static_cast<std::size_t>(len)) !=
                getU64(rec + 16))
                break;
            image.assign(payload, payload + len);
            offset += kRecordHeaderBytes +
                      static_cast<std::size_t>(len);
            valid = offset;
            ++records;
        }
        if (valid < data.size()) {
            warn("campaign: manifest ledger '%s' has a torn tail "
                 "(%zu of %zu bytes valid), truncating",
                 opt_.manifestPath.c_str(), valid, data.size());
            truncateFile(opt_.manifestPath, valid);
        }
        ledgerRecords_ = records;
        if (image.empty())
            return m; // header only: nothing checkpointed yet
    }

    auto mismatch = [this](const char *what) {
        return std::runtime_error(
            strfmt("campaign: manifest '%s' belongs to a different "
                   "campaign (%s changed); delete it to start over",
                   opt_.manifestPath.c_str(), what));
    };

    DerReader top(image);
    DerReader seq = top.getSequence();
    if (seq.getUint() != kManifestMagic ||
        seq.getUint() != kManifestVersion)
        throw mismatch("format");
    if (seq.getUint() != opt_.shuffleSeed)
        throw mismatch("shuffle seed");
    if (seq.getUint() != blockSize_)
        throw mismatch("block size");
    if (seq.getUint() != doubleBits(opt_.spec.level) ||
        seq.getUint() != doubleBits(opt_.spec.relativeError))
        throw mismatch("confidence spec");
    if (seq.getUint() != (opt_.stopAtConfidence ? 1u : 0u))
        throw mismatch("stopping mode");
    if (seq.getUint() != (opt_.approxWrongPath ? 1u : 0u))
        throw mismatch("wrong-path mode");
    if (seq.getUint() != workloads_.size() ||
        seq.getUint() != configs_.size())
        throw mismatch("grid shape");
    {
        DerReader ds = seq.getSequence();
        for (const std::uint64_t d : digests_)
            if (ds.getUint() != d)
                throw mismatch("configuration");
    }
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        Manifest::Workload &mw = m.workloads[i];
        DerReader ws = seq.getSequence();
        if (ws.getString() != workloads_[i].name)
            throw mismatch("workload name");
        // A quarantined shard recovered by an index rescan has no
        // trusted hash (0): accept the manifest's record — its cells
        // are failed-with-reason and never folded further.
        const std::uint64_t hash = ws.getUint();
        const std::uint64_t size = ws.getUint();
        if (libHashes_[i] != 0 && hash != libHashes_[i])
            throw mismatch("library content");
        if (libHashes_[i] != 0 && size != libSizes_[i])
            throw mismatch("library size");
        mw.frontier = ws.getUint();
        for (Manifest::Cell &c : mw.cells) {
            DerReader cs = ws.getSequence();
            c.processed = cs.getUint();
            c.converged = cs.getUint() != 0;
            c.unavailable = cs.getUint();
            c.stat = getStatState(cs);
        }
        for (RunningStat &p : mw.pairs)
            p = getStatState(ws);
    }
    m.restored = true;

    // Modernize a legacy single-image manifest, and bound a ledger
    // that grew long across runs: republish as header + one record.
    if (!isLedger || records > kCompactRecords) {
        ledgerRecords_ = kCompactRecords; // force the compact path
        appendLedgerRecord(image);
    }
    return m;
}

CampaignResult
CampaignEngine::run()
{
    const auto t0 = Clock::now();
    const std::size_t nc = configs_.size();
    const std::size_t numPairs = nc * (nc - 1) / 2;
    auto pairIndex = [nc](std::size_t a, std::size_t b) {
        // (a < b) pairs in lexicographic order.
        return a * nc - a * (a + 1) / 2 + (b - a - 1);
    };

    Manifest m = loadManifest();

    // Result-store memoization: resolve every cell whose full replay
    // identity the store already holds, before any shard opens or
    // worker starts. Memoized cells never become active, stay out of
    // the manifest and the replay budget, and a workload whose cells
    // all resolve never opens its shard at all — O(lookup) instead
    // of O(replay).
    std::vector<char> memoHit(workloads_.size() * nc, 0);
    std::vector<CellRecord> memoRec(workloads_.size() * nc);
    if (opt_.resultStore) {
        for (std::size_t w = 0; w < workloads_.size(); ++w) {
            if (libHashes_[w] == 0)
                continue; // recovered shard: hash untrusted
            for (std::size_t c = 0; c < nc; ++c) {
                const ResultKey key = ResultKey::make(
                    libHashes_[w], digests_[c], opt_.shuffleSeed,
                    blockSize_, opt_.stopAtConfidence,
                    opt_.approxWrongPath, opt_.spec);
                CellRecord rec;
                if (!opt_.resultStore->find(key, &rec))
                    continue;
                if (rec.libPoints != libSizes_[w])
                    continue; // key-hash collision or stale record
                memoHit[w * nc + c] = 1;
                memoRec[w * nc + c] = rec;
            }
        }
    }
    auto pairProbeFor = [this](std::size_t w, std::size_t a,
                               std::size_t b) {
        const ResultKey k = ResultKey::make(
            libHashes_[w], digests_[a], opt_.shuffleSeed, blockSize_,
            opt_.stopAtConfidence, opt_.approxWrongPath, opt_.spec);
        PairRecord p;
        p.libHash = libHashes_[w];
        p.baseDigest = digests_[a];
        p.testDigest = digests_[b];
        p.shuffleSeed = opt_.shuffleSeed;
        p.blockSize = blockSize_;
        p.stopAtConfidence = opt_.stopAtConfidence;
        p.approxWrongPath = opt_.approxWrongPath;
        p.levelBits = k.levelBits;
        p.relErrBits = k.relErrBits;
        return p;
    };

    CampaignResult res;
    res.cells.resize(workloads_.size() * nc);
    res.pairs.reserve(workloads_.size() * numPairs);

    ReplayEngineOptions ropt;
    ropt.threads = std::max(opt_.threads, 1u);
    ropt.decodeThreads = opt_.decodeThreads;
    ropt.approxWrongPath = opt_.approxWrongPath;
    ropt.residentBudgetBytes = opt_.residentBudgetBytes;
    ropt.control = opt_.control;
    ropt.decodeThreads = replayDecodeThreads(ropt);
    ThreadPool pool(ropt.threads + ropt.decodeThreads);
    ropt.sharedPool = &pool;

    // Replays folded so far, campaign-wide, restored work included —
    // the deterministic quantity the global budget is charged against.
    std::uint64_t folded = 0;
    for (const Manifest::Workload &mw : m.workloads)
        for (const Manifest::Cell &c : mw.cells) {
            folded += c.processed;
            res.restoredReplays += c.processed;
        }
    res.foldedReplays = folded;
    // A resumed campaign may already satisfy the budget; without this
    // the first barrier only notices after replaying one more block.
    if (opt_.maxFoldedReplays && folded >= opt_.maxFoldedReplays)
        res.budgetExhausted = true;
    const bool stopping =
        opt_.stopAtConfidence || opt_.maxFoldedReplays != 0;

    for (std::size_t w = 0; w < workloads_.size(); ++w) {
        const CampaignWorkload &wk = workloads_[w];
        Manifest::Workload &mw = m.workloads[w];
        const std::size_t n =
            static_cast<std::size_t>(libSizes_[w]);

        // Rebuild the live fold state from the manifest image. Every
        // still-active cell sits exactly at the workload's frontier
        // (cells only leave the frontier by retiring), so one
        // first-point offset resumes them all.
        struct CellRun
        {
            OnlineEstimator est;
            RunningStat block;
            bool active = true;
        };
        std::vector<CellRun> cells;
        cells.reserve(nc);
        std::vector<std::size_t> restoredAtStart(nc, 0);
        std::vector<CellFailReason> cellReason(nc,
                                               CellFailReason::none);
        std::vector<std::string> cellDetail(nc);
        std::uint64_t initialMask = 0;
        for (std::size_t c = 0; c < nc; ++c) {
            cells.push_back(CellRun{OnlineEstimator(opt_.spec),
                                    RunningStat{}, true});
            // A store-memoized cell resolves wholly outside the run:
            // no manifest state, no staleness check, no replay.
            if (memoHit[w * nc + c]) {
                cells[c].active = false;
                continue;
            }
            restoredAtStart[c] =
                m.restored
                    ? static_cast<std::size_t>(mw.cells[c].processed)
                    : 0;
            if (mw.cells[c].stat.count())
                cells[c].est.fold(mw.cells[c].stat);
            cells[c].active =
                !mw.cells[c].converged && mw.frontier < n;
            // Active cells only ever leave the fold frontier by
            // retiring, so a resumed unconverged cell sitting below
            // it was cut out mid-run by a contained fault. Resuming
            // it would fold from the wrong offset; it fails instead.
            if (cells[c].active && m.restored &&
                mw.cells[c].processed != mw.frontier) {
                cells[c].active = false;
                cellReason[c] = CellFailReason::staleFoldState;
                cellDetail[c] = strfmt(
                    "resumed below the fold frontier (%llu of %llu "
                    "points): a prior fault cut this cell out",
                    static_cast<unsigned long long>(
                        mw.cells[c].processed),
                    static_cast<unsigned long long>(mw.frontier));
            }
            if (cells[c].active)
                initialMask |= 1ull << c;
        }

        // A failed workload is contained, not fatal: its cells carry
        // the reason, its workers migrate to the next workload.
        std::string failReason;
        CellFailReason failKind = CellFailReason::none;
        if (!wk.lib && wk.set->quarantined(wk.shard)) {
            failReason = wk.set->quarantineReason(wk.shard);
            failKind = CellFailReason::shardQuarantined;
        }

        // A cancellation or expired deadline observed between
        // workloads stops before the next one opens its shard.
        if (!res.cancelled && opt_.control &&
            opt_.control->cancel.cancelled()) {
            res.cancelled = true;
            res.cancelReason = opt_.control->cancel.reason();
        }
        if (!res.cancelled && opt_.deadline.expired()) {
            res.cancelled = true;
            res.cancelReason = "deadline expired";
        }

        if (failReason.empty() && initialMask != 0 &&
            !res.budgetExhausted && !res.cancelled) {
            // A set-backed workload's shard opens here — only now,
            // only because this workload actually has work left — and
            // closes again below. Workloads the manifest already
            // finished (or the budget never reaches) stay on disk.
            // Transient open errors (EINTR/EAGAIN) are retried with
            // backoff before the workload is declared failed.
            const bool lazyShard =
                !wk.lib && !wk.set->isLoaded(wk.shard);
            const LivePointLibrary *lib = wk.lib;
            for (int attempt = 0; !lib; ++attempt) {
                try {
                    lib = &wk.set->shard(wk.shard);
                } catch (const IoError &e) {
                    if (e.transient() &&
                        attempt + 1 < kManifestAttempts) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1 << attempt));
                        continue;
                    }
                    failReason = e.what();
                    failKind = CellFailReason::shardUnavailable;
                    break;
                } catch (const std::exception &e) {
                    failReason = e.what();
                    failKind = CellFailReason::shardUnavailable;
                    break;
                }
            }

            if (lib) {
                const std::vector<std::size_t> order =
                    replayOrder(n, opt_.shuffleSeed);
                ReplayEngine engine(*wk.prog, configs_, ropt);

                ReplayPlan plan;
                plan.firstPoint =
                    static_cast<std::size_t>(mw.frontier);
                plan.initialMask = initialMask;

                try {
                    engine.run(
                        *lib, order, blockSize_, stopping,
                        [&](std::size_t, const WindowResult *row) {
                            // Contained per-cell faults: the fault
                            // record is visible before the faulting
                            // point's block completes, so cutting the
                            // cell out here guarantees no invalid
                            // result is ever folded.
                            if (const std::uint64_t fm =
                                    engine.faultedConfigs()) {
                                for (std::size_t c = 0; c < nc; ++c) {
                                    if (!cells[c].active ||
                                        !((fm >> c) & 1))
                                        continue;
                                    cells[c].active = false;
                                    cells[c].block = RunningStat();
                                    const auto info =
                                        engine.cellFault(c);
                                    cellReason[c] =
                                        info.stuck
                                            ? CellFailReason::cellStuck
                                            : CellFailReason::
                                                  replayFault;
                                    cellDetail[c] = info.reason;
                                    warn("campaign: workload '%s' "
                                         "config %zu failed: %s",
                                         wk.name.c_str(), c,
                                         info.reason.c_str());
                                }
                            }
                            for (std::size_t c = 0; c < nc; ++c) {
                                if (!cells[c].active)
                                    continue;
                                cells[c].block.add(row[c].cpi);
                                mw.cells[c].unavailable +=
                                    row[c].unavailableLoads;
                            }
                            for (std::size_t a = 0; a < nc; ++a) {
                                if (!cells[a].active)
                                    continue;
                                for (std::size_t b = a + 1; b < nc;
                                     ++b) {
                                    if (!cells[b].active)
                                        continue;
                                    mw.pairs[pairIndex(a, b)].add(
                                        row[b].cpi - row[a].cpi);
                                }
                            }
                        },
                        [&](std::size_t end) -> std::uint64_t {
                            std::uint64_t keep = 0;
                            for (std::size_t c = 0; c < nc; ++c) {
                                if (!cells[c].active)
                                    continue;
                                const OnlineSnapshot snap =
                                    cells[c].est.fold(
                                        cells[c].block);
                                cells[c].block = RunningStat();
                                folded += end - mw.frontier;
                                mw.cells[c].processed = end;
                                mw.cells[c].stat =
                                    cells[c].est.stat();
                                if (opt_.stopAtConfidence &&
                                    snap.satisfied) {
                                    cells[c].active = false;
                                    mw.cells[c].converged = true;
                                } else {
                                    keep |= 1ull << c;
                                }
                            }
                            mw.frontier = end;
                            if (opt_.maxFoldedReplays &&
                                folded >= opt_.maxFoldedReplays) {
                                res.budgetExhausted = true;
                                keep = 0;
                            }
                            // Cancellation and deadlines stop here —
                            // after the barrier's state update,
                            // before the manifest write — so the
                            // stop is a valid resume point and a
                            // later resumption is bit-identical to
                            // the uninterrupted run.
                            if (!res.cancelled && opt_.control &&
                                opt_.control->cancel.cancelled()) {
                                res.cancelled = true;
                                res.cancelReason =
                                    opt_.control->cancel.reason();
                                keep = 0;
                            }
                            if (!res.cancelled &&
                                opt_.deadline.expired()) {
                                res.cancelled = true;
                                res.cancelReason = "deadline expired";
                                keep = 0;
                            }
                            if (!opt_.manifestPath.empty())
                                saveManifest(m);
                            return keep;
                        },
                        &plan);
                } catch (const ManifestWriteError &) {
                    // A campaign that cannot checkpoint must not
                    // keep replaying as if it could: abort.
                    throw;
                } catch (const std::exception &e) {
                    failReason = strfmt("replay failed: %s",
                                        e.what());
                    failKind = CellFailReason::replayFault;
                    warn("campaign: workload '%s' failed: %s",
                         wk.name.c_str(), e.what());
                }

                res.bytesDecoded += engine.bytesDecoded();
                res.pointsDecoded += engine.pointsDecoded();
                res.replaysExecuted += engine.replaysExecuted();
                res.peakResidentBytes =
                    std::max(res.peakResidentBytes,
                             engine.peakResidentBytes());
                if (lazyShard && opt_.unloadFinishedShards)
                    wk.set->unload(wk.shard);
            } else {
                warn("campaign: workload '%s' unavailable: %s",
                     wk.name.c_str(), failReason.c_str());
            }
        }

        // Publish the workload's cells and pairs.
        for (std::size_t c = 0; c < nc; ++c) {
            CampaignCell &cell = res.cells[w * nc + c];
            cell.workload = w;
            cell.config = c;
            if (memoHit[w * nc + c]) {
                const CellRecord &rec = memoRec[w * nc + c];
                OnlineEstimator est(opt_.spec);
                est.fold(RunningStat::fromState(rec.stat));
                cell.stat = est.stat();
                cell.estimate = est.snapshot();
                cell.processed =
                    static_cast<std::size_t>(rec.processed);
                cell.unavailableLoads = rec.unavailableLoads;
                cell.converged = rec.converged;
                cell.memoized = true;
                // The stored-vs-replayed bit-identity assertion: the
                // restored fold state must reproduce the stored CPI
                // bits exactly, or the store is inconsistent with
                // the engine that produced it.
                if (doubleBits(cell.estimate.mean) != rec.cpiBits)
                    throw std::runtime_error(strfmt(
                        "result store: memoized cell (workload '%s', "
                        "config %zu) does not reproduce its stored "
                        "CPI bits",
                        wk.name.c_str(), c));
                ++res.memoizedCells;
                res.memoizedReplays += rec.processed;
                continue;
            }
            cell.stat = mw.cells[c].stat;
            cell.estimate = cells[c].est.snapshot();
            cell.processed =
                static_cast<std::size_t>(mw.cells[c].processed);
            cell.restored = restoredAtStart[c];
            cell.unavailableLoads = mw.cells[c].unavailable;
            cell.converged = mw.cells[c].converged;
            // Cells already retired by their confidence target have
            // complete estimates; only the ones a failure cut short
            // are marked failed. A per-cell fault (stuck/injected or
            // stale resume state) outranks the workload-level reason.
            if (cellReason[c] != CellFailReason::none &&
                !cell.converged) {
                cell.failed = true;
                cell.reason = cellReason[c];
                cell.failureReason = cellDetail[c];
                ++res.failedCells;
            } else if (!failReason.empty() && !cell.converged) {
                cell.failed = true;
                cell.reason = failKind;
                cell.failureReason = failReason;
                ++res.failedCells;
            }
            if (cell.converged)
                ++res.retirements;
            res.migratedReplays += mw.frontier - mw.cells[c].processed;
        }
        for (std::size_t a = 0; a < nc; ++a)
            for (std::size_t b = a + 1; b < nc; ++b) {
                CampaignPair p;
                p.workload = w;
                p.base = a;
                p.test = b;
                p.delta = mw.pairs[pairIndex(a, b)];
                // Both cells memoized → no per-point delta replayed
                // here; restore the matched-pair stat the producing
                // run published. (A pair between a memoized and a
                // fresh cell stays empty: per-point deltas cannot be
                // reconstructed from per-cell fold state.)
                if (p.delta.count() == 0 && opt_.resultStore &&
                    memoHit[w * nc + a] && memoHit[w * nc + b]) {
                    PairRecord rec;
                    if (opt_.resultStore->findPair(
                            pairProbeFor(w, a, b), &rec))
                        p.delta = RunningStat::fromState(rec.delta);
                }
                res.pairs.push_back(std::move(p));
            }
    }

    res.foldedReplays = folded;
    res.wallSeconds = seconds(t0);
    return res;
}

std::size_t
CampaignEngine::publish(const CampaignResult &r,
                        ResultStore &store) const
{
    const std::size_t nc = configs_.size();
    std::size_t written = 0;
    // A cell is publishable when its result is canonical for its key:
    // not failed, and either retired by its confidence target or run
    // over the whole library. Budget- or cancel-truncated cells stop
    // at a non-canonical point and must not poison the store.
    std::vector<char> ok(r.cells.size(), 0);
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
        const CampaignCell &cell = r.cells[i];
        const std::size_t w = cell.workload;
        if (libHashes_[w] == 0)
            continue; // recovered shard: hash untrusted
        const bool complete =
            cell.converged ||
            cell.processed ==
                static_cast<std::size_t>(libSizes_[w]);
        if (cell.failed || !complete || cell.processed == 0)
            continue;
        ok[i] = 1;
        CellRecord rec;
        rec.key = ResultKey::make(
            libHashes_[w], digests_[cell.config], opt_.shuffleSeed,
            blockSize_, opt_.stopAtConfidence, opt_.approxWrongPath,
            opt_.spec);
        rec.libPoints = libSizes_[w];
        rec.processed = cell.processed;
        rec.unavailableLoads = cell.unavailableLoads;
        rec.converged = cell.converged;
        rec.cpiBits = doubleBits(cell.estimate.mean);
        rec.stat = cell.stat.state();
        store.put(rec);
        ++written;
    }
    for (const CampaignPair &p : r.pairs) {
        if (p.delta.count() == 0)
            continue;
        if (!ok[p.workload * nc + p.base] ||
            !ok[p.workload * nc + p.test])
            continue;
        const std::size_t w = p.workload;
        const ResultKey k = ResultKey::make(
            libHashes_[w], digests_[p.base], opt_.shuffleSeed,
            blockSize_, opt_.stopAtConfidence, opt_.approxWrongPath,
            opt_.spec);
        PairRecord rec;
        rec.libHash = libHashes_[w];
        rec.baseDigest = digests_[p.base];
        rec.testDigest = digests_[p.test];
        rec.shuffleSeed = opt_.shuffleSeed;
        rec.blockSize = blockSize_;
        rec.stopAtConfidence = opt_.stopAtConfidence;
        rec.approxWrongPath = opt_.approxWrongPath;
        rec.levelBits = k.levelBits;
        rec.relErrBits = k.relErrBits;
        rec.delta = p.delta.state();
        store.putPair(rec);
        ++written;
    }
    return written;
}

std::string
CampaignEngine::jsonReport(const CampaignResult &r) const
{
    const std::size_t nc = configs_.size();
    const double z = confidenceZ(opt_.spec.level);
    // Version 3: every free-text string field (workload and config
    // names included) is JSON-escaped, and the result-store
    // memoization fields were added (per-cell "memoized", totals
    // "memoized_cells" / "memoized_replays"). Version 2 added
    // schema_version, per-cell cpi_bits (exact IEEE bits, the
    // bit-identity contract clients verify), the stable
    // machine-readable per-cell "reason" token (free text moved to
    // "detail"), and the cancelled/cancel_reason totals.
    std::string out = "{\n  \"schema_version\": 3,\n  \"workloads\": [";
    for (std::size_t w = 0; w < workloads_.size(); ++w)
        out += strfmt("%s\"%s\"", w ? ", " : "",
                      jsonEscape(workloads_[w].name).c_str());
    out += "],\n  \"configs\": [";
    for (std::size_t c = 0; c < nc; ++c)
        out += strfmt("%s\n    {\"name\": \"%s\", \"digest\": "
                      "\"%016llx\"}",
                      c ? "," : "",
                      jsonEscape(configs_[c].name).c_str(),
                      static_cast<unsigned long long>(digests_[c]));
    out += "\n  ],\n  \"cells\": [";
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
        const CampaignCell &cell = r.cells[i];
        out += strfmt(
            "%s\n    {\"workload\": %zu, \"config\": %zu, "
            "\"points\": %zu, \"cpi\": %.9f, \"cpi_bits\": "
            "\"%016llx\", \"rel_half_width\": %.6f, "
            "\"converged\": %s, \"unavailable_loads\": %llu, "
            "\"memoized\": %s, "
            "\"failed\": %s, \"reason\": \"%s\", \"detail\": \"%s\"}",
            i ? "," : "", cell.workload, cell.config, cell.processed,
            cell.estimate.mean,
            static_cast<unsigned long long>(
                doubleBits(cell.estimate.mean)),
            cell.estimate.relHalfWidth,
            cell.converged ? "true" : "false",
            static_cast<unsigned long long>(cell.unavailableLoads),
            cell.memoized ? "true" : "false",
            cell.failed ? "true" : "false",
            jsonEscape(cellFailReasonToken(cell.reason)).c_str(),
            jsonEscape(cell.failureReason).c_str());
    }
    out += "\n  ],\n  \"pairs\": [";
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
        const CampaignPair &p = r.pairs[i];
        const double hw = p.delta.halfWidth(z);
        const double base =
            r.cells[p.workload * nc + p.base].estimate.mean;
        const bool significant =
            p.delta.count() >= minCltSample &&
            std::fabs(p.delta.mean()) > hw;
        out += strfmt(
            "%s\n    {\"workload\": %zu, \"base\": %zu, \"test\": %zu, "
            "\"pairs\": %llu, \"mean_delta\": %.9f, \"rel_delta\": "
            "%.6f, \"half_width\": %.9f, \"significant\": %s}",
            i ? "," : "", p.workload, p.base, p.test,
            static_cast<unsigned long long>(p.delta.count()),
            p.delta.mean(),
            base != 0.0 ? p.delta.mean() / base : 0.0, hw,
            significant ? "true" : "false");
    }
    out += strfmt(
        "\n  ],\n  \"totals\": {\"wall_seconds\": %.6f, "
        "\"bytes_decoded\": %llu, \"points_decoded\": %llu, "
        "\"replays_executed\": %llu, \"folded_replays\": %llu, "
        "\"restored_replays\": %llu, \"migrated_replays\": %llu, "
        "\"memoized_replays\": %llu, "
        "\"peak_resident_bytes\": %llu, "
        "\"retirements\": %zu, \"failed_cells\": %zu, "
        "\"memoized_cells\": %zu, "
        "\"budget_exhausted\": %s, "
        "\"cancelled\": %s, \"cancel_reason\": \"%s\", "
        "\"decode_fanout\": %.3f}\n}\n",
        r.wallSeconds, static_cast<unsigned long long>(r.bytesDecoded),
        static_cast<unsigned long long>(r.pointsDecoded),
        static_cast<unsigned long long>(r.replaysExecuted),
        static_cast<unsigned long long>(r.foldedReplays),
        static_cast<unsigned long long>(r.restoredReplays),
        static_cast<unsigned long long>(r.migratedReplays),
        static_cast<unsigned long long>(r.memoizedReplays),
        static_cast<unsigned long long>(r.peakResidentBytes),
        r.retirements, r.failedCells, r.memoizedCells,
        r.budgetExhausted ? "true" : "false",
        r.cancelled ? "true" : "false",
        jsonEscape(r.cancelReason).c_str(),
        r.pointsDecoded
            ? static_cast<double>(r.replaysExecuted) /
                  static_cast<double>(r.pointsDecoded)
            : 0.0);
    return out;
}

} // namespace lp
