#include "core/sample.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace lp
{

std::uint64_t
requiredSampleSize(double cov, const ConfidenceSpec &spec)
{
    const double z = confidenceZ(spec.level);
    const double n =
        std::ceil((z * cov / spec.relativeError) *
                  (z * cov / spec.relativeError));
    return std::max<std::uint64_t>(
        static_cast<std::uint64_t>(n), minCltSample);
}

std::uint64_t
pairedSampleSize(const RunningStat &delta, double baseMean,
                 const ConfidenceSpec &spec)
{
    const double errAbs = spec.relativeError * std::fabs(baseMean);
    if (errAbs <= 0.0 || delta.count() < 2)
        return minCltSample;
    const double z = confidenceZ(spec.level);
    const double n = std::ceil((z * delta.stddev() / errAbs) *
                               (z * delta.stddev() / errAbs));
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(n),
                                   minCltSample);
}

SampleDesign
SampleDesign::systematic(InstCount benchLength, std::uint64_t count,
                         InstCount measureLen, InstCount warmLen)
{
    SampleDesign d;
    d.benchLength = benchLength;
    d.measureLen = measureLen;
    d.warmLen = warmLen;
    d.count = std::max<std::uint64_t>(
        std::min(count, maxCount(benchLength, measureLen, warmLen)), 1);
    return d;
}

std::uint64_t
SampleDesign::maxCount(InstCount benchLength, InstCount measureLen,
                       InstCount warmLen)
{
    const InstCount window = measureLen + warmLen;
    return window ? benchLength / window : 0;
}

std::vector<InstCount>
SampleDesign::windowStarts() const
{
    std::vector<InstCount> starts;
    starts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        starts.push_back(windowStart(i));
    return starts;
}

OnlineEstimator::OnlineEstimator(const ConfidenceSpec &spec)
    : spec_(spec), z_(confidenceZ(spec.level))
{
}

OnlineSnapshot
OnlineEstimator::add(double x)
{
    stat_.add(x);
    return snapshot();
}

OnlineSnapshot
OnlineEstimator::fold(const RunningStat &block)
{
    stat_.merge(block);
    return snapshot();
}

OnlineSnapshot
OnlineEstimator::preview(const RunningStat &pending) const
{
    RunningStat merged = stat_;
    merged.merge(pending);
    return snapshotOf(merged);
}

OnlineSnapshot
OnlineEstimator::snapshot() const
{
    return snapshotOf(stat_);
}

OnlineSnapshot
OnlineEstimator::snapshotOf(const RunningStat &stat) const
{
    OnlineSnapshot s;
    s.n = static_cast<std::size_t>(stat.count());
    s.mean = stat.mean();
    s.relHalfWidth = stat.relHalfWidth(z_);
    s.valid = stat.count() >= minCltSample;
    s.satisfied = s.valid && s.relHalfWidth <= spec_.relativeError;
    return s;
}

} // namespace lp
