#include "core/replay.hh"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>

#include "util/log.hh"

namespace lp
{

namespace
{

CoreBindings
contextBindings(const Program &prog, MemPort &port, MemHierarchy &hier,
                BranchPredictor &bp)
{
    CoreBindings b;
    b.prog = &prog;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    return b;
}

unsigned
autoProducers(unsigned workers)
{
    // Decoding one point is a fraction of simulating it, so a few
    // producers keep many workers fed; one is enough to pipeline a
    // single worker.
    return std::max(1u, (workers + 2) / 3);
}

} // namespace

ReplayContext::ReplayContext(const Program &prog, const CoreConfig &cfg)
    : prog_(prog), cfg_(cfg), bpredKey_(cfg_.bpred.key()), port_(mem_),
      hier_(cfg_.mem), bp_(cfg_.bpred),
      core_(cfg_, contextBindings(prog_, port_, hier_, bp_))
{
}

WindowResult
ReplayContext::simulate(const LivePoint &point, bool approxWrongPath)
{
    mem_.reset();
    point.memImage.applyTo(mem_);
    point.l1i.reconstruct(hier_.l1i());
    point.l1d.reconstruct(hier_.l1d());
    point.l2.reconstruct(hier_.l2());
    point.itlb.reconstruct(hier_.itlb());
    point.dtlb.reconstruct(hier_.dtlb());
    const Blob *image = point.findBpredImage(bpredKey_);
    if (!image)
        throw std::runtime_error(
            strfmt("library does not cover predictor '%s'",
                   bpredKey_.c_str()));
    bp_.deserialize(*image);

    CoreBindings b;
    b.prog = &prog_;
    b.initialRegs = point.regs;
    b.mem = &port_;
    b.hier = &hier_;
    b.bp = &bp_;
    b.availability = &point.memImage;
    core_.rebind(b);
    core_.setApproxWrongPath(approxWrongPath);
    return core_.measure(point.warmLen, point.measureLen);
}

ReplayEngine::ReplayEngine(const Program &prog,
                           std::vector<CoreConfig> cfgs,
                           const ReplayEngineOptions &opt)
    : prog_(prog), cfgs_(std::move(cfgs)),
      approxWrongPath_(opt.approxWrongPath),
      threads_(std::max(opt.threads, 1u)),
      producers_(opt.decodeThreads ? opt.decodeThreads
                                   : autoProducers(threads_)),
      ringSlots_(opt.ringSlots
                     ? opt.ringSlots
                     : std::clamp<std::size_t>(
                           2 * (threads_ + producers_), 8, 64)),
      pool_(threads_ + producers_)
{
    if (cfgs_.empty())
        throw std::invalid_argument("ReplayEngine: no configurations");
    ctx_.reserve(static_cast<std::size_t>(threads_) * cfgs_.size());
    for (unsigned w = 0; w < threads_; ++w)
        for (const CoreConfig &c : cfgs_)
            ctx_.push_back(std::make_unique<ReplayContext>(prog_, c));
    // Caller contexts are built lazily: only simulateOne() needs them.
    callerCtx_.resize(cfgs_.size());
}

WindowResult
ReplayEngine::simulateOne(const LivePointLibrary &lib, std::size_t pos,
                          std::size_t cfgIdx)
{
    if (!callerCtx_[cfgIdx])
        callerCtx_[cfgIdx] =
            std::make_unique<ReplayContext>(prog_, cfgs_[cfgIdx]);
    lib.decodeInto(pos, callerScratch_, callerPoint_);
    bytesDecoded_.fetch_add(callerScratch_.size(),
                            std::memory_order_relaxed);
    return callerCtx_[cfgIdx]->simulate(callerPoint_, approxWrongPath_);
}

void
ReplayEngine::run(
    const LivePointLibrary &lib, const std::vector<std::size_t> &order,
    std::size_t blockSize, bool stopEarly,
    const std::function<void(std::size_t, const WindowResult *)>
        &foldPoint,
    const std::function<bool(std::size_t)> &foldBarrier)
{
    const std::size_t n = order.size();
    if (n == 0)
        return;
    blockSize = std::max<std::size_t>(blockSize, 1);
    const std::size_t numBlocks = (n + blockSize - 1) / blockSize;
    const std::size_t nc = cfgs_.size();
    const std::size_t S = ringSlots_;

    // The bounded decode ring. Slot j cycles through points j, j+S,
    // j+2S, ...; nextFill sequences the producers, holds tells a
    // waiting worker its point has arrived.
    struct Slot
    {
        LivePoint point;
        Blob raw;
        std::size_t holds = 0;
        std::size_t nextFill = 0;
        bool full = false;
    };
    std::vector<Slot> slots(S);
    for (std::size_t j = 0; j < S; ++j)
        slots[j].nextFill = j;

    std::mutex ringM;
    std::condition_variable cvFill;  //!< producers wait for a free slot
    std::condition_variable cvReady; //!< workers wait for their point

    std::mutex foldM;
    std::condition_variable cvBlockDone;    //!< folder waits on blocks
    std::condition_variable cvFoldProgress; //!< workers wait when gated
    std::size_t foldedPoints = 0; //!< guarded by foldM

    std::atomic<std::size_t> decodeNext{0};
    std::atomic<std::size_t> simNext{0};
    std::atomic<bool> stop{false};
    std::vector<std::atomic<std::size_t>> blockRemaining(numBlocks);
    for (std::size_t b = 0; b < numBlocks; ++b)
        blockRemaining[b].store(
            std::min(n, (b + 1) * blockSize) - b * blockSize);

    std::vector<WindowResult> results(n * nc);

    auto halt = [&]() {
        stop.store(true);
        {
            std::lock_guard<std::mutex> lk(ringM);
        }
        cvFill.notify_all();
        cvReady.notify_all();
        {
            std::lock_guard<std::mutex> lk(foldM);
        }
        cvBlockDone.notify_all();
        cvFoldProgress.notify_all();
    };

    auto producer = [&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t k = decodeNext.fetch_add(1);
            if (k >= n)
                return;
            Slot &s = slots[k % S];
            {
                std::unique_lock<std::mutex> lk(ringM);
                cvFill.wait(lk, [&]() {
                    return stop.load() || (!s.full && s.nextFill == k);
                });
                if (stop.load())
                    return;
            }
            // The slot is exclusively ours until marked full.
            lib.decodeInto(order[k], s.raw, s.point);
            bytesDecoded_.fetch_add(s.raw.size(),
                                    std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lk(ringM);
                s.full = true;
                s.holds = k;
            }
            cvReady.notify_all();
        }
    };

    auto worker = [&](unsigned w) {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t k = simNext.fetch_add(1);
            if (k >= n)
                return;
            if (stopEarly) {
                // Stay near the fold frontier so a satisfied
                // confidence check actually saves simulation work.
                std::unique_lock<std::mutex> lk(foldM);
                cvFoldProgress.wait(lk, [&]() {
                    return stop.load() ||
                           k < foldedPoints + 2 * blockSize;
                });
                if (stop.load())
                    return;
            }
            Slot &s = slots[k % S];
            {
                std::unique_lock<std::mutex> lk(ringM);
                cvReady.wait(lk, [&]() {
                    return stop.load() || (s.full && s.holds == k);
                });
                if (stop.load())
                    return;
            }
            for (std::size_t c = 0; c < nc; ++c)
                results[k * nc + c] = ctx_[w * nc + c]->simulate(
                    s.point, approxWrongPath_);
            {
                std::lock_guard<std::mutex> lk(ringM);
                s.full = false;
                s.nextFill = k + S;
            }
            cvFill.notify_all();
            const std::size_t b = k / blockSize;
            if (blockRemaining[b].fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lk(foldM);
                cvBlockDone.notify_all();
            }
        }
    };

    const std::function<void(unsigned)> job = [&](unsigned id) {
        try {
            if (id < producers_)
                producer();
            else
                worker(id - producers_);
        } catch (...) {
            halt();
            throw;
        }
    };

    pool_.start(job);

    try {
        std::size_t k = 0;
        for (std::size_t b = 0; b < numBlocks; ++b) {
            {
                std::unique_lock<std::mutex> lk(foldM);
                cvBlockDone.wait(lk, [&]() {
                    return stop.load() ||
                           blockRemaining[b].load() == 0;
                });
            }
            if (stop.load())
                break; // a worker failed; pool_.wait() rethrows below
            const std::size_t end = std::min(n, (b + 1) * blockSize);
            for (; k < end; ++k)
                foldPoint(k, &results[k * nc]);
            const bool keepGoing = foldBarrier(end);
            {
                std::lock_guard<std::mutex> lk(foldM);
                foldedPoints = end;
            }
            cvFoldProgress.notify_all();
            if (!keepGoing)
                break;
        }
    } catch (...) {
        // A fold callback threw. The pool threads still reference the
        // locals above (and `job` itself), so they must drain before
        // the stack unwinds; the fold exception outranks any worker
        // one.
        halt();
        try {
            pool_.wait();
        } catch (...) {
        }
        throw;
    }

    halt();
    pool_.wait();
}

} // namespace lp
