#include "core/replay.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/failpoint.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

CoreBindings
contextBindings(const Program &prog, MemPort &port, MemHierarchy &hier,
                BranchPredictor &bp)
{
    CoreBindings b;
    b.prog = &prog;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    return b;
}

unsigned
autoProducers(unsigned workers)
{
    // Decoding one point is a fraction of simulating it, so a few
    // producers keep many workers fed; one is enough to pipeline a
    // single worker.
    return std::max(1u, (workers + 2) / 3);
}

} // namespace

std::vector<std::size_t>
replayOrder(std::size_t n, std::uint64_t shuffleSeed)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    if (shuffleSeed) {
        Rng rng(shuffleSeed, "lp-run-order");
        for (std::size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.nextBounded(i)]);
    }
    return order;
}

unsigned
replayDecodeThreads(const ReplayEngineOptions &opt)
{
    return opt.decodeThreads ? opt.decodeThreads
                             : autoProducers(std::max(opt.threads, 1u));
}

ReplayContext::Unit::Unit(const Program &prog, const CoreConfig &config,
                          MemPort &port)
    : cfg(config), bpredKey(cfg.bpred.key()), hier(cfg.mem),
      bp(cfg.bpred), core(cfg, contextBindings(prog, port, hier, bp))
{
}

ReplayContext::ReplayContext(const Program &prog, const CoreConfig &cfg)
    : ReplayContext(prog, std::vector<CoreConfig>{cfg})
{
}

namespace
{

bool
sameCacheGeometry(const MemHierarchyConfig &a, const MemHierarchyConfig &b)
{
    return a.l1i == b.l1i && a.l1d == b.l1d && a.l2 == b.l2 &&
           a.itlb == b.itlb && a.dtlb == b.dtlb;
}

} // namespace

ReplayContext::ReplayContext(const Program &prog,
                             const std::vector<CoreConfig> &cfgs)
    : prog_(prog), direct_(mem_), overlay_(mem_)
{
    if (cfgs.empty())
        throw std::invalid_argument("ReplayContext: no configurations");
    units_.reserve(cfgs.size());
    for (const CoreConfig &c : cfgs)
        units_.push_back(std::make_unique<Unit>(prog_, c, direct_));
    bpredImage_.assign(units_.size(), nullptr);

    // Group units by reconstruction identity: configurations sharing
    // the five cache geometries (or the predictor table size) get one
    // warm-state stash, so a decode-once fan-out reconstructs each
    // distinct state from the record once per point and the remaining
    // configurations copy it.
    cacheStashOf_.assign(units_.size(), -1);
    bpredStashOf_.assign(units_.size(), -1);
    for (std::size_t j = 1; j < units_.size(); ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            if (cacheStashOf_[j] < 0 &&
                sameCacheGeometry(units_[i]->cfg.mem, units_[j]->cfg.mem)) {
                if (cacheStashOf_[i] < 0) {
                    cacheStashOf_[i] =
                        static_cast<int>(cacheStash_.size());
                    cacheStash_.push_back(CacheStash{
                        std::make_unique<MemHierarchy>(units_[i]->cfg.mem),
                        0});
                }
                cacheStashOf_[j] = cacheStashOf_[i];
            }
            if (bpredStashOf_[j] < 0 &&
                units_[i]->cfg.bpred.tableEntries ==
                    units_[j]->cfg.bpred.tableEntries) {
                if (bpredStashOf_[i] < 0) {
                    bpredStashOf_[i] =
                        static_cast<int>(bpredStash_.size());
                    bpredStash_.push_back(BpredStash{
                        std::make_unique<BranchPredictor>(
                            units_[i]->cfg.bpred),
                        0});
                }
                bpredStashOf_[j] = bpredStashOf_[i];
            }
        }
    }
}

const CoreConfig &
ReplayContext::config(std::size_t i) const
{
    return units_[i]->cfg;
}

WindowResult
ReplayContext::runUnit(std::size_t unitIdx, const LivePoint &point,
                       MemPort &port, bool approxWrongPath)
{
    Unit &u = *units_[unitIdx];

    // Warm caches: reconstruct from the record once per distinct
    // geometry per point; sibling configurations copy the snapshot.
    const int cs = cacheStashOf_[unitIdx];
    if (cs >= 0 && cacheStash_[cs].epoch == pointEpoch_) {
        MemHierarchy &stash = *cacheStash_[cs].hier;
        u.hier.l1i().copyStateFrom(stash.l1i());
        u.hier.l1d().copyStateFrom(stash.l1d());
        u.hier.l2().copyStateFrom(stash.l2());
        u.hier.itlb().copyStateFrom(stash.itlb());
        u.hier.dtlb().copyStateFrom(stash.dtlb());
    } else {
        point.l1i.reconstruct(u.hier.l1i());
        point.l1d.reconstruct(u.hier.l1d());
        point.l2.reconstruct(u.hier.l2());
        point.itlb.reconstruct(u.hier.itlb());
        point.dtlb.reconstruct(u.hier.dtlb());
        if (cs >= 0) {
            MemHierarchy &stash = *cacheStash_[cs].hier;
            stash.l1i().copyStateFrom(u.hier.l1i());
            stash.l1d().copyStateFrom(u.hier.l1d());
            stash.l2().copyStateFrom(u.hier.l2());
            stash.itlb().copyStateFrom(u.hier.itlb());
            stash.dtlb().copyStateFrom(u.hier.dtlb());
            cacheStash_[cs].epoch = pointEpoch_;
        }
    }

    // Warm predictor: image pointers were resolved in loadPoint();
    // the first unit of a table-size group unpacks, the rest copy.
    const int bs = bpredStashOf_[unitIdx];
    if (bs >= 0 && bpredStash_[bs].epoch == pointEpoch_) {
        u.bp.copyStateFrom(*bpredStash_[bs].bp);
    } else {
        const Blob *image = bpredImage_[unitIdx];
        if (!image)
            throw std::runtime_error(
                strfmt("library does not cover predictor '%s'",
                       u.bpredKey.c_str()));
        u.bp.deserialize(*image);
        if (bs >= 0) {
            bpredStash_[bs].bp->copyStateFrom(u.bp);
            bpredStash_[bs].epoch = pointEpoch_;
        }
    }

    CoreBindings b;
    b.prog = &prog_;
    b.initialRegs = point.regs;
    b.mem = &port;
    b.hier = &u.hier;
    b.bp = &u.bp;
    b.availability = &point.memImage;
    u.core.rebind(b);
    u.core.setApproxWrongPath(approxWrongPath);
    return u.core.measure(point.warmLen, point.measureLen);
}

WindowResult
ReplayContext::simulate(const LivePoint &point, bool approxWrongPath)
{
    loadPoint(point);
    // The single-configuration path stores straight into the pooled
    // memory (no overlay indirection on the hot path); the next
    // loadPoint() resets it anyway.
    return runUnit(0, point, direct_, approxWrongPath);
}

void
ReplayContext::loadPoint(const LivePoint &point)
{
    mem_.reset();
    point.memImage.applyTo(mem_);
    loaded_ = &point;
    ++pointEpoch_;
    // Resolve each unit's predictor image once per point instead of a
    // string-keyed map lookup per replay. A missing image only throws
    // if the configuration actually replays.
    for (std::size_t j = 0; j < units_.size(); ++j) {
        if (j > 0 && units_[j]->bpredKey == units_[j - 1]->bpredKey) {
            bpredImage_[j] = bpredImage_[j - 1];
            continue;
        }
        bpredImage_[j] = point.findBpredImage(units_[j]->bpredKey);
    }
}

WindowResult
ReplayContext::replay(std::size_t cfgIdx, bool approxWrongPath)
{
    if (!loaded_)
        throw std::logic_error("ReplayContext: replay before loadPoint");
    // Each configuration replays over a write-private overlay of the
    // point's memory image, so the image is applied once per point
    // while every configuration still sees pristine live state.
    overlay_.clear();
    return runUnit(cfgIdx, *loaded_, overlay_, approxWrongPath);
}

ReplayEngine::ReplayEngine(const Program &prog,
                           std::vector<CoreConfig> cfgs,
                           const ReplayEngineOptions &opt)
    : prog_(prog), cfgs_(std::move(cfgs)),
      approxWrongPath_(opt.approxWrongPath),
      threads_(std::max(opt.threads, 1u)),
      producers_(opt.decodeThreads ? opt.decodeThreads
                                   : autoProducers(threads_)),
      ringSlots_(opt.ringSlots
                     ? opt.ringSlots
                     : std::clamp<std::size_t>(
                           2 * (threads_ + producers_), 8, 64)),
      residentBudget_(opt.residentBudgetBytes),
      control_(opt.control)
{
    if (cfgs_.empty())
        throw std::invalid_argument("ReplayEngine: no configurations");
    if (cfgs_.size() > maxReplayConfigs)
        throw std::invalid_argument(
            "ReplayEngine: too many configurations");
    if (opt.sharedPool) {
        if (opt.sharedPool->size() < threads_ + producers_)
            throw std::invalid_argument(
                "ReplayEngine: shared pool is smaller than threads + "
                "decode producers");
        pool_ = opt.sharedPool;
    } else {
        ownedPool_ = std::make_unique<ThreadPool>(threads_ + producers_);
        pool_ = ownedPool_.get();
    }
    ctx_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        ctx_.push_back(std::make_unique<ReplayContext>(prog_, cfgs_));
    // Caller contexts are built lazily: only simulateOne() needs them.
    callerCtx_.resize(cfgs_.size());
    faults_.resize(cfgs_.size());
}

ReplayEngine::CellFaultInfo
ReplayEngine::cellFault(std::size_t c) const
{
    std::lock_guard<std::mutex> lk(faultM_);
    return faults_[c];
}

void
ReplayEngine::recordCellFault(std::size_t c, std::size_t point,
                              bool stuck, const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lk(faultM_);
        if (!((faultMask_.load(std::memory_order_relaxed) >> c) & 1)) {
            faults_[c].stuck = stuck;
            faults_[c].point = point;
            faults_[c].reason = reason;
        }
    }
    faultMask_.fetch_or(1ull << c, std::memory_order_release);
}

WindowResult
ReplayEngine::simulateOne(const LivePointLibrary &lib, std::size_t pos,
                          std::size_t cfgIdx)
{
    if (!callerCtx_[cfgIdx])
        callerCtx_[cfgIdx] =
            std::make_unique<ReplayContext>(prog_, cfgs_[cfgIdx]);
    lib.decodeInto(pos, callerScratch_, callerPoint_);
    bytesDecoded_.fetch_add(callerScratch_.payload.size(),
                            std::memory_order_relaxed);
    pointsDecoded_.fetch_add(1, std::memory_order_relaxed);
    replaysExecuted_.fetch_add(1, std::memory_order_relaxed);
    return callerCtx_[cfgIdx]->simulate(callerPoint_, approxWrongPath_);
}

void
ReplayEngine::run(
    const LivePointLibrary &lib, const std::vector<std::size_t> &order,
    std::size_t blockSize, bool stopEarly,
    const std::function<void(std::size_t, const WindowResult *)>
        &foldPoint,
    const std::function<std::uint64_t(std::size_t)> &foldBarrier,
    const ReplayPlan *plan)
{
    const std::size_t n = order.size();
    blockSize = std::max<std::size_t>(blockSize, 1);
    const std::size_t first = plan ? plan->firstPoint : 0;
    if (first % blockSize != 0)
        throw std::invalid_argument(
            "ReplayEngine: plan start is not block-aligned");
    if (first >= n)
        return;
    const std::size_t numBlocks = (n + blockSize - 1) / blockSize;
    const std::size_t firstBlock = first / blockSize;
    const std::size_t nc = cfgs_.size();
    const std::size_t S = ringSlots_;
    const std::uint64_t allMask = replayMaskAll(nc);

    // The bounded decode ring. Slot j cycles through points first+j,
    // first+j+S, ...; nextFill sequences the producers, holds tells a
    // waiting worker its point has arrived.
    struct Slot
    {
        LivePoint point;
        LivePointDecodeScratch scratch;
        std::size_t holds = 0;
        std::size_t nextFill = 0;
        bool full = false;
    };
    std::vector<Slot> slots(S);
    for (std::size_t j = 0; j < S; ++j)
        slots[(first + j) % S].nextFill = first + j;

    std::mutex ringM;
    std::condition_variable cvFill;  //!< producers wait for a free slot
    std::condition_variable cvReady; //!< workers wait for their point

    std::mutex foldM;
    std::condition_variable cvBlockDone;    //!< folder waits on blocks
    std::condition_variable cvFoldProgress; //!< workers wait when gated
    std::size_t foldedPoints = first; //!< guarded by foldM

    // Resident-budget window (budget != 0): bytes a point pins from
    // producer admission (compressed record + decoded image) until
    // the fold barrier passes it. Admission is ticketed in point
    // order, so which points wait depends only on the deterministic
    // byte sizes, never on thread timing.
    const std::uint64_t budget = residentBudget_;
    std::mutex gateM;
    std::condition_variable cvAdmit;
    std::size_t admitNext = first;   //!< guarded by gateM
    std::uint64_t residentNow = 0;   //!< guarded by gateM
    std::atomic<std::size_t> foldFloor{first}; //!< fold frontier
    auto pointBytes = [&lib, &order](std::size_t k) -> std::uint64_t {
        // Compressed + raw bytes over the whole delta chain — a delta
        // point's decode materializes its bases, and the budget must
        // cover the cold chain walk (equals compressed + raw of the
        // record alone for plain libraries).
        return lib.chargeBytes(order[k]);
    };

    std::atomic<std::size_t> decodeNext{first};
    std::atomic<std::size_t> simNext{first};
    std::atomic<bool> stop{false};
    // Configurations workers still replay. The fold barrier retires
    // converged ones; the fold side never reads results for a point
    // simulated after the retiring barrier, so the relaxed window
    // between the store and a worker's load costs only spare replays.
    std::atomic<std::uint64_t> activeMask{
        plan ? plan->initialMask & allMask : allMask};
    std::vector<std::atomic<std::size_t>> blockRemaining(numBlocks);
    for (std::size_t b = firstBlock; b < numBlocks; ++b)
        blockRemaining[b].store(
            std::min(n, (b + 1) * blockSize) -
            std::max(first, b * blockSize));

    // Row k lives at (k - first) * nc; nothing before `first` is
    // simulated or folded, so no storage is kept for it.
    std::vector<WindowResult> results((n - first) * nc);
    auto resultRow = [&results, first, nc](std::size_t k) {
        return results.data() + (k - first) * nc;
    };

    auto halt = [&]() {
        stop.store(true);
        {
            std::lock_guard<std::mutex> lk(ringM);
        }
        cvFill.notify_all();
        cvReady.notify_all();
        {
            std::lock_guard<std::mutex> lk(foldM);
        }
        cvBlockDone.notify_all();
        cvFoldProgress.notify_all();
        {
            std::lock_guard<std::mutex> lk(gateM);
        }
        cvAdmit.notify_all();
    };

    auto producer = [&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t k = decodeNext.fetch_add(1);
            if (k >= n)
                return;
            if (budget) {
                const std::uint64_t b = pointBytes(k);
                {
                    std::unique_lock<std::mutex> lk(gateM);
                    cvAdmit.wait(lk, [&]() {
                        if (stop.load())
                            return true;
                        if (admitNext != k)
                            return false;
                        if (residentNow == 0 ||
                            residentNow + b <= budget)
                            return true;
                        // The fold-frontier block must always admit:
                        // the barrier cannot release bytes until its
                        // whole block is simulated and folded.
                        const std::size_t frontier = foldFloor.load();
                        return k <
                               (frontier / blockSize + 1) * blockSize;
                    });
                    if (stop.load())
                        return;
                    residentNow += b;
                    admitNext = k + 1;
                    if (residentNow >
                        peakResidentBytes_.load(
                            std::memory_order_relaxed))
                        peakResidentBytes_.store(
                            residentNow, std::memory_order_relaxed);
                }
                cvAdmit.notify_all();
                // Page-in hint ahead of the simulation claim counter.
                lib.prefetchRecord(order[k]);
            }
            Slot &s = slots[k % S];
            {
                std::unique_lock<std::mutex> lk(ringM);
                cvFill.wait(lk, [&]() {
                    return stop.load() || (!s.full && s.nextFill == k);
                });
                if (stop.load())
                    return;
            }
            // The slot is exclusively ours until marked full.
            lib.decodeInto(order[k], s.scratch, s.point);
            bytesDecoded_.fetch_add(s.scratch.payload.size(),
                                    std::memory_order_relaxed);
            pointsDecoded_.fetch_add(1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lk(ringM);
                s.full = true;
                s.holds = k;
            }
            cvReady.notify_all();
        }
    };

    // The per-replay fault site. An injected error fails
    // configuration c of point k as a contained cell fault; an
    // injected hang parks this worker — a stuck cell — until the site
    // is disarmed (the stall recovered: the replay proceeds normally
    // and results are untouched) or a supervisor's failStuck verdict
    // aborts it as a fault. Returns true when the replay must be
    // skipped: its result slot stays invalid, and the fault record is
    // visible to the fold side before the point's block completes.
    auto cellGate = [&](std::size_t k, std::size_t c) -> bool {
        if (!failpointsArmed())
            return false;
        const FailpointOutcome o = failpointFire("replay.cell");
        if (o.hang) {
            while (!stop.load(std::memory_order_relaxed)) {
                if (control_ && control_->failStuck.load(
                                    std::memory_order_relaxed)) {
                    recordCellFault(
                        c, k, true,
                        "stuck replay aborted by supervisor");
                    return true;
                }
                if (!failpointsArmed())
                    return false; // disarmed: the stall recovered
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            return true; // the run is halting; skip the replay
        }
        if (o.fail) {
            recordCellFault(c, k, false,
                            strfmt("replay fault: %s",
                                   std::strerror(o.err)));
            return true;
        }
        return false;
    };

    auto worker = [&](unsigned w) {
        ReplayContext &ctx = *ctx_[w];
        while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t k = simNext.fetch_add(1);
            if (k >= n)
                return;
            if (stopEarly) {
                // Stay near the fold frontier so a satisfied
                // confidence check actually saves simulation work.
                std::unique_lock<std::mutex> lk(foldM);
                cvFoldProgress.wait(lk, [&]() {
                    return stop.load() ||
                           k < foldedPoints + 2 * blockSize;
                });
                if (stop.load())
                    return;
            }
            Slot &s = slots[k % S];
            {
                std::unique_lock<std::mutex> lk(ringM);
                cvReady.wait(lk, [&]() {
                    return stop.load() || (s.full && s.holds == k);
                });
                if (stop.load())
                    return;
            }
            WindowResult *out = resultRow(k);
            if (nc == 1) {
                if (!cellGate(k, 0)) {
                    out[0] = ctx.simulate(s.point, approxWrongPath_);
                    replaysExecuted_.fetch_add(
                        1, std::memory_order_relaxed);
                }
            } else {
                // Decode-once fan-out: the point's live state is
                // loaded once, every still-active configuration
                // replays from it.
                const std::uint64_t m =
                    activeMask.load(std::memory_order_acquire);
                ctx.loadPoint(s.point);
                std::uint64_t ran = 0;
                for (std::size_t c = 0; c < nc; ++c) {
                    if (!((m >> c) & 1))
                        continue;
                    if (cellGate(k, c))
                        continue;
                    out[c] = ctx.replay(c, approxWrongPath_);
                    ++ran;
                }
                replaysExecuted_.fetch_add(ran,
                                           std::memory_order_relaxed);
            }
            if (control_)
                control_->progress.fetch_add(
                    1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lk(ringM);
                s.full = false;
                s.nextFill = k + S;
            }
            cvFill.notify_all();
            const std::size_t b = k / blockSize;
            if (blockRemaining[b].fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lk(foldM);
                cvBlockDone.notify_all();
            }
        }
    };

    const std::function<void(unsigned)> job = [&](unsigned id) {
        try {
            if (id < producers_)
                producer();
            else if (id < producers_ + threads_)
                worker(id - producers_);
            // A shared pool may be wider than this run needs; the
            // excess workers return immediately.
        } catch (...) {
            halt();
            throw;
        }
    };

    pool_->start(job);

    try {
        std::size_t k = first;
        for (std::size_t b = firstBlock; b < numBlocks; ++b) {
            {
                std::unique_lock<std::mutex> lk(foldM);
                cvBlockDone.wait(lk, [&]() {
                    return stop.load() ||
                           blockRemaining[b].load() == 0;
                });
            }
            if (stop.load())
                break; // a worker failed; pool wait rethrows below
            const std::size_t end = std::min(n, (b + 1) * blockSize);
            for (; k < end; ++k)
                foldPoint(k, resultRow(k));
            // Faulted configurations never replay again, whatever the
            // barrier answered (their pending results are invalid).
            const std::uint64_t keep =
                foldBarrier(end) & allMask &
                ~faultMask_.load(std::memory_order_acquire);
            activeMask.store(keep, std::memory_order_release);
            {
                std::lock_guard<std::mutex> lk(foldM);
                foldedPoints = end;
            }
            cvFoldProgress.notify_all();
            if (budget) {
                // The barrier has passed this block: credit its
                // bytes back and hint the backend that the records
                // will not be re-read (a mapped library drops the
                // pages behind the run).
                const std::size_t blockStart =
                    std::max(first, b * blockSize);
                {
                    std::lock_guard<std::mutex> lk(gateM);
                    for (std::size_t kk = blockStart; kk < end; ++kk)
                        residentNow -= pointBytes(kk);
                }
                foldFloor.store(end);
                cvAdmit.notify_all();
                for (std::size_t kk = blockStart; kk < end; ++kk)
                    lib.releaseRecord(order[kk]);
            }
            if (keep == 0)
                break;
        }
    } catch (...) {
        // A fold callback threw. The pool threads still reference the
        // locals above (and `job` itself), so they must drain before
        // the stack unwinds; the fold exception outranks any worker
        // one.
        halt();
        try {
            pool_->wait();
        } catch (...) {
        }
        throw;
    }

    halt();
    pool_->wait();
}

} // namespace lp
