/**
 * @file
 * The four simulation strategies the paper compares, as one-call
 * runners: complete detailed simulation, SMARTS full warming, AW-MRRL
 * adaptive warming, and live-point replay (absolute estimation with
 * online stopping, and matched-pair comparison).
 */

#ifndef LP_CORE_RUNNERS_HH
#define LP_CORE_RUNNERS_HH

#include "core/builder.hh"
#include "core/library.hh"
#include "core/sample.hh"
#include "mrrl/mrrl.hh"
#include "uarch/core.hh"

namespace lp
{

/** Result of a sampled (SMARTS / AW-MRRL) run. */
struct SampledEstimate
{
    RunningStat stat; //!< per-window CPI observations
    double wallSeconds = 0.0;
    std::uint64_t warmedInsts = 0; //!< functionally warmed instructions

    double cpi() const { return stat.mean(); }
};

/** Result of complete detailed simulation. */
struct CompleteSimResult
{
    double cpi = 0.0;
    double wallSeconds = 0.0;
    InstCount insts = 0;
};

/**
 * Detailed-simulate the whole program (or its first @p maxInsts
 * instructions when nonzero).
 */
CompleteSimResult runCompleteDetailed(const Program &prog,
                                      const CoreConfig &cfg,
                                      InstCount maxInsts = 0);

/** SMARTS: functional warming end to end, detailed windows. */
SampledEstimate runSmarts(const Program &prog, const CoreConfig &cfg,
                          const SampleDesign &design);

/**
 * AW-MRRL: warm each window only for its MRRL-determined interval.
 * @p stitched carries microarchitectural state across windows;
 * unstitched resets it before each warming interval.
 */
SampledEstimate runAdaptiveWarming(const Program &prog,
                                   const CoreConfig &cfg,
                                   const SampleDesign &design,
                                   const MrrlAnalysis &mrrl,
                                   bool stitched);

/**
 * Options shared by the replay-engine runners. Results are folded in
 * deterministic blocks of blockSize points, with the confidence check
 * (early stopping) at the block barriers — so estimates and the
 * stopping point are bit-identical at every thread count.
 */
struct LivePointRunOptions
{
    ConfidenceSpec spec{};
    bool stopAtConfidence = false;
    bool approxWrongPath = false;
    std::uint64_t shuffleSeed = 0; //!< 0: process in stored order
    bool recordTrajectory = false;
    unsigned threads = 1;       //!< simulation workers
    unsigned decodeThreads = 0; //!< decode producers; 0 = auto
    std::size_t blockSize = 0;  //!< fold/stopping block; 0 = default

    /**
     * Resident-budget streaming replay (0 = off): bound the decode
     * window to this many in-flight bytes, with backend prefetch
     * ahead of the workers and release behind the fold barrier, so a
     * library larger than the budget streams through the run.
     * Results are bit-identical to the unbudgeted run (see
     * ReplayEngineOptions::residentBudgetBytes).
     */
    std::uint64_t residentBudgetBytes = 0;
};

struct LivePointRunResult
{
    OnlineSnapshot finalSnapshot;
    std::size_t processed = 0; //!< points folded into the estimate
    double wallSeconds = 0.0;
    std::uint64_t unavailableLoads = 0;
    std::uint64_t bytesDecoded = 0; //!< raw live-point bytes decoded
    /** Peak budget-window bytes (0 unless residentBudgetBytes set). */
    std::uint64_t peakResidentBytes = 0;
    std::vector<OnlineSnapshot> trajectory;

    double cpi() const { return finalSnapshot.mean; }
};

/**
 * Reconstruct and detailed-simulate one live-point under @p cfg;
 * the core of every live-point runner.
 */
WindowResult simulateLivePoint(const Program &prog, const LivePoint &point,
                               const CoreConfig &cfg,
                               bool approxWrongPath = false);

/** Process a library, accumulating the online CPI estimate. */
LivePointRunResult runLivePoints(const Program &prog,
                                 const LivePointLibrary &lib,
                                 const CoreConfig &cfg,
                                 const LivePointRunOptions &opt);

/** Outcome of a matched-pair comparison. */
struct MatchedPairResult
{
    double meanDelta = 0.0;      //!< mean (test - base) CPI
    double relDelta = 0.0;       //!< meanDelta / base CPI
    double deltaHalfWidth = 0.0; //!< CI half-width of the delta
    bool significant = false;    //!< CI excludes zero
};

struct MatchedPairOutcome
{
    MatchedPairResult result;
    std::size_t processed = 0; //!< pairs simulated
    std::uint64_t pairedSampleSize = 0;
    std::uint64_t absoluteSampleSize = 0;
    double wallSeconds = 0.0;
};

/**
 * Run @p base and @p test on the same live-points and estimate the
 * per-window CPI delta. With stopAtConfidence, stops as soon as the
 * delta is significant or provably below the spec's noise floor.
 */
MatchedPairOutcome runMatchedPair(const Program &prog,
                                  const LivePointLibrary &lib,
                                  const CoreConfig &base,
                                  const CoreConfig &test,
                                  const LivePointRunOptions &opt);

} // namespace lp

#endif // LP_CORE_RUNNERS_HH
