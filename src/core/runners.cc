#include "core/runners.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "func/functional.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * A write-private view of a base memory: the detailed window runs on
 * top of the live functional memory without perturbing it (all
 * accesses are 8-aligned 8-byte, so a word-granular overlay is exact).
 */
class OverlayMemPort : public MemPort
{
  public:
    explicit OverlayMemPort(SparseMemory &base) : base_(base) {}

    std::uint64_t read64(Addr a) override
    {
        const auto it = writes_.find(a);
        return it == writes_.end() ? base_.read64(a) : it->second;
    }

    void write64(Addr a, std::uint64_t v) override { writes_[a] = v; }

  private:
    SparseMemory &base_;
    std::unordered_map<Addr, std::uint64_t> writes_;
};

/** Clamp an MRRL warming request to what fits before the window. */
InstCount
clampWarming(InstCount requested, const SampleDesign &design,
             InstCount start)
{
    const InstCount gap = design.period() - design.windowLen();
    return std::min({requested, gap, start});
}

std::vector<std::size_t>
processingOrder(std::size_t n, std::uint64_t shuffleSeed)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    if (shuffleSeed) {
        Rng rng(shuffleSeed, "lp-run-order");
        for (std::size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.nextBounded(i)]);
    }
    return order;
}

} // namespace

CompleteSimResult
runCompleteDetailed(const Program &prog, const CoreConfig &cfg,
                    InstCount maxInsts)
{
    const auto t0 = Clock::now();
    SparseMemory mem;
    if (!prog.dataInit.empty())
        mem.writeBytes(prog.dataBase, prog.dataInit.data(),
                       prog.dataInit.size());
    DirectMemPort port(mem);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    CoreBindings b;
    b.prog = &prog;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    OoOCore core(cfg, b);
    const InstCount limit = maxInsts ? std::min(maxInsts, prog.length)
                                     : prog.length;
    const WindowResult w = core.commitRun(limit);
    CompleteSimResult res;
    res.cpi = w.cpi;
    res.insts = w.insts;
    res.wallSeconds = seconds(t0);
    return res;
}

SampledEstimate
runSmarts(const Program &prog, const CoreConfig &cfg,
          const SampleDesign &design)
{
    const auto t0 = Clock::now();
    FunctionalSimulator sim(prog);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    sim.setHierarchy(&hier);
    sim.addPredictor(&bp);

    SampledEstimate est;
    for (std::uint64_t i = 0; i < design.count; ++i) {
        const InstCount start = design.windowStart(i);
        sim.run(start - sim.regs().instIndex);

        // Measure the window on clones of the warm state and a
        // write-private memory view; functional warming then proceeds
        // through the window on the originals, exactly as the
        // live-point builder does.
        MemHierarchy hierClone = hier;
        BranchPredictor bpClone = bp;
        OverlayMemPort over(sim.memory());
        CoreBindings b;
        b.prog = &prog;
        b.initialRegs = sim.regs();
        b.mem = &over;
        b.hier = &hierClone;
        b.bp = &bpClone;
        OoOCore core(cfg, b);
        const WindowResult w =
            core.measure(design.warmLen, design.measureLen);
        est.stat.add(w.cpi);

        sim.run(design.windowLen());
    }
    sim.run(prog.length - sim.regs().instIndex);
    // Functional-warming work only (the O(B) cost the strategies
    // differ in); AW-MRRL accounts the same way.
    est.warmedInsts = sim.regs().instIndex;
    est.wallSeconds = seconds(t0);
    return est;
}

SampledEstimate
runAdaptiveWarming(const Program &prog, const CoreConfig &cfg,
                   const SampleDesign &design, const MrrlAnalysis &mrrl,
                   bool stitched)
{
    if (mrrl.warmingLengths.size() < design.count)
        throw std::runtime_error(
            "runAdaptiveWarming: MRRL analysis does not cover the "
            "design");
    const auto t0 = Clock::now();
    FunctionalSimulator sim(prog);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);

    SampledEstimate est;
    for (std::uint64_t i = 0; i < design.count; ++i) {
        const InstCount start = design.windowStart(i);
        // Clamp the MRRL request to the gap, the program start, and
        // the end of the previous window (the simulator only moves
        // forward).
        const InstCount warm = std::min(
            clampWarming(mrrl.warmingLengths[i], design, start),
            start - sim.regs().instIndex);

        // Fast-forward architecturally (no warming) to the start of
        // this window's warming interval.
        sim.setHierarchy(nullptr);
        sim.clearPredictors();
        sim.run(start - warm - sim.regs().instIndex);

        if (!stitched) {
            hier.reset();
            bp.reset();
        }
        sim.setHierarchy(&hier);
        sim.addPredictor(&bp);
        sim.run(warm);

        MemHierarchy hierClone = hier;
        BranchPredictor bpClone = bp;
        OverlayMemPort over(sim.memory());
        CoreBindings b;
        b.prog = &prog;
        b.initialRegs = sim.regs();
        b.mem = &over;
        b.hier = &hierClone;
        b.bp = &bpClone;
        OoOCore core(cfg, b);
        const WindowResult w =
            core.measure(design.warmLen, design.measureLen);
        est.stat.add(w.cpi);

        // Warm through the window itself (its references are known).
        sim.run(design.windowLen());
        est.warmedInsts += warm + design.windowLen();
    }
    est.wallSeconds = seconds(t0);
    return est;
}

WindowResult
simulateLivePoint(const Program &prog, const LivePoint &point,
                  const CoreConfig &cfg, bool approxWrongPath)
{
    SparseMemory mem;
    point.memImage.applyTo(mem);
    DirectMemPort port(mem);
    MemHierarchy hier(cfg.mem);
    point.l1i.reconstruct(hier.l1i());
    point.l1d.reconstruct(hier.l1d());
    point.l2.reconstruct(hier.l2());
    point.itlb.reconstruct(hier.itlb());
    point.dtlb.reconstruct(hier.dtlb());
    BranchPredictor bp(cfg.bpred);
    const Blob *image = point.findBpredImage(cfg.bpred.key());
    if (!image)
        throw std::runtime_error(
            strfmt("library does not cover predictor '%s'",
                   cfg.bpred.key().c_str()));
    bp.deserialize(*image);

    CoreBindings b;
    b.prog = &prog;
    b.initialRegs = point.regs;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    b.availability = &point.memImage;
    OoOCore core(cfg, b);
    core.setApproxWrongPath(approxWrongPath);
    return core.measure(point.warmLen, point.measureLen);
}

LivePointRunResult
runLivePoints(const Program &prog, const LivePointLibrary &lib,
              const CoreConfig &cfg, const LivePointRunOptions &opt)
{
    const auto t0 = Clock::now();
    const std::vector<std::size_t> order =
        processingOrder(lib.size(), opt.shuffleSeed);

    LivePointRunResult res;
    OnlineEstimator estimator(opt.spec);

    if (opt.threads > 1) {
        // Live-points are independent: partition them over workers,
        // then fold in order so the estimate is identical at every
        // thread count. (Early stopping is a sequential notion and is
        // disabled here.)
        std::vector<WindowResult> results(order.size());
        std::vector<std::thread> workers;
        const unsigned t = opt.threads;
        for (unsigned w = 0; w < t; ++w) {
            workers.emplace_back([&, w]() {
                for (std::size_t k = w; k < order.size(); k += t)
                    results[k] = simulateLivePoint(
                        prog, lib.get(order[k]), cfg,
                        opt.approxWrongPath);
            });
        }
        for (std::thread &th : workers)
            th.join();
        for (const WindowResult &w : results) {
            const OnlineSnapshot snap = estimator.add(w.cpi);
            res.unavailableLoads += w.unavailableLoads;
            ++res.processed;
            if (opt.recordTrajectory)
                res.trajectory.push_back(snap);
        }
    } else {
        for (const std::size_t pos : order) {
            const WindowResult w = simulateLivePoint(
                prog, lib.get(pos), cfg, opt.approxWrongPath);
            const OnlineSnapshot snap = estimator.add(w.cpi);
            res.unavailableLoads += w.unavailableLoads;
            ++res.processed;
            if (opt.recordTrajectory)
                res.trajectory.push_back(snap);
            if (opt.stopAtConfidence && snap.satisfied)
                break;
        }
    }
    res.finalSnapshot = estimator.snapshot();
    res.wallSeconds = seconds(t0);
    return res;
}

MatchedPairOutcome
runMatchedPair(const Program &prog, const LivePointLibrary &lib,
               const CoreConfig &base, const CoreConfig &test,
               const LivePointRunOptions &opt)
{
    const auto t0 = Clock::now();
    const std::vector<std::size_t> order =
        processingOrder(lib.size(), opt.shuffleSeed);
    const double z = confidenceZ(opt.spec.level);

    RunningStat baseStat;
    RunningStat testStat;
    RunningStat delta;
    MatchedPairOutcome out;

    for (const std::size_t pos : order) {
        const LivePoint point = lib.get(pos);
        const WindowResult wb =
            simulateLivePoint(prog, point, base, opt.approxWrongPath);
        const WindowResult wt =
            simulateLivePoint(prog, point, test, opt.approxWrongPath);
        baseStat.add(wb.cpi);
        testStat.add(wt.cpi);
        delta.add(wt.cpi - wb.cpi);
        ++out.processed;

        if (opt.stopAtConfidence && delta.count() >= minCltSample) {
            const double hw = delta.halfWidth(z);
            const double noiseFloor =
                opt.spec.relativeError * std::fabs(baseStat.mean());
            // Stop once the delta's CI excludes zero (a significant
            // difference) or is below the noise floor (provably nil).
            if (std::fabs(delta.mean()) > hw || hw <= noiseFloor)
                break;
        }
    }

    const double hw = delta.halfWidth(z);
    out.result.meanDelta = delta.mean();
    out.result.relDelta =
        baseStat.mean() != 0.0 ? delta.mean() / baseStat.mean() : 0.0;
    out.result.deltaHalfWidth = hw;
    out.result.significant = delta.count() >= minCltSample &&
                             std::fabs(delta.mean()) > hw;

    // Sample sizes to reach the spec: paired (estimate the delta to
    // within the noise floor) vs absolute (estimate the test CPI).
    const double errAbs =
        opt.spec.relativeError * std::fabs(baseStat.mean());
    if (errAbs > 0.0 && delta.count() >= 2) {
        const double n = std::ceil((z * delta.stddev() / errAbs) *
                                   (z * delta.stddev() / errAbs));
        out.pairedSampleSize = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(n), minCltSample);
    } else {
        out.pairedSampleSize = minCltSample;
    }
    out.absoluteSampleSize = requiredSampleSize(testStat.cov(), opt.spec);
    out.wallSeconds = seconds(t0);
    return out;
}

} // namespace lp
