#include "core/runners.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/replay.hh"
#include "func/functional.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Clamp an MRRL warming request to what fits before the window. */
InstCount
clampWarming(InstCount requested, const SampleDesign &design,
             InstCount start)
{
    const InstCount gap = design.period() - design.windowLen();
    return std::min({requested, gap, start});
}

} // namespace

CompleteSimResult
runCompleteDetailed(const Program &prog, const CoreConfig &cfg,
                    InstCount maxInsts)
{
    const auto t0 = Clock::now();
    SparseMemory mem;
    if (!prog.dataInit.empty())
        mem.writeBytes(prog.dataBase, prog.dataInit.data(),
                       prog.dataInit.size());
    DirectMemPort port(mem);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    CoreBindings b;
    b.prog = &prog;
    b.mem = &port;
    b.hier = &hier;
    b.bp = &bp;
    OoOCore core(cfg, b);
    const InstCount limit = maxInsts ? std::min(maxInsts, prog.length)
                                     : prog.length;
    const WindowResult w = core.commitRun(limit);
    CompleteSimResult res;
    res.cpi = w.cpi;
    res.insts = w.insts;
    res.wallSeconds = seconds(t0);
    return res;
}

SampledEstimate
runSmarts(const Program &prog, const CoreConfig &cfg,
          const SampleDesign &design)
{
    const auto t0 = Clock::now();
    FunctionalSimulator sim(prog);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);
    sim.setHierarchy(&hier);
    sim.addPredictor(&bp);

    SampledEstimate est;
    OverlayMemPort over(sim.memory());
    for (std::uint64_t i = 0; i < design.count; ++i) {
        const InstCount start = design.windowStart(i);
        sim.run(start - sim.regs().instIndex);

        // Measure the window on clones of the warm state and a
        // write-private memory view; functional warming then proceeds
        // through the window on the originals, exactly as the
        // live-point builder does. The one overlay is recycled across
        // windows.
        MemHierarchy hierClone = hier;
        BranchPredictor bpClone = bp;
        over.clear();
        CoreBindings b;
        b.prog = &prog;
        b.initialRegs = sim.regs();
        b.mem = &over;
        b.hier = &hierClone;
        b.bp = &bpClone;
        OoOCore core(cfg, b);
        const WindowResult w =
            core.measure(design.warmLen, design.measureLen);
        est.stat.add(w.cpi);

        sim.run(design.windowLen());
    }
    sim.run(prog.length - sim.regs().instIndex);
    // Functional-warming work only (the O(B) cost the strategies
    // differ in); AW-MRRL accounts the same way.
    est.warmedInsts = sim.regs().instIndex;
    est.wallSeconds = seconds(t0);
    return est;
}

SampledEstimate
runAdaptiveWarming(const Program &prog, const CoreConfig &cfg,
                   const SampleDesign &design, const MrrlAnalysis &mrrl,
                   bool stitched)
{
    if (mrrl.warmingLengths.size() < design.count)
        throw std::runtime_error(
            "runAdaptiveWarming: MRRL analysis does not cover the "
            "design");
    const auto t0 = Clock::now();
    FunctionalSimulator sim(prog);
    MemHierarchy hier(cfg.mem);
    BranchPredictor bp(cfg.bpred);

    SampledEstimate est;
    OverlayMemPort over(sim.memory());
    for (std::uint64_t i = 0; i < design.count; ++i) {
        const InstCount start = design.windowStart(i);
        // Clamp the MRRL request to the gap, the program start, and
        // the end of the previous window (the simulator only moves
        // forward).
        const InstCount warm = std::min(
            clampWarming(mrrl.warmingLengths[i], design, start),
            start - sim.regs().instIndex);

        // Fast-forward architecturally (no warming) to the start of
        // this window's warming interval.
        sim.setHierarchy(nullptr);
        sim.clearPredictors();
        sim.run(start - warm - sim.regs().instIndex);

        if (!stitched) {
            hier.reset();
            bp.reset();
        }
        sim.setHierarchy(&hier);
        sim.addPredictor(&bp);
        sim.run(warm);

        MemHierarchy hierClone = hier;
        BranchPredictor bpClone = bp;
        over.clear();
        CoreBindings b;
        b.prog = &prog;
        b.initialRegs = sim.regs();
        b.mem = &over;
        b.hier = &hierClone;
        b.bp = &bpClone;
        OoOCore core(cfg, b);
        const WindowResult w =
            core.measure(design.warmLen, design.measureLen);
        est.stat.add(w.cpi);

        // Warm through the window itself (its references are known).
        sim.run(design.windowLen());
        est.warmedInsts += warm + design.windowLen();
    }
    est.wallSeconds = seconds(t0);
    return est;
}

WindowResult
simulateLivePoint(const Program &prog, const LivePoint &point,
                  const CoreConfig &cfg, bool approxWrongPath)
{
    ReplayContext ctx(prog, cfg);
    return ctx.simulate(point, approxWrongPath);
}

LivePointRunResult
runLivePoints(const Program &prog, const LivePointLibrary &lib,
              const CoreConfig &cfg, const LivePointRunOptions &opt)
{
    const auto t0 = Clock::now();
    const std::vector<std::size_t> order =
        replayOrder(lib.size(), opt.shuffleSeed);

    LivePointRunResult res;
    OnlineEstimator estimator(opt.spec);

    if (!order.empty()) {
        ReplayEngineOptions ropt;
        ropt.threads = opt.threads;
        ropt.decodeThreads = opt.decodeThreads;
        ropt.approxWrongPath = opt.approxWrongPath;
        ropt.residentBudgetBytes = opt.residentBudgetBytes;
        ReplayEngine engine(prog, {cfg}, ropt);

        const std::size_t blockSize =
            opt.blockSize ? opt.blockSize : defaultFoldBlock;
        RunningStat block;
        engine.run(
            lib, order, blockSize, opt.stopAtConfidence,
            [&](std::size_t, const WindowResult *w) {
                block.add(w->cpi);
                res.unavailableLoads += w->unavailableLoads;
                ++res.processed;
                if (opt.recordTrajectory)
                    res.trajectory.push_back(estimator.preview(block));
            },
            [&](std::size_t) -> std::uint64_t {
                const OnlineSnapshot snap = estimator.fold(block);
                block = RunningStat();
                return opt.stopAtConfidence && snap.satisfied
                           ? 0
                           : replayMaskAll(1);
            });
        res.bytesDecoded = engine.bytesDecoded();
        res.peakResidentBytes = engine.peakResidentBytes();
    }
    res.finalSnapshot = estimator.snapshot();
    res.wallSeconds = seconds(t0);
    return res;
}

MatchedPairOutcome
runMatchedPair(const Program &prog, const LivePointLibrary &lib,
               const CoreConfig &base, const CoreConfig &test,
               const LivePointRunOptions &opt)
{
    const auto t0 = Clock::now();
    const std::vector<std::size_t> order =
        replayOrder(lib.size(), opt.shuffleSeed);
    const double z = confidenceZ(opt.spec.level);

    RunningStat baseStat;
    RunningStat testStat;
    RunningStat delta;
    MatchedPairOutcome out;

    if (!order.empty()) {
        ReplayEngineOptions ropt;
        ropt.threads = opt.threads;
        ropt.decodeThreads = opt.decodeThreads;
        ropt.approxWrongPath = opt.approxWrongPath;
        ropt.residentBudgetBytes = opt.residentBudgetBytes;
        // Both configurations of a point run on the same worker from
        // the same decoded point, so pairing stays exact.
        ReplayEngine engine(prog, {base, test}, ropt);

        const std::size_t blockSize =
            opt.blockSize ? opt.blockSize : defaultFoldBlock;
        engine.run(
            lib, order, blockSize, opt.stopAtConfidence,
            [&](std::size_t, const WindowResult *w) {
                baseStat.add(w[0].cpi);
                testStat.add(w[1].cpi);
                delta.add(w[1].cpi - w[0].cpi);
                ++out.processed;
            },
            [&](std::size_t) -> std::uint64_t {
                const std::uint64_t both = replayMaskAll(2);
                if (!opt.stopAtConfidence ||
                    delta.count() < minCltSample)
                    return both;
                const double hw = delta.halfWidth(z);
                const double noiseFloor = opt.spec.relativeError *
                                          std::fabs(baseStat.mean());
                // Stop once the delta's CI excludes zero (a
                // significant difference) or is below the noise floor
                // (provably nil).
                return std::fabs(delta.mean()) > hw || hw <= noiseFloor
                           ? 0
                           : both;
            });
    }

    const double hw = delta.halfWidth(z);
    out.result.meanDelta = delta.mean();
    out.result.relDelta =
        baseStat.mean() != 0.0 ? delta.mean() / baseStat.mean() : 0.0;
    out.result.deltaHalfWidth = hw;
    out.result.significant = delta.count() >= minCltSample &&
                             std::fabs(delta.mean()) > hw;

    // Sample sizes to reach the spec: paired (estimate the delta to
    // within the noise floor) vs absolute (estimate the test CPI).
    out.pairedSampleSize =
        pairedSampleSize(delta, baseStat.mean(), opt.spec);
    out.absoluteSampleSize = requiredSampleSize(testStat.cov(), opt.spec);
    out.wallSeconds = seconds(t0);
    return out;
}

} // namespace lp
