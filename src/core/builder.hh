/**
 * @file
 * Live-point library creation: the one-time full-warming pass (Figure
 * 6, step 2). The builder runs a functional simulation of the whole
 * benchmark, keeping a hierarchy at the library's *maximum* geometry
 * and every covered branch predictor warm; at each window start it
 * snapshots registers and warm state, then captures the window's
 * touched memory blocks as the restricted live-state image.
 *
 * Creation parallelises the same way replay does. The sample is split
 * into S contiguous shards; a cheap arch-only functional pre-pass
 * captures registers + memory at each shard boundary, and each pool
 * worker warms caches/TLBs/predictors over an MRRL-derived (or
 * fixed, configurable) prefix before emitting its shard's points. The
 * architectural content of every point (registers, live-state image)
 * is *exact* regardless of sharding — execution is deterministic from
 * the snapshots — and the MRRL result (Figs 4-5) bounds the warm-state
 * bias at each shard's leading windows. Point serialization and
 * compression are pipelined onto encoder threads, so even the S=1
 * build overlaps simulation with encoding while staying bit-identical
 * to the sequential reference.
 */

#ifndef LP_CORE_BUILDER_HH
#define LP_CORE_BUILDER_HH

#include "core/library.hh"
#include "core/library_set.hh"
#include "uarch/config.hh"

namespace lp
{

/**
 * The maximum microarchitecture a library bakes in: caches/TLBs no
 * larger than these geometries and predictors in this set can be
 * reconstructed exactly. Defaults cover both Table 1 configurations.
 */
struct LivePointBuilderConfig
{
    CacheGeometry maxL1i{64 * 1024, 2, 64};
    CacheGeometry maxL1d{64 * 1024, 2, 64};
    CacheGeometry maxL2{4ull << 20, 8, 128};
    CacheGeometry maxItlb{128 * 4096, 4, 4096};
    CacheGeometry maxDtlb{256 * 4096, 4, 4096};
    std::vector<BpredConfig> bpredConfigs{BpredConfig{}};

    /** Block size of the restricted live-state image. */
    unsigned imageBlockBytes = 64;

    /**
     * Warming shards (S). 1 = the whole sample on one simulating
     * thread (exact full warming); S>1 splits the sample into S
     * contiguous shards warmed concurrently.
     */
    unsigned buildThreads = 1;

    /** Serialize+compress threads; 0 = derived from buildThreads. */
    unsigned encodeThreads = 0;

    /**
     * Functional-warming prefix ahead of each shard's first window.
     * 0 = derive per shard from an MRRL analysis of the shard's
     * leading window (coverage 99.9%); >0 = use this fixed length.
     * Ignored for shard 0, which always warms from program start.
     */
    InstCount shardPrefixInsts = 0;

    /**
     * Offload point serialization + compression from the simulating
     * threads. Off = the PR-2 sequential reference path (only
     * meaningful with buildThreads == 1).
     */
    bool pipelineEncode = true;

    /**
     * Train a shared preset dictionary from the first few points'
     * payloads (a deterministic sequential pre-pass) and prime every
     * non-delta record with it. Saves as LPLIB4.
     */
    bool sharedDictionary = false;

    /** Dictionary size; the codec window caps the useful reach at 64KB. */
    std::size_t dictionaryBytes = 32 * 1024;

    /** Points sampled (and pre-warmed) for dictionary training. */
    std::size_t dictionarySamples = 4;

    /**
     * Delta-encode each point against its predecessor's raw payload
     * (successive points share most warm state). Each record keeps
     * whichever encoding is smaller, so delta never costs bytes; a
     * keyframe every maxDeltaChain points (and at every shard start)
     * bounds the chain a replay must rebuild. Saves as LPLIB4.
     */
    bool deltaEncode = false;

    /** Keyframe cadence: at most this many records per delta chain. */
    unsigned maxDeltaChain = 8;
};

/**
 * Restricted live-state as a build option: a builder configuration
 * whose warm state covers exactly the geometry/predictor range of
 * @p configs instead of the library-wide maximum — a campaign that
 * only replays those configurations stores (and decodes) far fewer
 * warm-state bytes, at the price of not covering anything larger.
 * Geometries are combined per level (max size/assoc; line sizes must
 * agree — the set-record covering relation requires it) and the
 * distinct branch predictors of @p configs become the covered set.
 * Encoding/threading knobs are taken from @p base.
 */
LivePointBuilderConfig
restrictedBuilderConfig(const std::vector<CoreConfig> &configs,
                        const LivePointBuilderConfig &base = {});

struct BuilderStats
{
    double wallSeconds = 0.0;
    std::uint64_t points = 0;
    /** Functionally *warmed* instructions, summed over shards. */
    InstCount instsSimulated = 0;
    /** Arch-only pre-pass instructions (0 for a 1-shard build). */
    InstCount prePassInsts = 0;
    unsigned shards = 1;
    /**
     * Warming instructions the shards *wanted* but could not get:
     * a shard's prefix may reach back before the previous shard's
     * snapshot, and the one-forward-pass pre-pass cannot rewind. A
     * nonzero value means some shard-leading windows were warmed
     * short of the MRRL bound (also warned at build time) — use
     * fewer shards or a shorter configured prefix.
     */
    InstCount prefixShortfallInsts = 0;
};

class LivePointBuilder
{
  public:
    explicit LivePointBuilder(const LivePointBuilderConfig &cfg);

    /** Create the library for @p design over @p prog. */
    LivePointLibrary build(const Program &prog,
                           const SampleDesign &design);

    /**
     * Build @p prog's library and stream it straight into @p set as
     * the shard for workload @p name, releasing the in-memory
     * library before returning — a fleet build over many workloads
     * keeps at most one shard resident at a time. Returns the
     * build's statistics.
     */
    BuilderStats buildInto(LibrarySetWriter &set,
                           const std::string &name, const Program &prog,
                           const SampleDesign &design);

    /** Statistics of the most recent build() call. */
    const BuilderStats &stats() const { return stats_; }

    const LivePointBuilderConfig &config() const { return cfg_; }

  private:
    LivePointLibrary buildSequential(const Program &prog,
                                     const SampleDesign &design);
    LivePointLibrary buildParallel(const Program &prog,
                                   const SampleDesign &design);

    LivePointBuilderConfig cfg_;
    BuilderStats stats_;
};

} // namespace lp

#endif // LP_CORE_BUILDER_HH
