/**
 * @file
 * Live-point library creation: the one-time full-warming pass (Figure
 * 6, step 2). The builder runs a functional simulation of the whole
 * benchmark, keeping a hierarchy at the library's *maximum* geometry
 * and every covered branch predictor warm; at each window start it
 * snapshots registers and warm state, then captures the window's
 * touched memory blocks as the restricted live-state image.
 */

#ifndef LP_CORE_BUILDER_HH
#define LP_CORE_BUILDER_HH

#include "core/library.hh"
#include "uarch/config.hh"

namespace lp
{

/**
 * The maximum microarchitecture a library bakes in: caches/TLBs no
 * larger than these geometries and predictors in this set can be
 * reconstructed exactly. Defaults cover both Table 1 configurations.
 */
struct LivePointBuilderConfig
{
    CacheGeometry maxL1i{64 * 1024, 2, 64};
    CacheGeometry maxL1d{64 * 1024, 2, 64};
    CacheGeometry maxL2{4ull << 20, 8, 128};
    CacheGeometry maxItlb{128 * 4096, 4, 4096};
    CacheGeometry maxDtlb{256 * 4096, 4, 4096};
    std::vector<BpredConfig> bpredConfigs{BpredConfig{}};

    /** Block size of the restricted live-state image. */
    unsigned imageBlockBytes = 64;
};

struct BuilderStats
{
    double wallSeconds = 0.0;
    std::uint64_t points = 0;
    InstCount instsSimulated = 0;
};

class LivePointBuilder
{
  public:
    explicit LivePointBuilder(const LivePointBuilderConfig &cfg);

    /** Create the library for @p design over @p prog. */
    LivePointLibrary build(const Program &prog,
                           const SampleDesign &design);

    /** Statistics of the most recent build() call. */
    const BuilderStats &stats() const { return stats_; }

    const LivePointBuilderConfig &config() const { return cfg_; }

  private:
    LivePointBuilderConfig cfg_;
    BuilderStats stats_;
};

} // namespace lp

#endif // LP_CORE_BUILDER_HH
