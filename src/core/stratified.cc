#include "core/stratified.hh"

#include <algorithm>
#include <cmath>

#include "core/replay.hh"

namespace lp
{

StratifiedResult
runStratified(const Program &prog, const LivePointLibrary &lib,
              const CoreConfig &cfg, const StratifiedOptions &opt)
{
    StratifiedResult res;
    const std::size_t n = lib.size();
    if (n == 0)
        return res;

    const unsigned k = opt.strata
                           ? opt.strata
                           : static_cast<unsigned>(std::clamp<std::size_t>(
                                 n / 25, 2, 12));
    res.strata = k;

    // Assign each stored record to a stratum by its window index
    // (program order), regardless of the library's stored order; the
    // index is library metadata, so no record is decompressed here.
    std::vector<std::vector<std::size_t>> queues(k);
    const std::uint64_t span =
        std::max<std::uint64_t>(lib.design().count, 1);
    for (std::size_t pos = 0; pos < n; ++pos) {
        const std::uint64_t idx = lib.windowIndex(pos);
        const std::size_t h = std::min<std::size_t>(
            static_cast<std::size_t>(idx * k / span), k - 1);
        queues[h].push_back(pos);
    }
    Rng rng(opt.shuffleSeed, "stratified");
    std::vector<double> weight(k, 0.0);
    for (unsigned h = 0; h < k; ++h) {
        auto &q = queues[h];
        for (std::size_t i = q.size(); i > 1; --i)
            std::swap(q[i - 1], q[rng.nextBounded(i)]);
        weight[h] = static_cast<double>(q.size()) /
                    static_cast<double>(n);
    }

    std::vector<RunningStat> strat(k);
    const double z = confidenceZ(opt.spec.level);

    ReplayEngineOptions ropt;
    ropt.threads = opt.threads;
    ropt.decodeThreads = opt.decodeThreads;
    ropt.approxWrongPath = opt.approxWrongPath;
    ReplayEngine engine(prog, {cfg}, ropt);

    auto measureFrom = [&](unsigned h) {
        const std::size_t pos = queues[h].back();
        queues[h].pop_back();
        const WindowResult w = engine.simulateOne(lib, pos);
        strat[h].add(w.cpi);
        ++res.processed;
    };

    auto combined = [&](double &mean, double &se) {
        mean = 0.0;
        double var = 0.0;
        for (unsigned h = 0; h < k; ++h) {
            if (!strat[h].count())
                continue;
            mean += weight[h] * strat[h].mean();
            var += weight[h] * weight[h] * strat[h].variance() /
                   static_cast<double>(strat[h].count());
        }
        se = std::sqrt(var);
    };

    // Pilot: a minimum per stratum (at least one, or the allocation
    // loop below would have no variance estimate to work from). The
    // pilot set is fixed up front, so it runs on the engine pool;
    // folding in the same stratum-major order a sequential pilot
    // would use keeps the statistics — and thus every later greedy
    // decision — identical at any thread count.
    const std::size_t minPer =
        std::max<std::size_t>(opt.minPerStratum, 1);
    std::vector<std::size_t> pilotOrder;
    std::vector<unsigned> pilotStratum;
    for (unsigned h = 0; h < k; ++h) {
        for (std::size_t i = 0; i < minPer && !queues[h].empty(); ++i) {
            pilotOrder.push_back(queues[h].back());
            queues[h].pop_back();
            pilotStratum.push_back(h);
        }
    }
    if (!pilotOrder.empty()) {
        engine.run(
            lib, pilotOrder, pilotOrder.size(), false,
            [&](std::size_t i, const WindowResult *w) {
                strat[pilotStratum[i]].add(w->cpi);
                ++res.processed;
            },
            [](std::size_t) { return replayMaskAll(1); });
    }

    // Greedy Neyman allocation: always sample the stratum whose next
    // measurement reduces the combined variance the most.
    while (true) {
        double mean = 0.0;
        double se = 0.0;
        combined(mean, se);
        res.mean = mean;
        res.relHalfWidth =
            mean != 0.0 ? z * se / std::fabs(mean) : 0.0;
        if (res.processed >= minCltSample && mean != 0.0 &&
            res.relHalfWidth <= opt.spec.relativeError) {
            res.satisfied = true;
            break;
        }
        unsigned best = k;
        double bestGain = -1.0;
        for (unsigned h = 0; h < k; ++h) {
            if (queues[h].empty() || !strat[h].count())
                continue;
            const double nh = static_cast<double>(strat[h].count());
            const double gain = weight[h] * weight[h] *
                                strat[h].variance() / (nh * (nh + 1.0));
            if (gain > bestGain) {
                bestGain = gain;
                best = h;
            }
        }
        if (best == k)
            break; // library exhausted
        measureFrom(best);
    }
    return res;
}

} // namespace lp
