/**
 * @file
 * Live-points and their library. A live-point is the complete state
 * needed to simulate one sampled window in isolation: architectural
 * registers, the window's touched memory blocks (restricted
 * live-state), warm cache/TLB set records at the library's maximum
 * geometry, and one serialized branch-predictor image per covered
 * configuration. The library stores each point individually
 * compressed, supports shuffling (so any prefix is an unbiased random
 * sub-sample), and round-trips through a single on-disk file.
 */

#ifndef LP_CORE_LIBRARY_HH
#define LP_CORE_LIBRARY_HH

#include <map>
#include <string>

#include "cache/warmstate.hh"
#include "codec/der.hh"
#include "core/sample.hh"
#include "mem/memport.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

namespace lp
{

/** Uncompressed byte accounting of one live-point (Figure 7). */
struct LivePointBreakdown
{
    std::uint64_t regsAndTlb = 0;
    std::uint64_t memData = 0;
    std::uint64_t bpred = 0;
    std::uint64_t l1iTags = 0;
    std::uint64_t l1dTags = 0;
    std::uint64_t l2Tags = 0;
    std::uint64_t total = 0;
};

struct LivePoint
{
    std::uint64_t index = 0;    //!< window number within the design
    InstCount windowStart = 0;  //!< first instruction of the window
    InstCount warmLen = 0;
    InstCount measureLen = 0;
    ArchRegs regs;
    MemoryImage memImage;
    CacheSetRecord l1i;
    CacheSetRecord l1d;
    CacheSetRecord l2;
    CacheSetRecord itlb;
    CacheSetRecord dtlb;
    std::map<std::string, Blob> bpredImages; //!< key -> predictor image

    /** Image for a predictor key, or nullptr if not covered. */
    const Blob *findBpredImage(const std::string &key) const;

    /** Per-section uncompressed sizes. */
    LivePointBreakdown breakdown() const;

    Blob serialize() const;
    static LivePoint deserialize(const Blob &data);

    /**
     * Deserialize into @p out, reusing its storage where possible
     * (cache-record entry arrays, predictor-image buffers keyed the
     * same as the previous point). The decode-pipeline hot path.
     */
    static void deserializeInto(const Blob &data, LivePoint &out);
};

class LivePointLibrary
{
  public:
    LivePointLibrary() = default;
    LivePointLibrary(std::string benchmark, const SampleDesign &design);

    const std::string &benchmark() const { return benchmark_; }
    const SampleDesign &design() const { return design_; }
    std::size_t size() const { return records_.size(); }

    /** Decompress and decode the @p i-th stored point. */
    LivePoint get(std::size_t i) const;

    /**
     * Decompress and decode the @p i-th stored point into
     * caller-owned buffers, reusing their storage. @p scratch holds
     * the decompressed bytes between calls; thread-safe for
     * concurrent calls with distinct buffers.
     */
    void decodeInto(std::size_t i, Blob &scratch, LivePoint &out) const;

    /** Compress and append a point. */
    void add(const LivePoint &point);

    /** Stored (compressed) bytes of the @p i-th point. */
    std::size_t compressedSize(std::size_t i) const
    {
        return records_[i].size();
    }

    /**
     * Window index of the @p i-th stored point, without decompressing
     * it (kept as library metadata for stratum assignment).
     */
    std::uint64_t windowIndex(std::size_t i) const { return indices_[i]; }

    std::uint64_t totalCompressedBytes() const;
    std::uint64_t totalUncompressedBytes() const;

    /** Permute the stored order (Fisher-Yates with @p rng). */
    void shuffle(Rng &rng);

    void save(const std::string &path) const;
    static LivePointLibrary load(const std::string &path);

  private:
    std::string benchmark_;
    SampleDesign design_;
    std::vector<Blob> records_;           //!< zip-compressed points
    std::vector<std::uint64_t> rawSizes_; //!< uncompressed sizes
    std::vector<std::uint64_t> indices_;  //!< window index per record
};

} // namespace lp

#endif // LP_CORE_LIBRARY_HH
