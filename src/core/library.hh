/**
 * @file
 * Live-points and their library. A live-point is the complete state
 * needed to simulate one sampled window in isolation: architectural
 * registers, the window's touched memory blocks (restricted
 * live-state), warm cache/TLB set records at the library's maximum
 * geometry, and one serialized branch-predictor image per covered
 * configuration. The library stores each point individually
 * compressed, supports shuffling (so any prefix is an unbiased random
 * sub-sample), and round-trips through a single on-disk file.
 *
 * On-disk container (LPLIB3): a fixed header, a DER meta blob
 * (benchmark + design), a per-point index table (offset / compressed
 * size / raw size / window index), then the raw compressed records
 * back-to-back. Written streaming — no whole-library staging buffer —
 * and loaded through a pluggable LibrarySource backend (io/source.hh):
 * an owned heap buffer or a read-only mmap, with records exposed as
 * zero-copy spans into either. Older DER-blob libraries (LPLIB2) are
 * detected by magic and load through the same backends.
 *
 * Cross-point compression (LPLIB4): successive live-points share most
 * of their warm state, so the container can optionally carry a shared
 * preset dictionary (trained from sampled payloads, priming every
 * keyframe record) and per-record *delta* encoding (a record's
 * serialized state compressed against its predecessor's raw bytes).
 * Each record carries flags, the file position of its delta base, and
 * a checksum of its raw bytes — decode verifies the checksum for
 * dictionary/delta records, so a corrupt dictionary or a broken chain
 * fails loudly instead of yielding a silently wrong point. Plain
 * libraries keep saving as LPLIB3 bit-identically; all three formats
 * load through the same backends.
 */

#ifndef LP_CORE_LIBRARY_HH
#define LP_CORE_LIBRARY_HH

#include <map>
#include <memory>
#include <string>

#include "cache/warmstate.hh"
#include "codec/der.hh"
#include "core/sample.hh"
#include "io/source.hh"
#include "mem/memport.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

namespace lp
{

/** Uncompressed byte accounting of one live-point (Figure 7). */
struct LivePointBreakdown
{
    std::uint64_t regsAndTlb = 0;
    std::uint64_t memData = 0;
    std::uint64_t bpred = 0;
    std::uint64_t l1iTags = 0;
    std::uint64_t l1dTags = 0;
    std::uint64_t l2Tags = 0;
    std::uint64_t total = 0;
};

struct LivePoint
{
    std::uint64_t index = 0;    //!< window number within the design
    InstCount windowStart = 0;  //!< first instruction of the window
    InstCount warmLen = 0;
    InstCount measureLen = 0;
    ArchRegs regs;
    MemoryImage memImage;
    CacheSetRecord l1i;
    CacheSetRecord l1d;
    CacheSetRecord l2;
    CacheSetRecord itlb;
    CacheSetRecord dtlb;
    std::map<std::string, Blob> bpredImages; //!< key -> predictor image

    /** Image for a predictor key, or nullptr if not covered. */
    const Blob *findBpredImage(const std::string &key) const;

    /** Per-section uncompressed sizes. */
    LivePointBreakdown breakdown() const;

    Blob serialize() const;
    static LivePoint deserialize(const Blob &data);

    /**
     * Deserialize into @p out, reusing its storage where possible
     * (cache-record entry arrays, predictor-image buffers keyed the
     * same as the previous point). The decode-pipeline hot path.
     */
    static void deserializeInto(const Blob &data, LivePoint &out);
};

/**
 * Reusable per-consumer decode state for LivePointLibrary::decodeInto:
 * the decompressed payload, which doubles as the chain cache a delta
 * library needs — after a decode, @c payload holds the raw bytes of
 * the record just decoded (@c cachedPos), so replaying records in
 * stored order rebuilds each delta from its already-materialized base
 * instead of re-walking the whole chain. Plain libraries use only
 * @c payload; the work buffers stay empty.
 */
struct LivePointDecodeScratch
{
    Blob payload; //!< decoded raw bytes of the last requested record
    Blob prevRaw; //!< chain-walk work buffer
    Blob tmp;     //!< chain-walk work buffer

    /** Chain-walk scratch (reused so delta decode allocates nothing). */
    std::vector<std::uint64_t> chain;

    /** File position whose raw bytes payload holds (~0: none). */
    std::uint64_t cachedPos = ~std::uint64_t(0);

    void resetCache() { cachedPos = ~std::uint64_t(0); }
};

class LivePointLibrary
{
  public:
    /** On-disk container format. */
    enum class Format
    {
        autoSelect, //!< lpl4 when dict/delta features are used, else lpl3
        lpl4,       //!< indexed + shared dictionary + delta records
        lpl3,       //!< indexed, streaming, zero-copy load
        lpl2        //!< legacy single-DER-blob container
    };

    /** Record encoding flags (table metadata, kept per record). */
    static constexpr std::uint8_t kFlagDict = 1;  //!< preset dictionary
    static constexpr std::uint8_t kFlagDelta = 2; //!< delta vs base record

    LivePointLibrary() = default;
    LivePointLibrary(std::string benchmark, const SampleDesign &design);

    const std::string &benchmark() const { return benchmark_; }
    const SampleDesign &design() const { return design_; }
    std::size_t size() const { return refs_.size(); }

    /**
     * Decompress and decode the @p i-th stored point. Convenience for
     * one-off inspection; hot paths (replay producers, benches) use
     * decodeInto(), which allocates nothing in steady state.
     */
    LivePoint get(std::size_t i) const;

    /**
     * Decompress and decode the @p i-th stored point into
     * caller-owned buffers, reusing their storage. @p scratch holds
     * the decompressed bytes between calls; thread-safe for
     * concurrent calls with distinct buffers. For a delta record the
     * chain is rebuilt from its nearest keyframe (or from the scratch
     * cache when the caller last decoded the base — the stored-order
     * replay pattern), and dictionary/delta records are verified
     * against their stored raw checksum before deserializing.
     */
    void decodeInto(std::size_t i, LivePointDecodeScratch &scratch,
                    LivePoint &out) const;

    /**
     * Compatibility overload with a bare payload buffer. Identical
     * for plain records; a delta record allocates chain buffers per
     * call — hot paths use the scratch-struct overload.
     */
    void decodeInto(std::size_t i, Blob &scratch, LivePoint &out) const;

    /** Compress and append a point (primed with the dictionary, if set). */
    void add(const LivePoint &point);

    /**
     * Append an already-compressed record (the parallel builder's
     * encoder threads compress off the simulating thread and hand the
     * finished bytes over). @p rawSize is the uncompressed size,
     * @p windowIndex the point's window number.
     */
    void addCompressed(const Blob &compressed, std::uint64_t rawSize,
                       std::uint64_t windowIndex);

    /**
     * Append a record with explicit encoding metadata: @p flags marks
     * dictionary priming and/or delta encoding (a delta record's base
     * is the previously appended record — builders emit chains in
     * append order), @p rawHash is the checksum of the uncompressed
     * payload (0: absent; decode then skips verification).
     */
    void addEncoded(const Blob &compressed, std::uint64_t rawSize,
                    std::uint64_t windowIndex, std::uint8_t flags,
                    std::uint64_t rawHash);

    /**
     * Install the shared preset dictionary. Must be set before any
     * dictionary-flagged record is appended and never changed after —
     * records compressed against it are unreadable with any other.
     */
    void setDictionary(Blob dict);

    /** The shared preset dictionary (empty when the library has none). */
    const Blob &dictionary() const { return dict_; }

    /** Encoding flags of the @p i-th stored point. */
    std::uint8_t recordFlags(std::size_t i) const
    {
        return refs_[pos(i)].flags;
    }

    /** Stored points that are delta-encoded. */
    std::size_t deltaCount() const;

    /**
     * Resident-budget charge of the @p i-th stored point: compressed
     * plus decoded bytes of the record *and every record on its delta
     * chain* — admitting a delta point pins its bases, and the budget
     * must account for the worst case (a cold chain walk).
     */
    std::uint64_t chargeBytes(std::size_t i) const
    {
        return refs_[pos(i)].chainBytes;
    }

    /**
     * Pre-size the arena for @p count records totalling
     * @p recordBytes compressed bytes, so a bulk assembly never pays
     * vector doubling (which would transiently hold ~2x the library).
     */
    void reserve(std::uint64_t recordBytes, std::size_t count);

    /**
     * Borrowed view of the @p i-th compressed record — points into
     * the library's backing buffer. Valid until the next
     * add()/addCompressed() (appends may reallocate the arena) or
     * the library's destruction, whichever comes first.
     */
    ByteSpan record(std::size_t i) const;

    /** Stored (compressed) bytes of the @p i-th point. */
    std::size_t compressedSize(std::size_t i) const
    {
        return refs_[pos(i)].size;
    }

    /** Uncompressed bytes of the @p i-th point (index metadata). */
    std::uint64_t rawSize(std::size_t i) const
    {
        return refs_[pos(i)].rawSize;
    }

    /**
     * Window index of the @p i-th stored point, without decompressing
     * it (kept as library metadata for stratum assignment).
     */
    std::uint64_t windowIndex(std::size_t i) const
    {
        return refs_[pos(i)].index;
    }

    /**
     * Name of the storage backend holding the records: "mmap" or
     * "owned-buffer" for a loaded container, "arena" for a library
     * built (or appended to) in memory, "arena+<backend>" when both
     * hold records.
     */
    std::string storageKind() const;

    /** True when the records live in a file mapping. */
    bool mappedBacking() const
    {
        return source_ && source_->mapped();
    }

    /**
     * True when the LP_HUGEPAGES hint was requested and applied to
     * the backing mapping (always false for heap-backed storage).
     */
    bool hugepagesApplied() const
    {
        return source_ && source_->hugepagesApplied();
    }

    /** Bytes of the loaded container file (0 for in-memory builds). */
    std::uint64_t backingBytes() const
    {
        return source_ ? source_->size() : 0;
    }

    /**
     * Heap bytes the library pins regardless of access pattern: the
     * append arena plus the backing buffer when it is heap-held. A
     * mapped library pins only its arena — the kernel pages the file
     * in and out on demand.
     */
    std::uint64_t pinnedBytes() const
    {
        return arena_.size() + (source_ ? source_->pinnedBytes() : 0);
    }

    /** Hint the backend that record @p i is needed soon. */
    void prefetchRecord(std::size_t i) const;

    /** Hint the backend that record @p i will not be re-read soon. */
    void releaseRecord(std::size_t i) const;

    std::uint64_t totalCompressedBytes() const;
    std::uint64_t totalUncompressedBytes() const;

    /**
     * 64-bit digest of the library's content in stored order:
     * benchmark, design, and every record's window index and bytes.
     * Two libraries with equal hashes replay identically, so the
     * campaign manifest keys resumable fold state by this value
     * (shuffles change the stored order and therefore the hash).
     */
    std::uint64_t contentHash() const;

    /**
     * Permute the stored order (Fisher-Yates with @p rng). Only the
     * view order moves (an indirection over the record references);
     * the compressed bytes — and the delta chains linking them — stay
     * put, so a shuffled delta library decodes exactly as before.
     */
    void shuffle(Rng &rng);

    /**
     * Write the container. The default picks the format from the
     * library's features: LPLIB3 (bit-identical to previous releases)
     * when no dictionary/delta encoding is present, LPLIB4 otherwise.
     * Records stream to the file — peak memory stays at the library's
     * resident size, not double it. Requesting lpl3/lpl2 for a
     * dictionary/delta library throws (those formats cannot represent
     * it). The legacy format is kept for compatibility tests and
     * older readers.
     */
    void save(const std::string &path,
              Format format = Format::autoSelect) const;

    /**
     * Load either container format (dispatched on the file magic)
     * through the chosen storage backend. The default (autoSelect)
     * maps the file when the platform allows and LP_NO_MMAP is
     * unset, and falls back to one owned heap buffer otherwise —
     * record parsing, decoding, content hashing, and the corruption
     * cross-checks are identical through either backend.
     */
    static LivePointLibrary
    load(const std::string &path,
         StorageBackend backend = StorageBackend::autoSelect);

  private:
    /** Where one compressed record lives, in file (append) order. */
    struct RecordRef
    {
        std::uint64_t offset = 0; //!< into source_ or arena_
        std::uint64_t size = 0;
        std::uint64_t rawSize = 0; //!< uncompressed size
        std::uint64_t index = 0;   //!< window index
        std::uint64_t basePos = ~std::uint64_t(0); //!< delta base (file pos)
        std::uint64_t rawHash = 0;   //!< checksum of raw bytes (0: absent)
        std::uint64_t chainBytes = 0; //!< size+rawSize summed over chain
        std::uint8_t flags = 0;      //!< kFlagDict | kFlagDelta
        bool inArena = false;        //!< offset is into arena_
    };

    /** File position of the @p i-th stored (view-order) record. */
    std::size_t pos(std::size_t i) const
    {
        return order_.empty() ? i : order_[i];
    }

    /** Stored (view-order) position of file position @p p. */
    std::vector<std::uint32_t> inverseOrder() const;

    ByteSpan recordAt(std::size_t filePos) const;
    void materializeRaw(std::size_t filePos,
                        LivePointDecodeScratch &scratch) const;
    void decodeOne(std::size_t filePos, Blob &out, ByteSpan prev) const;
    void validateChains();
    bool usesCrossPointFeatures() const;

    static LivePointLibrary
    loadLpl4(std::shared_ptr<const LibrarySource> source,
             const std::string &path);
    static LivePointLibrary
    loadLpl3(std::shared_ptr<const LibrarySource> source,
             const std::string &path);
    static LivePointLibrary
    loadLpl2(std::shared_ptr<const LibrarySource> source,
             const std::string &path);
    void saveLpl4(const std::string &path) const;
    void saveLpl3(const std::string &path) const;
    void saveLpl2(const std::string &path) const;

    std::string benchmark_;
    SampleDesign design_;
    /** Backend holding the loaded container file (shared on copy). */
    std::shared_ptr<const LibrarySource> source_;
    Blob arena_; //!< appended compressed records, back-to-back
    Blob dict_;  //!< shared preset dictionary ("" = none)
    std::vector<RecordRef> refs_; //!< file order, never permuted
    /** Stored-order view: order_[i] = file position (empty: identity). */
    std::vector<std::uint32_t> order_;
    bool anyDelta_ = false; //!< any record carries kFlagDelta

    friend bool identicalRecords(const LivePointLibrary &a,
                                 const LivePointLibrary &b);
};

/** Deterministic 64-bit checksum of a raw payload (word-at-a-time). */
std::uint64_t livePointRawHash(const std::uint8_t *data, std::size_t n);

/**
 * True when two libraries store byte-identical records in the same
 * order with the same window indices — the bit-identity contract the
 * pipelined S=1 build guarantees against the sequential reference
 * (checked by both the test suite and the CI build bench).
 */
bool identicalRecords(const LivePointLibrary &a,
                      const LivePointLibrary &b);

} // namespace lp

#endif // LP_CORE_LIBRARY_HH
