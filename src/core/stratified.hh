/**
 * @file
 * Stratified sampling over a live-point library (the optimization the
 * paper cites from Wunderlich et al., WDDD 2004). Program order is
 * divided into contiguous strata; measurements are allocated greedily
 * to the stratum with the largest marginal variance reduction (greedy
 * Neyman allocation). Only independent checkpoints permit this:
 * functional warming would force program order.
 */

#ifndef LP_CORE_STRATIFIED_HH
#define LP_CORE_STRATIFIED_HH

#include "core/runners.hh"

namespace lp
{

struct StratifiedOptions
{
    ConfidenceSpec spec{};
    unsigned strata = 0; //!< 0: choose from the library size
    std::size_t minPerStratum = 4;
    std::uint64_t shuffleSeed = 29;
    bool approxWrongPath = false;
    unsigned threads = 1;       //!< workers for the pilot batch
    unsigned decodeThreads = 0; //!< decode producers; 0 = auto
};

struct StratifiedResult
{
    double mean = 0.0;      //!< stratified CPI estimate
    std::size_t processed = 0;
    bool satisfied = false; //!< reached the confidence target
    unsigned strata = 0;
    double relHalfWidth = 0.0;
};

StratifiedResult runStratified(const Program &prog,
                               const LivePointLibrary &lib,
                               const CoreConfig &cfg,
                               const StratifiedOptions &opt);

} // namespace lp

#endif // LP_CORE_STRATIFIED_HH
