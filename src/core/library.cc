#include "core/library.hh"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "codec/zip.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

// LPLIB2: the whole library is one DER sequence starting with this
// magic integer. LPLIB3: the file starts with the 8-byte tag below
// (first byte 'L' can never open a DER sequence, so the two formats
// dispatch on the first bytes alone).
constexpr std::uint64_t kFileMagic2 = 0x4c50'4c49'4232ull; // "LPLIB2"
constexpr std::uint8_t kMagic3[8] = {'L', 'P', 'L', 'I',
                                     'B', '3', '\n', '\0'};
constexpr std::uint64_t kLpl3Version = 1;
constexpr std::size_t kLpl3HeaderBytes = 64;
constexpr std::size_t kLpl3TableEntryBytes = 32;

void
putU64le(std::uint8_t *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64le(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

void
serializeDesign(DerWriter &w, const SampleDesign &d)
{
    w.beginSequence();
    w.putUint(d.benchLength);
    w.putUint(d.count);
    w.putUint(d.measureLen);
    w.putUint(d.warmLen);
    w.endSequence();
}

SampleDesign
deserializeDesign(DerReader &r)
{
    DerReader seq = r.getSequence();
    SampleDesign d;
    d.benchLength = seq.getUint();
    d.count = seq.getUint();
    d.measureLen = seq.getUint();
    d.warmLen = seq.getUint();
    return d;
}

} // namespace

const Blob *
LivePoint::findBpredImage(const std::string &key) const
{
    const auto it = bpredImages.find(key);
    return it == bpredImages.end() ? nullptr : &it->second;
}

LivePointBreakdown
LivePoint::breakdown() const
{
    LivePointBreakdown b;
    b.regsAndTlb = regs.serialize().size() + itlb.serialize().size() +
                   dtlb.serialize().size();
    {
        DerWriter w;
        memImage.serialize(w);
        b.memData = w.finish().size();
    }
    for (const auto &kv : bpredImages)
        b.bpred += kv.second.size();
    b.l1iTags = l1i.serialize().size();
    b.l1dTags = l1d.serialize().size();
    b.l2Tags = l2.serialize().size();
    b.total = serialize().size();
    return b;
}

Blob
LivePoint::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(index);
    w.putUint(windowStart);
    w.putUint(warmLen);
    w.putUint(measureLen);
    regs.serialize(w);
    memImage.serialize(w);
    l1i.serialize(w);
    l1d.serialize(w);
    l2.serialize(w);
    itlb.serialize(w);
    dtlb.serialize(w);
    w.putUint(bpredImages.size());
    for (const auto &kv : bpredImages) {
        w.putString(kv.first);
        w.putBytes(kv.second);
    }
    w.endSequence();
    return w.finish();
}

LivePoint
LivePoint::deserialize(const Blob &data)
{
    LivePoint p;
    deserializeInto(data, p);
    return p;
}

void
LivePoint::deserializeInto(const Blob &data, LivePoint &out)
{
    DerReader top(data);
    DerReader seq = top.getSequence();
    out.index = seq.getUint();
    out.windowStart = seq.getUint();
    out.warmLen = seq.getUint();
    out.measureLen = seq.getUint();
    out.regs = ArchRegs::deserialize(seq);
    MemoryImage::deserializeInto(seq, out.memImage);
    CacheSetRecord::deserializeInto(seq, out.l1i);
    CacheSetRecord::deserializeInto(seq, out.l1d);
    CacheSetRecord::deserializeInto(seq, out.l2);
    CacheSetRecord::deserializeInto(seq, out.itlb);
    CacheSetRecord::deserializeInto(seq, out.dtlb);
    // Every point of a library carries the same image keys, so
    // reading into the map's existing buffers makes steady-state
    // decoding node-free. Images are never empty, which lets an empty
    // buffer mark a leftover key from a previous point.
    for (auto &kv : out.bpredImages)
        kv.second.clear();
    const std::uint64_t nImages = seq.getUint();
    for (std::uint64_t i = 0; i < nImages; ++i) {
        const std::string key = seq.getString();
        Blob &image = out.bpredImages[key];
        seq.getBytes(image);
        // Pin the sentinel invariant: a real image is never empty.
        if (image.empty())
            throw std::runtime_error(
                "live-point: empty predictor image");
    }
    for (auto it = out.bpredImages.begin();
         it != out.bpredImages.end();) {
        if (it->second.empty())
            it = out.bpredImages.erase(it);
        else
            ++it;
    }
}

LivePointLibrary::LivePointLibrary(std::string benchmark,
                                   const SampleDesign &design)
    : benchmark_(std::move(benchmark)), design_(design)
{
}

ByteSpan
LivePointLibrary::record(std::size_t i) const
{
    const RecordRef &r = refs_[i];
    const std::uint8_t *base =
        r.inArena ? arena_.data() : source_->data();
    return ByteSpan(base + r.offset,
                    static_cast<std::size_t>(r.size));
}

std::string
LivePointLibrary::storageKind() const
{
    if (!source_)
        return "arena";
    bool anyArena = false;
    for (const RecordRef &r : refs_)
        anyArena = anyArena || r.inArena;
    const std::string backend = source_->kind();
    return anyArena ? "arena+" + backend : backend;
}

void
LivePointLibrary::prefetchRecord(std::size_t i) const
{
    const RecordRef &r = refs_[i];
    if (!r.inArena && source_)
        source_->prefetch(static_cast<std::size_t>(r.offset),
                          static_cast<std::size_t>(r.size));
}

void
LivePointLibrary::releaseRecord(std::size_t i) const
{
    const RecordRef &r = refs_[i];
    if (!r.inArena && source_)
        source_->release(static_cast<std::size_t>(r.offset),
                         static_cast<std::size_t>(r.size));
}

LivePoint
LivePointLibrary::get(std::size_t i) const
{
    Blob scratch;
    LivePoint p;
    decodeInto(i, scratch, p);
    return p;
}

void
LivePointLibrary::decodeInto(std::size_t i, Blob &scratch,
                             LivePoint &out) const
{
    const RecordRef &ref = refs_[i];
    const ByteSpan rec = record(i);
    zipDecompressInto(rec.data, rec.size, scratch);
    // Cross-check the decoded point against the index table's
    // accounting: rawSize and windowIndex are the two table fields
    // the layout checks in load() cannot validate, so a corrupted
    // container fails here on first decode instead of yielding a
    // silently wrong point.
    if (scratch.size() != ref.rawSize)
        throw std::runtime_error(
            strfmt("live-point %zu: record size mismatch", i));
    LivePoint::deserializeInto(scratch, out);
    if (out.index != ref.index)
        throw std::runtime_error(
            strfmt("live-point %zu: window index mismatch", i));
}

void
LivePointLibrary::add(const LivePoint &point)
{
    const Blob raw = point.serialize();
    addCompressed(zipCompress(raw), raw.size(), point.index);
}

void
LivePointLibrary::reserve(std::uint64_t recordBytes, std::size_t count)
{
    arena_.reserve(arena_.size() + recordBytes);
    refs_.reserve(refs_.size() + count);
}

void
LivePointLibrary::addCompressed(const Blob &compressed,
                                std::uint64_t rawSize,
                                std::uint64_t windowIndex)
{
    RecordRef r;
    r.offset = arena_.size();
    r.size = compressed.size();
    r.rawSize = rawSize;
    r.index = windowIndex;
    r.inArena = true;
    arena_.insert(arena_.end(), compressed.begin(), compressed.end());
    refs_.push_back(r);
}

std::uint64_t
LivePointLibrary::totalCompressedBytes() const
{
    std::uint64_t total = 0;
    for (const RecordRef &r : refs_)
        total += r.size;
    return total;
}

std::uint64_t
LivePointLibrary::totalUncompressedBytes() const
{
    std::uint64_t total = 0;
    for (const RecordRef &r : refs_)
        total += r.rawSize;
    return total;
}

std::uint64_t
LivePointLibrary::contentHash() const
{
    std::uint64_t h = hashMix(0x6c70'6c69'62ull); // "lplib"
    for (const char ch : benchmark_)
        h = hashCombine(h, static_cast<std::uint64_t>(ch));
    h = hashCombine(h, design_.benchLength);
    h = hashCombine(h, design_.count);
    h = hashCombine(h, design_.measureLen);
    h = hashCombine(h, design_.warmLen);
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        h = hashCombine(h, refs_[i].index);
        const ByteSpan rec = record(i);
        // FNV-1a over the record, folded in; cheap relative to one
        // decompression and touching every byte keeps corruption and
        // reorders distinguishable.
        std::uint64_t f = 0xcbf29ce484222325ull;
        for (std::size_t j = 0; j < rec.size; ++j)
            f = (f ^ rec.data[j]) * 0x100000001b3ull;
        h = hashCombine(h, f);
    }
    return h;
}

void
LivePointLibrary::shuffle(Rng &rng)
{
    for (std::size_t i = refs_.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(refs_[i - 1], refs_[j]);
    }
}

void
LivePointLibrary::save(const std::string &path, Format format) const
{
    if (format == Format::lpl2)
        saveLpl2(path);
    else
        saveLpl3(path);
}

void
LivePointLibrary::saveLpl3(const std::string &path) const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.save");
        if (o.fail)
            throwIoError("save", "library", path, o.err);
    }
    // Meta blob: benchmark name + design.
    DerWriter mw;
    mw.putString(benchmark_);
    serializeDesign(mw, design_);
    const Blob meta = mw.finish();

    const std::uint64_t count = refs_.size();
    const std::uint64_t metaOffset = kLpl3HeaderBytes;
    const std::uint64_t tableOffset = metaOffset + meta.size();
    const std::uint64_t dataOffset =
        tableOffset + count * kLpl3TableEntryBytes;
    const std::uint64_t fileSize =
        dataOffset + totalCompressedBytes();

    // Staged through the atomic writer: a crash or error mid-save
    // leaves the previous file (if any) untouched, and the temp is
    // removed on every error path.
    AtomicFileWriter f(path, "library");

    std::uint8_t header[kLpl3HeaderBytes] = {};
    std::memcpy(header, kMagic3, sizeof(kMagic3));
    putU64le(header + 8, kLpl3Version);
    putU64le(header + 16, count);
    putU64le(header + 24, metaOffset);
    putU64le(header + 32, meta.size());
    putU64le(header + 40, tableOffset);
    putU64le(header + 48, dataOffset);
    putU64le(header + 56, fileSize);
    f.write(header, sizeof(header));
    f.write(meta.data(), meta.size());

    // Index table, then the records, streamed straight from their
    // resident storage — the save never stages the library twice.
    std::uint64_t rel = 0;
    for (const RecordRef &r : refs_) {
        std::uint8_t row[kLpl3TableEntryBytes];
        putU64le(row + 0, rel);
        putU64le(row + 8, r.size);
        putU64le(row + 16, r.rawSize);
        putU64le(row + 24, r.index);
        f.write(row, sizeof(row));
        rel += r.size;
    }
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const ByteSpan rec = record(i);
        f.write(rec.data, rec.size);
    }
    f.commit();
}

void
LivePointLibrary::saveLpl2(const std::string &path) const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.save");
        if (o.fail)
            throwIoError("save", "library", path, o.err);
    }
    DerWriter w;
    w.beginSequence();
    w.putUint(kFileMagic2);
    w.putString(benchmark_);
    serializeDesign(w, design_);
    w.putUint(refs_.size());
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const ByteSpan rec = record(i);
        w.putUint(refs_[i].rawSize);
        w.putUint(refs_[i].index);
        w.putBytes(rec.data, rec.size);
    }
    w.endSequence();
    const Blob data = w.finish();
    writeFileAtomic(path, data.data(), data.size(), "library");
}

LivePointLibrary
LivePointLibrary::load(const std::string &path, StorageBackend backend)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.load");
        if (o.fail)
            throwIoError("load", "library", path, o.err);
    }
    std::shared_ptr<const LibrarySource> source =
        openLibrarySource(path, backend);
    if (source->size() >= sizeof(kMagic3) &&
        std::memcmp(source->data(), kMagic3, sizeof(kMagic3)) == 0)
        return loadLpl3(std::move(source), path);
    return loadLpl2(std::move(source), path);
}

LivePointLibrary
LivePointLibrary::loadLpl3(std::shared_ptr<const LibrarySource> source,
                           const std::string &path)
{
    auto malformed = [&path]() {
        return std::runtime_error(
            strfmt("'%s' is not a valid LPLIB3 library", path.c_str()));
    };
    if (source->size() < kLpl3HeaderBytes)
        throw malformed();
    const std::uint8_t *h = source->data();
    const std::uint64_t version = getU64le(h + 8);
    const std::uint64_t count = getU64le(h + 16);
    const std::uint64_t metaOffset = getU64le(h + 24);
    const std::uint64_t metaSize = getU64le(h + 32);
    const std::uint64_t tableOffset = getU64le(h + 40);
    const std::uint64_t dataOffset = getU64le(h + 48);
    const std::uint64_t fileSize = getU64le(h + 56);
    // Overflow-safe layout checks: every field is validated against
    // the real file size before it is used as an offset.
    if (version != kLpl3Version || fileSize != source->size() ||
        metaOffset != kLpl3HeaderBytes ||
        metaSize > fileSize - metaOffset ||
        tableOffset != metaOffset + metaSize ||
        count > (fileSize - tableOffset) / kLpl3TableEntryBytes ||
        dataOffset != tableOffset + count * kLpl3TableEntryBytes)
        throw malformed();

    LivePointLibrary lib;
    {
        DerReader mr(ByteSpan(h + metaOffset,
                              static_cast<std::size_t>(metaSize)));
        lib.benchmark_ = mr.getString();
        lib.design_ = deserializeDesign(mr);
    }
    lib.refs_.reserve(count);
    const std::uint64_t dataBytes = fileSize - dataOffset;
    std::uint64_t running = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t *row =
            h + tableOffset + i * kLpl3TableEntryBytes;
        RecordRef r;
        const std::uint64_t rel = getU64le(row + 0);
        r.size = getU64le(row + 8);
        r.rawSize = getU64le(row + 16);
        r.index = getU64le(row + 24);
        // The writer lays records down back-to-back in table order;
        // holding the loader to that makes any corruption of an
        // offset or size — not just one escaping the data section —
        // a detectable error.
        if (rel != running || r.size > dataBytes - rel)
            throw malformed();
        running = rel + r.size;
        r.offset = dataOffset + rel;
        r.inArena = false;
        lib.refs_.push_back(r);
    }
    if (running != dataBytes)
        throw malformed();
    // The source backend keeps holding the file; records are spans
    // into it — the load allocates nothing beyond the index, and a
    // mapped backend does not even pin the file bytes.
    lib.source_ = std::move(source);
    return lib;
}

bool
identicalRecords(const LivePointLibrary &a, const LivePointLibrary &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.windowIndex(i) != b.windowIndex(i))
            return false;
        const ByteSpan ra = a.record(i);
        const ByteSpan rb = b.record(i);
        if (ra.size != rb.size ||
            std::memcmp(ra.data, rb.data, ra.size) != 0)
            return false;
    }
    return true;
}

LivePointLibrary
LivePointLibrary::loadLpl2(std::shared_ptr<const LibrarySource> source,
                           const std::string &path)
{
    DerReader top(ByteSpan(source->data(), source->size()));
    DerReader seq = top.getSequence();
    if (seq.getUint() != kFileMagic2)
        throw std::runtime_error(
            strfmt("'%s' is not a live-point library", path.c_str()));
    LivePointLibrary lib;
    lib.benchmark_ = seq.getString();
    lib.design_ = deserializeDesign(seq);
    const std::uint64_t count = seq.getUint();
    lib.refs_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        RecordRef r;
        r.rawSize = seq.getUint();
        r.index = seq.getUint();
        // The record's content bytes sit inside the DER stream; keep
        // the source as the backing storage and reference them in
        // place.
        const ByteSpan rec = seq.getBytesSpan();
        r.offset =
            static_cast<std::uint64_t>(rec.data - source->data());
        r.size = rec.size;
        r.inArena = false;
        lib.refs_.push_back(r);
    }
    lib.source_ = std::move(source);
    return lib;
}

} // namespace lp
