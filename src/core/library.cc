#include "core/library.hh"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "codec/zip.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

// LPLIB2: the whole library is one DER sequence starting with this
// magic integer. LPLIB3: the file starts with the 8-byte tag below
// (first byte 'L' can never open a DER sequence, so the two formats
// dispatch on the first bytes alone).
constexpr std::uint64_t kFileMagic2 = 0x4c50'4c49'4232ull; // "LPLIB2"
constexpr std::uint8_t kMagic3[8] = {'L', 'P', 'L', 'I',
                                     'B', '3', '\n', '\0'};
constexpr std::uint64_t kLpl3Version = 1;
constexpr std::size_t kLpl3HeaderBytes = 64;
constexpr std::size_t kLpl3TableEntryBytes = 32;

// LPLIB4: LPLIB3 plus a shared-dictionary section between meta and
// table, and a wider table row carrying per-record encoding flags,
// the delta base's position, and a raw-payload checksum.
constexpr std::uint8_t kMagic4[8] = {'L', 'P', 'L', 'I',
                                     'B', '4', '\n', '\0'};
constexpr std::uint64_t kLpl4Version = 1;
constexpr std::size_t kLpl4HeaderBytes = 80;
constexpr std::size_t kLpl4TableEntryBytes = 56;
constexpr std::uint64_t kNoBase = ~std::uint64_t(0);
constexpr std::uint8_t kAllFlags = LivePointLibrary::kFlagDict |
                                   LivePointLibrary::kFlagDelta;

void
putU64le(std::uint8_t *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64le(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

void
serializeDesign(DerWriter &w, const SampleDesign &d)
{
    w.beginSequence();
    w.putUint(d.benchLength);
    w.putUint(d.count);
    w.putUint(d.measureLen);
    w.putUint(d.warmLen);
    w.endSequence();
}

SampleDesign
deserializeDesign(DerReader &r)
{
    DerReader seq = r.getSequence();
    SampleDesign d;
    d.benchLength = seq.getUint();
    d.count = seq.getUint();
    d.measureLen = seq.getUint();
    d.warmLen = seq.getUint();
    return d;
}

} // namespace

const Blob *
LivePoint::findBpredImage(const std::string &key) const
{
    const auto it = bpredImages.find(key);
    return it == bpredImages.end() ? nullptr : &it->second;
}

LivePointBreakdown
LivePoint::breakdown() const
{
    LivePointBreakdown b;
    b.regsAndTlb = regs.serialize().size() + itlb.serialize().size() +
                   dtlb.serialize().size();
    {
        DerWriter w;
        memImage.serialize(w);
        b.memData = w.finish().size();
    }
    for (const auto &kv : bpredImages)
        b.bpred += kv.second.size();
    b.l1iTags = l1i.serialize().size();
    b.l1dTags = l1d.serialize().size();
    b.l2Tags = l2.serialize().size();
    b.total = serialize().size();
    return b;
}

Blob
LivePoint::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(index);
    w.putUint(windowStart);
    w.putUint(warmLen);
    w.putUint(measureLen);
    regs.serialize(w);
    memImage.serialize(w);
    l1i.serialize(w);
    l1d.serialize(w);
    l2.serialize(w);
    itlb.serialize(w);
    dtlb.serialize(w);
    w.putUint(bpredImages.size());
    for (const auto &kv : bpredImages) {
        w.putString(kv.first);
        w.putBytes(kv.second);
    }
    w.endSequence();
    return w.finish();
}

LivePoint
LivePoint::deserialize(const Blob &data)
{
    LivePoint p;
    deserializeInto(data, p);
    return p;
}

void
LivePoint::deserializeInto(const Blob &data, LivePoint &out)
{
    DerReader top(data);
    DerReader seq = top.getSequence();
    out.index = seq.getUint();
    out.windowStart = seq.getUint();
    out.warmLen = seq.getUint();
    out.measureLen = seq.getUint();
    out.regs = ArchRegs::deserialize(seq);
    MemoryImage::deserializeInto(seq, out.memImage);
    CacheSetRecord::deserializeInto(seq, out.l1i);
    CacheSetRecord::deserializeInto(seq, out.l1d);
    CacheSetRecord::deserializeInto(seq, out.l2);
    CacheSetRecord::deserializeInto(seq, out.itlb);
    CacheSetRecord::deserializeInto(seq, out.dtlb);
    // Every point of a library carries the same image keys, so
    // reading into the map's existing buffers makes steady-state
    // decoding node-free. Images are never empty, which lets an empty
    // buffer mark a leftover key from a previous point.
    for (auto &kv : out.bpredImages)
        kv.second.clear();
    const std::uint64_t nImages = seq.getUint();
    for (std::uint64_t i = 0; i < nImages; ++i) {
        const std::string key = seq.getString();
        Blob &image = out.bpredImages[key];
        seq.getBytes(image);
        // Pin the sentinel invariant: a real image is never empty.
        if (image.empty())
            throw std::runtime_error(
                "live-point: empty predictor image");
    }
    for (auto it = out.bpredImages.begin();
         it != out.bpredImages.end();) {
        if (it->second.empty())
            it = out.bpredImages.erase(it);
        else
            ++it;
    }
}

LivePointLibrary::LivePointLibrary(std::string benchmark,
                                   const SampleDesign &design)
    : benchmark_(std::move(benchmark)), design_(design)
{
}

std::uint64_t
livePointRawHash(const std::uint8_t *data, std::size_t n)
{
    // Word-at-a-time multiply/xorshift mix: ~8 bytes per multiply, so
    // verifying a record costs a small fraction of decompressing it.
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
    while (n >= 8) {
        std::uint64_t v;
        std::memcpy(&v, data, 8);
        h = (h ^ v) * 0x2545f4914f6cdd1dull;
        h ^= h >> 29;
        data += 8;
        n -= 8;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
    h = (h ^ v) * 0x2545f4914f6cdd1dull;
    h ^= h >> 32;
    // 0 means "no checksum stored" in the record table; remap the one
    // colliding value so every real checksum verifies.
    return h ? h : 1;
}

ByteSpan
LivePointLibrary::recordAt(std::size_t filePos) const
{
    const RecordRef &r = refs_[filePos];
    const std::uint8_t *base =
        r.inArena ? arena_.data() : source_->data();
    return ByteSpan(base + r.offset,
                    static_cast<std::size_t>(r.size));
}

ByteSpan
LivePointLibrary::record(std::size_t i) const
{
    return recordAt(pos(i));
}

std::string
LivePointLibrary::storageKind() const
{
    if (!source_)
        return "arena";
    bool anyArena = false;
    for (const RecordRef &r : refs_)
        anyArena = anyArena || r.inArena;
    const std::string backend = source_->kind();
    return anyArena ? "arena+" + backend : backend;
}

void
LivePointLibrary::prefetchRecord(std::size_t i) const
{
    // A delta record's decode touches its whole chain; hint it all.
    std::size_t p = pos(i);
    for (std::size_t depth = 0; depth <= refs_.size(); ++depth) {
        const RecordRef &r = refs_[p];
        if (!r.inArena && source_)
            source_->prefetch(static_cast<std::size_t>(r.offset),
                              static_cast<std::size_t>(r.size));
        if (!(r.flags & kFlagDelta))
            break;
        p = static_cast<std::size_t>(r.basePos);
    }
}

void
LivePointLibrary::releaseRecord(std::size_t i) const
{
    // Release only the record itself: chain bases may serve later
    // points, and the admission budget already accounts for them.
    const RecordRef &r = refs_[pos(i)];
    if (!r.inArena && source_)
        source_->release(static_cast<std::size_t>(r.offset),
                         static_cast<std::size_t>(r.size));
}

LivePoint
LivePointLibrary::get(std::size_t i) const
{
    Blob scratch;
    LivePoint p;
    decodeInto(i, scratch, p);
    return p;
}

void
LivePointLibrary::decodeOne(std::size_t filePos, Blob &out,
                            ByteSpan prev) const
{
    const RecordRef &r = refs_[filePos];
    const ByteSpan rec = recordAt(filePos);
    if (r.flags & kFlagDelta)
        zipDecompressDeltaInto(rec.data, rec.size, prev, out);
    else if (r.flags & kFlagDict)
        zipDecompressInto(rec.data, rec.size, out, ByteSpan(dict_));
    else
        zipDecompressInto(rec.data, rec.size, out);
    // Cross-check the decoded bytes against the index table's
    // accounting: rawSize catches torn records through every path,
    // and the raw checksum makes dictionary/delta corruption — a
    // flipped dictionary byte, a broken chain — fail loudly instead
    // of deserializing garbage.
    if (out.size() != r.rawSize)
        throw std::runtime_error(
            strfmt("live-point %zu: record size mismatch", filePos));
    if (r.flags && r.rawHash &&
        livePointRawHash(out.data(), out.size()) != r.rawHash)
        throw std::runtime_error(
            strfmt("live-point %zu: raw checksum mismatch", filePos));
}

void
LivePointLibrary::materializeRaw(std::size_t filePos,
                                 LivePointDecodeScratch &scratch) const
{
    const RecordRef &r0 = refs_[filePos];
    if (!(r0.flags & kFlagDelta)) {
        decodeOne(filePos, scratch.payload, ByteSpan());
        return;
    }
    // Collect the chain top-down, stopping at a keyframe or at the
    // scratch cache (stored-order replay hits the cache every time —
    // the previous point is this one's base).
    scratch.chain.clear();
    std::size_t p = filePos;
    bool fromCache = false;
    while (true) {
        if (p == scratch.cachedPos) {
            fromCache = true;
            break;
        }
        scratch.chain.push_back(p);
        const RecordRef &r = refs_[p];
        if (!(r.flags & kFlagDelta))
            break;
        p = static_cast<std::size_t>(r.basePos);
    }
    // Decode bottom-up, ping-ponging between the two work buffers.
    // The cache lives in payload and is only ever *read* (as the
    // first delta's base); the finished record is swapped into
    // payload at the end, becoming the next call's cache.
    std::size_t k = scratch.chain.size();
    Blob *cur;
    if (fromCache) {
        cur = &scratch.payload;
    } else {
        --k;
        decodeOne(static_cast<std::size_t>(scratch.chain[k]),
                  scratch.tmp, ByteSpan());
        cur = &scratch.tmp;
    }
    while (k--) {
        Blob *dst =
            cur == &scratch.tmp ? &scratch.prevRaw : &scratch.tmp;
        decodeOne(static_cast<std::size_t>(scratch.chain[k]), *dst,
                  ByteSpan(*cur));
        cur = dst;
    }
    if (cur != &scratch.payload)
        std::swap(scratch.payload, *cur);
}

void
LivePointLibrary::decodeInto(std::size_t i,
                             LivePointDecodeScratch &scratch,
                             LivePoint &out) const
{
    const std::size_t p = pos(i);
    const RecordRef &ref = refs_[p];
    materializeRaw(p, scratch);
    LivePoint::deserializeInto(scratch.payload, out);
    if (out.index != ref.index)
        throw std::runtime_error(
            strfmt("live-point %zu: window index mismatch", i));
    if (anyDelta_) {
        // payload now holds this record's raw bytes — which is
        // exactly the chain cache the next stored-order decode needs
        // (its base is this record). Plain libraries skip the
        // bookkeeping; their payload is never read as a base.
        scratch.cachedPos = p;
    }
}

void
LivePointLibrary::decodeInto(std::size_t i, Blob &scratch,
                             LivePoint &out) const
{
    LivePointDecodeScratch s;
    s.payload.swap(scratch);
    decodeInto(i, s, out);
    s.payload.swap(scratch);
}

void
LivePointLibrary::add(const LivePoint &point)
{
    const Blob raw = point.serialize();
    if (dict_.empty()) {
        addCompressed(zipCompress(raw), raw.size(), point.index);
        return;
    }
    addEncoded(zipCompress(raw, ByteSpan(dict_)), raw.size(),
               point.index, kFlagDict,
               livePointRawHash(raw.data(), raw.size()));
}

void
LivePointLibrary::setDictionary(Blob dict)
{
    for (const RecordRef &r : refs_)
        if (r.flags & kFlagDict)
            throw std::runtime_error(
                "library: dictionary change after dictionary-primed "
                "records were added");
    dict_ = std::move(dict);
}

std::size_t
LivePointLibrary::deltaCount() const
{
    std::size_t n = 0;
    for (const RecordRef &r : refs_)
        n += (r.flags & kFlagDelta) != 0;
    return n;
}

void
LivePointLibrary::reserve(std::uint64_t recordBytes, std::size_t count)
{
    arena_.reserve(arena_.size() + recordBytes);
    refs_.reserve(refs_.size() + count);
}

void
LivePointLibrary::addCompressed(const Blob &compressed,
                                std::uint64_t rawSize,
                                std::uint64_t windowIndex)
{
    addEncoded(compressed, rawSize, windowIndex, 0, 0);
}

void
LivePointLibrary::addEncoded(const Blob &compressed,
                             std::uint64_t rawSize,
                             std::uint64_t windowIndex,
                             std::uint8_t flags, std::uint64_t rawHash)
{
    if (flags & ~kAllFlags)
        throw std::runtime_error("library: unknown record flags");
    if ((flags & kFlagDict) && dict_.empty())
        throw std::runtime_error(
            "library: dictionary-primed record without a dictionary");
    if ((flags & kFlagDelta) && refs_.empty())
        throw std::runtime_error(
            "library: delta record without a predecessor");
    // Appending to a shuffled library: the new record lands at the
    // end of both the file order and the stored-order view.
    if (!order_.empty())
        order_.push_back(static_cast<std::uint32_t>(refs_.size()));
    RecordRef r;
    r.offset = arena_.size();
    r.size = compressed.size();
    r.rawSize = rawSize;
    r.index = windowIndex;
    r.flags = flags;
    r.rawHash = rawHash;
    r.inArena = true;
    if (flags & kFlagDelta) {
        r.basePos = refs_.size() - 1;
        r.chainBytes = refs_.back().chainBytes + r.size + r.rawSize;
        anyDelta_ = true;
    } else {
        r.chainBytes = r.size + r.rawSize;
    }
    arena_.insert(arena_.end(), compressed.begin(), compressed.end());
    refs_.push_back(r);
}

std::uint64_t
LivePointLibrary::totalCompressedBytes() const
{
    std::uint64_t total = 0;
    for (const RecordRef &r : refs_)
        total += r.size;
    return total;
}

std::uint64_t
LivePointLibrary::totalUncompressedBytes() const
{
    std::uint64_t total = 0;
    for (const RecordRef &r : refs_)
        total += r.rawSize;
    return total;
}

std::uint64_t
LivePointLibrary::contentHash() const
{
    std::uint64_t h = hashMix(0x6c70'6c69'62ull); // "lplib"
    for (const char ch : benchmark_)
        h = hashCombine(h, static_cast<std::uint64_t>(ch));
    h = hashCombine(h, design_.benchLength);
    h = hashCombine(h, design_.count);
    h = hashCombine(h, design_.measureLen);
    h = hashCombine(h, design_.warmLen);
    if (!dict_.empty()) {
        std::uint64_t f = 0xcbf29ce484222325ull;
        for (const std::uint8_t b : dict_)
            f = (f ^ b) * 0x100000001b3ull;
        h = hashCombine(h, f);
    }
    std::vector<std::uint32_t> inv;
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const RecordRef &r = refs_[pos(i)];
        h = hashCombine(h, r.index);
        const ByteSpan rec = record(i);
        // FNV-1a over the record, folded in; cheap relative to one
        // decompression and touching every byte keeps corruption and
        // reorders distinguishable.
        std::uint64_t f = 0xcbf29ce484222325ull;
        for (std::size_t j = 0; j < rec.size; ++j)
            f = (f ^ rec.data[j]) * 0x100000001b3ull;
        h = hashCombine(h, f);
        // Encoding metadata is load-bearing for dict/delta records
        // (the delta base in *stored* order, so the hash survives a
        // save/load round-trip of a shuffled library). Plain records
        // fold nothing extra — their hash matches older releases.
        if (r.flags) {
            h = hashCombine(h, r.flags);
            if (r.flags & kFlagDelta) {
                if (inv.empty())
                    inv = inverseOrder();
                h = hashCombine(h, inv[static_cast<std::size_t>(
                                       r.basePos)]);
            }
        }
    }
    return h;
}

std::vector<std::uint32_t>
LivePointLibrary::inverseOrder() const
{
    std::vector<std::uint32_t> inv(refs_.size());
    for (std::size_t i = 0; i < refs_.size(); ++i)
        inv[pos(i)] = static_cast<std::uint32_t>(i);
    return inv;
}

void
LivePointLibrary::shuffle(Rng &rng)
{
    if (order_.empty()) {
        order_.resize(refs_.size());
        for (std::size_t i = 0; i < order_.size(); ++i)
            order_[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = order_.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(order_[i - 1], order_[j]);
    }
}

bool
LivePointLibrary::usesCrossPointFeatures() const
{
    if (!dict_.empty())
        return true;
    for (const RecordRef &r : refs_)
        if (r.flags)
            return true;
    return false;
}

void
LivePointLibrary::save(const std::string &path, Format format) const
{
    if (format == Format::autoSelect)
        format = usesCrossPointFeatures() ? Format::lpl4 : Format::lpl3;
    if (format != Format::lpl4 && usesCrossPointFeatures())
        throw std::runtime_error(
            "library: dictionary/delta records need the LPLIB4 format");
    if (format == Format::lpl2)
        saveLpl2(path);
    else if (format == Format::lpl4)
        saveLpl4(path);
    else
        saveLpl3(path);
}

void
LivePointLibrary::saveLpl3(const std::string &path) const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.save");
        if (o.fail)
            throwIoError("save", "library", path, o.err);
    }
    // Meta blob: benchmark name + design.
    DerWriter mw;
    mw.putString(benchmark_);
    serializeDesign(mw, design_);
    const Blob meta = mw.finish();

    const std::uint64_t count = refs_.size();
    const std::uint64_t metaOffset = kLpl3HeaderBytes;
    const std::uint64_t tableOffset = metaOffset + meta.size();
    const std::uint64_t dataOffset =
        tableOffset + count * kLpl3TableEntryBytes;
    const std::uint64_t fileSize =
        dataOffset + totalCompressedBytes();

    // Staged through the atomic writer: a crash or error mid-save
    // leaves the previous file (if any) untouched, and the temp is
    // removed on every error path.
    AtomicFileWriter f(path, "library");

    std::uint8_t header[kLpl3HeaderBytes] = {};
    std::memcpy(header, kMagic3, sizeof(kMagic3));
    putU64le(header + 8, kLpl3Version);
    putU64le(header + 16, count);
    putU64le(header + 24, metaOffset);
    putU64le(header + 32, meta.size());
    putU64le(header + 40, tableOffset);
    putU64le(header + 48, dataOffset);
    putU64le(header + 56, fileSize);
    f.write(header, sizeof(header));
    f.write(meta.data(), meta.size());

    // Index table, then the records, streamed straight from their
    // resident storage in stored (view) order — the save never stages
    // the library twice.
    std::uint64_t rel = 0;
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const RecordRef &r = refs_[pos(i)];
        std::uint8_t row[kLpl3TableEntryBytes];
        putU64le(row + 0, rel);
        putU64le(row + 8, r.size);
        putU64le(row + 16, r.rawSize);
        putU64le(row + 24, r.index);
        f.write(row, sizeof(row));
        rel += r.size;
    }
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const ByteSpan rec = record(i);
        f.write(rec.data, rec.size);
    }
    f.commit();
}

void
LivePointLibrary::saveLpl4(const std::string &path) const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.save");
        if (o.fail)
            throwIoError("save", "library", path, o.err);
    }
    DerWriter mw;
    mw.putString(benchmark_);
    serializeDesign(mw, design_);
    const Blob meta = mw.finish();

    const std::uint64_t count = refs_.size();
    const std::uint64_t metaOffset = kLpl4HeaderBytes;
    const std::uint64_t dictOffset = metaOffset + meta.size();
    const std::uint64_t tableOffset = dictOffset + dict_.size();
    const std::uint64_t dataOffset =
        tableOffset + count * kLpl4TableEntryBytes;
    const std::uint64_t fileSize =
        dataOffset + totalCompressedBytes();

    AtomicFileWriter f(path, "library");

    std::uint8_t header[kLpl4HeaderBytes] = {};
    std::memcpy(header, kMagic4, sizeof(kMagic4));
    putU64le(header + 8, kLpl4Version);
    putU64le(header + 16, count);
    putU64le(header + 24, metaOffset);
    putU64le(header + 32, meta.size());
    putU64le(header + 40, dictOffset);
    putU64le(header + 48, dict_.size());
    putU64le(header + 56, tableOffset);
    putU64le(header + 64, dataOffset);
    putU64le(header + 72, fileSize);
    f.write(header, sizeof(header));
    f.write(meta.data(), meta.size());
    f.write(dict_.data(), dict_.size());

    // Records land in stored (view) order; a delta base's table field
    // is therefore remapped to the base's stored position, so the
    // loaded file reproduces the chains regardless of any shuffle.
    const std::vector<std::uint32_t> inv = inverseOrder();
    std::uint64_t rel = 0;
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const RecordRef &r = refs_[pos(i)];
        std::uint8_t row[kLpl4TableEntryBytes];
        putU64le(row + 0, rel);
        putU64le(row + 8, r.size);
        putU64le(row + 16, r.rawSize);
        putU64le(row + 24, r.index);
        putU64le(row + 32, r.flags);
        putU64le(row + 40,
                 (r.flags & kFlagDelta)
                     ? inv[static_cast<std::size_t>(r.basePos)]
                     : kNoBase);
        putU64le(row + 48, r.rawHash);
        f.write(row, sizeof(row));
        rel += r.size;
    }
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const ByteSpan rec = record(i);
        f.write(rec.data, rec.size);
    }
    f.commit();
}

void
LivePointLibrary::saveLpl2(const std::string &path) const
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.save");
        if (o.fail)
            throwIoError("save", "library", path, o.err);
    }
    DerWriter w;
    w.beginSequence();
    w.putUint(kFileMagic2);
    w.putString(benchmark_);
    serializeDesign(w, design_);
    w.putUint(refs_.size());
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        const ByteSpan rec = record(i);
        w.putUint(rawSize(i));
        w.putUint(windowIndex(i));
        w.putBytes(rec.data, rec.size);
    }
    w.endSequence();
    const Blob data = w.finish();
    writeFileAtomic(path, data.data(), data.size(), "library");
}

LivePointLibrary
LivePointLibrary::load(const std::string &path, StorageBackend backend)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("library.load");
        if (o.fail)
            throwIoError("load", "library", path, o.err);
    }
    std::shared_ptr<const LibrarySource> source =
        openLibrarySource(path, backend);
    if (source->size() >= sizeof(kMagic4) &&
        std::memcmp(source->data(), kMagic4, sizeof(kMagic4)) == 0)
        return loadLpl4(std::move(source), path);
    if (source->size() >= sizeof(kMagic3) &&
        std::memcmp(source->data(), kMagic3, sizeof(kMagic3)) == 0)
        return loadLpl3(std::move(source), path);
    return loadLpl2(std::move(source), path);
}

void
LivePointLibrary::validateChains()
{
    // Every delta chain must bottom out at a keyframe — a cycle (only
    // possible through table corruption) would hang decode. The walk
    // also precomputes each record's chain charge for the replay
    // engine's resident budget. Memoized: linear in the point count.
    std::vector<std::uint8_t> state(refs_.size(), 0);
    std::vector<std::size_t> chainStack;
    for (std::size_t i = 0; i < refs_.size(); ++i) {
        if (state[i] == 2)
            continue;
        chainStack.clear();
        std::size_t p = i;
        std::uint64_t below = 0;
        while (true) {
            if (state[p] == 2) {
                below = refs_[p].chainBytes;
                break;
            }
            if (state[p] == 1)
                throw std::runtime_error(
                    "library: delta chain cycle");
            state[p] = 1;
            chainStack.push_back(p);
            if (!(refs_[p].flags & kFlagDelta))
                break;
            p = static_cast<std::size_t>(refs_[p].basePos);
        }
        for (auto it = chainStack.rbegin(); it != chainStack.rend();
             ++it) {
            RecordRef &r = refs_[*it];
            below += r.size + r.rawSize;
            r.chainBytes = below;
            state[*it] = 2;
        }
    }
}

LivePointLibrary
LivePointLibrary::loadLpl4(std::shared_ptr<const LibrarySource> source,
                           const std::string &path)
{
    auto malformed = [&path]() {
        return std::runtime_error(
            strfmt("'%s' is not a valid LPLIB4 library", path.c_str()));
    };
    if (source->size() < kLpl4HeaderBytes)
        throw malformed();
    const std::uint8_t *h = source->data();
    const std::uint64_t version = getU64le(h + 8);
    const std::uint64_t count = getU64le(h + 16);
    const std::uint64_t metaOffset = getU64le(h + 24);
    const std::uint64_t metaSize = getU64le(h + 32);
    const std::uint64_t dictOffset = getU64le(h + 40);
    const std::uint64_t dictSize = getU64le(h + 48);
    const std::uint64_t tableOffset = getU64le(h + 56);
    const std::uint64_t dataOffset = getU64le(h + 64);
    const std::uint64_t fileSize = getU64le(h + 72);
    // Overflow-safe layout checks, section by section.
    if (version != kLpl4Version || fileSize != source->size() ||
        metaOffset != kLpl4HeaderBytes ||
        metaSize > fileSize - metaOffset ||
        dictOffset != metaOffset + metaSize ||
        dictSize > fileSize - dictOffset ||
        tableOffset != dictOffset + dictSize ||
        count > (fileSize - tableOffset) / kLpl4TableEntryBytes ||
        dataOffset != tableOffset + count * kLpl4TableEntryBytes)
        throw malformed();

    LivePointLibrary lib;
    {
        DerReader mr(ByteSpan(h + metaOffset,
                              static_cast<std::size_t>(metaSize)));
        lib.benchmark_ = mr.getString();
        lib.design_ = deserializeDesign(mr);
    }
    lib.dict_.assign(h + dictOffset, h + dictOffset + dictSize);
    lib.refs_.reserve(count);
    const std::uint64_t dataBytes = fileSize - dataOffset;
    std::uint64_t running = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t *row =
            h + tableOffset + i * kLpl4TableEntryBytes;
        RecordRef r;
        const std::uint64_t rel = getU64le(row + 0);
        r.size = getU64le(row + 8);
        r.rawSize = getU64le(row + 16);
        r.index = getU64le(row + 24);
        const std::uint64_t flags = getU64le(row + 32);
        r.basePos = getU64le(row + 40);
        r.rawHash = getU64le(row + 48);
        if (rel != running || r.size > dataBytes - rel)
            throw malformed();
        if (flags & ~static_cast<std::uint64_t>(kAllFlags))
            throw malformed();
        r.flags = static_cast<std::uint8_t>(flags);
        if ((r.flags & kFlagDict) && !dictSize)
            throw malformed();
        if (r.flags & kFlagDelta) {
            if (r.basePos >= count || r.basePos == i)
                throw malformed();
            lib.anyDelta_ = true;
        } else if (r.basePos != kNoBase) {
            throw malformed();
        }
        running = rel + r.size;
        r.offset = dataOffset + rel;
        r.inArena = false;
        lib.refs_.push_back(r);
    }
    if (running != dataBytes)
        throw malformed();
    lib.validateChains();
    lib.source_ = std::move(source);
    return lib;
}

LivePointLibrary
LivePointLibrary::loadLpl3(std::shared_ptr<const LibrarySource> source,
                           const std::string &path)
{
    auto malformed = [&path]() {
        return std::runtime_error(
            strfmt("'%s' is not a valid LPLIB3 library", path.c_str()));
    };
    if (source->size() < kLpl3HeaderBytes)
        throw malformed();
    const std::uint8_t *h = source->data();
    const std::uint64_t version = getU64le(h + 8);
    const std::uint64_t count = getU64le(h + 16);
    const std::uint64_t metaOffset = getU64le(h + 24);
    const std::uint64_t metaSize = getU64le(h + 32);
    const std::uint64_t tableOffset = getU64le(h + 40);
    const std::uint64_t dataOffset = getU64le(h + 48);
    const std::uint64_t fileSize = getU64le(h + 56);
    // Overflow-safe layout checks: every field is validated against
    // the real file size before it is used as an offset.
    if (version != kLpl3Version || fileSize != source->size() ||
        metaOffset != kLpl3HeaderBytes ||
        metaSize > fileSize - metaOffset ||
        tableOffset != metaOffset + metaSize ||
        count > (fileSize - tableOffset) / kLpl3TableEntryBytes ||
        dataOffset != tableOffset + count * kLpl3TableEntryBytes)
        throw malformed();

    LivePointLibrary lib;
    {
        DerReader mr(ByteSpan(h + metaOffset,
                              static_cast<std::size_t>(metaSize)));
        lib.benchmark_ = mr.getString();
        lib.design_ = deserializeDesign(mr);
    }
    lib.refs_.reserve(count);
    const std::uint64_t dataBytes = fileSize - dataOffset;
    std::uint64_t running = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t *row =
            h + tableOffset + i * kLpl3TableEntryBytes;
        RecordRef r;
        const std::uint64_t rel = getU64le(row + 0);
        r.size = getU64le(row + 8);
        r.rawSize = getU64le(row + 16);
        r.index = getU64le(row + 24);
        // The writer lays records down back-to-back in table order;
        // holding the loader to that makes any corruption of an
        // offset or size — not just one escaping the data section —
        // a detectable error.
        if (rel != running || r.size > dataBytes - rel)
            throw malformed();
        running = rel + r.size;
        r.offset = dataOffset + rel;
        r.chainBytes = r.size + r.rawSize;
        r.inArena = false;
        lib.refs_.push_back(r);
    }
    if (running != dataBytes)
        throw malformed();
    // The source backend keeps holding the file; records are spans
    // into it — the load allocates nothing beyond the index, and a
    // mapped backend does not even pin the file bytes.
    lib.source_ = std::move(source);
    return lib;
}

bool
identicalRecords(const LivePointLibrary &a, const LivePointLibrary &b)
{
    if (a.size() != b.size())
        return false;
    if (a.dict_ != b.dict_)
        return false;
    std::vector<std::uint32_t> invA;
    std::vector<std::uint32_t> invB;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.windowIndex(i) != b.windowIndex(i))
            return false;
        const auto &ra = a.refs_[a.pos(i)];
        const auto &rb = b.refs_[b.pos(i)];
        if (ra.flags != rb.flags)
            return false;
        if (ra.flags & LivePointLibrary::kFlagDelta) {
            // Chains must link the same stored positions.
            if (invA.empty()) {
                invA = a.inverseOrder();
                invB = b.inverseOrder();
            }
            if (invA[static_cast<std::size_t>(ra.basePos)] !=
                invB[static_cast<std::size_t>(rb.basePos)])
                return false;
        }
        const ByteSpan sa = a.record(i);
        const ByteSpan sb = b.record(i);
        if (sa.size != sb.size ||
            std::memcmp(sa.data, sb.data, sa.size) != 0)
            return false;
    }
    return true;
}

LivePointLibrary
LivePointLibrary::loadLpl2(std::shared_ptr<const LibrarySource> source,
                           const std::string &path)
{
    DerReader top(ByteSpan(source->data(), source->size()));
    DerReader seq = top.getSequence();
    if (seq.getUint() != kFileMagic2)
        throw std::runtime_error(
            strfmt("'%s' is not a live-point library", path.c_str()));
    LivePointLibrary lib;
    lib.benchmark_ = seq.getString();
    lib.design_ = deserializeDesign(seq);
    const std::uint64_t count = seq.getUint();
    lib.refs_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        RecordRef r;
        r.rawSize = seq.getUint();
        r.index = seq.getUint();
        // The record's content bytes sit inside the DER stream; keep
        // the source as the backing storage and reference them in
        // place.
        const ByteSpan rec = seq.getBytesSpan();
        r.offset =
            static_cast<std::uint64_t>(rec.data - source->data());
        r.size = rec.size;
        r.chainBytes = r.size + r.rawSize;
        r.inArena = false;
        lib.refs_.push_back(r);
    }
    lib.source_ = std::move(source);
    return lib;
}

} // namespace lp
