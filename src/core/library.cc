#include "core/library.hh"

#include <cstdio>
#include <stdexcept>

#include "codec/zip.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

constexpr std::uint64_t kFileMagic = 0x4c50'4c49'4232ull; // "LPLIB2"

void
serializeDesign(DerWriter &w, const SampleDesign &d)
{
    w.beginSequence();
    w.putUint(d.benchLength);
    w.putUint(d.count);
    w.putUint(d.measureLen);
    w.putUint(d.warmLen);
    w.endSequence();
}

SampleDesign
deserializeDesign(DerReader &r)
{
    DerReader seq = r.getSequence();
    SampleDesign d;
    d.benchLength = seq.getUint();
    d.count = seq.getUint();
    d.measureLen = seq.getUint();
    d.warmLen = seq.getUint();
    return d;
}

} // namespace

const Blob *
LivePoint::findBpredImage(const std::string &key) const
{
    const auto it = bpredImages.find(key);
    return it == bpredImages.end() ? nullptr : &it->second;
}

LivePointBreakdown
LivePoint::breakdown() const
{
    LivePointBreakdown b;
    b.regsAndTlb = regs.serialize().size() + itlb.serialize().size() +
                   dtlb.serialize().size();
    {
        DerWriter w;
        memImage.serialize(w);
        b.memData = w.finish().size();
    }
    for (const auto &kv : bpredImages)
        b.bpred += kv.second.size();
    b.l1iTags = l1i.serialize().size();
    b.l1dTags = l1d.serialize().size();
    b.l2Tags = l2.serialize().size();
    b.total = serialize().size();
    return b;
}

Blob
LivePoint::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(index);
    w.putUint(windowStart);
    w.putUint(warmLen);
    w.putUint(measureLen);
    regs.serialize(w);
    memImage.serialize(w);
    l1i.serialize(w);
    l1d.serialize(w);
    l2.serialize(w);
    itlb.serialize(w);
    dtlb.serialize(w);
    w.putUint(bpredImages.size());
    for (const auto &kv : bpredImages) {
        w.putString(kv.first);
        w.putBytes(kv.second);
    }
    w.endSequence();
    return w.finish();
}

LivePoint
LivePoint::deserialize(const Blob &data)
{
    LivePoint p;
    deserializeInto(data, p);
    return p;
}

void
LivePoint::deserializeInto(const Blob &data, LivePoint &out)
{
    DerReader top(data);
    DerReader seq = top.getSequence();
    out.index = seq.getUint();
    out.windowStart = seq.getUint();
    out.warmLen = seq.getUint();
    out.measureLen = seq.getUint();
    out.regs = ArchRegs::deserialize(seq);
    MemoryImage::deserializeInto(seq, out.memImage);
    CacheSetRecord::deserializeInto(seq, out.l1i);
    CacheSetRecord::deserializeInto(seq, out.l1d);
    CacheSetRecord::deserializeInto(seq, out.l2);
    CacheSetRecord::deserializeInto(seq, out.itlb);
    CacheSetRecord::deserializeInto(seq, out.dtlb);
    // Every point of a library carries the same image keys, so
    // reading into the map's existing buffers makes steady-state
    // decoding node-free. Images are never empty, which lets an empty
    // buffer mark a leftover key from a previous point.
    for (auto &kv : out.bpredImages)
        kv.second.clear();
    const std::uint64_t nImages = seq.getUint();
    for (std::uint64_t i = 0; i < nImages; ++i) {
        const std::string key = seq.getString();
        Blob &image = out.bpredImages[key];
        seq.getBytes(image);
        // Pin the sentinel invariant: a real image is never empty.
        if (image.empty())
            throw std::runtime_error(
                "live-point: empty predictor image");
    }
    for (auto it = out.bpredImages.begin();
         it != out.bpredImages.end();) {
        if (it->second.empty())
            it = out.bpredImages.erase(it);
        else
            ++it;
    }
}

LivePointLibrary::LivePointLibrary(std::string benchmark,
                                   const SampleDesign &design)
    : benchmark_(std::move(benchmark)), design_(design)
{
}

LivePoint
LivePointLibrary::get(std::size_t i) const
{
    return LivePoint::deserialize(zipDecompress(records_[i]));
}

void
LivePointLibrary::decodeInto(std::size_t i, Blob &scratch,
                             LivePoint &out) const
{
    zipDecompressInto(records_[i], scratch);
    LivePoint::deserializeInto(scratch, out);
}

void
LivePointLibrary::add(const LivePoint &point)
{
    Blob raw = point.serialize();
    rawSizes_.push_back(raw.size());
    indices_.push_back(point.index);
    records_.push_back(zipCompress(raw));
}

std::uint64_t
LivePointLibrary::totalCompressedBytes() const
{
    std::uint64_t total = 0;
    for (const Blob &r : records_)
        total += r.size();
    return total;
}

std::uint64_t
LivePointLibrary::totalUncompressedBytes() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t s : rawSizes_)
        total += s;
    return total;
}

void
LivePointLibrary::shuffle(Rng &rng)
{
    for (std::size_t i = records_.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(records_[i - 1], records_[j]);
        std::swap(rawSizes_[i - 1], rawSizes_[j]);
        std::swap(indices_[i - 1], indices_[j]);
    }
}

void
LivePointLibrary::save(const std::string &path) const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(kFileMagic);
    w.putString(benchmark_);
    serializeDesign(w, design_);
    w.putUint(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
        w.putUint(rawSizes_[i]);
        w.putUint(indices_[i]);
        w.putBytes(records_[i]);
    }
    w.endSequence();
    const Blob data = w.finish();

    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw std::runtime_error(
            strfmt("cannot write library '%s'", path.c_str()));
    const std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (n != data.size())
        throw std::runtime_error(
            strfmt("short write to library '%s'", path.c_str()));
}

LivePointLibrary
LivePointLibrary::load(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error(
            strfmt("cannot open library '%s'", path.c_str()));
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        throw std::runtime_error(
            strfmt("cannot read library '%s'", path.c_str()));
    }
    std::fseek(f, 0, SEEK_SET);
    Blob data(static_cast<std::size_t>(size));
    const std::size_t n = std::fread(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (n != data.size())
        throw std::runtime_error(
            strfmt("short read from library '%s'", path.c_str()));

    DerReader top(data);
    DerReader seq = top.getSequence();
    if (seq.getUint() != kFileMagic)
        throw std::runtime_error(
            strfmt("'%s' is not a live-point library", path.c_str()));
    LivePointLibrary lib;
    lib.benchmark_ = seq.getString();
    lib.design_ = deserializeDesign(seq);
    const std::uint64_t count = seq.getUint();
    lib.records_.reserve(count);
    lib.rawSizes_.reserve(count);
    lib.indices_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        lib.rawSizes_.push_back(seq.getUint());
        lib.indices_.push_back(seq.getUint());
        lib.records_.push_back(seq.getBytes());
    }
    return lib;
}

} // namespace lp
