/**
 * @file
 * Statistical sampling machinery (SMARTS, Wunderlich et al.):
 * systematic sample designs, confidence-driven sample sizing, and the
 * online estimator behind anytime result reporting.
 */

#ifndef LP_CORE_SAMPLE_HH
#define LP_CORE_SAMPLE_HH

#include <vector>

#include "stats/running_stat.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace lp
{

/** Minimum sample size for the CLT-based intervals to hold. */
inline constexpr std::uint64_t minCltSample = 30;

/** A confidence target: level (e.g. 0.997) and relative error. */
struct ConfidenceSpec
{
    double level = 0.997;
    double relativeError = 0.03;
};

/**
 * Sample size needed to estimate a mean with coefficient of variation
 * @p cov to the spec's relative error (never below minCltSample).
 */
std::uint64_t requiredSampleSize(double cov, const ConfidenceSpec &spec);

/**
 * Matched-pair sample size: pairs needed to estimate a per-point
 * delta (accumulated in @p delta) to within the spec's noise floor,
 * spec.relativeError * |baseMean| (never below minCltSample). The
 * figure runMatchedPair reports and the sec-6.2 bench tabulates
 * against requiredSampleSize.
 */
std::uint64_t pairedSampleSize(const RunningStat &delta,
                               double baseMean,
                               const ConfidenceSpec &spec);

/**
 * A systematic sample over a benchmark: @p count windows of
 * (warmLen detailed-warming + measureLen measured) instructions, one
 * per period. Each window sits at a deterministic pseudo-random
 * offset within its period, so the sample can never alias with
 * program periodicity (the classic systematic-sampling hazard).
 */
struct SampleDesign
{
    InstCount benchLength = 0;
    std::uint64_t count = 0;
    InstCount measureLen = 1000;
    InstCount warmLen = 2000;

    static SampleDesign systematic(InstCount benchLength,
                                   std::uint64_t count,
                                   InstCount measureLen,
                                   InstCount warmLen);

    /** Largest count whose windows fit the benchmark. */
    static std::uint64_t maxCount(InstCount benchLength,
                                  InstCount measureLen,
                                  InstCount warmLen);

    InstCount windowLen() const { return warmLen + measureLen; }
    InstCount period() const
    {
        return count ? benchLength / count : 0;
    }

    /** First instruction of window @p i (start of detailed warming). */
    InstCount windowStart(std::uint64_t i) const
    {
        const InstCount p = period();
        // Tolerate hand-built designs whose windows don't fit.
        const InstCount slack = p > windowLen() ? p - windowLen() : 0;
        const std::uint64_t jitter =
            hashCombine(hashCombine(benchLength, count), i) %
            (slack + 1);
        return i * p + jitter;
    }

    std::vector<InstCount> windowStarts() const;

    bool operator==(const SampleDesign &o) const
    {
        return benchLength == o.benchLength && count == o.count &&
               measureLen == o.measureLen && warmLen == o.warmLen;
    }

    bool operator!=(const SampleDesign &o) const { return !(*this == o); }
};

/** The running estimate the online reporter prints. */
struct OnlineSnapshot
{
    std::size_t n = 0;
    double mean = 0.0;
    double relHalfWidth = 0.0;
    bool valid = false;     //!< n >= minCltSample
    bool satisfied = false; //!< valid and within the confidence target
};

/** Accumulates measurements and reports confidence after each. */
class OnlineEstimator
{
  public:
    explicit OnlineEstimator(const ConfidenceSpec &spec);

    /** Add a measurement; returns the updated snapshot. */
    OnlineSnapshot add(double x);

    /**
     * Fold a whole block of measurements at once (RunningStat::merge).
     * The replay engine's block-synchronous path: folding per-block
     * statistics in deterministic block order makes the estimate
     * identical at every thread count.
     */
    OnlineSnapshot fold(const RunningStat &block);

    /**
     * Snapshot as if @p pending were folded, without folding it —
     * per-point trajectories inside a not-yet-complete block.
     */
    OnlineSnapshot preview(const RunningStat &pending) const;

    OnlineSnapshot snapshot() const;

    const RunningStat &stat() const { return stat_; }
    const ConfidenceSpec &spec() const { return spec_; }

  private:
    OnlineSnapshot snapshotOf(const RunningStat &stat) const;

    ConfidenceSpec spec_;
    double z_;
    RunningStat stat_;
};

} // namespace lp

#endif // LP_CORE_SAMPLE_HH
