/**
 * @file
 * Memory Reference Reuse Latency analysis (Haskins & Skadron, as used
 * in Section 4.2): for each sampled window, find the shortest warming
 * interval that covers a target fraction (default 99.9%) of the
 * window's reused memory blocks. AW-MRRL warms only that interval
 * instead of the whole inter-window gap, trading a small bias for a
 * large reduction in warming work.
 */

#ifndef LP_MRRL_MRRL_HH
#define LP_MRRL_MRRL_HH

#include <vector>

#include "workload/generator.hh"

namespace lp
{

struct MrrlAnalysis
{
    /** Reuse-coverage target the lengths were computed for. */
    double coverage = 0.999;

    /** Warming instructions required before each window. */
    std::vector<InstCount> warmingLengths;

    /** Reused blocks observed per window (diagnostic). */
    std::vector<std::uint64_t> reusedBlocks;
};

/**
 * One functional pass over @p prog computing, for each window
 * [start, start + windowLen), the reuse-latency distribution of the
 * blocks it touches, and from it the @p coverage-quantile warming
 * length.
 */
MrrlAnalysis analyzeMrrl(const Program &prog,
                         const std::vector<InstCount> &windowStarts,
                         InstCount windowLen, double coverage = 0.999);

} // namespace lp

#endif // LP_MRRL_MRRL_HH
