#include "mrrl/mrrl.hh"

#include <algorithm>
#include <unordered_map>

namespace lp
{

MrrlAnalysis
analyzeMrrl(const Program &prog,
            const std::vector<InstCount> &windowStarts,
            InstCount windowLen, double coverage)
{
    MrrlAnalysis out;
    out.coverage = coverage;
    out.warmingLengths.assign(windowStarts.size(), 0);
    out.reusedBlocks.assign(windowStarts.size(), 0);

    constexpr std::uint64_t kBlock = 64;
    std::unordered_map<Addr, InstCount> lastTouch;
    lastTouch.reserve(1 << 20);

    std::size_t w = 0;                 // next/current window
    std::vector<InstCount> distances;  // reuse distances of window w
    // Walk the dynamic stream once; windows are disjoint and sorted.
    for (InstCount idx = 0; idx < prog.length; ++idx) {
        // Close windows that ended before idx.
        while (w < windowStarts.size() &&
               idx >= windowStarts[w] + windowLen) {
            std::sort(distances.begin(), distances.end());
            if (!distances.empty()) {
                const std::size_t q = std::min(
                    distances.size() - 1,
                    static_cast<std::size_t>(
                        coverage *
                        static_cast<double>(distances.size())));
                out.warmingLengths[w] = distances[q];
                out.reusedBlocks[w] = distances.size();
            }
            distances.clear();
            ++w;
        }
        if (w >= windowStarts.size())
            break; // past the last window: nothing left to measure

        const Instruction ins = prog.fetch(idx);
        if (!ins.isMem())
            continue;
        const Addr block = ins.addr - (ins.addr % kBlock);
        const bool inWindow = w < windowStarts.size() &&
                              idx >= windowStarts[w] &&
                              idx < windowStarts[w] + windowLen;
        if (inWindow) {
            const auto it = lastTouch.find(block);
            if (it != lastTouch.end() && it->second < windowStarts[w])
                distances.push_back(windowStarts[w] - it->second);
        }
        lastTouch[block] = idx;
    }
    // Close any window ending at program end.
    if (w < windowStarts.size() && !distances.empty()) {
        std::sort(distances.begin(), distances.end());
        const std::size_t q = std::min(
            distances.size() - 1,
            static_cast<std::size_t>(
                coverage * static_cast<double>(distances.size())));
        out.warmingLengths[w] = distances[q];
        out.reusedBlocks[w] = distances.size();
    }
    return out;
}

} // namespace lp
