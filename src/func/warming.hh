/**
 * @file
 * Functional warming: the adapter that drives a FunctionalSimulator
 * forward while keeping microarchitectural state (caches, TLBs,
 * branch predictors, MTR) warm. This is the O(B) component of SMARTS
 * and AW-MRRL that live-points eliminate from the measurement loop.
 */

#ifndef LP_FUNC_WARMING_HH
#define LP_FUNC_WARMING_HH

#include "func/functional.hh"

namespace lp
{

class FunctionalWarming
{
  public:
    explicit FunctionalWarming(FunctionalSimulator &sim) : sim_(sim) {}

    /** Warm this hierarchy from now on. */
    void attachHierarchy(MemHierarchy *hier) { sim_.setHierarchy(hier); }

    /** Warm this predictor (may be called for several). */
    void attachPredictor(BranchPredictor *bp) { sim_.addPredictor(bp); }

    /** Populate this memory-timestamp record. */
    void attachMtr(MemoryTimestampRecord *mtr) { sim_.setMtr(mtr); }

    /** Execute @p n instructions with warming active. */
    void warm(InstCount n) { sim_.run(n); }

    FunctionalSimulator &simulator() { return sim_; }

  private:
    FunctionalSimulator &sim_;
};

} // namespace lp

#endif // LP_FUNC_WARMING_HH
