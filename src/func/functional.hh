/**
 * @file
 * Fast functional emulation: architectural execution of a Program
 * with optional observers — a memory hierarchy and branch predictors
 * to warm, a memory-timestamp record to populate, and a MemoryImage
 * capturing the live-state of a window as it executes.
 */

#ifndef LP_FUNC_FUNCTIONAL_HH
#define LP_FUNC_FUNCTIONAL_HH

#include <vector>

#include "bpred/bpred.hh"
#include "cache/warmstate.hh"
#include "mem/hierarchy.hh"
#include "mem/memport.hh"
#include "workload/generator.hh"

namespace lp
{

class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(const Program &prog);

    /** Execute up to @p n instructions (stops at program end). */
    void run(InstCount n);

    /**
     * Jump the simulator to a previously captured architectural state
     * (registers + memory) — the parallel builder's shard workers
     * start mid-program from pre-pass snapshots. Attached observers
     * are unaffected; the fetch-line filter is reset.
     */
    void restore(const ArchRegs &regs, SparseMemory mem);

    bool finished() const { return regs_.instIndex >= prog_.length; }

    const ArchRegs &regs() const { return regs_; }
    const Program &program() const { return prog_; }
    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Warm this hierarchy with every reference (nullptr detaches). */
    void setHierarchy(MemHierarchy *hier) { hier_ = hier; }

    /** Warm an additional branch predictor. */
    void addPredictor(BranchPredictor *bp);

    /** Detach all warmed predictors. */
    void clearPredictors() { preds_.clear(); }

    /** Populate a memory-timestamp record (nullptr detaches). */
    void setMtr(MemoryTimestampRecord *mtr) { mtr_ = mtr; }

    /**
     * Capture the live-state image of the instructions executed while
     * attached: each touched block is recorded with its contents as
     * of first touch (nullptr detaches).
     */
    void setCaptureImage(MemoryImage *img) { capture_ = img; }

  private:
    const Program &prog_;
    ArchRegs regs_;
    SparseMemory mem_;
    DirectMemPort port_;
    MemHierarchy *hier_ = nullptr;
    std::vector<BranchPredictor *> preds_;
    MemoryTimestampRecord *mtr_ = nullptr;
    MemoryImage *capture_ = nullptr;
    Addr lastFetchLine_ = ~0ull;
};

} // namespace lp

#endif // LP_FUNC_FUNCTIONAL_HH
