#include "func/functional.hh"

namespace lp
{

FunctionalSimulator::FunctionalSimulator(const Program &prog)
    : prog_(prog), port_(mem_)
{
    if (!prog.dataInit.empty())
        mem_.writeBytes(prog.dataBase, prog.dataInit.data(),
                        prog.dataInit.size());
}

void
FunctionalSimulator::addPredictor(BranchPredictor *bp)
{
    preds_.push_back(bp);
}

void
FunctionalSimulator::restore(const ArchRegs &regs, SparseMemory mem)
{
    regs_ = regs;
    // Move-assign keeps mem_'s identity, so port_ stays valid.
    mem_ = std::move(mem);
    lastFetchLine_ = ~0ull;
}

void
FunctionalSimulator::run(InstCount n)
{
    const InstCount end =
        std::min(prog_.length, regs_.instIndex + n);
    while (regs_.instIndex < end) {
        const Instruction ins = prog_.fetch(regs_.instIndex);

        if (hier_) {
            const Addr fa = prog_.fetchAddr(ins.pc);
            const Addr line = fa & ~63ull;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                hier_->warmFetch(fa);
            }
        }
        if (ins.isMem()) {
            if (capture_)
                capture_->captureBeforeAccess(mem_, ins.addr);
            if (hier_)
                hier_->warmData(ins.addr, ins.op == Opcode::Store);
            if (mtr_)
                mtr_->record(ins.addr, ins.op == Opcode::Store,
                             regs_.instIndex);
        }
        if (ins.op == Opcode::Bne)
            for (BranchPredictor *bp : preds_)
                bp->warmBranch(ins.pc, ins, ins.taken, ins.target);

        executeArch(ins, regs_, port_);
    }
}

} // namespace lp
