#include "bpred/bpred.hh"

#include <cstring>
#include <stdexcept>

#include "codec/der.hh"
#include "util/log.hh"

namespace lp
{

std::string
BpredConfig::key() const
{
    return strfmt("comb%u", tableEntries);
}

namespace
{

/** Branchless 2-bit saturating update. */
inline std::uint8_t
saturate(std::uint8_t ctr, bool up)
{
    return static_cast<std::uint8_t>(up ? ctr + (ctr < 3) : ctr - (ctr > 0));
}

} // namespace

BranchPredictor::BranchPredictor(const BpredConfig &cfg)
    : cfg_(cfg), bimodChooser_(2 * cfg.tableEntries, 1),
      gshare_(cfg.tableEntries, 1)
{
    if (cfg_.tableEntries > 1 &&
        (cfg_.tableEntries & (cfg_.tableEntries - 1)) == 0)
        mask_ = cfg_.tableEntries - 1;
}

std::size_t
BranchPredictor::bimodIndex(PcIndex pc) const
{
    return static_cast<std::size_t>(mask_ ? (pc & mask_)
                                          : (pc % cfg_.tableEntries));
}

std::size_t
BranchPredictor::gshareIndex(PcIndex pc) const
{
    const std::uint64_t x = pc ^ history_;
    return static_cast<std::size_t>(mask_ ? (x & mask_)
                                          : (x % cfg_.tableEntries));
}

bool
BranchPredictor::predict(PcIndex pc) const
{
    const std::uint8_t *bc = bimodChooser_.data() + 2 * bimodIndex(pc);
    const bool useGshare = bc[1] >= 2;
    const std::uint8_t ctr = useGshare ? gshare_[gshareIndex(pc)] : bc[0];
    return ctr >= 2;
}

void
BranchPredictor::update(PcIndex pc, bool taken)
{
    const std::size_t gi = gshareIndex(pc);
    std::uint8_t *bc = bimodChooser_.data() + 2 * bimodIndex(pc);
    const std::uint8_t b = bc[0];
    const std::uint8_t g = gshare_[gi];
    const bool bimodRight = (b >= 2) == taken;
    const bool gshareRight = (g >= 2) == taken;
    if (gshareRight != bimodRight)
        bc[1] = saturate(bc[1], gshareRight);
    bc[0] = saturate(b, taken);
    gshare_[gi] = saturate(g, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               (cfg_.tableEntries - 1);
}

void
BranchPredictor::warmBranch(PcIndex pc, const Instruction &ins, bool taken,
                            PcIndex target)
{
    (void)ins;
    (void)target;
    update(pc, taken);
}

void
BranchPredictor::reset()
{
    std::fill(bimodChooser_.begin(), bimodChooser_.end(), 1);
    std::fill(gshare_.begin(), gshare_.end(), 1);
    history_ = 0;
}

Blob
BranchPredictor::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(cfg_.tableEntries);
    w.putUint(history_);
    // Pack 2-bit counters four per byte, one octet string per logical
    // table (bimod, gshare, chooser — the stable image layout), with a
    // stride to walk the interleaved plane.
    const std::size_t entries = cfg_.tableEntries;
    auto pack = [&w, entries](const std::uint8_t *table,
                              std::size_t stride) {
        Blob packed((entries + 3) / 4, 0);
        for (std::size_t i = 0; i < entries; ++i)
            packed[i / 4] |= static_cast<std::uint8_t>(
                (table[i * stride] & 3) << ((i % 4) * 2));
        w.putBytes(packed);
    };
    pack(bimodChooser_.data(), 2);
    pack(gshare_.data(), 1);
    pack(bimodChooser_.data() + 1, 2);
    w.endSequence();
    return w.finish();
}

void
BranchPredictor::deserialize(const Blob &image)
{
    DerReader top(image);
    DerReader seq = top.getSequence();
    const std::uint64_t entries = seq.getUint();
    if (entries != cfg_.tableEntries)
        throw std::runtime_error(
            strfmt("bpred image for %llu entries, predictor has %u",
                   static_cast<unsigned long long>(entries),
                   cfg_.tableEntries));
    history_ = seq.getUint();
    // Unpack each table from a borrowed view of the image — the
    // replay hot path deserializes one image per point per config, so
    // this must not allocate.
    auto unpack = [entries](ByteSpan packed, std::uint8_t *table,
                            std::size_t stride) {
        if (packed.size < (entries + 3) / 4)
            throw std::runtime_error("bpred image truncated");
        for (std::size_t i = 0; i < entries; ++i)
            table[i * stride] = (packed.data[i / 4] >> ((i % 4) * 2)) & 3;
    };
    unpack(seq.getBytesSpan(), bimodChooser_.data(), 2);
    unpack(seq.getBytesSpan(), gshare_.data(), 1);
    unpack(seq.getBytesSpan(), bimodChooser_.data() + 1, 2);
}

void
BranchPredictor::copyStateFrom(const BranchPredictor &o)
{
    if (cfg_.tableEntries != o.cfg_.tableEntries)
        throw std::runtime_error("BranchPredictor::copyStateFrom: size");
    std::memcpy(bimodChooser_.data(), o.bimodChooser_.data(),
                bimodChooser_.size());
    std::memcpy(gshare_.data(), o.gshare_.data(), gshare_.size());
    history_ = o.history_;
}

} // namespace lp
