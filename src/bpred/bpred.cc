#include "bpred/bpred.hh"

#include <stdexcept>

#include "codec/der.hh"
#include "util/log.hh"

namespace lp
{

std::string
BpredConfig::key() const
{
    return strfmt("comb%u", tableEntries);
}

BranchPredictor::BranchPredictor(const BpredConfig &cfg)
    : cfg_(cfg), bimod_(cfg.tableEntries, 1), gshare_(cfg.tableEntries, 1),
      chooser_(cfg.tableEntries, 1)
{
}

std::size_t
BranchPredictor::bimodIndex(PcIndex pc) const
{
    return static_cast<std::size_t>(pc % cfg_.tableEntries);
}

std::size_t
BranchPredictor::gshareIndex(PcIndex pc) const
{
    return static_cast<std::size_t>((pc ^ history_) % cfg_.tableEntries);
}

bool
BranchPredictor::predict(PcIndex pc) const
{
    const bool useGshare = chooser_[bimodIndex(pc)] >= 2;
    const std::uint8_t ctr =
        useGshare ? gshare_[gshareIndex(pc)] : bimod_[bimodIndex(pc)];
    return ctr >= 2;
}

void
BranchPredictor::update(PcIndex pc, bool taken)
{
    auto train = [taken](std::uint8_t &ctr) {
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    };
    const std::size_t bi = bimodIndex(pc);
    const std::size_t gi = gshareIndex(pc);
    const bool bimodRight = (bimod_[bi] >= 2) == taken;
    const bool gshareRight = (gshare_[gi] >= 2) == taken;
    if (gshareRight != bimodRight) {
        std::uint8_t &ch = chooser_[bi];
        if (gshareRight) {
            if (ch < 3)
                ++ch;
        } else {
            if (ch > 0)
                --ch;
        }
    }
    train(bimod_[bi]);
    train(gshare_[gi]);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               (cfg_.tableEntries - 1);
}

void
BranchPredictor::warmBranch(PcIndex pc, const Instruction &ins, bool taken,
                            PcIndex target)
{
    (void)ins;
    (void)target;
    update(pc, taken);
}

void
BranchPredictor::reset()
{
    std::fill(bimod_.begin(), bimod_.end(), 1);
    std::fill(gshare_.begin(), gshare_.end(), 1);
    std::fill(chooser_.begin(), chooser_.end(), 1);
    history_ = 0;
}

Blob
BranchPredictor::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(cfg_.tableEntries);
    w.putUint(history_);
    // Pack the three 2-bit tables four counters per byte.
    auto pack = [&w](const std::vector<std::uint8_t> &table) {
        Blob packed((table.size() + 3) / 4, 0);
        for (std::size_t i = 0; i < table.size(); ++i)
            packed[i / 4] |= static_cast<std::uint8_t>(
                (table[i] & 3) << ((i % 4) * 2));
        w.putBytes(packed);
    };
    pack(bimod_);
    pack(gshare_);
    pack(chooser_);
    w.endSequence();
    return w.finish();
}

void
BranchPredictor::deserialize(const Blob &image)
{
    DerReader top(image);
    DerReader seq = top.getSequence();
    const std::uint64_t entries = seq.getUint();
    if (entries != cfg_.tableEntries)
        throw std::runtime_error(
            strfmt("bpred image for %llu entries, predictor has %u",
                   static_cast<unsigned long long>(entries),
                   cfg_.tableEntries));
    history_ = seq.getUint();
    // Unpack in place: resize (a no-op on a pooled predictor of the
    // same geometry) and write each counter once.
    Blob packed;
    auto unpack = [entries, &packed](std::vector<std::uint8_t> &table) {
        if (packed.size() < (entries + 3) / 4)
            throw std::runtime_error("bpred image truncated");
        table.resize(entries);
        for (std::size_t i = 0; i < table.size(); ++i)
            table[i] = (packed[i / 4] >> ((i % 4) * 2)) & 3;
    };
    seq.getBytes(packed);
    unpack(bimod_);
    seq.getBytes(packed);
    unpack(gshare_);
    seq.getBytes(packed);
    unpack(chooser_);
}

} // namespace lp
