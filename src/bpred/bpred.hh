/**
 * @file
 * Combined branch predictor (bimodal + gshare + chooser, 2-bit
 * counters) with full-state serialization. A live-point stores one
 * serialized image per predictor configuration in its library's
 * `bpredConfigs` set, keyed by BpredConfig::key(), so reconstruction
 * is exact for any covered configuration.
 */

#ifndef LP_BPRED_BPRED_HH
#define LP_BPRED_BPRED_HH

#include <string>
#include <vector>

#include "util/types.hh"
#include "workload/generator.hh"

namespace lp
{

struct BpredConfig
{
    /** Entries in each of the bimodal/gshare/chooser tables. */
    unsigned tableEntries = 2048;
    Cycles mispredictPenalty = 7;
    unsigned predictionsPerCycle = 1;

    /** Identity of the warm *state* this config needs (table size). */
    std::string key() const;

    bool operator==(const BpredConfig &o) const
    {
        return tableEntries == o.tableEntries &&
               mispredictPenalty == o.mispredictPenalty &&
               predictionsPerCycle == o.predictionsPerCycle;
    }
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const BpredConfig &cfg);

    const BpredConfig &config() const { return cfg_; }

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(PcIndex pc) const;

    /** Train on the resolved outcome and advance global history. */
    void update(PcIndex pc, bool taken);

    /** Functional-warming shorthand: train without predicting. */
    void warmBranch(PcIndex pc, const Instruction &ins, bool taken,
                    PcIndex target);

    /** Drop all state. */
    void reset();

    Blob serialize() const;
    void deserialize(const Blob &image);

    /**
     * Adopt the exact table and history state of @p o (same
     * tableEntries required). Allocation-free: a pooled replay unit
     * copies a sibling's already-deserialized warm state instead of
     * unpacking the image again.
     */
    void copyStateFrom(const BranchPredictor &o);

  private:
    std::size_t bimodIndex(PcIndex pc) const;
    std::size_t gshareIndex(PcIndex pc) const;

    BpredConfig cfg_;
    std::uint64_t mask_ = 0; //!< tableEntries - 1 when a power of two
    /**
     * Bimodal and chooser counters interleaved [bimod, chooser] per
     * entry: both are indexed by the same bimodal index on every
     * predict and update, so fusing them makes one cache line serve
     * both lookups. The serialized image keeps the original
     * three-table layout.
     */
    std::vector<std::uint8_t> bimodChooser_;
    std::vector<std::uint8_t> gshare_; //!< 2-bit counters
    std::uint64_t history_ = 0;
};

} // namespace lp

#endif // LP_BPRED_BPRED_HH
