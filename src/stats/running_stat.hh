/**
 * @file
 * Streaming sample statistics (Welford) plus the normal quantile used
 * to turn a confidence level into a z value. These drive the paper's
 * sample sizing, online confidence reporting, and matched-pair tests.
 */

#ifndef LP_STATS_RUNNING_STAT_HH
#define LP_STATS_RUNNING_STAT_HH

#include <cstdint>

namespace lp
{

/**
 * Incrementally accumulated mean/variance/extrema of a sample.
 * Numerically stable (Welford's algorithm).
 */
class RunningStat
{
  public:
    /**
     * The complete accumulator state, exposed so persistent fold
     * state (the campaign manifest) can round-trip an estimator
     * bit-exactly: restoring a State and folding further observations
     * is arithmetically identical to never having stopped.
     */
    struct State
    {
        std::uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    RunningStat() = default;

    /** Reconstruct an accumulator from a saved state. */
    static RunningStat fromState(const State &s);

    /** Snapshot the accumulator state. */
    State state() const;

    /** Add one observation. */
    void add(double x);

    /**
     * Fold another accumulator into this one (Chan et al. pairwise
     * combine). Equivalent to having added the other sample's
     * observations, up to floating-point rounding; the replay engine
     * uses it to fold per-block statistics deterministically.
     */
    void merge(const RunningStat &other);

    /** Number of observations so far. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Coefficient of variation: stddev / |mean| (0 if mean is 0). */
    double cov() const;

    /** Smallest observation (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Half-width of the two-sided confidence interval of the mean at
     * the given z value: z * stddev / sqrt(n).
     */
    double halfWidth(double z) const;

    /** halfWidth(z) / |mean| (0 if the mean is 0). */
    double relHalfWidth(double z) const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Quantile function of the standard normal distribution (Acklam's
 * rational approximation; |error| < 1.2e-9). @p p must be in (0, 1).
 */
double normalQuantile(double p);

/**
 * Two-sided z value for a confidence level, e.g. 0.997 -> ~2.97,
 * 0.95 -> ~1.96.
 */
double confidenceZ(double level);

} // namespace lp

#endif // LP_STATS_RUNNING_STAT_HH
