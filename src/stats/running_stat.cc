#include "stats/running_stat.hh"

#include <cmath>

namespace lp
{

RunningStat
RunningStat::fromState(const State &s)
{
    RunningStat r;
    r.n_ = s.n;
    r.mean_ = s.mean;
    r.m2_ = s.m2;
    r.min_ = s.min;
    r.max_ = s.max;
    return r;
}

RunningStat::State
RunningStat::state() const
{
    State s;
    s.n = n_;
    s.mean = mean_;
    s.m2 = m2_;
    s.min = min_;
    s.max = max_;
    return s;
}

void
RunningStat::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::cov() const
{
    if (mean_ == 0.0 || n_ < 2)
        return 0.0;
    return stddev() / std::fabs(mean());
}

double
RunningStat::halfWidth(double z) const
{
    if (n_ < 2)
        return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(n_));
}

double
RunningStat::relHalfWidth(double z) const
{
    if (mean_ == 0.0)
        return 0.0;
    return halfWidth(z) / std::fabs(mean());
}

double
normalQuantile(double p)
{
    // Peter Acklam's inverse-normal approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1 - plow;

    if (p < plow) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= phigh) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                    r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                    r +
                1);
    }
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double
confidenceZ(double level)
{
    return normalQuantile(0.5 + level / 2.0);
}

} // namespace lp
