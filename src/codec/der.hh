/**
 * @file
 * DER-style tagged binary serialization for on-disk libraries: every
 * value is a (tag, length, content) triple, sequences nest, and the
 * encoding of a given value is unique, so serialized live-points can
 * be compared byte-for-byte in round-trip tests.
 *
 * Tags: 0x02 unsigned integer (LEB128 content), 0x04 octet string,
 * 0x0C UTF-8 string, 0x30 sequence.
 */

#ifndef LP_CODEC_DER_HH
#define LP_CODEC_DER_HH

#include <cstddef>
#include <string>

#include "util/types.hh"

namespace lp
{

/** Serializer producing a tagged binary blob. */
class DerWriter
{
  public:
    /** Open a nested sequence; must be matched by endSequence(). */
    void beginSequence();

    /** Close the innermost open sequence. */
    void endSequence();

    /** Append an unsigned integer. */
    void putUint(std::uint64_t v);

    /** Append a double (encoded via its IEEE-754 bit pattern). */
    void putDouble(double v);

    /** Append an octet string. */
    void putBytes(const Blob &b);

    /** Append raw octets (same wire form as putBytes). */
    void putBytes(const std::uint8_t *data, std::size_t size);

    /** Append a UTF-8 string. */
    void putString(const std::string &s);

    /** Finish encoding and return the blob. All sequences must be closed. */
    Blob finish();

  private:
    void putTagLen(std::uint8_t tag, std::size_t len);

    Blob buf_;
    std::vector<std::size_t> open_; //!< offsets of open sequence headers
};

/** Cursor over a DER blob (or a nested sequence within one). */
class DerReader
{
  public:
    /** View an entire encoded blob. @p data must outlive the reader. */
    explicit DerReader(const Blob &data);

    /**
     * View encoded bytes borrowed from any backing storage (an
     * owned buffer, a file mapping). The storage must outlive the
     * reader and everything it hands out.
     */
    explicit DerReader(ByteSpan data);

    /** True when no values remain at this nesting level. */
    bool atEnd() const { return pos_ >= size_; }

    /** Read the next value as an unsigned integer. */
    std::uint64_t getUint();

    /** Read the next value as a double. */
    double getDouble();

    /** Read the next value as an octet string. */
    Blob getBytes();

    /** Read the next octet string into @p out, reusing its storage. */
    void getBytes(Blob &out);

    /**
     * Read the next octet string as a borrowed view into the encoded
     * buffer — no copy. Valid as long as the underlying blob lives.
     */
    ByteSpan getBytesSpan();

    /** Read the next value as a UTF-8 string. */
    std::string getString();

    /** Enter the next value, which must be a sequence. */
    DerReader getSequence();

  private:
    DerReader(const std::uint8_t *data, std::size_t size);

    const std::uint8_t *expect(std::uint8_t tag, std::size_t &len);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace lp

#endif // LP_CODEC_DER_HH
