/**
 * @file
 * Block compressor for live-point payloads. A self-contained LZSS
 * variant (64KB window, hash-chain match finding with lazy matching):
 * no external library dependency, deterministic output across
 * platforms, and effective on the structured tag/counter payloads
 * live-points are made of. The token format has been stable since the
 * first library release, so any decompressor reads any library.
 */

#ifndef LP_CODEC_ZIP_HH
#define LP_CODEC_ZIP_HH

#include <cstddef>

#include "util/types.hh"

namespace lp
{

/** Compress a buffer. The result is self-describing. */
Blob zipCompress(const Blob &raw);

/**
 * Decompress a buffer produced by zipCompress(). Throws
 * std::runtime_error on malformed input.
 */
Blob zipDecompress(const Blob &compressed);

/**
 * Decompress into @p out, reusing its storage (cleared first). The
 * decode-pipeline hot path: a recycled buffer large enough for the
 * library's points makes decompression allocation-free.
 */
void zipDecompressInto(const Blob &compressed, Blob &out);

/**
 * As above, reading the compressed record from a borrowed buffer —
 * the zero-copy path a memory-mapped-style library container feeds.
 */
void zipDecompressInto(const std::uint8_t *compressed, std::size_t size,
                       Blob &out);

/**
 * Reference scalar decompressor: the original flag-bit/byte-at-a-time
 * loop, retained verbatim as the oracle for the differential fuzz leg
 * and for the decode-throughput speedup ratio in bench/ablation_hotpath.
 * Accepts exactly the inputs zipDecompressInto() accepts and produces
 * byte-identical output; both throw on the same malformed inputs.
 */
void zipDecompressReferenceInto(const std::uint8_t *compressed,
                                std::size_t size, Blob &out);

} // namespace lp

#endif // LP_CODEC_ZIP_HH
