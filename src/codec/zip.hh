/**
 * @file
 * Block compressor for live-point payloads. A self-contained LZSS
 * variant (64KB window, hash-chain match finding with lazy matching):
 * no external library dependency, deterministic output across
 * platforms, and effective on the structured tag/counter payloads
 * live-points are made of. The token format has been stable since the
 * first library release, so any decompressor reads any library.
 *
 * Cross-point redundancy is exploited through the same token format:
 * a *preset dictionary* primes the match window (matches may reach
 * back past the start of the buffer into the dictionary's tail), and
 * a *delta stream* compresses a buffer in fixed chunks, each primed
 * with the proportionally-aligned region of the predecessor buffer —
 * successive live-points share most of their warm state, and the
 * prior window turns that sharing into match tokens without any new
 * token kinds. A stream compressed with an empty dictionary is
 * byte-identical to a plain stream, so old libraries decode
 * unchanged.
 */

#ifndef LP_CODEC_ZIP_HH
#define LP_CODEC_ZIP_HH

#include <cstddef>

#include "util/types.hh"

namespace lp
{

/** Compress a buffer. The result is self-describing. */
Blob zipCompress(const Blob &raw);

/**
 * Compress a buffer with a preset dictionary priming the match
 * window: matches may reach back into the last 64KB of @p dict as if
 * it preceded @p raw. The token format is unchanged — only a decoder
 * given the same dictionary can expand the result. An empty @p dict
 * produces exactly zipCompress(raw).
 */
Blob zipCompress(const Blob &raw, ByteSpan dict);

/**
 * Decompress a buffer produced by zipCompress(). Throws
 * std::runtime_error on malformed input.
 */
Blob zipDecompress(const Blob &compressed);

/**
 * Decompress into @p out, reusing its storage (cleared first). The
 * decode-pipeline hot path: a recycled buffer large enough for the
 * library's points makes decompression allocation-free.
 */
void zipDecompressInto(const Blob &compressed, Blob &out);

/**
 * As above, reading the compressed record from a borrowed buffer —
 * the zero-copy path a memory-mapped-style library container feeds.
 */
void zipDecompressInto(const std::uint8_t *compressed, std::size_t size,
                       Blob &out);

/**
 * As above with a preset dictionary: the decoder's window is primed
 * with @p dict, so match offsets reaching past the produced output
 * read from the dictionary's tail. Must be the dictionary the stream
 * was compressed with; a mismatched dictionary yields wrong bytes or
 * a clean throw, never out-of-bounds access (offsets are still
 * bounds-checked against produced + dict size).
 */
void zipDecompressInto(const std::uint8_t *compressed, std::size_t size,
                       Blob &out, ByteSpan dict);

/**
 * Reference scalar decompressor: the original flag-bit/byte-at-a-time
 * loop, retained verbatim as the oracle for the differential fuzz leg
 * and for the decode-throughput speedup ratio in bench/ablation_hotpath.
 * Accepts exactly the inputs zipDecompressInto() accepts and produces
 * byte-identical output; both throw on the same malformed inputs.
 */
void zipDecompressReferenceInto(const std::uint8_t *compressed,
                                std::size_t size, Blob &out);

/** Reference decoder with a preset dictionary (differential oracle). */
void zipDecompressReferenceInto(const std::uint8_t *compressed,
                                std::size_t size, Blob &out,
                                ByteSpan dict);

/**
 * Delta-compress @p raw against the predecessor buffer @p prevRaw.
 * The buffer is split into fixed 32KB chunks; each chunk is an
 * ordinary token stream primed with the proportionally-aligned
 * region of @p prevRaw as its dictionary, so shared content between
 * successive live-points becomes match tokens even when sections
 * drift by a few KB. Layout: [LEB raw size][LEB chunk count]
 * [LEB compressed size per chunk][chunk streams back-to-back]; each
 * chunk stream is self-describing and reference-decodable. Decoding
 * requires the byte-exact @p prevRaw.
 */
Blob zipCompressDelta(const Blob &raw, ByteSpan prevRaw);

/**
 * Expand a zipCompressDelta() stream given the predecessor's raw
 * bytes. Throws std::runtime_error on malformed input; a wrong
 * @p prevRaw yields wrong bytes or a clean throw, never out-of-bounds
 * access (the library layer's per-record checksum makes mismatches
 * fail loudly).
 */
void zipDecompressDeltaInto(const std::uint8_t *compressed,
                            std::size_t size, ByteSpan prevRaw,
                            Blob &out);

/** Reference (oracle) expansion of a delta stream. */
void zipDecompressDeltaReferenceInto(const std::uint8_t *compressed,
                                     std::size_t size, ByteSpan prevRaw,
                                     Blob &out);

/**
 * Train a preset dictionary from sample payloads: evenly-strided
 * slices of each sample are concatenated, newest-sample slices last
 * (the tail of the dictionary is the cheapest window region).
 * Deterministic; at most @p dictBytes bytes are returned.
 */
Blob zipTrainDictionary(const std::vector<ByteSpan> &samples,
                        std::size_t dictBytes);

} // namespace lp

#endif // LP_CODEC_ZIP_HH
