#include "codec/zip.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/failpoint.hh"

namespace lp
{

namespace
{

// Token stream format:
//   [LEB128 raw size] then groups of up to 8 items preceded by a flag
//   byte; bit set = match token (2-byte little-endian offset, 1-byte
//   length-4), bit clear = literal byte. Window 64KB, match length
//   4..259.

constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 259;

constexpr std::uint32_t kNil = 0xffffffffu;
constexpr unsigned kHashBits = 16;

// Chain candidates examined per position. Deep enough to find the
// good match in the chain, shallow enough that pathological inputs
// (long runs hashing to one bucket) stay linear-time.
constexpr unsigned kMaxChainDepth = 4;

// A match this long is good enough: stop walking the chain, and skip
// the lazy one-byte-later probe entirely.
constexpr std::size_t kNiceMatch = 96;

// In-match insertion policy: a long match indexes its first
// kFullInsert and last kTailInsert positions instead of every one.
constexpr std::size_t kFullInsert = 16;
constexpr std::size_t kTailInsert = 8;

/** Longest common prefix of a and b, at most limit, word-at-a-time. */
std::size_t
matchExtent(const std::uint8_t *a, const std::uint8_t *b,
            std::size_t limit)
{
    std::size_t len = 0;
    while (len + 8 <= limit) {
        std::uint64_t va;
        std::uint64_t vb;
        std::memcpy(&va, a + len, 8);
        std::memcpy(&vb, b + len, 8);
        if (va != vb) {
            const std::uint64_t diff = va ^ vb;
#if (defined(__GNUC__) || defined(__clang__)) &&                          \
    defined(__BYTE_ORDER__) &&                                            \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
            return len + static_cast<std::size_t>(
                             __builtin_ctzll(diff) >> 3);
#else
            while (len < limit && a[len] == b[len])
                ++len;
            return len;
#endif
        }
        len += 8;
    }
    while (len < limit && a[len] == b[len])
        ++len;
    return len;
}

void
putLeb(Blob &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getLeb(const std::uint8_t *in, std::size_t size, std::size_t &pos)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (pos >= size)
            throw std::runtime_error("zip: truncated header");
        const std::uint8_t b = in[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw std::runtime_error("zip: oversized varint");
    }
}

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

/**
 * Hash-chain match finder: head[h] is the most recent position whose
 * 4-byte prefix hashes to h, chain[p] the previous such position.
 * Positions *inside* matches are inserted too, so repeated structure
 * shifted by less than a match length is still found (the greedy
 * single-entry table lost those). A second, single-entry table keyed
 * by *scan* positions only (token starts — what the old greedy
 * compressor kept) rides along: in-match insertions favour
 * short-range candidates, and on run-heavy data they can crowd the
 * long-range period-aligned candidate out of the chain's depth
 * budget. The scan table keeps that candidate reachable, so this
 * finder's candidate set dominates the old one's.
 */
class MatchFinder
{
  public:
    MatchFinder(const std::uint8_t *data, std::size_t n)
        : raw_(data), n_(n), head_(1u << kHashBits, kNil),
          scanHead_(1u << kHashBits, kNil),
          chain_(n_ >= kMinMatch ? n_ - (kMinMatch - 1) : 0)
    {
    }

    /** Make positions [inserted, end) available as candidates. */
    void insertUpTo(std::size_t end)
    {
        const std::size_t last = chain_.size(); // first uninsertable pos
        end = std::min(end, last);
        for (; inserted_ < end; ++inserted_) {
            const std::uint32_t h = hash4(raw_ + inserted_);
            chain_[inserted_] = head_[h];
            head_[h] = static_cast<std::uint32_t>(inserted_);
        }
    }

    /**
     * Insert the positions covered by a match at @p pos. Short
     * matches insert fully; long ones insert their head and tail
     * only — the interior repeats what the head already indexed, and
     * skipping it is where the codec's speed comes from. (Skipped
     * positions are never match *sources*; they remain reachable as
     * copy content through the inserted head.)
     */
    void insertForMatch(std::size_t pos, std::size_t len)
    {
        if (len <= kFullInsert + kTailInsert) {
            insertUpTo(pos + len);
            return;
        }
        insertUpTo(pos + kFullInsert);
        inserted_ = std::max(inserted_,
                             std::min(pos + len - kTailInsert,
                                      chain_.size()));
        insertUpTo(pos + len);
    }

    /**
     * Longest match for @p pos among earlier candidates within the
     * window; ties prefer the closest (most recent) candidate.
     * Inserts @p pos into the table on the way — one hash and one
     * head-table access serve both jobs, the scan loop's whole cost
     * model. Returns the length (0 when below the format minimum)
     * and writes the source position to @p matchPos.
     */
    std::size_t findAndInsert(std::size_t pos, std::size_t &matchPos)
    {
        if (pos + kMinMatch > n_)
            return 0;
        const std::uint32_t h = hash4(raw_ + pos);
        std::uint32_t cand = head_[h];
        const std::uint32_t scan = scanHead_[h];
        scanHead_[h] = static_cast<std::uint32_t>(pos);
        if (pos == inserted_) {
            // pos < chain_.size() follows from the length guard.
            chain_[pos] = cand;
            head_[h] = static_cast<std::uint32_t>(pos);
            ++inserted_;
        } else if (cand == pos) {
            // pos was already inserted (a failed lazy probe): start
            // the walk at its predecessor, never at itself.
            cand = chain_[pos];
        }
        const std::size_t limit = std::min(n_ - pos, kMaxMatch);
        const std::size_t nice = std::min(limit, kNiceMatch);
        std::size_t best = 0;
        unsigned depth = kMaxChainDepth;
        while (cand != kNil && pos - cand <= kWindow && depth--) {
            const std::uint8_t *a = raw_ + cand;
            const std::uint8_t *b = raw_ + pos;
            // A longer match must extend past the current best; check
            // that byte first to skip most candidates in O(1).
            if (a[best] == b[best]) {
                const std::size_t len = matchExtent(a, b, limit);
                if (len > best) {
                    best = len;
                    matchPos = cand;
                    if (best >= nice)
                        break;
                }
            }
            cand = chain_[cand];
        }
        if (best < nice && scan != kNil &&
            scan != static_cast<std::uint32_t>(pos) &&
            pos - scan <= kWindow) {
            const std::uint8_t *a = raw_ + scan;
            const std::uint8_t *b = raw_ + pos;
            if (a[best] == b[best]) {
                const std::size_t len = matchExtent(a, b, limit);
                if (len > best) {
                    best = len;
                    matchPos = scan;
                }
            }
        }
        return best >= kMinMatch ? best : 0;
    }

  private:
    const std::uint8_t *raw_;
    std::size_t n_;
    std::size_t inserted_ = 0;
    std::vector<std::uint32_t> head_;
    std::vector<std::uint32_t> scanHead_;
    std::vector<std::uint32_t> chain_;
};

/**
 * Tokenize @p data[start, total) into @p out (which already carries
 * the LEB raw-size header, so a recorded flag position is never 0).
 * Positions [0, start) are the preset dictionary: they are indexed as
 * match candidates but emit nothing, which is the whole dictionary
 * mechanism — with start == 0 this is the original single-buffer
 * compressor, byte for byte.
 */
void
compressBody(const std::uint8_t *data, std::size_t total,
             std::size_t start, Blob &out)
{
    MatchFinder mf(data, total);
    mf.insertUpTo(start);

    std::size_t flagPos = 0;
    unsigned flagBit = 8; // force new flag byte on first item
    std::uint8_t flags = 0;

    auto beginItem = [&](bool isMatch) {
        if (flagBit == 8) {
            if (flagPos)
                out[flagPos] = flags;
            flagPos = out.size();
            out.push_back(0);
            flags = 0;
            flagBit = 0;
        }
        if (isMatch)
            flags |= static_cast<std::uint8_t>(1u << flagBit);
        ++flagBit;
    };

    std::size_t i = start;
    while (i < total) {
        std::size_t matchPos = 0;
        std::size_t matchLen = mf.findAndInsert(i, matchPos);
        if (!matchLen) {
            beginItem(false);
            out.push_back(data[i]);
            ++i;
            continue;
        }
        // Lazy matching: when the next position starts a strictly
        // longer match, emit this byte as a literal and slide
        // forward. A nice-length match is taken as-is — the probe
        // rarely beats it and costs a full chain walk.
        while (matchLen < kNiceMatch && i + 1 < total) {
            std::size_t nextPos = 0;
            const std::size_t nextLen = mf.findAndInsert(i + 1, nextPos);
            if (nextLen <= matchLen)
                break;
            beginItem(false);
            out.push_back(data[i]);
            ++i;
            matchLen = nextLen;
            matchPos = nextPos;
        }
        beginItem(true);
        const std::size_t off = i - matchPos;
        out.push_back(static_cast<std::uint8_t>(off));
        out.push_back(static_cast<std::uint8_t>(off >> 8));
        out.push_back(static_cast<std::uint8_t>(matchLen - kMinMatch));
        mf.insertForMatch(i, matchLen);
        i += matchLen;
    }
    if (flagPos)
        out[flagPos] = flags;
}

/**
 * Compress @p n bytes at @p raw primed with @p dict (its last 64KB —
 * deeper bytes are unreachable through 16-bit offsets anyway). The
 * dictionary is staged in front of the payload in one scratch buffer
 * so the match finder sees a single address space.
 */
Blob
compressWithDict(const std::uint8_t *raw, std::size_t n, ByteSpan dict)
{
    Blob out;
    out.reserve(n / 2 + 16);
    putLeb(out, n);
    const std::size_t dictUse = std::min(dict.size, kWindow);
    if (!dictUse) {
        compressBody(raw, n, 0, out);
        return out;
    }
    Blob cat(dictUse + n);
    std::memcpy(cat.data(), dict.data + (dict.size - dictUse), dictUse);
    if (n)
        std::memcpy(cat.data() + dictUse, raw, n);
    compressBody(cat.data(), cat.size(), dictUse, out);
    return out;
}

} // namespace

Blob
zipCompress(const Blob &raw)
{
    return zipCompress(raw, ByteSpan());
}

Blob
zipCompress(const Blob &raw, ByteSpan dict)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("codec.compress");
        if (o.fail)
            throw std::runtime_error(
                "zip: injected encode fault (codec.compress)");
    }
    return compressWithDict(raw.data(), raw.size(), dict);
}

Blob
zipDecompress(const Blob &compressed)
{
    Blob out;
    zipDecompressInto(compressed.data(), compressed.size(), out);
    return out;
}

void
zipDecompressInto(const Blob &compressed, Blob &out)
{
    zipDecompressInto(compressed.data(), compressed.size(), out);
}

namespace
{

/**
 * Overlap-safe match copy: writes exactly @p len bytes at @p dst from
 * @p off bytes behind it. Non-overlapping matches are one memcpy.
 * off == 1 (the dominant RLE encoding) is a memset. Other overlapping
 * offsets use a doubling copy: every chunk is bounded by the current
 * cursor distance, so each memcpy is non-overlapping and the distance
 * doubles per round — an off-2..4 RLE run costs O(log(len/off))
 * word-wide copies instead of the old one-byte-at-a-time loop.
 */
inline void
copyMatch(std::uint8_t *dst, std::size_t off, std::size_t len)
{
    const std::uint8_t *src = dst - off;
    if (off >= len) {
        std::memcpy(dst, src, len);
        return;
    }
    if (off == 1) {
        std::memset(dst, *src, len);
        return;
    }
    while (len) {
        const std::size_t chunk =
            std::min(len, static_cast<std::size_t>(dst - src));
        std::memcpy(dst, src, chunk);
        dst += chunk;
        len -= chunk;
    }
}

/**
 * Worst-case expansion of one input byte, rounded up: a full group of
 * 8 match tokens turns 25 input bytes (flag + 8x3) into at most
 * 8 * kMaxMatch output bytes, ~82.9 output per input. A header
 * promising more than the remaining input could ever produce is
 * malformed; rejecting it before the output allocation keeps crafted
 * headers from forcing a giant buffer.
 */
constexpr std::uint64_t kMaxExpansionPerByte = 83;

/**
 * Copy @p len match bytes at @p op for an offset reaching @p fromDict
 * bytes into the preset dictionary's tail: the dictionary part is a
 * straight copy (dictionary and output never overlap), any remainder
 * continues from the start of the output region. Out-of-line — the
 * hot loops only pay a compare for it on dictionary-free streams.
 */
inline std::uint8_t *
copyMatchFromDict(std::uint8_t *op, std::uint8_t *obase, ByteSpan dict,
                  std::size_t fromDict, std::size_t len)
{
    if (fromDict > dict.size)
        throw std::runtime_error("zip: bad match offset");
    const std::size_t n1 = std::min(len, fromDict);
    std::memcpy(op, dict.data + (dict.size - fromDict), n1);
    op += n1;
    if (len > n1) {
        copyMatch(op, static_cast<std::size_t>(op - obase), len - n1);
        op += len - n1;
    }
    return op;
}

/**
 * Decode the token stream at @p compressed[pos, size) into the
 * @p rawSize-byte region at @p obase, with @p dict priming the match
 * window. The batched hot path: whole flag groups with hoisted bounds
 * checks, then a strict per-token tail.
 */
void
decodeBody(const std::uint8_t *compressed, std::size_t size,
           std::size_t pos, std::uint8_t *obase, std::size_t rawSize,
           ByteSpan dict)
{
    const std::uint8_t *ip = compressed + pos;
    const std::uint8_t *const iend = compressed + size;
    std::uint8_t *op = obase;
    std::uint8_t *const oend = obase + rawSize;

    // Fast path: while a worst-case token group fits the remaining
    // input (flag + 8 match tokens + 8-byte literal-copy slack) and
    // output (8 maximum matches), whole groups decode with the bounds
    // checks hoisted to this one loop condition. The margins license
    // fixed 8-byte literal copies that scribble past the run — every
    // scribbled output byte is overwritten by a later token before the
    // margin shrinks below one group, and the input slack keeps the
    // 8-byte read inside the buffer even when a short literal run
    // trails seven match tokens.
    while (iend - ip >= 1 + 8 * 3 + 8 &&
           oend - op >= static_cast<std::ptrdiff_t>(8 * kMaxMatch)) {
        const unsigned flags = *ip++;
        if (flags == 0) {
            // All 8 items literal: one word-wide copy.
            std::memcpy(op, ip, 8);
            op += 8;
            ip += 8;
            continue;
        }
        unsigned b = 0;
        while (b < 8) {
            if (!((flags >> b) & 1u)) {
                // Batch the run of consecutive literal bits into one
                // copy (8 bytes stored, run-length consumed).
#if defined(__GNUC__) || defined(__clang__)
                const unsigned run = static_cast<unsigned>(
                    __builtin_ctz((flags >> b) | (1u << (8 - b))));
#else
                unsigned run = 0;
                while (b + run < 8 && !((flags >> (b + run)) & 1u))
                    ++run;
#endif
                std::memcpy(op, ip, 8);
                op += run;
                ip += run;
                b += run;
                continue;
            }
            const std::size_t off =
                static_cast<std::size_t>(ip[0]) |
                (static_cast<std::size_t>(ip[1]) << 8);
            const std::size_t len =
                static_cast<std::size_t>(ip[2]) + kMinMatch;
            ip += 3;
            if (off == 0)
                throw std::runtime_error("zip: bad match offset");
            if (off > static_cast<std::size_t>(op - obase)) {
                op = copyMatchFromDict(
                    op, obase, dict,
                    off - static_cast<std::size_t>(op - obase), len);
            } else {
                copyMatch(op, off, len);
                op += len;
            }
            ++b;
        }
    }

    // Strict tail: per-token checks, token-for-token the reference
    // semantics. The fast path only consumes whole flag groups, so
    // the tail always resumes at a flag-byte boundary.
    std::size_t tpos = static_cast<std::size_t>(ip - compressed);
    std::uint8_t flags = 0;
    unsigned flagBit = 8;
    while (op < oend) {
        if (flagBit == 8) {
            if (tpos >= size)
                throw std::runtime_error("zip: truncated stream");
            flags = compressed[tpos++];
            flagBit = 0;
        }
        const bool isMatch = (flags >> flagBit) & 1;
        ++flagBit;
        if (isMatch) {
            if (tpos + 3 > size)
                throw std::runtime_error("zip: truncated match");
            const std::size_t off =
                static_cast<std::size_t>(compressed[tpos]) |
                (static_cast<std::size_t>(compressed[tpos + 1]) << 8);
            const std::size_t len =
                static_cast<std::size_t>(compressed[tpos + 2]) +
                kMinMatch;
            tpos += 3;
            if (off == 0)
                throw std::runtime_error("zip: bad match offset");
            if (len > static_cast<std::size_t>(oend - op))
                throw std::runtime_error("zip: size mismatch");
            if (off > static_cast<std::size_t>(op - obase)) {
                op = copyMatchFromDict(
                    op, obase, dict,
                    off - static_cast<std::size_t>(op - obase), len);
            } else {
                copyMatch(op, off, len);
                op += len;
            }
        } else {
            if (tpos >= size)
                throw std::runtime_error("zip: truncated literal");
            *op++ = compressed[tpos++];
        }
    }
}

} // namespace

void
zipDecompressInto(const std::uint8_t *compressed, std::size_t size,
                  Blob &out)
{
    zipDecompressInto(compressed, size, out, ByteSpan());
}

void
zipDecompressInto(const std::uint8_t *compressed, std::size_t size,
                  Blob &out, ByteSpan dict)
{
    // Fault-injection site at the record boundary (never inside the
    // token loop): an armed `codec.decompress` makes this record
    // decode fail exactly like a corrupt stream would, so the layers
    // above prove they contain a bad record instead of aborting.
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("codec.decompress");
        if (o.fail)
            throw std::runtime_error(
                "zip: injected decode fault (codec.decompress)");
    }
    std::size_t pos = 0;
    const std::uint64_t rawSize = getLeb(compressed, size, pos);
    if (rawSize > (size - pos) * kMaxExpansionPerByte + 8 * kMaxMatch)
        throw std::runtime_error("zip: truncated stream");
    // One up-front size: the body writes through raw cursors, no
    // per-literal push_back. On a recycled buffer only the growth
    // delta (if any) is value-initialized.
    out.resize(rawSize);
    decodeBody(compressed, size, pos, out.data(), rawSize, dict);
}

void
zipDecompressReferenceInto(const std::uint8_t *compressed,
                           std::size_t size, Blob &out)
{
    zipDecompressReferenceInto(compressed, size, out, ByteSpan());
}

void
zipDecompressReferenceInto(const std::uint8_t *compressed,
                           std::size_t size, Blob &out, ByteSpan dict)
{
    std::size_t pos = 0;
    const std::uint64_t rawSize = getLeb(compressed, size, pos);
    out.clear();
    out.reserve(rawSize);

    std::uint8_t flags = 0;
    unsigned flagBit = 8;
    while (out.size() < rawSize) {
        if (flagBit == 8) {
            if (pos >= size)
                throw std::runtime_error("zip: truncated stream");
            flags = compressed[pos++];
            flagBit = 0;
        }
        const bool isMatch = (flags >> flagBit) & 1;
        ++flagBit;
        if (isMatch) {
            if (pos + 3 > size)
                throw std::runtime_error("zip: truncated match");
            const std::size_t off =
                static_cast<std::size_t>(compressed[pos]) |
                (static_cast<std::size_t>(compressed[pos + 1]) << 8);
            const std::size_t len =
                static_cast<std::size_t>(compressed[pos + 2]) + kMinMatch;
            pos += 3;
            const std::size_t dst = out.size();
            if (off == 0 || off > dst + dict.size)
                throw std::runtime_error("zip: bad match offset");
            out.resize(dst + len);
            if (off > dst) {
                // Reaches into the preset dictionary's tail: resolve
                // each byte against the virtual [dict | out] stream.
                for (std::size_t k = 0; k < len; ++k) {
                    const std::size_t vdst = dst + k;
                    out[vdst] = vdst >= off
                                    ? out[vdst - off]
                                    : dict.data[dict.size - (off - vdst)];
                }
            } else if (off >= len) {
                std::memcpy(&out[dst], &out[dst - off], len);
            } else {
                // Overlapping match (RLE-style): copy forward so each
                // byte reads one already written.
                for (std::size_t k = 0; k < len; ++k)
                    out[dst + k] = out[dst - off + k];
            }
        } else {
            if (pos >= size)
                throw std::runtime_error("zip: truncated literal");
            out.push_back(compressed[pos++]);
        }
    }
    if (out.size() != rawSize)
        throw std::runtime_error("zip: size mismatch");
}

namespace
{

// Delta streams chunk the payload so every chunk plus its preset
// window fits the 16-bit offset reach: a 32KB chunk primed with up to
// 48KB of the predecessor keeps the whole window addressable from the
// first chunk byte. The pad absorbs section drift between successive
// points (variable-length sections shift later ones by a few KB).
constexpr std::size_t kDeltaChunk = 32768;
constexpr std::size_t kDeltaPad = 8192;

/**
 * The predecessor region priming the chunk at @p chunkStart:
 * proportionally aligned (global size drift between points shifts
 * sections roughly linearly) and padded both ways. Integer math only
 * — encoder and decoder must agree bit-for-bit.
 */
ByteSpan
deltaDict(ByteSpan prev, std::size_t chunkStart, std::size_t rawSize)
{
    if (prev.empty())
        return ByteSpan();
    const std::size_t center =
        rawSize ? static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(chunkStart) *
                       prev.size) /
                      rawSize)
                : 0;
    const std::size_t lo = center > kDeltaPad ? center - kDeltaPad : 0;
    const std::size_t hi =
        std::min(prev.size, center + kDeltaChunk + kDeltaPad);
    return ByteSpan(prev.data + lo, hi - lo);
}

std::size_t
deltaChunkCount(std::size_t rawSize)
{
    return (rawSize + kDeltaChunk - 1) / kDeltaChunk;
}

} // namespace

Blob
zipCompressDelta(const Blob &raw, ByteSpan prevRaw)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("codec.compress");
        if (o.fail)
            throw std::runtime_error(
                "zip: injected encode fault (codec.compress)");
    }
    const std::size_t n = raw.size();
    const std::size_t chunks = deltaChunkCount(n);
    std::vector<Blob> streams;
    streams.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t start = c * kDeltaChunk;
        const std::size_t len = std::min(kDeltaChunk, n - start);
        streams.push_back(compressWithDict(raw.data() + start, len,
                                           deltaDict(prevRaw, start, n)));
    }
    Blob out;
    out.reserve(n / 2 + 16);
    putLeb(out, n);
    putLeb(out, chunks);
    for (const Blob &s : streams)
        putLeb(out, s.size());
    for (const Blob &s : streams)
        out.insert(out.end(), s.begin(), s.end());
    return out;
}

namespace
{

/**
 * Shared header walk for both delta decoders: validates the raw size
 * against the expansion bound, the chunk count against the raw size,
 * and every chunk's compressed extent against the remaining input.
 * Returns the chunk sizes and leaves @p pos at the first stream byte.
 */
std::uint64_t
parseDeltaHeader(const std::uint8_t *compressed, std::size_t size,
                 std::size_t &pos, std::vector<std::size_t> &chunkSizes)
{
    const std::uint64_t rawSize = getLeb(compressed, size, pos);
    const std::uint64_t chunks = getLeb(compressed, size, pos);
    // Every chunk needs at least one header byte, so the count is
    // bounded by the input size — check that before trusting it in
    // the expansion bound (per-chunk slack: each chunk stream carries
    // its own header and strict tail).
    if (chunks > size)
        throw std::runtime_error("zip: truncated stream");
    if (chunks != deltaChunkCount(rawSize))
        throw std::runtime_error("zip: bad delta chunk count");
    if (rawSize > size * kMaxExpansionPerByte +
                      (chunks + 1) * 8 * kMaxMatch)
        throw std::runtime_error("zip: truncated stream");
    chunkSizes.clear();
    chunkSizes.reserve(static_cast<std::size_t>(chunks));
    std::uint64_t total = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t s = getLeb(compressed, size, pos);
        total += s;
        chunkSizes.push_back(static_cast<std::size_t>(s));
    }
    if (total > size - pos)
        throw std::runtime_error("zip: truncated stream");
    return rawSize;
}

} // namespace

void
zipDecompressDeltaInto(const std::uint8_t *compressed, std::size_t size,
                       ByteSpan prevRaw, Blob &out)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("codec.decompress");
        if (o.fail)
            throw std::runtime_error(
                "zip: injected decode fault (codec.decompress)");
    }
    std::size_t pos = 0;
    std::vector<std::size_t> chunkSizes;
    const std::uint64_t rawSize =
        parseDeltaHeader(compressed, size, pos, chunkSizes);
    out.resize(rawSize);
    for (std::size_t c = 0; c < chunkSizes.size(); ++c) {
        const std::size_t start = c * kDeltaChunk;
        const std::size_t expect =
            std::min(kDeltaChunk, static_cast<std::size_t>(rawSize) -
                                      start);
        std::size_t cpos = pos;
        const std::uint64_t crs =
            getLeb(compressed, pos + chunkSizes[c], cpos);
        if (crs != expect)
            throw std::runtime_error("zip: delta chunk size mismatch");
        decodeBody(compressed, pos + chunkSizes[c], cpos,
                   out.data() + start, expect,
                   deltaDict(prevRaw, start, rawSize));
        pos += chunkSizes[c];
    }
}

void
zipDecompressDeltaReferenceInto(const std::uint8_t *compressed,
                                std::size_t size, ByteSpan prevRaw,
                                Blob &out)
{
    std::size_t pos = 0;
    std::vector<std::size_t> chunkSizes;
    const std::uint64_t rawSize =
        parseDeltaHeader(compressed, size, pos, chunkSizes);
    out.clear();
    out.reserve(rawSize);
    Blob chunk;
    for (std::size_t c = 0; c < chunkSizes.size(); ++c) {
        const std::size_t start = c * kDeltaChunk;
        const std::size_t expect =
            std::min(kDeltaChunk, static_cast<std::size_t>(rawSize) -
                                      start);
        zipDecompressReferenceInto(compressed + pos, chunkSizes[c],
                                   chunk,
                                   deltaDict(prevRaw, start, rawSize));
        if (chunk.size() != expect)
            throw std::runtime_error("zip: delta chunk size mismatch");
        out.insert(out.end(), chunk.begin(), chunk.end());
        pos += chunkSizes[c];
    }
    if (out.size() != rawSize)
        throw std::runtime_error("zip: size mismatch");
}

Blob
zipTrainDictionary(const std::vector<ByteSpan> &samples,
                   std::size_t dictBytes)
{
    Blob dict;
    if (!dictBytes || samples.empty())
        return dict;
    dict.reserve(dictBytes);
    // Evenly-strided 2KB slices from every sample: structural
    // boilerplate (section headers, geometry prefixes, hot varint
    // patterns) recurs at every scale, so stride sampling captures it
    // without any frequency modelling — and deterministically.
    constexpr std::size_t kSlice = 2048;
    const std::size_t perSample =
        std::max<std::size_t>(kSlice, dictBytes / samples.size());
    for (const ByteSpan &s : samples) {
        if (dict.size() >= dictBytes)
            break;
        const std::size_t want =
            std::min(std::min(perSample, dictBytes - dict.size()),
                     s.size);
        if (!want)
            continue;
        const std::size_t slices = (want + kSlice - 1) / kSlice;
        for (std::size_t k = 0; k < slices; ++k) {
            const std::size_t take =
                std::min(kSlice, want - k * kSlice);
            // Spread slice starts across the sample; the last slice
            // ends flush with the sample's tail.
            const std::size_t span = s.size - take;
            const std::size_t at =
                slices > 1 ? (span * k) / (slices - 1) : span / 2;
            dict.insert(dict.end(), s.data + at, s.data + at + take);
        }
    }
    return dict;
}

} // namespace lp
