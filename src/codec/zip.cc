#include "codec/zip.hh"

#include <cstring>
#include <stdexcept>

namespace lp
{

namespace
{

// Token stream format:
//   [LEB128 raw size] then groups of up to 8 items preceded by a flag
//   byte; bit set = match token (2-byte little-endian offset, 1-byte
//   length-4), bit clear = literal byte. Window 64KB, match length
//   4..259.

constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 259;

void
putLeb(Blob &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getLeb(const Blob &in, std::size_t &pos)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (pos >= in.size())
            throw std::runtime_error("zip: truncated header");
        const std::uint8_t b = in[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw std::runtime_error("zip: oversized varint");
    }
}

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> 16;
}

} // namespace

Blob
zipCompress(const Blob &raw)
{
    Blob out;
    out.reserve(raw.size() / 2 + 16);
    putLeb(out, raw.size());

    // Single-entry hash table of 4-byte prefixes -> last position.
    std::vector<std::uint32_t> table(1u << 16, 0xffffffffu);

    std::size_t i = 0;
    std::size_t flagPos = 0;
    unsigned flagBit = 8; // force new flag byte on first item
    std::uint8_t flags = 0;

    auto beginItem = [&](bool isMatch) {
        if (flagBit == 8) {
            if (flagPos)
                out[flagPos] = flags;
            flagPos = out.size();
            out.push_back(0);
            flags = 0;
            flagBit = 0;
        }
        if (isMatch)
            flags |= static_cast<std::uint8_t>(1u << flagBit);
        ++flagBit;
    };

    while (i < raw.size()) {
        std::size_t matchLen = 0;
        std::size_t matchPos = 0;
        if (i + kMinMatch <= raw.size()) {
            const std::uint32_t h = hash4(&raw[i]);
            const std::uint32_t cand = table[h];
            table[h] = static_cast<std::uint32_t>(i);
            if (cand != 0xffffffffu && i - cand <= kWindow) {
                const std::size_t limit =
                    std::min(raw.size() - i, kMaxMatch);
                std::size_t len = 0;
                while (len < limit && raw[cand + len] == raw[i + len])
                    ++len;
                if (len >= kMinMatch) {
                    matchLen = len;
                    matchPos = cand;
                }
            }
        }
        if (matchLen) {
            beginItem(true);
            const std::size_t off = i - matchPos;
            out.push_back(static_cast<std::uint8_t>(off));
            out.push_back(static_cast<std::uint8_t>(off >> 8));
            out.push_back(static_cast<std::uint8_t>(matchLen - kMinMatch));
            i += matchLen;
        } else {
            beginItem(false);
            out.push_back(raw[i]);
            ++i;
        }
    }
    if (flagPos)
        out[flagPos] = flags;
    return out;
}

Blob
zipDecompress(const Blob &compressed)
{
    Blob out;
    zipDecompressInto(compressed, out);
    return out;
}

void
zipDecompressInto(const Blob &compressed, Blob &out)
{
    std::size_t pos = 0;
    const std::uint64_t rawSize = getLeb(compressed, pos);
    out.clear();
    out.reserve(rawSize);

    std::uint8_t flags = 0;
    unsigned flagBit = 8;
    while (out.size() < rawSize) {
        if (flagBit == 8) {
            if (pos >= compressed.size())
                throw std::runtime_error("zip: truncated stream");
            flags = compressed[pos++];
            flagBit = 0;
        }
        const bool isMatch = (flags >> flagBit) & 1;
        ++flagBit;
        if (isMatch) {
            if (pos + 3 > compressed.size())
                throw std::runtime_error("zip: truncated match");
            const std::size_t off =
                static_cast<std::size_t>(compressed[pos]) |
                (static_cast<std::size_t>(compressed[pos + 1]) << 8);
            const std::size_t len =
                static_cast<std::size_t>(compressed[pos + 2]) + kMinMatch;
            pos += 3;
            if (off == 0 || off > out.size())
                throw std::runtime_error("zip: bad match offset");
            const std::size_t dst = out.size();
            const std::size_t src = dst - off;
            out.resize(dst + len);
            if (off >= len) {
                std::memcpy(&out[dst], &out[src], len);
            } else {
                // Overlapping match (RLE-style): copy forward so each
                // byte reads one already written.
                for (std::size_t k = 0; k < len; ++k)
                    out[dst + k] = out[src + k];
            }
        } else {
            if (pos >= compressed.size())
                throw std::runtime_error("zip: truncated literal");
            out.push_back(compressed[pos++]);
        }
    }
    if (out.size() != rawSize)
        throw std::runtime_error("zip: size mismatch");
}

} // namespace lp
