#include "codec/der.hh"

#include <cstring>
#include <stdexcept>

namespace lp
{

namespace
{

constexpr std::uint8_t kTagUint = 0x02;
constexpr std::uint8_t kTagBytes = 0x04;
constexpr std::uint8_t kTagString = 0x0C;
constexpr std::uint8_t kTagSequence = 0x30;

std::size_t
lenOfLen(std::size_t len)
{
    if (len < 0x80)
        return 1;
    std::size_t n = 0;
    while (len) {
        ++n;
        len >>= 8;
    }
    return 1 + n;
}

void
encodeLen(Blob &out, std::size_t len)
{
    if (len < 0x80) {
        out.push_back(static_cast<std::uint8_t>(len));
        return;
    }
    std::uint8_t tmp[8];
    std::size_t n = 0;
    while (len) {
        tmp[n++] = static_cast<std::uint8_t>(len);
        len >>= 8;
    }
    out.push_back(static_cast<std::uint8_t>(0x80 | n));
    while (n)
        out.push_back(tmp[--n]);
}

} // namespace

void
DerWriter::putTagLen(std::uint8_t tag, std::size_t len)
{
    buf_.push_back(tag);
    encodeLen(buf_, len);
}

void
DerWriter::beginSequence()
{
    buf_.push_back(kTagSequence);
    // Placeholder length byte; patched (and widened if needed) by
    // endSequence().
    buf_.push_back(0);
    open_.push_back(buf_.size());
}

void
DerWriter::endSequence()
{
    if (open_.empty())
        throw std::logic_error("der: endSequence without beginSequence");
    const std::size_t start = open_.back();
    open_.pop_back();
    const std::size_t len = buf_.size() - start;
    const std::size_t need = lenOfLen(len);
    if (need > 1) {
        // Widen the placeholder length field in place.
        buf_.insert(buf_.begin() +
                        static_cast<std::ptrdiff_t>(start - 1),
                    need - 1, 0);
    }
    Blob enc;
    encodeLen(enc, len);
    std::memcpy(&buf_[start - 1], enc.data(), enc.size());
}

void
DerWriter::putUint(std::uint64_t v)
{
    std::uint8_t tmp[10];
    std::size_t n = 0;
    while (v >= 0x80) {
        tmp[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    tmp[n++] = static_cast<std::uint8_t>(v);
    putTagLen(kTagUint, n);
    buf_.insert(buf_.end(), tmp, tmp + n);
}

void
DerWriter::putDouble(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putUint(bits);
}

void
DerWriter::putBytes(const Blob &b)
{
    putBytes(b.data(), b.size());
}

void
DerWriter::putBytes(const std::uint8_t *data, std::size_t size)
{
    putTagLen(kTagBytes, size);
    buf_.insert(buf_.end(), data, data + size);
}

void
DerWriter::putString(const std::string &s)
{
    putTagLen(kTagString, s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

Blob
DerWriter::finish()
{
    if (!open_.empty())
        throw std::logic_error("der: unclosed sequence");
    Blob out;
    out.swap(buf_);
    return out;
}

DerReader::DerReader(const Blob &data)
    : data_(data.data()), size_(data.size())
{
}

DerReader::DerReader(ByteSpan data) : data_(data.data), size_(data.size)
{
}

DerReader::DerReader(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
}

const std::uint8_t *
DerReader::expect(std::uint8_t tag, std::size_t &len)
{
    if (pos_ >= size_)
        throw std::runtime_error("der: read past end");
    const std::uint8_t got = data_[pos_++];
    if (got != tag)
        throw std::runtime_error("der: unexpected tag");
    if (pos_ >= size_)
        throw std::runtime_error("der: truncated length");
    std::uint8_t first = data_[pos_++];
    if (first < 0x80) {
        len = first;
    } else {
        const unsigned n = first & 0x7f;
        if (n == 0 || n > 8 || pos_ + n > size_)
            throw std::runtime_error("der: bad length");
        len = 0;
        for (unsigned i = 0; i < n; ++i)
            len = (len << 8) | data_[pos_++];
    }
    if (len > size_ - pos_) // overflow-safe bounds check
        throw std::runtime_error("der: truncated content");
    const std::uint8_t *content = data_ + pos_;
    pos_ += len;
    return content;
}

std::uint64_t
DerReader::getUint()
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagUint, len);
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < len; ++i) {
        // 10 groups of 7 bits fill 64; an 11th would shift past the
        // word (undefined behaviour on crafted input, caught by the
        // codec fuzz suite).
        if (shift > 63)
            throw std::runtime_error("der: oversized uint");
        v |= static_cast<std::uint64_t>(p[i] & 0x7f) << shift;
        shift += 7;
        if (!(p[i] & 0x80)) {
            if (i + 1 != len)
                throw std::runtime_error("der: malformed uint");
            return v;
        }
    }
    throw std::runtime_error("der: unterminated uint");
}

double
DerReader::getDouble()
{
    const std::uint64_t bits = getUint();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

Blob
DerReader::getBytes()
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagBytes, len);
    return Blob(p, p + len);
}

void
DerReader::getBytes(Blob &out)
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagBytes, len);
    out.assign(p, p + len);
}

ByteSpan
DerReader::getBytesSpan()
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagBytes, len);
    return ByteSpan(p, len);
}

std::string
DerReader::getString()
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagString, len);
    return std::string(reinterpret_cast<const char *>(p), len);
}

DerReader
DerReader::getSequence()
{
    std::size_t len = 0;
    const std::uint8_t *p = expect(kTagSequence, len);
    return DerReader(p, len);
}

} // namespace lp
