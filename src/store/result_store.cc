#include "store/result_store.hh"

#include <filesystem>

#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "codec/der.hh"

namespace lp
{

namespace
{

constexpr char kMagic[8] = {'L', 'P', 'R', 'E', 'S', '1', '\n', '\0'};
constexpr std::uint64_t kVersion = 1;
constexpr const char *kRole = "lp-result-store";

constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kCellWords = 17; //!< 16 payload + record fnv
constexpr std::size_t kPairWords = 14; //!< 13 payload + record fnv
constexpr std::size_t kCellBytes = kCellWords * 8;
constexpr std::size_t kPairBytes = kPairWords * 8;

constexpr std::uint64_t kFlagStop = 1u << 0;
constexpr std::uint64_t kFlagWrongPath = 1u << 1;
constexpr std::uint64_t kFlagConverged = 1u << 2;

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

[[noreturn]] void
badStore(const std::string &path, const char *why)
{
    throw IoError(
        ioErrorMsg("parse", "result store", path, 0) + ": " + why, 0);
}

/** FNV-1a over @p n little-endian words. */
std::uint64_t
wordsFnv(const std::uint64_t *words, std::size_t n)
{
    Blob buf(n * 8);
    for (std::size_t i = 0; i < n; ++i)
        putU64(buf.data() + i * 8, words[i]);
    return fnv1a(buf.data(), buf.size());
}

void
encodeCell(std::uint8_t *p, const CellRecord &r)
{
    std::uint64_t flags = 0;
    if (r.key.stopAtConfidence)
        flags |= kFlagStop;
    if (r.key.approxWrongPath)
        flags |= kFlagWrongPath;
    if (r.converged)
        flags |= kFlagConverged;
    const std::uint64_t w[kCellWords - 1] = {
        r.key.libHash,      r.key.configDigest,
        r.key.shuffleSeed,  r.key.blockSize,
        flags,              r.key.levelBits,
        r.key.relErrBits,   r.libPoints,
        r.processed,        r.unavailableLoads,
        r.cpiBits,          r.stat.n,
        doubleBits(r.stat.mean), doubleBits(r.stat.m2),
        doubleBits(r.stat.min),  doubleBits(r.stat.max)};
    for (std::size_t i = 0; i < kCellWords - 1; ++i)
        putU64(p + i * 8, w[i]);
    putU64(p + (kCellWords - 1) * 8, fnv1a(p, (kCellWords - 1) * 8));
}

CellRecord
decodeCell(const std::uint8_t *p, const std::string &path)
{
    if (getU64(p + (kCellWords - 1) * 8) !=
        fnv1a(p, (kCellWords - 1) * 8))
        badStore(path, "cell record checksum mismatch");
    CellRecord r;
    r.key.libHash = getU64(p);
    r.key.configDigest = getU64(p + 8);
    r.key.shuffleSeed = getU64(p + 16);
    r.key.blockSize = getU64(p + 24);
    const std::uint64_t flags = getU64(p + 32);
    if (flags & ~(kFlagStop | kFlagWrongPath | kFlagConverged))
        badStore(path, "cell record has unknown flag bits");
    r.key.stopAtConfidence = (flags & kFlagStop) != 0;
    r.key.approxWrongPath = (flags & kFlagWrongPath) != 0;
    r.converged = (flags & kFlagConverged) != 0;
    r.key.levelBits = getU64(p + 40);
    r.key.relErrBits = getU64(p + 48);
    r.libPoints = getU64(p + 56);
    r.processed = getU64(p + 64);
    r.unavailableLoads = getU64(p + 72);
    r.cpiBits = getU64(p + 80);
    r.stat.n = getU64(p + 88);
    r.stat.mean = bitsFromDouble(getU64(p + 96));
    r.stat.m2 = bitsFromDouble(getU64(p + 104));
    r.stat.min = bitsFromDouble(getU64(p + 112));
    r.stat.max = bitsFromDouble(getU64(p + 120));
    return r;
}

void
encodePair(std::uint8_t *p, const PairRecord &r)
{
    std::uint64_t flags = 0;
    if (r.stopAtConfidence)
        flags |= kFlagStop;
    if (r.approxWrongPath)
        flags |= kFlagWrongPath;
    const std::uint64_t w[kPairWords - 1] = {
        r.libHash,          r.baseDigest,
        r.testDigest,       r.shuffleSeed,
        r.blockSize,        flags,
        r.levelBits,        r.relErrBits,
        r.delta.n,          doubleBits(r.delta.mean),
        doubleBits(r.delta.m2), doubleBits(r.delta.min),
        doubleBits(r.delta.max)};
    for (std::size_t i = 0; i < kPairWords - 1; ++i)
        putU64(p + i * 8, w[i]);
    putU64(p + (kPairWords - 1) * 8, fnv1a(p, (kPairWords - 1) * 8));
}

PairRecord
decodePair(const std::uint8_t *p, const std::string &path)
{
    if (getU64(p + (kPairWords - 1) * 8) !=
        fnv1a(p, (kPairWords - 1) * 8))
        badStore(path, "pair record checksum mismatch");
    PairRecord r;
    r.libHash = getU64(p);
    r.baseDigest = getU64(p + 8);
    r.testDigest = getU64(p + 16);
    r.shuffleSeed = getU64(p + 24);
    r.blockSize = getU64(p + 32);
    const std::uint64_t flags = getU64(p + 40);
    if (flags & ~(kFlagStop | kFlagWrongPath))
        badStore(path, "pair record has unknown flag bits");
    r.stopAtConfidence = (flags & kFlagStop) != 0;
    r.approxWrongPath = (flags & kFlagWrongPath) != 0;
    r.levelBits = getU64(p + 48);
    r.relErrBits = getU64(p + 56);
    r.delta.n = getU64(p + 64);
    r.delta.mean = bitsFromDouble(getU64(p + 72));
    r.delta.m2 = bitsFromDouble(getU64(p + 80));
    r.delta.min = bitsFromDouble(getU64(p + 88));
    r.delta.max = bitsFromDouble(getU64(p + 96));
    return r;
}

bool
pairIdentityEquals(const PairRecord &a, const PairRecord &b)
{
    return a.libHash == b.libHash && a.baseDigest == b.baseDigest &&
           a.testDigest == b.testDigest &&
           a.shuffleSeed == b.shuffleSeed &&
           a.blockSize == b.blockSize &&
           a.stopAtConfidence == b.stopAtConfidence &&
           a.approxWrongPath == b.approxWrongPath &&
           a.levelBits == b.levelBits && a.relErrBits == b.relErrBits;
}

} // namespace

ResultKey
ResultKey::make(std::uint64_t libHash, std::uint64_t configDigest,
                std::uint64_t shuffleSeed, std::uint64_t blockSize,
                bool stopAtConfidence, bool approxWrongPath,
                const ConfidenceSpec &spec)
{
    ResultKey k;
    k.libHash = libHash;
    k.configDigest = configDigest;
    k.shuffleSeed = shuffleSeed;
    k.blockSize = blockSize;
    k.stopAtConfidence = stopAtConfidence;
    k.approxWrongPath = approxWrongPath;
    // A full-library run never consults the spec, so its result is
    // reusable under any spec: canonicalize the key to spec-free.
    if (stopAtConfidence) {
        k.levelBits = doubleBits(spec.level);
        k.relErrBits = doubleBits(spec.relativeError);
    }
    return k;
}

std::uint64_t
ResultKey::hash() const
{
    const std::uint64_t w[8] = {libHash,
                                configDigest,
                                shuffleSeed,
                                blockSize,
                                (stopAtConfidence ? kFlagStop : 0u) |
                                    (approxWrongPath ? kFlagWrongPath
                                                     : 0u),
                                levelBits,
                                relErrBits,
                                0};
    return wordsFnv(w, 8);
}

std::uint64_t
PairRecord::hash() const
{
    const std::uint64_t w[9] = {libHash,
                                baseDigest,
                                testDigest,
                                shuffleSeed,
                                blockSize,
                                (stopAtConfidence ? kFlagStop : 0u) |
                                    (approxWrongPath ? kFlagWrongPath
                                                     : 0u),
                                levelBits,
                                relErrBits,
                                1};
    return wordsFnv(w, 9);
}

void
ResultStore::load(const std::string &path, StorageBackend backend)
{
    const std::shared_ptr<const LibrarySource> src =
        openLibrarySource(path, backend);
    std::lock_guard<std::mutex> lock(mu_);
    parseLocked(src->data(), src->size(), path);
}

void
ResultStore::open(const std::string &path, StorageBackend backend)
{
    std::error_code ec;
    const bool exists = std::filesystem::exists(path, ec) && !ec;
    if (exists) {
        load(path, backend);
    } else {
        std::lock_guard<std::mutex> lock(mu_);
        cells_.clear();
        pairs_.clear();
        cellIdx_.clear();
        pairIdx_.clear();
        superseded_ = 0;
    }
    std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
}

void
ResultStore::parseLocked(const std::uint8_t *data, std::size_t size,
                         const std::string &path)
{
    std::size_t payloadSize = 0;
    if (size < kHeaderBytes + checksumFooterBytes ||
        !checksummedPayload(data, size, &payloadSize))
        badStore(path, "truncated or missing checksum footer");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        badStore(path, "bad magic");
    if (getU64(data + 8) != kVersion)
        badStore(path, "unsupported version");
    if (getU64(data + 40) != fnv1a(data, 40))
        badStore(path, "header checksum mismatch");
    const std::uint64_t metaSize = getU64(data + 16);
    const std::uint64_t nCells = getU64(data + 24);
    const std::uint64_t nPairs = getU64(data + 32);
    // Bound each section by the payload before multiplying, so a
    // corrupt count can never overflow the size arithmetic.
    if (metaSize > payloadSize || nCells > payloadSize ||
        nPairs > payloadSize)
        badStore(path, "section sizes exceed the file");
    const std::uint64_t want = kHeaderBytes + metaSize + nCells * 8 +
                               nCells * kCellBytes +
                               nPairs * kPairBytes;
    if (want != payloadSize)
        badStore(path, "section sizes disagree with the file size");

    const std::uint8_t *meta = data + kHeaderBytes;
    try {
        DerReader r(ByteSpan(meta, metaSize));
        DerReader seq = r.getSequence();
        if (seq.getString() != kRole)
            badStore(path, "meta role mismatch");
        if (seq.getUint() != kVersion || seq.getUint() != nCells ||
            seq.getUint() != nPairs)
            badStore(path, "meta disagrees with the header");
    } catch (const IoError &) {
        throw;
    } catch (const std::exception &) {
        badStore(path, "malformed DER meta");
    }

    const std::uint8_t *index = meta + metaSize;
    const std::uint8_t *cellBase = index + nCells * 8;
    const std::uint8_t *pairBase = cellBase + nCells * kCellBytes;

    std::vector<CellRecord> cells;
    std::vector<PairRecord> pairs;
    cells.reserve(nCells);
    pairs.reserve(nPairs);
    for (std::uint64_t i = 0; i < nCells; ++i) {
        CellRecord rec =
            decodeCell(cellBase + i * kCellBytes, path);
        if (getU64(index + i * 8) != rec.key.hash())
            badStore(path, "index entry disagrees with its record");
        cells.push_back(rec);
    }
    for (std::uint64_t i = 0; i < nPairs; ++i)
        pairs.push_back(decodePair(pairBase + i * kPairBytes, path));

    cells_ = std::move(cells);
    pairs_ = std::move(pairs);
    rebuildIndexLocked();
}

void
ResultStore::rebuildIndexLocked()
{
    cellIdx_.clear();
    pairIdx_.clear();
    superseded_ = 0;
    // Front-to-back insert with overwrite = last writer wins for
    // duplicate keys, matching the container's append semantics.
    // Distinct keys that collide on the 64-bit hash are rehashed into
    // the next probe slot, so equality is always on the full key.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        std::uint64_t h = cells_[i].key.hash();
        for (;;) {
            auto it = cellIdx_.find(h);
            if (it == cellIdx_.end()) {
                cellIdx_.emplace(h, i);
                break;
            }
            if (cells_[it->second].key == cells_[i].key) {
                it->second = i;
                ++superseded_;
                break;
            }
            h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                      sizeof(h));
        }
    }
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        std::uint64_t h = pairs_[i].hash();
        for (;;) {
            auto it = pairIdx_.find(h);
            if (it == pairIdx_.end()) {
                pairIdx_.emplace(h, i);
                break;
            }
            if (pairIdentityEquals(pairs_[it->second], pairs_[i])) {
                it->second = i;
                ++superseded_;
                break;
            }
            h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                      sizeof(h));
        }
    }
}

Blob
ResultStore::serializeLocked() const
{
    DerWriter mw;
    mw.beginSequence();
    mw.putString(kRole);
    mw.putUint(kVersion);
    mw.putUint(cells_.size());
    mw.putUint(pairs_.size());
    mw.endSequence();
    const Blob meta = mw.finish();

    Blob out(kHeaderBytes + meta.size() + cells_.size() * 8 +
             cells_.size() * kCellBytes + pairs_.size() * kPairBytes);
    std::uint8_t *p = out.data();
    std::memcpy(p, kMagic, sizeof(kMagic));
    putU64(p + 8, kVersion);
    putU64(p + 16, meta.size());
    putU64(p + 24, cells_.size());
    putU64(p + 32, pairs_.size());
    putU64(p + 40, fnv1a(p, 40));
    std::memcpy(p + kHeaderBytes, meta.data(), meta.size());
    std::uint8_t *index = p + kHeaderBytes + meta.size();
    std::uint8_t *cellBase = index + cells_.size() * 8;
    std::uint8_t *pairBase = cellBase + cells_.size() * kCellBytes;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        putU64(index + i * 8, cells_[i].key.hash());
        encodeCell(cellBase + i * kCellBytes, cells_[i]);
    }
    for (std::size_t i = 0; i < pairs_.size(); ++i)
        encodePair(pairBase + i * kPairBytes, pairs_[i]);
    appendChecksumFooter(out);
    return out;
}

void
ResultStore::save(const std::string &path) const
{
    // saveM_ serializes writers so snapshots land on disk in the
    // order they were taken: without it, two concurrent publishers
    // could rename an older snapshot over a newer one.
    std::lock_guard<std::mutex> saveLock(saveM_);
    Blob image;
    {
        std::lock_guard<std::mutex> lock(mu_);
        image = serializeLocked();
    }
    writeFileAtomic(path, image.data(), image.size(), "result store");
}

void
ResultStore::save() const
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = path_;
    }
    if (path.empty())
        throw IoError("result store save() without a prior open()", 0);
    save(path);
}

void
ResultStore::put(const CellRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t h = rec.key.hash();
    for (;;) {
        auto it = cellIdx_.find(h);
        if (it == cellIdx_.end()) {
            cellIdx_.emplace(h, cells_.size());
            cells_.push_back(rec);
            return;
        }
        if (cells_[it->second].key == rec.key) {
            cells_[it->second] = rec;
            return;
        }
        h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                  sizeof(h));
    }
}

void
ResultStore::putPair(const PairRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t h = rec.hash();
    for (;;) {
        auto it = pairIdx_.find(h);
        if (it == pairIdx_.end()) {
            pairIdx_.emplace(h, pairs_.size());
            pairs_.push_back(rec);
            return;
        }
        if (pairIdentityEquals(pairs_[it->second], rec)) {
            pairs_[it->second] = rec;
            return;
        }
        h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                  sizeof(h));
    }
}

bool
ResultStore::find(const ResultKey &key, CellRecord *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t h = key.hash();
    for (;;) {
        auto it = cellIdx_.find(h);
        if (it == cellIdx_.end())
            return false;
        if (cells_[it->second].key == key) {
            if (out)
                *out = cells_[it->second];
            return true;
        }
        h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                  sizeof(h));
    }
}

bool
ResultStore::findPair(const PairRecord &probe, PairRecord *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t h = probe.hash();
    for (;;) {
        auto it = pairIdx_.find(h);
        if (it == pairIdx_.end())
            return false;
        if (pairIdentityEquals(pairs_[it->second], probe)) {
            if (out)
                *out = pairs_[it->second];
            return true;
        }
        h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                  sizeof(h));
    }
}

std::vector<CellRecord>
ResultStore::cells() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cells_;
}

std::vector<PairRecord>
ResultStore::pairs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_;
}

std::size_t
ResultStore::cellCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cells_.size();
}

std::size_t
ResultStore::pairCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_.size();
}

std::size_t
ResultStore::supersededRecords() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return superseded_;
}

std::size_t
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<CellRecord> cells;
    std::vector<PairRecord> pairs;
    cells.reserve(cells_.size());
    pairs.reserve(pairs_.size());
    // Keep file order, dropping every record a later one shadows:
    // a slot survives iff the index still points at it.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        bool survives = false;
        std::uint64_t h = cells_[i].key.hash();
        for (;;) {
            auto it = cellIdx_.find(h);
            if (it == cellIdx_.end())
                break;
            if (cells_[it->second].key == cells_[i].key) {
                survives = it->second == i;
                break;
            }
            h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                      sizeof(h));
        }
        if (survives)
            cells.push_back(cells_[i]);
    }
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        bool survives = false;
        std::uint64_t h = pairs_[i].hash();
        for (;;) {
            auto it = pairIdx_.find(h);
            if (it == pairIdx_.end())
                break;
            if (pairIdentityEquals(pairs_[it->second], pairs_[i])) {
                survives = it->second == i;
                break;
            }
            h = fnv1a(reinterpret_cast<const std::uint8_t *>(&h),
                      sizeof(h));
        }
        if (survives)
            pairs.push_back(pairs_[i]);
    }
    const std::size_t removed = (cells_.size() - cells.size()) +
                                (pairs_.size() - pairs.size());
    cells_ = std::move(cells);
    pairs_ = std::move(pairs);
    rebuildIndexLocked();
    return removed;
}

std::string
ResultStore::path() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

} // namespace lp
