/**
 * @file
 * The fleet result store — a compact binary database of finished
 * campaign cells, so a re-submitted or widened design-space grid pays
 * O(lookup) instead of O(replay). Every converged (or
 * ran-to-completion) cell the campaign engine produces is
 * content-addressed by its full replay identity:
 *
 *   (library contentHash, config digest, shuffle seed, block size,
 *    wrong-path mode, stopping mode, confidence-spec bits)
 *
 * and the engine's determinism guarantee makes that key sufficient:
 * two runs with the same key fold the same observations in the same
 * order and stop at the same point, so the stored RunningStat::State
 * and CPI bits ARE the result a fresh replay would produce, bit for
 * bit. Matched-pair deltas are stored under the analogous
 * (libHash, baseDigest, testDigest, ...) key.
 *
 * On-disk container (`LPRES1`, one file, written atomically):
 *
 *   header   48 B: magic "LPRES1\n\0", version, meta size, cell
 *            count, pair count, FNV-1a of the preceding 40 bytes
 *   meta     DER sequence (role string + the counts again) — the
 *            extensible part of the format
 *   index    cellCount x 8 B: each cell record's key hash (FNV-1a of
 *            its 8 key words), in record order, so a reader can
 *            binary-probe candidates without touching record bodies
 *   cells    cellCount x 136 B fixed-width records, each ending in
 *            its own FNV-1a
 *   pairs    pairCount x 112 B fixed-width records, ditto
 *   footer   16 B checksum footer over everything above
 *            (appendChecksumFooter)
 *
 * Loading is corruption-strict in the LPLIB3 fuzz-suite sense: any
 * truncation or byte flip anywhere in the file — header, meta,
 * index, record bodies, per-record checksums, footer — throws
 * IoError; there is no partial or best-effort load. Duplicate keys
 * (an append-style producer, or a crashed compaction) are legal in
 * the container and resolve last-writer-wins at load; compact()
 * rewrites the file with the survivors only.
 *
 * The in-memory store is internally synchronized: concurrent service
 * workers may publish() while the daemon answers queries.
 */

#ifndef LP_STORE_RESULT_STORE_HH
#define LP_STORE_RESULT_STORE_HH

#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sample.hh"
#include "io/source.hh"
#include "stats/running_stat.hh"
#include "util/types.hh"

namespace lp
{

/** IEEE-754 bit pattern of @p v (the exact-identity currency). */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/** Inverse of doubleBits(). */
inline double
bitsFromDouble(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

/**
 * The full replay identity of one campaign cell. Two cells with equal
 * keys produce bit-identical results (the campaign engine's
 * determinism contract), which is what makes memoization sound.
 *
 * When stopAtConfidence is false the confidence spec cannot affect
 * the fold trajectory (the run always consumes the whole library), so
 * keys are canonicalized with the spec bits zeroed — a full-library
 * result is reusable under any spec.
 */
struct ResultKey
{
    std::uint64_t libHash = 0;      //!< LivePointLibrary::contentHash()
    std::uint64_t configDigest = 0; //!< CoreConfig digest
    std::uint64_t shuffleSeed = 0;
    std::uint64_t blockSize = 0;
    bool stopAtConfidence = false;
    bool approxWrongPath = false;
    std::uint64_t levelBits = 0;  //!< doubleBits(spec.level)
    std::uint64_t relErrBits = 0; //!< doubleBits(spec.relativeError)

    /** Canonical key for a cell replayed under @p spec. */
    static ResultKey make(std::uint64_t libHash,
                          std::uint64_t configDigest,
                          std::uint64_t shuffleSeed,
                          std::uint64_t blockSize,
                          bool stopAtConfidence, bool approxWrongPath,
                          const ConfidenceSpec &spec);

    /** FNV-1a over the 8 key words (the on-disk index entry). */
    std::uint64_t hash() const;

    bool operator==(const ResultKey &o) const
    {
        return libHash == o.libHash &&
               configDigest == o.configDigest &&
               shuffleSeed == o.shuffleSeed &&
               blockSize == o.blockSize &&
               stopAtConfidence == o.stopAtConfidence &&
               approxWrongPath == o.approxWrongPath &&
               levelBits == o.levelBits && relErrBits == o.relErrBits;
    }
};

/** One memoized cell: its key plus everything needed to restore it. */
struct CellRecord
{
    ResultKey key;
    std::uint64_t libPoints = 0; //!< library size when recorded
    std::uint64_t processed = 0; //!< points folded at the stop point
    std::uint64_t unavailableLoads = 0;
    bool converged = false; //!< retired by its confidence target
    std::uint64_t cpiBits = 0; //!< doubleBits of the cell's CPI
    RunningStat::State stat;   //!< the complete fold state
};

/** One memoized matched-pair delta between two configs. */
struct PairRecord
{
    std::uint64_t libHash = 0;
    std::uint64_t baseDigest = 0;
    std::uint64_t testDigest = 0;
    std::uint64_t shuffleSeed = 0;
    std::uint64_t blockSize = 0;
    bool stopAtConfidence = false;
    bool approxWrongPath = false;
    std::uint64_t levelBits = 0;
    std::uint64_t relErrBits = 0;
    RunningStat::State delta;

    /** FNV-1a over the 9 identity words. */
    std::uint64_t hash() const;
};

class ResultStore
{
  public:
    ResultStore() = default;
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Load @p path (through a LibrarySource backend, so a large store
     * can be mmap'ed) into this store, replacing its contents.
     * Corruption-strict: throws IoError on any truncation, bad
     * checksum, malformed header/meta, or size inconsistency.
     * Duplicate keys resolve last-writer-wins; supersededRecords()
     * reports how many were shadowed.
     */
    void load(const std::string &path,
              StorageBackend backend = StorageBackend::autoSelect);

    /**
     * load() when the file exists, empty store otherwise — the
     * open-or-create path the service uses. Remembers @p path so
     * save() with no argument rewrites the same file.
     */
    void open(const std::string &path,
              StorageBackend backend = StorageBackend::autoSelect);

    /** Serialize to @p path atomically (write-temp/fsync/rename). */
    void save(const std::string &path) const;

    /** save() to the path open() remembered. */
    void save() const;

    /** Insert or overwrite (last-writer-wins) one cell record. */
    void put(const CellRecord &rec);

    /** Insert or overwrite one pair record. */
    void putPair(const PairRecord &rec);

    /**
     * The record stored under exactly @p key, or nullopt. The engine
     * memoizes on exact-key hits only — that is the "confidence spec
     * no looser" rule in its bit-identity-preserving form (an equal
     * spec is no looser, and only an equal spec reproduces the same
     * stopping point).
     */
    bool find(const ResultKey &key, CellRecord *out) const;

    /** The pair delta for (libHash, base, test) under the run key. */
    bool findPair(const PairRecord &probe, PairRecord *out) const;

    /** Snapshot of all cell records, file order. */
    std::vector<CellRecord> cells() const;

    /** Snapshot of all pair records, file order. */
    std::vector<PairRecord> pairs() const;

    std::size_t cellCount() const;
    std::size_t pairCount() const;

    /** Duplicate-key records shadowed by the last load(). */
    std::size_t supersededRecords() const;

    /**
     * Drop superseded duplicates from the in-memory store (the loaded
     * maps already resolved them; this rewrites the record vectors so
     * a subsequent save() emits each key once). Returns the number of
     * records removed.
     */
    std::size_t compact();

    /** The path open() remembered ("" before open()). */
    std::string path() const;

  private:
    void rebuildIndexLocked();
    Blob serializeLocked() const;
    void parseLocked(const std::uint8_t *data, std::size_t size,
                     const std::string &path);

    mutable std::mutex mu_;
    mutable std::mutex saveM_; //!< orders concurrent save() snapshots
    std::string path_;
    std::vector<CellRecord> cells_;
    std::vector<PairRecord> pairs_;
    std::unordered_map<std::uint64_t, std::size_t> cellIdx_;
    std::unordered_map<std::uint64_t, std::size_t> pairIdx_;
    std::size_t superseded_ = 0;
};

} // namespace lp

#endif // LP_STORE_RESULT_STORE_HH
