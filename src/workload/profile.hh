/**
 * @file
 * Workload profiles: the knobs that shape a synthetic benchmark
 * (length, phase structure, footprint, instruction mix, branch and
 * locality behaviour), plus a SPEC CPU2000-analog suite whose members
 * differ the way the paper's benchmarks do — branchy integer codes,
 * pointer-chasing memory-bound codes, regular floating-point loops.
 */

#ifndef LP_WORKLOAD_PROFILE_HH
#define LP_WORKLOAD_PROFILE_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace lp
{

struct WorkloadProfile
{
    std::string name = "tiny";
    std::uint64_t seed = 1;

    /** Desired dynamic instruction count (rounded to whole chunks). */
    InstCount targetInsts = 10'000'000;

    /** Number of distinct program phases (cycled round-robin). */
    unsigned phases = 4;

    /** Dynamic instructions per phase chunk. */
    InstCount phaseInsts = 50'000;

    /** Upper bound of the data working set across all phases. */
    std::uint64_t footprintBytes = 16ull << 20;

    // Instruction mix (fractions of dynamic instructions; the
    // remainder is integer ALU work).
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double fpFrac = 0.05;
    double mulFrac = 0.03;

    /** Probability a conditional branch is taken. */
    double branchTakenBias = 0.7;

    /** Fraction of branch sites that are data-dependent (noisy). */
    double branchNoise = 0.08;

    /** Fraction of memory accesses that are random in the region. */
    double randomAccessFrac = 0.2;

    /** Fraction of memory accesses hitting a small hot region. */
    double hotAccessFrac = 0.35;

    /** Static instructions in one phase's loop body. */
    unsigned loopBodySize = 128;

    /** Phase-to-phase modulation of mix/locality (drives CPI variance). */
    double phaseVariation = 0.35;
};

/** A small low-variance profile for examples and tests. */
WorkloadProfile tinyProfile(InstCount targetInsts, std::uint64_t seed);

/** The 24-benchmark SPEC2K-analog suite. */
const std::vector<WorkloadProfile> &spec2kSuite();

/**
 * Look up a suite benchmark by name. Throws std::runtime_error for
 * unknown names.
 */
WorkloadProfile findProfile(const std::string &name);

} // namespace lp

#endif // LP_WORKLOAD_PROFILE_HH
