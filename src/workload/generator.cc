#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "util/rng.hh"

namespace lp
{

namespace
{

constexpr Addr kCodeBase = 0x40000000ull;
constexpr Addr kDataBase = 0x10000000ull;
constexpr std::uint64_t kHotBytes = 64 * 1024;

/** Uniform double in [0,1) from a hash of (seed, a, b, salt). */
double
hashU01(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
        std::uint64_t salt)
{
    const std::uint64_t h =
        hashMix(hashCombine(hashCombine(seed, a), hashCombine(b, salt)));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t
hashVal(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
        std::uint64_t salt)
{
    return hashMix(hashCombine(hashCombine(seed, a), hashCombine(b, salt)));
}

/** Static role of a slot in a phase's loop body. */
Opcode
slotRole(const PhaseSpec &ph, std::uint64_t seed, unsigned phase,
         unsigned slot)
{
    if (slot + 1 == ph.bodySize)
        return Opcode::Bne; // loop-back branch
    const double u = hashU01(seed, phase, slot, 0x201e);
    double t = ph.loadFrac;
    if (u < t)
        return Opcode::Load;
    t += ph.storeFrac;
    if (u < t)
        return Opcode::Store;
    t += ph.branchFrac;
    if (u < t)
        return Opcode::Bne;
    t += ph.fpFrac;
    if (u < t)
        return Opcode::FpAlu;
    t += ph.mulFrac;
    if (u < t)
        return Opcode::IntMul;
    return Opcode::IntAlu;
}

} // namespace

Blob
ArchRegs::serialize() const
{
    DerWriter w;
    serialize(w);
    return w.finish();
}

void
ArchRegs::serialize(DerWriter &w) const
{
    w.beginSequence();
    w.putUint(instIndex);
    for (const std::uint64_t v : r)
        w.putUint(v);
    w.endSequence();
}

ArchRegs
ArchRegs::deserialize(DerReader &rd)
{
    DerReader seq = rd.getSequence();
    ArchRegs regs;
    regs.instIndex = seq.getUint();
    for (std::uint64_t &v : regs.r)
        v = seq.getUint();
    return regs;
}

namespace
{

/**
 * Phase of a chunk: hash-based rather than round-robin, so a
 * systematic sample can never alias with the phase schedule (a
 * sampling hazard that would bias pilot variance estimates).
 */
unsigned
chunkPhase(std::uint64_t seed, std::uint64_t chunk, std::size_t nPhases)
{
    return static_cast<unsigned>(hashVal(seed, chunk, 0, 0x9a5e) %
                                 nPhases);
}

} // namespace

const PhaseSpec &
Program::phaseAt(InstCount index) const
{
    const std::uint64_t chunk = index / chunkInsts;
    return phases[chunkPhase(profile.seed, chunk, phases.size())];
}

Instruction
Program::fetch(InstCount index) const
{
    const std::uint64_t seed = profile.seed;
    const std::uint64_t chunk = index / chunkInsts;
    const unsigned phase = chunkPhase(seed, chunk, phases.size());
    const PhaseSpec &ph = phases[phase];
    const InstCount chunkOff = index % chunkInsts;
    const unsigned slot = static_cast<unsigned>(chunkOff % ph.bodySize);
    const std::uint64_t iter = index / ph.bodySize; // global iteration

    Instruction ins;
    ins.op = slotRole(ph, seed, phase, slot);
    ins.pc = ph.pcBase + slot;

    const std::uint64_t h = hashVal(seed, phase, slot, 0x0b5);
    switch (ins.op) {
      case Opcode::Load:
      case Opcode::IntAlu:
      case Opcode::IntMul:
        ins.dst = static_cast<std::uint8_t>(1 + (h % 15));
        ins.src1 = static_cast<std::uint8_t>(1 + ((h >> 8) % 15));
        ins.src2 = static_cast<std::uint8_t>(1 + ((h >> 16) % 15));
        break;
      case Opcode::Store:
        // Stores define no register (dst 0 = hardwired zero).
        ins.src1 = static_cast<std::uint8_t>(1 + ((h >> 8) % 15));
        ins.src2 = static_cast<std::uint8_t>(1 + ((h >> 16) % 15));
        break;
      case Opcode::FpAlu:
      case Opcode::FpMul:
        ins.dst = static_cast<std::uint8_t>(16 + (h % 15));
        ins.src1 = static_cast<std::uint8_t>(16 + ((h >> 8) % 15));
        ins.src2 = static_cast<std::uint8_t>(16 + ((h >> 16) % 15));
        break;
      case Opcode::Bne:
      case Opcode::Jump:
        ins.src1 = static_cast<std::uint8_t>(1 + (h % 15));
        ins.src2 = static_cast<std::uint8_t>(1 + ((h >> 8) % 15));
        break;
    }

    if (ins.isMem()) {
        // Locality class is a property of the static slot; the
        // concrete address varies per dynamic instance.
        const double lu = hashU01(seed, phase, slot, 0x10c);
        std::uint64_t off;
        if (lu < ph.randomFrac) {
            // A drifting random neighborhood: pointer-heavy code
            // revisits a working frontier that advances through the
            // footprint. Reuse mass stays short-distance (as in real
            // programs) instead of the fat uniform tail a whole-region
            // random draw would give MRRL.
            const std::uint64_t h2 = hashVal(seed, index, slot, 0xadd);
            const std::uint64_t neighborhood = 32 * 1024;
            const std::uint64_t frontier = (index / 4096) * 2048;
            off = (frontier + (h2 % neighborhood)) % ph.regionBytes;
        } else if (lu < ph.randomFrac + ph.hotFrac) {
            off = hashVal(seed, index, slot, 0x607) % ph.hotBytes;
        } else {
            // Strided walk; stride is a property of the slot.
            const std::uint64_t stride = 8ull
                                         << (hashVal(seed, phase, slot,
                                                     0x57) %
                                             4);
            off = (iter * stride + slot * 8) % ph.regionBytes;
        }
        ins.addr = ph.regionBase + (off & ~7ull);
    }

    if (ins.op == Opcode::Bne) {
        if (slot + 1 == ph.bodySize) {
            // Loop-back branch: taken unless this iteration ends the
            // chunk.
            ins.target = ph.pcBase;
            ins.taken = (chunkOff + 1 != chunkInsts);
        } else {
            ins.target = ins.pc + 1 + (h % 16);
            const bool noisy =
                hashU01(seed, phase, slot, 0x4015e) < ph.noiseFrac;
            if (noisy) {
                ins.taken = hashU01(seed, index, slot, 0xd1ce) < 0.5;
            } else {
                // Stable per-site direction with rare flips.
                const bool dir =
                    hashU01(seed, phase, slot, 0xd12) < ph.takenBias;
                const bool flip =
                    hashU01(seed, index, slot, 0xf11b) < 0.04;
                ins.taken = dir != flip;
            }
        }
    }
    return ins;
}

Instruction
Program::wrongPath(InstCount index, unsigned k) const
{
    const std::uint64_t seed = profile.seed;
    const PhaseSpec &ph = phaseAt(index);
    const std::uint64_t h = hashVal(seed, index, k, 0x3209);

    Instruction ins;
    ins.pc = ph.pcBase + (h % ph.bodySize);
    ins.dst = static_cast<std::uint8_t>(1 + (h % 15));
    ins.src1 = static_cast<std::uint8_t>(1 + ((h >> 8) % 15));
    ins.src2 = static_cast<std::uint8_t>(1 + ((h >> 16) % 15));
    if ((h >> 24) % 100 < 30) {
        ins.op = Opcode::Load;
        if ((h >> 32) % 100 < 3) {
            // Rarely, a genuinely cold address in the region.
            ins.addr =
                ph.regionBase +
                ((hashVal(seed, index, k, 0xc01d) % ph.regionBytes) &
                 ~7ull);
        } else {
            // Usually data the correct path touched recently: the
            // same 64-byte block as a nearby load/store (wrong paths
            // mostly re-reference live data, so under restricted
            // live-state only the rare cold access is unavailable).
            const std::uint64_t back = 1 + (h >> 40) % 32;
            Addr base = ph.regionBase;
            for (unsigned s = 0; s < 12; ++s) {
                const InstCount j =
                    index > back + s ? index - back - s : 0;
                const Instruction recent = fetch(j);
                if (recent.isMem()) {
                    base = recent.addr;
                    break;
                }
            }
            ins.addr = (base & ~63ull) + ((h >> 48) % 8) * 8;
        }
    } else {
        ins.op = Opcode::IntAlu;
    }
    return ins;
}

Program
generateProgram(const WorkloadProfile &profile)
{
    Program prog;
    prog.name = profile.name;
    prog.profile = profile;
    prog.codeBase = kCodeBase;
    prog.dataBase = kDataBase;
    prog.chunkInsts = std::max<InstCount>(profile.phaseInsts, 1'000);

    const std::uint64_t seed = profile.seed;
    const unsigned nPhases = std::max(1u, profile.phases);
    const std::uint64_t footprint =
        std::max<std::uint64_t>(profile.footprintBytes, 1u << 20);
    // Phase regions overlap so their union approximates the footprint
    // while consecutive phases still share data.
    const std::uint64_t regionBytes = std::max<std::uint64_t>(
        footprint / 2, 256 * 1024);
    const std::uint64_t step =
        nPhases > 1 ? (footprint - regionBytes) / (nPhases - 1) : 0;

    for (unsigned p = 0; p < nPhases; ++p) {
        PhaseSpec ph;
        ph.regionBase = kDataBase + ((step * p) & ~4095ull);
        ph.regionBytes = regionBytes;
        ph.hotBytes = std::min<std::uint64_t>(kHotBytes, regionBytes);
        ph.pcBase = static_cast<PcIndex>(p) * 0x100000ull;
        const double v = profile.phaseVariation;
        auto mod = [&](double x, std::uint64_t salt) {
            const double f =
                1.0 + v * (2.0 * hashU01(seed, p, 0, salt) - 1.0);
            return std::clamp(x * f, 0.0, 0.45);
        };
        ph.loadFrac = mod(profile.loadFrac, 0x10ad);
        ph.storeFrac = mod(profile.storeFrac, 0x5702e);
        ph.branchFrac = mod(profile.branchFrac, 0xb2a);
        ph.fpFrac = mod(profile.fpFrac, 0xf9);
        ph.mulFrac = mod(profile.mulFrac, 0x301);
        ph.takenBias = std::clamp(
            profile.branchTakenBias +
                0.15 * (2.0 * hashU01(seed, p, 0, 0xb1a5) - 1.0),
            0.05, 0.95);
        ph.noiseFrac = std::clamp(
            profile.branchNoise *
                (1.0 + v * (2.0 * hashU01(seed, p, 0, 0x4015) - 1.0)),
            0.0, 0.8);
        ph.randomFrac = mod(profile.randomAccessFrac, 0x2a4d);
        ph.hotFrac = mod(profile.hotAccessFrac, 0x607);
        ph.bodySize = static_cast<unsigned>(std::clamp<std::uint64_t>(
            profile.loopBodySize / 2 +
                hashVal(seed, p, 0, 0xb0d) %
                    std::max(1u, profile.loopBodySize),
            32, 1024));
        prog.phases.push_back(ph);
    }

    const InstCount chunks =
        std::max<InstCount>(profile.targetInsts / prog.chunkInsts, 1);
    prog.length = chunks * prog.chunkInsts;

    // Initial data: a deterministic pattern over the first hot region
    // so early loads see nonzero values.
    prog.dataInit.resize(kHotBytes);
    for (std::size_t i = 0; i < prog.dataInit.size(); ++i)
        prog.dataInit[i] = static_cast<std::uint8_t>(
            hashVal(seed, i >> 3, 0, 0xda7a) >> ((i & 7) * 8));

    return prog;
}

InstCount
measureProgramLength(const Program &prog)
{
    return prog.length;
}

void
executeArch(const Instruction &ins, ArchRegs &regs, MemPort &mem)
{
    auto &r = regs.r;
    switch (ins.op) {
      case Opcode::IntAlu:
      case Opcode::FpAlu:
        r[ins.dst] = r[ins.src1] + r[ins.src2] + 1;
        break;
      case Opcode::IntMul:
      case Opcode::FpMul:
        r[ins.dst] = r[ins.src1] * (r[ins.src2] | 1);
        break;
      case Opcode::Load:
        r[ins.dst] = mem.read64(ins.addr);
        break;
      case Opcode::Store:
        mem.write64(ins.addr, r[ins.src1]);
        break;
      case Opcode::Bne:
      case Opcode::Jump:
        break;
    }
    r[0] = 0;
    ++regs.instIndex;
}

} // namespace lp
