/**
 * @file
 * Synthetic benchmark programs. A Program's dynamic instruction stream
 * is a *pure function* of (profile, instruction index): any position
 * can be re-fetched without replaying history. That property is what
 * makes live-points exact — a checkpoint is just (index, registers,
 * touched memory), and re-execution from it reproduces the original
 * run bit-for-bit.
 *
 * Programs cycle through `phases` distinct phases in fixed-length
 * chunks. Each phase has its own loop body (static instructions with
 * stable roles, so branch predictors and caches see realistic reuse),
 * working-set region, instruction mix, and locality behaviour.
 */

#ifndef LP_WORKLOAD_GENERATOR_HH
#define LP_WORKLOAD_GENERATOR_HH

#include <array>

#include "codec/der.hh"
#include "mem/memport.hh"
#include "util/types.hh"
#include "workload/profile.hh"

namespace lp
{

enum class Opcode : std::uint8_t
{
    IntAlu,
    IntMul,
    FpAlu,
    FpMul,
    Load,
    Store,
    Bne, //!< conditional branch
    Jump //!< unconditional
};

struct Instruction
{
    Opcode op = Opcode::IntAlu;
    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    PcIndex pc = 0;
    PcIndex target = 0; //!< branch target
    Addr addr = 0;      //!< effective address of a load/store
    bool taken = false; //!< resolved direction of a branch

    bool isMem() const
    {
        return op == Opcode::Load || op == Opcode::Store;
    }

    bool isBranch() const
    {
        return op == Opcode::Bne || op == Opcode::Jump;
    }
};

/** Architectural state: position + 32 integer/fp registers. */
struct ArchRegs
{
    InstCount instIndex = 0;
    std::array<std::uint64_t, 32> r{};

    Blob serialize() const;
    void serialize(DerWriter &w) const;
    static ArchRegs deserialize(DerReader &r);
};

/** Derived, deterministic description of one program phase. */
struct PhaseSpec
{
    Addr regionBase = 0;
    std::uint64_t regionBytes = 0;
    std::uint64_t hotBytes = 0;
    PcIndex pcBase = 0;
    unsigned bodySize = 0;
    double loadFrac = 0;
    double storeFrac = 0;
    double branchFrac = 0;
    double fpFrac = 0;
    double mulFrac = 0;
    double takenBias = 0;
    double noiseFrac = 0;
    double randomFrac = 0;
    double hotFrac = 0;
};

struct Program
{
    std::string name;
    WorkloadProfile profile;
    std::vector<PhaseSpec> phases;
    InstCount length = 0;     //!< total dynamic instructions
    InstCount chunkInsts = 0; //!< instructions per phase chunk
    Addr codeBase = 0;
    Addr dataBase = 0;
    std::vector<std::uint8_t> dataInit; //!< initial bytes at dataBase

    /** The phase active at dynamic instruction @p index. */
    const PhaseSpec &phaseAt(InstCount index) const;

    /** Decode the dynamic instruction at @p index (pure). */
    Instruction fetch(InstCount index) const;

    /** Instruction-memory address of a static slot. */
    Addr fetchAddr(PcIndex pc) const { return codeBase + pc * 4; }

    /**
     * Synthesize the @p k-th wrong-path instruction after a
     * mispredicted branch at @p index: mostly ALU work plus loads that
     * usually touch recently-referenced correct-path data.
     */
    Instruction wrongPath(InstCount index, unsigned k) const;
};

/** Build the deterministic program described by @p profile. */
Program generateProgram(const WorkloadProfile &profile);

/** Dynamic length of the program (whole chunks of the target count). */
InstCount measureProgramLength(const Program &prog);

/**
 * Architecturally execute one instruction: update registers and
 * memory. Shared by the functional simulator and the detailed core so
 * both produce bit-identical state trajectories.
 */
void executeArch(const Instruction &ins, ArchRegs &regs, MemPort &mem);

} // namespace lp

#endif // LP_WORKLOAD_GENERATOR_HH
