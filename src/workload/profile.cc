#include "workload/profile.hh"

#include <algorithm>
#include <stdexcept>

#include "util/log.hh"

namespace lp
{

WorkloadProfile
tinyProfile(InstCount targetInsts, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "tiny";
    p.seed = seed;
    p.targetInsts = targetInsts;
    p.phases = 4;
    p.phaseInsts = std::clamp<InstCount>(targetInsts / 1600, 5'000, 50'000);
    p.footprintBytes = 4ull << 20;
    p.phaseVariation = 0.1;
    p.branchNoise = 0.05;
    p.randomAccessFrac = 0.1;
    p.hotAccessFrac = 0.45;
    return p;
}

namespace
{

WorkloadProfile
mk(const char *name, std::uint64_t seed, double insts_m,
   std::uint64_t footprint_mb, unsigned phases, double load, double store,
   double branch, double fp, double mul, double noise, double random,
   double hot, double variation)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    p.targetInsts = static_cast<InstCount>(insts_m * 1e6);
    p.footprintBytes = footprint_mb << 20;
    p.phases = phases;
    p.phaseInsts = std::clamp<InstCount>(
        p.targetInsts / (400 * static_cast<InstCount>(phases)), 5'000,
        150'000);
    p.loadFrac = load;
    p.storeFrac = store;
    p.branchFrac = branch;
    p.fpFrac = fp;
    p.mulFrac = mul;
    p.branchNoise = noise;
    p.randomAccessFrac = random;
    p.hotAccessFrac = hot;
    p.phaseVariation = variation;
    return p;
}

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> s;
    // Integer codes: branchy, pointer-heavy, irregular.
    s.push_back(mk("gzip-1", 101, 24, 48, 4, 0.24, 0.10, 0.16, 0.00,
                   0.02, 0.10, 0.12, 0.45, 0.30));
    s.push_back(mk("vpr-route", 102, 28, 40, 5, 0.28, 0.09, 0.14, 0.04,
                   0.03, 0.12, 0.30, 0.30, 0.40));
    s.push_back(mk("gcc-2", 103, 22, 64, 6, 0.26, 0.12, 0.18, 0.00,
                   0.02, 0.14, 0.25, 0.35, 0.45));
    s.push_back(mk("mcf", 104, 20, 96, 3, 0.34, 0.09, 0.16, 0.00, 0.01,
                   0.12, 0.55, 0.15, 0.50));
    s.push_back(mk("crafty", 105, 26, 16, 4, 0.27, 0.08, 0.17, 0.00,
                   0.03, 0.11, 0.18, 0.45, 0.30));
    s.push_back(mk("parser", 106, 24, 48, 6, 0.27, 0.11, 0.19, 0.00,
                   0.02, 0.16, 0.35, 0.25, 0.50));
    s.push_back(mk("eon-2", 107, 18, 12, 3, 0.24, 0.11, 0.13, 0.10,
                   0.04, 0.06, 0.10, 0.50, 0.20));
    s.push_back(mk("perlbmk", 108, 16, 24, 3, 0.25, 0.12, 0.17, 0.00,
                   0.02, 0.05, 0.12, 0.55, 0.15));
    s.push_back(mk("gap", 109, 24, 48, 4, 0.26, 0.10, 0.15, 0.02, 0.03,
                   0.09, 0.20, 0.40, 0.35));
    s.push_back(mk("vortex-2", 110, 26, 56, 5, 0.28, 0.13, 0.16, 0.00,
                   0.02, 0.08, 0.22, 0.40, 0.35));
    s.push_back(mk("bzip2-1", 111, 26, 64, 4, 0.25, 0.11, 0.15, 0.00,
                   0.02, 0.09, 0.15, 0.40, 0.30));
    s.push_back(mk("twolf", 112, 28, 24, 5, 0.27, 0.09, 0.16, 0.03,
                   0.03, 0.12, 0.28, 0.30, 0.40));
    // Floating-point codes: regular loops, long dependence chains.
    s.push_back(mk("wupwise", 201, 32, 48, 3, 0.26, 0.09, 0.06, 0.22,
                   0.06, 0.02, 0.05, 0.30, 0.20));
    s.push_back(mk("swim", 202, 30, 80, 3, 0.30, 0.12, 0.04, 0.24,
                   0.05, 0.01, 0.04, 0.15, 0.25));
    s.push_back(mk("mgrid", 203, 34, 64, 3, 0.32, 0.10, 0.03, 0.26,
                   0.05, 0.01, 0.03, 0.20, 0.15));
    s.push_back(mk("applu", 204, 30, 72, 4, 0.29, 0.11, 0.05, 0.24,
                   0.05, 0.02, 0.06, 0.20, 0.30));
    s.push_back(mk("mesa", 205, 24, 24, 4, 0.24, 0.10, 0.09, 0.16,
                   0.05, 0.04, 0.08, 0.45, 0.25));
    s.push_back(mk("art-1", 206, 18, 32, 3, 0.33, 0.08, 0.07, 0.20,
                   0.04, 0.03, 0.35, 0.15, 0.45));
    s.push_back(mk("equake", 207, 22, 40, 4, 0.31, 0.09, 0.08, 0.20,
                   0.04, 0.04, 0.25, 0.25, 0.40));
    s.push_back(mk("facerec", 208, 26, 32, 4, 0.28, 0.09, 0.07, 0.22,
                   0.05, 0.03, 0.12, 0.35, 0.30));
    s.push_back(mk("ammp", 209, 28, 40, 3, 0.29, 0.10, 0.06, 0.22,
                   0.05, 0.02, 0.10, 0.35, 0.12));
    s.push_back(mk("lucas", 210, 28, 56, 3, 0.27, 0.10, 0.04, 0.26,
                   0.06, 0.01, 0.06, 0.30, 0.20));
    s.push_back(mk("fma3d", 211, 26, 48, 5, 0.28, 0.11, 0.08, 0.22,
                   0.05, 0.04, 0.10, 0.30, 0.35));
    s.push_back(mk("apsi", 212, 28, 48, 4, 0.27, 0.10, 0.07, 0.23,
                   0.05, 0.03, 0.10, 0.30, 0.30));
    return s;
}

} // namespace

const std::vector<WorkloadProfile> &
spec2kSuite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

WorkloadProfile
findProfile(const std::string &name)
{
    for (const WorkloadProfile &p : spec2kSuite())
        if (p.name == name)
            return p;
    throw std::runtime_error(
        strfmt("unknown benchmark '%s' (try create_library --list)",
               name.c_str()));
}

} // namespace lp
