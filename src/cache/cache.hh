/**
 * @file
 * Set-associative cache/TLB model with true-LRU replacement and a
 * global access clock. The access clock is what makes warm state
 * checkpointable: a set's contents under LRU are exactly the most
 * recently touched distinct lines mapping to it, so storing each
 * line's last-access time suffices to reconstruct any smaller
 * geometry exactly (see cache/warmstate.hh).
 *
 * Storage is structure-of-arrays: one flat tag/stamp/dirty plane each,
 * indexed set * assoc + way. A stamp of zero marks an empty way (the
 * clock starts at one), so the hit scan and the LRU victim scan are
 * single branchless passes over contiguous memory — the replay warm
 * loops touch one or two cache lines per access instead of chasing a
 * vector-of-vectors.
 */

#ifndef LP_CACHE_CACHE_HH
#define LP_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace lp
{

/** Geometry of a cache, TLB (lineBytes = page size), or tag array. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    unsigned assoc = 1;
    std::uint64_t lineBytes = 64;

    std::uint64_t numLines() const
    {
        return lineBytes ? sizeBytes / lineBytes : 0;
    }

    std::uint64_t numSets() const
    {
        const std::uint64_t lines = numLines();
        return assoc ? (lines ? lines / assoc : 0) : 0;
    }

    bool operator==(const CacheGeometry &o) const
    {
        return sizeBytes == o.sizeBytes && assoc == o.assoc &&
               lineBytes == o.lineBytes;
    }

    bool operator!=(const CacheGeometry &o) const { return !(*this == o); }
};

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty line was evicted
};

/** One resident line (exposed for warm-state snapshotting). */
struct CacheLine
{
    Addr tag = 0;               //!< line base address
    std::uint64_t lastAccess = 0; //!< global access-clock stamp
    bool dirty = false;
};

class CacheModel
{
  public:
    CacheModel(const CacheGeometry &geom, std::string name);

    /** Access the line containing @p a; allocates on miss. */
    AccessResult access(Addr a, bool write);

    /** True if the line containing @p a is resident (no LRU update). */
    bool probe(Addr a) const;

    const CacheGeometry &geometry() const { return geom_; }
    const std::string &name() const { return name_; }

    /** Drop all contents and reset the access clock. */
    void reset();

    /** Resident lines of one set, unordered. */
    std::vector<CacheLine> linesOfSet(std::uint64_t set) const;

    std::uint64_t numSets() const { return nsets_; }

    /** Total resident lines. */
    std::uint64_t residentLines() const;

    /** Accesses performed since construction/reset. */
    std::uint64_t accessClock() const { return clock_; }

    /**
     * Adopt the exact state of @p o (same geometry required). Reuses
     * this model's storage — allocation-free once warmed — so a
     * reconstructed warm state can be stamped onto sibling units that
     * share the geometry without replaying the record again.
     */
    void copyStateFrom(const CacheModel &o);

  private:
    std::uint64_t setOf(Addr a) const;

    CacheGeometry geom_;
    std::string name_;
    std::uint64_t nsets_ = 1;
    unsigned assoc_ = 1;
    // SoA planes, indexed set * assoc_ + way. stamps_[i] == 0 means
    // the way is empty; tags_/dirty_ of empty ways are meaningless.
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> stamps_;
    std::vector<std::uint8_t> dirty_;
    std::uint64_t clock_ = 0;
};

} // namespace lp

#endif // LP_CACHE_CACHE_HH
