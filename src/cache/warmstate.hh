/**
 * @file
 * Checkpointable cache warm state, the heart of a live-point.
 *
 * CacheSetRecord (CSR): a snapshot of a cache warmed at the library's
 * *maximum* geometry — each resident line's address, last-access
 * stamp, and dirty bit. Replaying the lines in stamp order into a
 * target cache reproduces, exactly, the LRU state the target would
 * have reached through direct warming, for any geometry whose sets
 * and associativity divide the maximum's (power-of-two geometries no
 * larger than the maximum, same line size). Storage is bounded by the
 * maximum tag array, independent of workload footprint.
 *
 * MemoryTimestampRecord (MTR, Barr et al.): last-access timestamps of
 * every touched memory line. Reconstructs arbitrary geometries, but
 * storage grows with the workload's footprint — the ablation bench
 * quantifies the trade-off that motivates the CSR.
 */

#ifndef LP_CACHE_WARMSTATE_HH
#define LP_CACHE_WARMSTATE_HH

#include <map>

#include "cache/cache.hh"
#include "codec/der.hh"

namespace lp
{

class CacheSetRecord
{
  public:
    CacheSetRecord() = default;

    /** Snapshot the current contents of @p cache. */
    explicit CacheSetRecord(const CacheModel &cache);

    /** Geometry the record was captured at (the library maximum). */
    const CacheGeometry &maxGeometry() const { return geom_; }

    /** Number of recorded lines. */
    std::uint64_t entryCount() const { return entries_.size(); }

    /**
     * Install the recorded warm state into @p target (which is reset
     * first). Lines are replayed in last-access order, so the target's
     * LRU state matches direct warming whenever the target geometry is
     * contained in the maximum.
     */
    void reconstruct(CacheModel &target) const;

    Blob serialize() const;
    void serialize(DerWriter &w) const;
    static CacheSetRecord deserialize(DerReader &r);

    /**
     * Deserialize into @p out, reusing its entry storage — the decode
     * ring recycles one record per slot so replay allocates nothing.
     */
    static void deserializeInto(DerReader &r, CacheSetRecord &out);

  private:
    struct Entry
    {
        Addr lineAddr = 0;
        std::uint64_t lastAccess = 0;
        bool dirty = false;
    };

    CacheGeometry geom_;
    std::vector<Entry> entries_; //!< sorted by lastAccess, ascending
};

class MemoryTimestampRecord
{
  public:
    explicit MemoryTimestampRecord(std::uint64_t lineBytes);

    /** Record an access to the line containing @p a at @p time. */
    void record(Addr a, bool write, std::uint64_t time);

    std::uint64_t lineBytes() const { return lineBytes_; }
    std::uint64_t entryCount() const { return lines_.size(); }

    /** Install warm state into @p target (reset first). */
    void reconstruct(CacheModel &target) const;

    Blob serialize() const;

  private:
    struct Stamp
    {
        std::uint64_t time = 0;
        bool dirty = false;
    };

    std::uint64_t lineBytes_;
    std::map<Addr, Stamp> lines_;
};

} // namespace lp

#endif // LP_CACHE_WARMSTATE_HH
