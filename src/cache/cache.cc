#include "cache/cache.hh"

#include <algorithm>

#include "util/log.hh"

namespace lp
{

CacheModel::CacheModel(const CacheGeometry &geom, std::string name)
    : geom_(geom), name_(std::move(name))
{
    const std::uint64_t nsets = std::max<std::uint64_t>(geom_.numSets(), 1);
    sets_.resize(nsets);
    for (auto &s : sets_)
        s.reserve(geom_.assoc);
}

std::uint64_t
CacheModel::setOf(Addr a) const
{
    return (a / geom_.lineBytes) % sets_.size();
}

AccessResult
CacheModel::access(Addr a, bool write)
{
    const Addr tag = a - (a % geom_.lineBytes);
    auto &set = sets_[setOf(a)];
    ++clock_;
    AccessResult res;
    for (CacheLine &line : set) {
        if (line.tag == tag) {
            line.lastAccess = clock_;
            line.dirty = line.dirty || write;
            res.hit = true;
            return res;
        }
    }
    // Miss: allocate, evicting the least recently used line if full.
    if (set.size() >= geom_.assoc) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < set.size(); ++i)
            if (set[i].lastAccess < set[victim].lastAccess)
                victim = i;
        res.writeback = set[victim].dirty;
        set[victim] = CacheLine{tag, clock_, write};
    } else {
        set.push_back(CacheLine{tag, clock_, write});
    }
    return res;
}

bool
CacheModel::probe(Addr a) const
{
    const Addr tag = a - (a % geom_.lineBytes);
    const auto &set = sets_[setOf(a)];
    for (const CacheLine &line : set)
        if (line.tag == tag)
            return true;
    return false;
}

void
CacheModel::reset()
{
    for (auto &s : sets_)
        s.clear();
    clock_ = 0;
}

std::uint64_t
CacheModel::residentLines() const
{
    std::uint64_t n = 0;
    for (const auto &s : sets_)
        n += s.size();
    return n;
}

} // namespace lp
