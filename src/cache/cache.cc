#include "cache/cache.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/log.hh"

namespace lp
{

namespace
{

/**
 * Find the way holding @p tag in a set, or -1. A way counts only if
 * occupied (stamp != 0): an empty way's stale tag must never hit —
 * warm-state reconstruction can legally install a line whose address
 * collides with leftover tag bits.
 */
inline int
findHitWay(const Addr *tags, const std::uint64_t *stamps, unsigned assoc,
           Addr tag)
{
    unsigned w = 0;
#if defined(__SSE2__)
    // Two 64-bit ways per vector: equality via 32-bit compares ANDed
    // with their lane-swapped halves. Resident tags are unique, so
    // reporting the first hit lane is exact.
    const __m128i vtag = _mm_set1_epi64x(static_cast<long long>(tag));
    const __m128i zero = _mm_setzero_si128();
    for (; w + 2 <= assoc; w += 2) {
        __m128i eq = _mm_cmpeq_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(tags + w)),
            vtag);
        eq = _mm_and_si128(eq,
                           _mm_shuffle_epi32(eq, _MM_SHUFFLE(2, 3, 0, 1)));
        __m128i empty = _mm_cmpeq_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(stamps + w)),
            zero);
        empty = _mm_and_si128(
            empty, _mm_shuffle_epi32(empty, _MM_SHUFFLE(2, 3, 0, 1)));
        const int mask = _mm_movemask_epi8(_mm_andnot_si128(empty, eq));
        if (mask)
            return static_cast<int>(w) + ((mask & 0x00ff) ? 0 : 1);
    }
#endif
    for (; w < assoc; ++w)
        if (tags[w] == tag && stamps[w] != 0)
            return static_cast<int>(w);
    return -1;
}

} // namespace

CacheModel::CacheModel(const CacheGeometry &geom, std::string name)
    : geom_(geom), name_(std::move(name))
{
    nsets_ = std::max<std::uint64_t>(geom_.numSets(), 1);
    assoc_ = std::max(geom_.assoc, 1u);
    const std::size_t ways = nsets_ * assoc_;
    tags_.resize(ways, 0);
    stamps_.resize(ways, 0);
    dirty_.resize(ways, 0);
}

std::uint64_t
CacheModel::setOf(Addr a) const
{
    return (a / geom_.lineBytes) % nsets_;
}

AccessResult
CacheModel::access(Addr a, bool write)
{
    const Addr tag = a - (a % geom_.lineBytes);
    const std::size_t base = setOf(a) * assoc_;
    Addr *tags = tags_.data() + base;
    std::uint64_t *stamps = stamps_.data() + base;
    ++clock_;
    AccessResult res;

    const int hit = findHitWay(tags, stamps, assoc_, tag);
    if (hit >= 0) {
        stamps[hit] = clock_;
        dirty_[base + hit] |= static_cast<std::uint8_t>(write);
        res.hit = true;
        return res;
    }

    // Miss: the victim is the minimum stamp. Empty ways carry stamp
    // zero, so they fill first in way order — the same fill order and
    // same LRU victim (first minimum) as the original scan, keeping
    // reconstructed states bit-identical. Stamps are unique, so the
    // strictly-less select is branch-predictor friendly.
    unsigned victim = 0;
    std::uint64_t best = stamps[0];
    for (unsigned w = 1; w < assoc_; ++w) {
        const bool lt = stamps[w] < best;
        victim = lt ? w : victim;
        best = lt ? stamps[w] : best;
    }
    res.writeback = best != 0 && dirty_[base + victim] != 0;
    tags[victim] = tag;
    stamps[victim] = clock_;
    dirty_[base + victim] = static_cast<std::uint8_t>(write);
    return res;
}

bool
CacheModel::probe(Addr a) const
{
    const Addr tag = a - (a % geom_.lineBytes);
    const std::size_t base = setOf(a) * assoc_;
    return findHitWay(tags_.data() + base, stamps_.data() + base, assoc_,
                      tag) >= 0;
}

void
CacheModel::reset()
{
    // Zeroing the stamp plane alone empties every way; tags and dirty
    // bits of empty ways are never read.
    std::memset(stamps_.data(), 0, stamps_.size() * sizeof(stamps_[0]));
    clock_ = 0;
}

std::vector<CacheLine>
CacheModel::linesOfSet(std::uint64_t set) const
{
    std::vector<CacheLine> lines;
    lines.reserve(assoc_);
    const std::size_t base = set * assoc_;
    for (unsigned w = 0; w < assoc_; ++w)
        if (stamps_[base + w] != 0)
            lines.push_back(CacheLine{tags_[base + w], stamps_[base + w],
                                      dirty_[base + w] != 0});
    return lines;
}

std::uint64_t
CacheModel::residentLines() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t s : stamps_)
        n += s != 0;
    return n;
}

void
CacheModel::copyStateFrom(const CacheModel &o)
{
    if (geom_ != o.geom_)
        throw std::runtime_error("CacheModel::copyStateFrom: geometry");
    std::memcpy(tags_.data(), o.tags_.data(),
                tags_.size() * sizeof(tags_[0]));
    std::memcpy(stamps_.data(), o.stamps_.data(),
                stamps_.size() * sizeof(stamps_[0]));
    std::memcpy(dirty_.data(), o.dirty_.data(), dirty_.size());
    clock_ = o.clock_;
}

} // namespace lp
