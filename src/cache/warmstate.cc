#include "cache/warmstate.hh"

#include <algorithm>

namespace lp
{

CacheSetRecord::CacheSetRecord(const CacheModel &cache)
    : geom_(cache.geometry())
{
    entries_.reserve(cache.residentLines());
    for (std::uint64_t s = 0; s < cache.numSets(); ++s)
        for (const CacheLine &line : cache.linesOfSet(s))
            entries_.push_back(
                Entry{line.tag, line.lastAccess, line.dirty});
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.lastAccess != b.lastAccess)
                      return a.lastAccess < b.lastAccess;
                  return a.lineAddr < b.lineAddr;
              });
}

void
CacheSetRecord::reconstruct(CacheModel &target) const
{
    target.reset();
    for (const Entry &e : entries_)
        target.access(e.lineAddr, e.dirty);
}

void
CacheSetRecord::serialize(DerWriter &w) const
{
    w.beginSequence();
    w.putUint(geom_.sizeBytes);
    w.putUint(geom_.assoc);
    w.putUint(geom_.lineBytes);
    w.putUint(entries_.size());
    // Only the recency *order* matters for LRU reconstruction, and
    // entries_ is already sorted by it — the stamps themselves need
    // not be stored. Line addresses are divided by the line size with
    // the dirty bit packed into the low bit to shorten the varints.
    for (const Entry &e : entries_)
        w.putUint((e.lineAddr / geom_.lineBytes) * 2 +
                  (e.dirty ? 1 : 0));
    w.endSequence();
}

Blob
CacheSetRecord::serialize() const
{
    DerWriter w;
    serialize(w);
    return w.finish();
}

CacheSetRecord
CacheSetRecord::deserialize(DerReader &r)
{
    CacheSetRecord rec;
    deserializeInto(r, rec);
    return rec;
}

void
CacheSetRecord::deserializeInto(DerReader &r, CacheSetRecord &out)
{
    DerReader seq = r.getSequence();
    out.geom_.sizeBytes = seq.getUint();
    out.geom_.assoc = static_cast<unsigned>(seq.getUint());
    out.geom_.lineBytes = seq.getUint();
    const std::uint64_t count = seq.getUint();
    out.entries_.clear();
    out.entries_.reserve(count);
    std::uint64_t stamp = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        Entry e;
        const std::uint64_t packed = seq.getUint();
        e.lineAddr = (packed / 2) * out.geom_.lineBytes;
        e.dirty = (packed & 1) != 0;
        e.lastAccess = ++stamp; // synthetic stamps keep the order
        out.entries_.push_back(e);
    }
}

MemoryTimestampRecord::MemoryTimestampRecord(std::uint64_t lineBytes)
    : lineBytes_(lineBytes)
{
}

void
MemoryTimestampRecord::record(Addr a, bool write, std::uint64_t time)
{
    const Addr base = a - (a % lineBytes_);
    Stamp &s = lines_[base];
    s.time = time;
    s.dirty = s.dirty || write;
}

void
MemoryTimestampRecord::reconstruct(CacheModel &target) const
{
    target.reset();
    // Replay in timestamp order for correct LRU state at the target.
    std::vector<std::pair<std::uint64_t, Addr>> order;
    order.reserve(lines_.size());
    for (const auto &kv : lines_)
        order.emplace_back(kv.second.time, kv.first);
    std::sort(order.begin(), order.end());
    for (const auto &[time, addr] : order) {
        (void)time;
        target.access(addr, lines_.at(addr).dirty);
    }
}

Blob
MemoryTimestampRecord::serialize() const
{
    DerWriter w;
    w.beginSequence();
    w.putUint(lineBytes_);
    w.putUint(lines_.size());
    for (const auto &kv : lines_) {
        w.putUint(kv.first / lineBytes_);
        w.putUint(kv.second.time);
        w.putUint(kv.second.dirty ? 1 : 0);
    }
    w.endSequence();
    return w.finish();
}

} // namespace lp
