#include "uarch/core.hh"

#include <algorithm>

#include "util/log.hh"

namespace lp
{

namespace
{

Cycles &
earliest(std::vector<Cycles> &units)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < units.size(); ++i)
        if (units[i] < units[best])
            best = i;
    return units[best];
}

} // namespace

OoOCore::OoOCore(const CoreConfig &cfg, const CoreBindings &b)
    : cfg_(cfg), regReady_(32, 0), window_(cfg.ruuSize, 0),
      lsq_(cfg.lsqSize, 0),
      storeBuf_(std::max<std::size_t>(cfg.mem.storeBufferEntries, 1), 0),
      mshrs_(std::max<unsigned>(cfg.mem.mshrs, 1), 0),
      l1dPorts_(std::max<unsigned>(cfg.mem.l1dPorts, 1), 0),
      fuIntAlu_(std::max<unsigned>(cfg.fus.intAlu, 1), 0),
      fuIntMul_(std::max<unsigned>(cfg.fus.intMulDiv, 1), 0),
      fuFpAlu_(std::max<unsigned>(cfg.fus.fpAlu, 1), 0),
      fuFpMul_(std::max<unsigned>(cfg.fus.fpMulDiv, 1), 0)
{
    rebind(b);
}

void
OoOCore::rebind(const CoreBindings &b)
{
    prog_ = b.prog;
    mem_ = b.mem;
    hier_ = b.hier;
    bp_ = b.bp;
    avail_ = b.availability;
    regs_ = b.initialRegs;
    approxWrongPath_ = false;
    fetchCycle_ = 0;
    fetchedThisCycle_ = 0;
    branchesThisCycle_ = 0;
    lastFetchLine_ = ~0ull;
    commitCycle_ = 0;
    committedThisCycle_ = 0;
    lastCommit_ = 0;
    std::fill(regReady_.begin(), regReady_.end(), 0);
    std::fill(window_.begin(), window_.end(), 0);
    std::fill(lsq_.begin(), lsq_.end(), 0);
    std::fill(storeBuf_.begin(), storeBuf_.end(), 0);
    std::fill(mshrs_.begin(), mshrs_.end(), 0);
    std::fill(l1dPorts_.begin(), l1dPorts_.end(), 0);
    std::fill(fuIntAlu_.begin(), fuIntAlu_.end(), 0);
    std::fill(fuIntMul_.begin(), fuIntMul_.end(), 0);
    std::fill(fuFpAlu_.begin(), fuFpAlu_.end(), 0);
    std::fill(fuFpMul_.begin(), fuFpMul_.end(), 0);
    windowHead_ = 0;
    lsqHead_ = 0;
    storeHead_ = 0;
    mshrHead_ = 0;
    unavailableLoads_ = 0;
}

bool
OoOCore::programEnded() const
{
    return regs_.instIndex >= prog_->length;
}

template <bool HasAvail>
void
OoOCore::simulateWrongPath(InstCount index, Cycles resolve, Cycles fetched)
{
    // The front end fetches down the wrong path until the branch
    // resolves; model its cache pollution (and, under restricted
    // live-state, its references to unavailable data).
    const Cycles span = resolve > fetched ? resolve - fetched : 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(2 + span / 2, 24);
    for (unsigned k = 0; k < n; ++k) {
        const Instruction wp = prog_->wrongPath(index, k);
        if (wp.op != Opcode::Load)
            continue;
        if (HasAvail && !avail_->contains(wp.addr))
            ++unavailableLoads_;
        hier_->timedData(wp.addr, false);
    }
}

template <bool ApproxWP, bool HasAvail>
void
OoOCore::step(const StepConsts &k)
{
    const InstCount index = regs_.instIndex;
    const Instruction ins = prog_->fetch(index);

    // --- Fetch ---
    if (fetchedThisCycle_ >= k.width) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
        branchesThisCycle_ = 0;
    }
    const Addr fetchAddr = prog_->fetchAddr(ins.pc);
    const Addr fetchLine = fetchAddr & ~63ull;
    if (fetchLine != lastFetchLine_) {
        lastFetchLine_ = fetchLine;
        const Cycles lat = hier_->timedFetch(fetchAddr);
        if (lat > k.l1Latency)
            fetchCycle_ += lat - k.l1Latency;
    }
    if (ins.isBranch() &&
        ++branchesThisCycle_ > k.predictionsPerCycle) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
        branchesThisCycle_ = 1;
    }
    ++fetchedThisCycle_;
    const Cycles fetched = fetchCycle_;

    // --- Dispatch: window and queue occupancy ---
    Cycles dispatch = std::max(fetched, window_[windowHead_]);
    if (ins.isMem())
        dispatch = std::max(dispatch, lsq_[lsqHead_]);
    if (ins.op == Opcode::Store)
        dispatch = std::max(dispatch, storeBuf_[storeHead_]);

    // --- Issue: operands and a functional unit ---
    Cycles ready = std::max(
        {dispatch, regReady_[ins.src1], regReady_[ins.src2]});
    Cycles complete = ready;
    switch (ins.op) {
      case Opcode::IntAlu:
      case Opcode::Bne:
      case Opcode::Jump: {
        Cycles &fu = earliest(fuIntAlu_);
        const Cycles issue = std::max(ready, fu);
        fu = issue + 1;
        complete = issue + k.intAlu;
        break;
      }
      case Opcode::IntMul: {
        Cycles &fu = earliest(fuIntMul_);
        const Cycles issue = std::max(ready, fu);
        fu = issue + 1;
        complete = issue + k.intMulDiv;
        break;
      }
      case Opcode::FpAlu: {
        Cycles &fu = earliest(fuFpAlu_);
        const Cycles issue = std::max(ready, fu);
        fu = issue + 1;
        complete = issue + k.fpAlu;
        break;
      }
      case Opcode::FpMul: {
        Cycles &fu = earliest(fuFpMul_);
        const Cycles issue = std::max(ready, fu);
        fu = issue + 1;
        complete = issue + k.fpMulDiv;
        break;
      }
      case Opcode::Load:
      case Opcode::Store: {
        Cycles &port = earliest(l1dPorts_);
        Cycles issue = std::max(ready, port);
        bool l1Miss = false;
        const Cycles lat = hier_->timedData(
            ins.addr, ins.op == Opcode::Store, &l1Miss);
        if (l1Miss) {
            // A miss occupies an MSHR.
            Cycles &mshr = mshrs_[mshrHead_];
            issue = std::max(issue, mshr);
            mshr = issue + lat;
            mshrHead_ = (mshrHead_ + 1) % mshrs_.size();
        }
        port = issue + 1;
        if (ins.op == Opcode::Load) {
            complete = issue + lat;
        } else {
            // Stores retire into the store buffer and complete in the
            // background.
            complete = issue + 1;
            storeBuf_[storeHead_] = issue + lat;
            storeHead_ = (storeHead_ + 1) % storeBuf_.size();
        }
        break;
      }
    }
    if (ins.dst)
        regReady_[ins.dst] = complete;

    // --- Branch resolution ---
    if (ins.op == Opcode::Bne) {
        const bool predicted = bp_->predict(ins.pc);
        bp_->update(ins.pc, ins.taken);
        if (predicted != ins.taken) {
            if (!ApproxWP)
                simulateWrongPath<HasAvail>(index, complete, fetched);
            const Cycles redirect =
                complete + k.mispredictPenalty;
            if (redirect > fetchCycle_) {
                fetchCycle_ = redirect;
                fetchedThisCycle_ = 0;
                branchesThisCycle_ = 0;
            }
        }
    }

    // --- Commit (program order, width per cycle) ---
    Cycles commit = std::max(complete, lastCommit_);
    if (commit > commitCycle_) {
        commitCycle_ = commit;
        committedThisCycle_ = 0;
    }
    if (++committedThisCycle_ > k.width) {
        ++commitCycle_;
        committedThisCycle_ = 1;
        commit = commitCycle_;
    } else {
        commit = commitCycle_;
    }
    lastCommit_ = commit;
    window_[windowHead_] = commit;
    windowHead_ = (windowHead_ + 1) % window_.size();
    if (ins.isMem()) {
        lsq_[lsqHead_] = commit;
        lsqHead_ = (lsqHead_ + 1) % lsq_.size();
    }

    // --- Architectural execution ---
    executeArch(ins, regs_, *mem_);
}

template <bool ApproxWP, bool HasAvail>
InstCount
OoOCore::runLoop(InstCount n)
{
    StepConsts k;
    k.width = cfg_.width;
    k.predictionsPerCycle = cfg_.bpred.predictionsPerCycle;
    k.l1Latency = cfg_.mem.l1Latency;
    k.intAlu = cfg_.lat.intAlu;
    k.intMulDiv = cfg_.lat.intMulDiv;
    k.fpAlu = cfg_.lat.fpAlu;
    k.fpMulDiv = cfg_.lat.fpMulDiv;
    k.mispredictPenalty = cfg_.bpred.mispredictPenalty;
    const InstCount length = prog_->length;
    InstCount done = 0;
    while (done < n && regs_.instIndex < length) {
        step<ApproxWP, HasAvail>(k);
        ++done;
    }
    return done;
}

WindowResult
OoOCore::commitRun(InstCount n)
{
    const Cycles c0 = lastCommit_;
    const std::uint64_t u0 = unavailableLoads_;
    InstCount done;
    if (approxWrongPath_)
        done = avail_ ? runLoop<true, true>(n) : runLoop<true, false>(n);
    else
        done = avail_ ? runLoop<false, true>(n) : runLoop<false, false>(n);
    WindowResult res;
    res.insts = done;
    res.cycles = lastCommit_ - c0;
    res.cpi = done ? static_cast<double>(res.cycles) /
                         static_cast<double>(done)
                   : 0.0;
    res.unavailableLoads = unavailableLoads_ - u0;
    return res;
}

WindowResult
OoOCore::measure(InstCount warmLen, InstCount measureLen)
{
    commitRun(warmLen);
    return commitRun(measureLen);
}

} // namespace lp
