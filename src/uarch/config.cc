#include "uarch/config.hh"

#include "util/rng.hh"

namespace lp
{

namespace
{

std::uint64_t
foldGeometry(std::uint64_t h, const CacheGeometry &g)
{
    h = hashCombine(h, g.sizeBytes);
    h = hashCombine(h, g.assoc);
    return hashCombine(h, g.lineBytes);
}

} // namespace

std::uint64_t
configDigest(const CoreConfig &cfg)
{
    std::uint64_t h = hashMix(0x6c70'6366'6764ull); // "lpcfgd"
    h = hashCombine(h, cfg.width);
    h = hashCombine(h, cfg.ruuSize);
    h = hashCombine(h, cfg.lsqSize);
    h = foldGeometry(h, cfg.mem.l1i);
    h = foldGeometry(h, cfg.mem.l1d);
    h = foldGeometry(h, cfg.mem.l2);
    h = foldGeometry(h, cfg.mem.itlb);
    h = foldGeometry(h, cfg.mem.dtlb);
    h = hashCombine(h, cfg.mem.l1dPorts);
    h = hashCombine(h, cfg.mem.mshrs);
    h = hashCombine(h, cfg.mem.storeBufferEntries);
    h = hashCombine(h, cfg.mem.l1Latency);
    h = hashCombine(h, cfg.mem.l2Latency);
    h = hashCombine(h, cfg.mem.memLatency);
    h = hashCombine(h, cfg.mem.tlbMissLatency);
    h = hashCombine(h, cfg.fus.intAlu);
    h = hashCombine(h, cfg.fus.intMulDiv);
    h = hashCombine(h, cfg.fus.fpAlu);
    h = hashCombine(h, cfg.fus.fpMulDiv);
    h = hashCombine(h, cfg.lat.intAlu);
    h = hashCombine(h, cfg.lat.intMulDiv);
    h = hashCombine(h, cfg.lat.fpAlu);
    h = hashCombine(h, cfg.lat.fpMulDiv);
    h = hashCombine(h, cfg.bpred.tableEntries);
    h = hashCombine(h, cfg.bpred.mispredictPenalty);
    h = hashCombine(h, cfg.bpred.predictionsPerCycle);
    h = hashCombine(h, cfg.detailedWarming);
    return h;
}

CoreConfig
CoreConfig::eightWay()
{
    CoreConfig c;
    c.name = "8-way";
    c.width = 8;
    c.ruuSize = 128;
    c.lsqSize = 64;
    c.mem.l1i = {32 * 1024, 2, 64};
    c.mem.l1d = {32 * 1024, 2, 64};
    c.mem.l2 = {1ull << 20, 4, 128};
    c.mem.itlb = {64 * 4096, 4, 4096};
    c.mem.dtlb = {128 * 4096, 4, 4096};
    c.mem.l1dPorts = 2;
    c.mem.mshrs = 8;
    c.mem.storeBufferEntries = 16;
    c.mem.l1Latency = 1;
    c.mem.l2Latency = 12;
    c.mem.memLatency = 100;
    c.mem.tlbMissLatency = 30;
    c.fus = {4, 2, 4, 2};
    c.lat = {1, 3, 2, 4};
    c.bpred.tableEntries = 2048;
    c.bpred.mispredictPenalty = 7;
    c.bpred.predictionsPerCycle = 1;
    c.detailedWarming = 2000;
    return c;
}

CoreConfig
CoreConfig::sixteenWay()
{
    CoreConfig c;
    c.name = "16-way";
    c.width = 16;
    c.ruuSize = 256;
    c.lsqSize = 128;
    c.mem.l1i = {64 * 1024, 2, 64};
    c.mem.l1d = {64 * 1024, 2, 64};
    c.mem.l2 = {4ull << 20, 8, 128};
    c.mem.itlb = {128 * 4096, 4, 4096};
    c.mem.dtlb = {256 * 4096, 4, 4096};
    c.mem.l1dPorts = 4;
    c.mem.mshrs = 16;
    c.mem.storeBufferEntries = 32;
    c.mem.l1Latency = 1;
    c.mem.l2Latency = 12;
    c.mem.memLatency = 100;
    c.mem.tlbMissLatency = 30;
    c.fus = {8, 4, 8, 4};
    c.lat = {1, 3, 2, 4};
    c.bpred.tableEntries = 8192;
    c.bpred.mispredictPenalty = 7;
    c.bpred.predictionsPerCycle = 2;
    c.detailedWarming = 4000;
    return c;
}

} // namespace lp
