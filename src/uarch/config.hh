/**
 * @file
 * Microarchitectural configurations: the paper's Table 1 presets and
 * the parameter groups the sensitivity studies in Section 6.2 tweak.
 */

#ifndef LP_UARCH_CONFIG_HH
#define LP_UARCH_CONFIG_HH

#include <string>

#include "bpred/bpred.hh"
#include "mem/hierarchy.hh"
#include "util/types.hh"

namespace lp
{

/** Functional-unit counts. */
struct FuConfig
{
    unsigned intAlu = 4;
    unsigned intMulDiv = 2;
    unsigned fpAlu = 4;
    unsigned fpMulDiv = 2;
};

/** Execution latencies per unit class. */
struct LatConfig
{
    Cycles intAlu = 1;
    Cycles intMulDiv = 3;
    Cycles fpAlu = 2;
    Cycles fpMulDiv = 4;
};

struct CoreConfig
{
    std::string name = "8-way";
    unsigned width = 8;       //!< fetch/issue/commit width
    unsigned ruuSize = 128;   //!< instruction window entries
    unsigned lsqSize = 64;    //!< load/store queue entries
    MemHierarchyConfig mem;
    FuConfig fus;
    LatConfig lat;
    BpredConfig bpred;

    /** Detailed-warming instructions before each measured window. */
    InstCount detailedWarming = 2000;

    /** Table 1, left column: the 8-way baseline. */
    static CoreConfig eightWay();

    /** Table 1, right column: the aggressive 16-way machine. */
    static CoreConfig sixteenWay();
};

/**
 * Stable 64-bit digest of every timing-relevant field of a
 * configuration (the name is excluded — it is a label, not a
 * parameter). Two configs with equal digests produce identical replay
 * results on any live-point; the campaign manifest keys per-cell fold
 * state by this digest so a resumed campaign refuses state from a
 * different design point.
 */
std::uint64_t configDigest(const CoreConfig &cfg);

} // namespace lp

#endif // LP_UARCH_CONFIG_HH
