/**
 * @file
 * Detailed out-of-order core: a one-pass cycle-accounting model of a
 * superscalar machine (fetch/window/FU/memory/commit constraints and
 * wrong-path cache pollution after mispredictions). It executes
 * architecturally through a MemPort while computing timing, so a
 * window replayed from a live-point follows the exact state
 * trajectory of the original full-warming run.
 */

#ifndef LP_UARCH_CORE_HH
#define LP_UARCH_CORE_HH

#include <vector>

#include "mem/hierarchy.hh"
#include "mem/memport.hh"
#include "uarch/config.hh"
#include "workload/generator.hh"

namespace lp
{

/** Timing outcome of a run segment. */
struct WindowResult
{
    double cpi = 0.0;
    InstCount insts = 0;
    Cycles cycles = 0;
    std::uint64_t unavailableLoads = 0;
};

/** Everything a core needs bound before it can run. */
struct CoreBindings
{
    const Program *prog = nullptr;
    ArchRegs initialRegs{}; //!< default: start of program
    MemPort *mem = nullptr;
    MemHierarchy *hier = nullptr;
    BranchPredictor *bp = nullptr;

    /**
     * When set (live-point replay under restricted live-state), loads
     * outside this image read as zero and are counted unavailable.
     */
    const MemoryImage *availability = nullptr;
};

class OoOCore
{
  public:
    OoOCore(const CoreConfig &cfg, const CoreBindings &b);

    /**
     * Re-arm the core for a fresh run over new bindings (same
     * configuration): equivalent to reconstructing it, but reuses the
     * timing arrays — the zero-realloc path pooled replay contexts
     * take between live-points.
     */
    void rebind(const CoreBindings &b);

    /**
     * Run @p warmLen instructions of detailed warming (discarded),
     * then @p measureLen measured instructions; returns the measured
     * window's timing.
     */
    WindowResult measure(InstCount warmLen, InstCount measureLen);

    /** Run @p n instructions; returns their timing. */
    WindowResult commitRun(InstCount n);

    /** True when the bound program has no instructions left. */
    bool programEnded() const;

    /** Skip simulating wrong-path memory references (Section 5). */
    void setApproxWrongPath(bool v) { approxWrongPath_ = v; }

    /** Wrong-path loads that missed the availability image so far. */
    std::uint64_t unavailableLoads() const { return unavailableLoads_; }

    const ArchRegs &regs() const { return regs_; }

  private:
    /**
     * Config-invariant values read every instruction, hoisted out of
     * CoreConfig once per commitRun so the specialized step loop works
     * from locals the optimizer can keep live across iterations.
     */
    struct StepConsts
    {
        unsigned width = 0;
        unsigned predictionsPerCycle = 0;
        Cycles l1Latency = 0;
        Cycles intAlu = 0;
        Cycles intMulDiv = 0;
        Cycles fpAlu = 0;
        Cycles fpMulDiv = 0;
        Cycles mispredictPenalty = 0;
    };

    /**
     * One instruction through the timing model, specialized at compile
     * time on the two structural flags that never change within a run:
     * whether wrong-path simulation is approximated away and whether
     * an availability image is bound. commitRun dispatches once to the
     * matching instantiation, so the per-instruction loop carries no
     * runtime checks for either.
     */
    template <bool ApproxWP, bool HasAvail>
    void step(const StepConsts &k);
    template <bool ApproxWP, bool HasAvail>
    InstCount runLoop(InstCount n);
    template <bool HasAvail>
    void simulateWrongPath(InstCount index, Cycles resolve,
                           Cycles fetched);

    const CoreConfig &cfg_;
    const Program *prog_;
    MemPort *mem_;
    MemHierarchy *hier_;
    BranchPredictor *bp_;
    const MemoryImage *avail_;
    ArchRegs regs_;
    bool approxWrongPath_ = false;

    // Timing state.
    Cycles fetchCycle_ = 0;
    unsigned fetchedThisCycle_ = 0;
    unsigned branchesThisCycle_ = 0;
    Addr lastFetchLine_ = ~0ull;
    Cycles commitCycle_ = 0;
    unsigned committedThisCycle_ = 0;
    Cycles lastCommit_ = 0;
    std::vector<Cycles> regReady_;
    std::vector<Cycles> window_;    //!< commit times, ring of ruuSize
    std::vector<Cycles> lsq_;       //!< commit times of mem ops
    std::vector<Cycles> storeBuf_;  //!< store completion times
    std::vector<Cycles> mshrs_;     //!< outstanding-miss completions
    std::vector<Cycles> l1dPorts_;  //!< port next-free times
    std::vector<Cycles> fuIntAlu_;
    std::vector<Cycles> fuIntMul_;
    std::vector<Cycles> fuFpAlu_;
    std::vector<Cycles> fuFpMul_;
    std::size_t windowHead_ = 0;
    std::size_t lsqHead_ = 0;
    std::size_t storeHead_ = 0;
    std::size_t mshrHead_ = 0;
    std::uint64_t unavailableLoads_ = 0;
};

} // namespace lp

#endif // LP_UARCH_CORE_HH
