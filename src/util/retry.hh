/**
 * @file
 * The one place transient-error retry policy lives. Every I/O path
 * that used to hand-roll an EINTR/EAGAIN loop (file reads, atomic
 * writes, socket frames) counts its attempts through TransientRetry
 * instead: bounded attempts, exponential backoff for EAGAIN-class
 * stalls, and deterministic jitter (lp::Rng, stream-named) so two
 * retrying workers never thundering-herd in lockstep — and so a
 * fault-injection sweep replays the exact same retry schedule every
 * run.
 *
 * EINTR is retried immediately (the syscall was interrupted, not
 * congested); EAGAIN/EWOULDBLOCK sleeps the backoff. Both draw from
 * one attempt budget, so an `every:1:err:EINTR` injection terminates
 * with a clean hard failure instead of spinning forever.
 */

#ifndef LP_UTIL_RETRY_HH
#define LP_UTIL_RETRY_HH

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/failpoint.hh"
#include "util/rng.hh"

namespace lp
{

struct RetryPolicy
{
    /** Attempt budget: how many failures may be retried. */
    int attempts = 64;

    /** First EAGAIN backoff; doubles per backoff up to maxDelayUs.
     *  EINTR never sleeps. 0 disables sleeping entirely. */
    unsigned baseDelayUs = 200;

    /** Backoff ceiling. */
    unsigned maxDelayUs = 50'000;

    /** Jitter stream seed (deterministic; see lp::Rng). */
    std::uint64_t seed = 0;
};

class TransientRetry
{
  public:
    explicit TransientRetry(const RetryPolicy &policy = {})
        : p_(policy), rng_(policy.seed, "lp-retry-jitter")
    {
    }

    /**
     * Decide whether the caller should retry after failing with
     * @p err. True only for transient errnos with budget remaining;
     * sleeps the (jittered, exponential) backoff before returning
     * when the errno warrants one. On false the caller fails hard.
     */
    bool shouldRetry(int err)
    {
        if (!transientErrno(err) || used_ >= p_.attempts)
            return false;
        ++used_;
        if (err != EINTR && p_.baseDelayUs > 0)
            backoff();
        return true;
    }

    /** Failures retried so far. */
    int used() const { return used_; }

    /** Attempts still available. */
    int remaining() const { return p_.attempts - used_; }

  private:
    void backoff()
    {
        std::uint64_t delay = p_.baseDelayUs;
        for (int i = 1; i < used_ && delay < p_.maxDelayUs; ++i)
            delay *= 2;
        if (delay > p_.maxDelayUs)
            delay = p_.maxDelayUs;
        // +-25% deterministic jitter, never rounding to zero.
        const std::uint64_t half = delay / 2;
        delay = delay - delay / 4 + rng_.nextBounded(half ? half : 1);
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }

    RetryPolicy p_;
    int used_ = 0;
    Rng rng_;
};

} // namespace lp

#endif // LP_UTIL_RETRY_HH
