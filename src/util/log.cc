#include "util/log.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace lp
{

namespace
{

bool quiet_ = false;

void
vlog(const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setQuiet(bool quiet)
{
    quiet_ = quiet;
}

bool
quiet()
{
    return quiet_;
}

void
inform(const char *fmt, ...)
{
    if (quiet_)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (quiet_)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("warn: ", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (u < 0x20) {
            out += strfmt("\\u%04x", static_cast<unsigned>(u));
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace lp
