/**
 * @file
 * Minimal logging: informational/warning messages that benches can
 * silence with setQuiet(), plus printf-style string formatting.
 */

#ifndef LP_UTIL_LOG_HH
#define LP_UTIL_LOG_HH

#include <string>

namespace lp
{

/** Suppress (or re-enable) inform()/warn() output. */
void setQuiet(bool quiet);

/** True when inform()/warn() are suppressed. */
bool quiet();

/** Print an informational message to stderr (unless quiet). */
__attribute__((format(printf, 1, 2))) void inform(const char *fmt, ...);

/** Print a warning to stderr (unless quiet). */
__attribute__((format(printf, 1, 2))) void warn(const char *fmt, ...);

/** Print an error and abort the process. */
__attribute__((format(printf, 1, 2), noreturn)) void
panic(const char *fmt, ...);

/** printf into a std::string. */
__attribute__((format(printf, 1, 2))) std::string
strfmt(const char *fmt, ...);

/**
 * Escape a string for embedding in a JSON string literal: quotes and
 * backslashes are backslash-escaped, control bytes below 0x20 become
 * \uXXXX sequences. Every free-text field in a machine-readable
 * report must pass through this, or a single strerror() message with
 * a quote in it yields unparseable output.
 */
std::string jsonEscape(const std::string &s);

} // namespace lp

#endif // LP_UTIL_LOG_HH
