#include "util/rng.hh"

namespace lp
{

namespace
{

std::uint64_t
hashString(const std::string &s)
{
    // FNV-1a, 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed, const std::string &stream)
    : state_(hashCombine(seed, hashString(stream)))
{
}

std::uint64_t
Rng::next()
{
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Multiply-shift reduction; the bias is negligible for the bounds
    // used here and the result stays platform-independent.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace lp
