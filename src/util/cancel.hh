/**
 * @file
 * Cooperative cancellation and deadlines. A CancelToken is the shared
 * switch between a running campaign and whoever supervises it (a
 * service daemon's watchdog, a signal handler, a test): requesting
 * cancellation is sticky, carries a reason, and is observed at block
 * barriers — the replay itself never tears mid-block, so a cancelled
 * job's manifest stays a valid resume point and a later resumption is
 * bit-identical to the uninterrupted run.
 *
 * ReplayControl bundles the token with a progress heartbeat (bumped
 * once per simulated point) and a fail-stuck switch: a supervisor
 * that sees the heartbeat stall can flip failStuck, which aborts
 * replays parked at interruptible wait points (failpoint-injected
 * hangs modelling I/O stalls) as contained per-cell faults instead of
 * killing the job.
 */

#ifndef LP_UTIL_CANCEL_HH
#define LP_UTIL_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace lp
{

/** Thrown when a run observes its cancellation mid-flight. */
struct CancelledError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * A sticky, thread-safe cancellation switch. The first
 * requestCancel() wins; its reason is what status reports show.
 */
class CancelToken
{
  public:
    /** Request cancellation (first reason wins; later calls no-op). */
    void requestCancel(const std::string &why)
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            if (flag_.load(std::memory_order_relaxed))
                return;
            reason_ = why;
        }
        flag_.store(true, std::memory_order_release);
    }

    /** True once cancellation was requested. One relaxed load. */
    bool cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    /** Why ("" when not cancelled). */
    std::string reason() const
    {
        if (!cancelled())
            return "";
        std::lock_guard<std::mutex> lk(m_);
        return reason_;
    }

    /** Re-arm a finished token for reuse (job resubmission). */
    void reset()
    {
        std::lock_guard<std::mutex> lk(m_);
        flag_.store(false, std::memory_order_relaxed);
        reason_.clear();
    }

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex m_;
    std::string reason_;
};

/**
 * A monotonic deadline: a point on the steady clock a job must not
 * run past. Default-constructed deadlines never expire.
 */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() : tp_(Clock::time_point::max()) {}

    static Deadline never() { return Deadline(); }

    static Deadline in(std::chrono::milliseconds budget)
    {
        Deadline d;
        d.tp_ = Clock::now() + budget;
        return d;
    }

    /** Convenience: a deadline @p ms from now; ms == 0 never expires. */
    static Deadline inMs(std::uint64_t ms)
    {
        return ms ? in(std::chrono::milliseconds(ms)) : never();
    }

    bool unlimited() const
    {
        return tp_ == Clock::time_point::max();
    }

    bool expired() const
    {
        return !unlimited() && Clock::now() >= tp_;
    }

    /** Milliseconds left (0 when expired; INT64_MAX when unlimited). */
    std::int64_t remainingMs() const
    {
        if (unlimited())
            return INT64_MAX;
        const auto left = tp_ - Clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(left)
                .count();
        return ms < 0 ? 0 : ms;
    }

  private:
    Clock::time_point tp_;
};

/**
 * The shared control block between a running replay/campaign and its
 * supervisor. All members are safe to poke from any thread while the
 * run is live.
 */
struct ReplayControl
{
    /** Graceful stop: observed at fold-block barriers. */
    CancelToken cancel;

    /**
     * Heartbeat: incremented once per simulated point. A supervisor
     * that sees this stall while the job claims to be running has
     * found a stuck worker.
     */
    std::atomic<std::uint64_t> progress{0};

    /**
     * Watchdog verdict: abort replays parked at interruptible wait
     * points as per-cell faults. Sticky for the lifetime of the run.
     */
    std::atomic<bool> failStuck{false};
};

} // namespace lp

#endif // LP_UTIL_CANCEL_HH
