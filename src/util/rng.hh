/**
 * @file
 * Deterministic, platform-independent random numbers. Every consumer
 * names its stream so two subsystems seeded from the same master seed
 * never share a sequence (the library must be bit-reproducible: the
 * same seed must yield the same benchmark, sample, and shuffle).
 */

#ifndef LP_UTIL_RNG_HH
#define LP_UTIL_RNG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace lp
{

/** Mix a 64-bit value (splitmix64 finalizer); pure and stateless. */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Seeded, stream-named generator (splitmix64). Deterministic across
 * platforms and compilers; never uses std:: distributions.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed, const std::string &stream = "");

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t state_;
};

} // namespace lp

#endif // LP_UTIL_RNG_HH
