/**
 * @file
 * A pool of parked worker threads that repeatedly runs one job on
 * every worker at once. The replay engine keeps a pool alive for a
 * whole run, so per-block scheduling never pays thread creation; the
 * scheduler itself (atomic chunk counters, decode ring) lives in the
 * job bodies, not here.
 */

#ifndef LP_UTIL_THREADPOOL_HH
#define LP_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lp
{

class ThreadPool
{
  public:
    /** Spawn @p threads parked workers (at least one). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Begin invoking body(worker) once on every worker. Returns
     * immediately so the caller can work alongside the pool (the
     * replay engine folds results while workers simulate); @p body
     * must stay alive until the matching wait().
     */
    void start(const std::function<void(unsigned)> &body);

    /**
     * Block until every worker finished the started job; the first
     * exception any worker threw is rethrown here.
     */
    void wait();

    /** start() + wait(). */
    void run(const std::function<void(unsigned)> &body);

  private:
    void workerLoop(unsigned id);

    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    const std::function<void(unsigned)> *job_ = nullptr;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool active_ = false;
    bool shutdown_ = false;
    std::exception_ptr error_;
};

} // namespace lp

#endif // LP_UTIL_THREADPOOL_HH
