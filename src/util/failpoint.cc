#include "util/failpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/log.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LP_HAVE_UNISTD 1
#else
#define LP_HAVE_UNISTD 0
#endif

namespace lp
{

namespace detail
{
std::atomic<int> failpointsArmedCount{0};
} // namespace detail

namespace
{

struct Site
{
    FailpointSpec spec;
    std::uint64_t hits = 0;
};

// The registry is deliberately simple: sites only consult it behind
// the failpointsArmed() fast check, so the mutex is never contended
// in a disarmed process.
std::mutex gMutex;
std::map<std::string, Site> &
sites()
{
    static std::map<std::string, Site> s;
    return s;
}

int
parseErrno(const std::string &name)
{
    if (name == "EIO")
        return EIO;
    if (name == "EINTR")
        return EINTR;
    if (name == "EAGAIN")
        return EAGAIN;
    if (name == "ENOSPC")
        return ENOSPC;
    if (name == "ENOENT")
        return ENOENT;
    if (name == "EACCES")
        return EACCES;
    try {
        std::size_t used = 0;
        const int v = std::stoi(name, &used);
        if (used == name.size() && v > 0)
            return v;
    } catch (const std::exception &) {
    }
    throw std::invalid_argument(
        strfmt("failpoint: unknown errno '%s'", name.c_str()));
}

FailpointSpec
parseSpec(const std::string &text)
{
    // <trigger>:<n>:<action>[:<errno>]
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
    if (parts.size() < 3)
        throw std::invalid_argument(
            strfmt("failpoint: malformed trigger '%s' (want "
                   "<trigger>:<n>:<action>)",
                   text.c_str()));

    FailpointSpec spec;
    if (parts[0] == "hit")
        spec.trigger = FailpointSpec::Trigger::nth;
    else if (parts[0] == "every")
        spec.trigger = FailpointSpec::Trigger::every;
    else
        throw std::invalid_argument(
            strfmt("failpoint: unknown trigger '%s'", parts[0].c_str()));
    try {
        std::size_t used = 0;
        const unsigned long long n = std::stoull(parts[1], &used);
        if (used != parts[1].size() || n == 0)
            throw std::invalid_argument("n");
        spec.n = n;
    } catch (const std::exception &) {
        throw std::invalid_argument(
            strfmt("failpoint: bad hit count '%s'", parts[1].c_str()));
    }

    if (parts[2] == "crash") {
        spec.action = FailpointSpec::Action::crash;
    } else if (parts[2] == "hang") {
        spec.action = FailpointSpec::Action::hang;
    } else if (parts[2] == "short") {
        spec.action = FailpointSpec::Action::shortOp;
    } else if (parts[2] == "err") {
        spec.action = FailpointSpec::Action::error;
        spec.err = parts.size() > 3 ? parseErrno(parts[3]) : EIO;
    } else {
        throw std::invalid_argument(
            strfmt("failpoint: unknown action '%s'", parts[2].c_str()));
    }
    if (parts.size() > 4 ||
        (parts.size() == 4 && parts[2] != "err"))
        throw std::invalid_argument(
            strfmt("failpoint: trailing garbage in '%s'", text.c_str()));
    return spec;
}

// LP_FAILPOINTS is loaded once, before main() runs work, by this
// static initializer; it only touches this file's own globals, so
// initialization order is safe. A malformed value panics: a typo'd
// fault sweep must fail loudly, not silently test nothing.
const bool gEnvLoaded = []() {
    const char *v = std::getenv("LP_FAILPOINTS");
    if (v && *v) {
        try {
            armFailpointsFromSpec(v);
        } catch (const std::exception &e) {
            panic("LP_FAILPOINTS: %s", e.what());
        }
    }
    return true;
}();

} // namespace

FailpointOutcome
failpointFire(const char *site)
{
    FailpointOutcome out;
    FailpointSpec spec;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lk(gMutex);
        auto it = sites().find(site);
        if (it == sites().end())
            return out;
        Site &s = it->second;
        ++s.hits;
        spec = s.spec;
        fire = spec.trigger == FailpointSpec::Trigger::nth
                   ? s.hits == spec.n
                   : s.hits % spec.n == 0;
    }
    if (!fire)
        return out;
    switch (spec.action) {
    case FailpointSpec::Action::crash:
        // A real crash: no stream flushing, no atexit, no stack
        // unwinding — buffered writes die with the process.
        std::fprintf(stderr, "failpoint: crashing at '%s'\n", site);
#if LP_HAVE_UNISTD
        ::_exit(failpointCrashStatus);
#else
        std::_Exit(failpointCrashStatus);
#endif
    case FailpointSpec::Action::shortOp:
        out.shortOp = true;
        return out;
    case FailpointSpec::Action::hang:
        out.hang = true;
        return out;
    case FailpointSpec::Action::error:
    default:
        out.fail = true;
        out.err = spec.err;
        return out;
    }
}

void
armFailpoint(const std::string &site, const FailpointSpec &spec)
{
    std::lock_guard<std::mutex> lk(gMutex);
    auto it = sites().find(site);
    if (it == sites().end()) {
        sites().emplace(site, Site{spec, 0});
        detail::failpointsArmedCount.fetch_add(
            1, std::memory_order_relaxed);
    } else {
        it->second = Site{spec, 0};
    }
}

void
disarmFailpoint(const std::string &site)
{
    std::lock_guard<std::mutex> lk(gMutex);
    if (sites().erase(site))
        detail::failpointsArmedCount.fetch_sub(
            1, std::memory_order_relaxed);
}

void
disarmAllFailpoints()
{
    std::lock_guard<std::mutex> lk(gMutex);
    detail::failpointsArmedCount.fetch_sub(
        static_cast<int>(sites().size()), std::memory_order_relaxed);
    sites().clear();
}

std::uint64_t
failpointHits(const std::string &site)
{
    std::lock_guard<std::mutex> lk(gMutex);
    const auto it = sites().find(site);
    return it == sites().end() ? 0 : it->second.hits;
}

void
armFailpointsFromSpec(const std::string &spec)
{
    std::size_t start = 0;
    while (start < spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(
                strfmt("failpoint: malformed spec '%s' (want "
                       "site=trigger:n:action)",
                       item.c_str()));
        armFailpoint(item.substr(0, eq),
                     parseSpec(item.substr(eq + 1)));
    }
}

bool
transientErrno(int err)
{
    return err == EINTR || err == EAGAIN
#ifdef EWOULDBLOCK
           || err == EWOULDBLOCK
#endif
        ;
}

} // namespace lp
