#include "util/threadpool.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lp
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(threads, 1u);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        shutdown_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop(unsigned id)
{
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(unsigned)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvStart_.wait(lk, [&]() {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
        }
        try {
            (*job)(id);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!error_)
                error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--running_ == 0)
                cvDone_.notify_all();
        }
    }
}

void
ThreadPool::start(const std::function<void(unsigned)> &body)
{
    std::lock_guard<std::mutex> lk(m_);
    if (active_)
        throw std::logic_error("ThreadPool: job already running");
    job_ = &body;
    error_ = nullptr;
    running_ = size();
    active_ = true;
    ++generation_;
    cvStart_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(m_);
    if (!active_)
        return;
    cvDone_.wait(lk, [&]() { return running_ == 0; });
    active_ = false;
    job_ = nullptr;
    if (error_)
        std::rethrow_exception(std::exchange(error_, nullptr));
}

void
ThreadPool::run(const std::function<void(unsigned)> &body)
{
    start(body);
    wait();
}

} // namespace lp
