/**
 * @file
 * Deterministic fault injection. A failpoint is a named site in a
 * read/write path; a trigger armed on that site makes the nth (or
 * every kth) hit misbehave in a controlled way — return an injected
 * errno, simulate a short read/write, or kill the process outright —
 * so crash-safety and recovery paths are tested against real
 * mid-operation failures instead of being claimed.
 *
 * Arming is programmatic (armFailpoint / disarmAllFailpoints, the
 * test-suite path) or environmental: LP_FAILPOINTS holds a
 * ';'-separated list of specs, each
 *
 *     <site>=<trigger>:<n>:<action>
 *
 *     trigger  hit    fire on exactly the nth hit (1-based)
 *              every  fire on every nth hit
 *     action   crash         _exit(failpointCrashStatus) at the site
 *              short         simulate a short read/write (one chunk)
 *              hang          park the hitting thread at the site (a
 *                            stuck worker); the site waits
 *                            interruptibly — a supervisor watchdog
 *                            aborts it as a contained fault, and
 *                            disarming the site releases it
 *              err[:CODE]    inject errno CODE (EIO, EINTR, EAGAIN,
 *                            ENOSPC, ENOENT, EACCES, or a number;
 *                            default EIO)
 *
 * e.g. LP_FAILPOINTS="io.read=hit:2:err:EINTR;io.fsync=hit:1:crash".
 * A malformed spec panics at startup — a typo must never silently
 * disarm a fault sweep.
 *
 * Cost when disarmed: one relaxed atomic load and a predicted branch
 * per site hit (failpointsArmed() below); no site ever takes a lock
 * or touches the registry unless at least one failpoint is armed
 * process-wide. Sites sit on I/O boundaries (per file, per syscall
 * chunk, per record decode), never inside the replay or codec inner
 * loops.
 */

#ifndef LP_UTIL_FAILPOINT_HH
#define LP_UTIL_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace lp
{

/** Exit status of a process killed by a `crash` failpoint action. */
constexpr int failpointCrashStatus = 86;

/** What an armed trigger does when it fires. */
struct FailpointSpec
{
    enum class Trigger
    {
        nth,  //!< fire on exactly the nth hit
        every //!< fire on every nth hit
    };

    enum class Action
    {
        error,   //!< inject errno `err` (I/O sites) / throw (others)
        shortOp, //!< simulate a short read/write
        crash,   //!< _exit(failpointCrashStatus) at the site
        hang     //!< park the hitting thread (an injectable stall)
    };

    Trigger trigger = Trigger::nth;
    std::uint64_t n = 1; //!< which hit(s) fire; 1-based
    Action action = Action::error;
    int err = 5; //!< errno to inject for Action::error (default EIO)
};

/** The outcome a site acts on. Crashes never return. */
struct FailpointOutcome
{
    bool fail = false;    //!< inject an error with errno `err`
    bool shortOp = false; //!< perform a deliberately short operation
    bool hang = false;    //!< park: the site must wait interruptibly
    int err = 0;
};

namespace detail
{
extern std::atomic<int> failpointsArmedCount;
} // namespace detail

/**
 * Fast disarmed-path check every site makes first: true only when at
 * least one failpoint is armed anywhere in the process.
 */
inline bool
failpointsArmed()
{
    return detail::failpointsArmedCount.load(
               std::memory_order_relaxed) > 0;
}

/**
 * Slow path: record a hit on @p site and evaluate its trigger. Only
 * meaningful after failpointsArmed() returned true. A firing `crash`
 * action terminates the process here (stderr note, then
 * _exit(failpointCrashStatus) — no atexit flushing, like a real
 * kill). Thread-safe.
 */
FailpointOutcome failpointFire(const char *site);

/** Arm (or re-arm, resetting the hit count) @p site with @p spec. */
void armFailpoint(const std::string &site, const FailpointSpec &spec);

/** Disarm @p site (no-op when not armed). */
void disarmFailpoint(const std::string &site);

/** Disarm every site and clear all hit counts. */
void disarmAllFailpoints();

/** Hits recorded on @p site since it was (re-)armed. */
std::uint64_t failpointHits(const std::string &site);

/**
 * Parse and arm a ';'-separated LP_FAILPOINTS spec string. Throws
 * std::invalid_argument on malformed input. (The environment variable
 * itself is loaded automatically at startup and panics on a bad
 * spec.)
 */
void armFailpointsFromSpec(const std::string &spec);

/** True for errno values worth an automatic bounded retry. */
bool transientErrno(int err);

} // namespace lp

#endif // LP_UTIL_FAILPOINT_HH
