/**
 * @file
 * Fundamental scalar and buffer types shared by every layer of the
 * live-points library.
 */

#ifndef LP_UTIL_TYPES_HH
#define LP_UTIL_TYPES_HH

#include <cstdint>
#include <vector>

namespace lp
{

/** A byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** A count of core clock cycles. */
using Cycles = std::uint64_t;

/** A static instruction slot identifier (synthetic "PC"). */
using PcIndex = std::uint64_t;

/** An owned byte buffer (serialized records, compressed payloads). */
using Blob = std::vector<std::uint8_t>;

} // namespace lp

#endif // LP_UTIL_TYPES_HH
