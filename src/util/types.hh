/**
 * @file
 * Fundamental scalar and buffer types shared by every layer of the
 * live-points library.
 */

#ifndef LP_UTIL_TYPES_HH
#define LP_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lp
{

/** A byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** A count of core clock cycles. */
using Cycles = std::uint64_t;

/** A static instruction slot identifier (synthetic "PC"). */
using PcIndex = std::uint64_t;

/** An owned byte buffer (serialized records, compressed payloads). */
using Blob = std::vector<std::uint8_t>;

/**
 * A borrowed view of contiguous bytes (C++17 stand-in for
 * std::span<const std::uint8_t>). The referenced storage must outlive
 * the span; the library container hands these out so record access
 * never copies.
 */
struct ByteSpan
{
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;

    ByteSpan() = default;
    ByteSpan(const std::uint8_t *d, std::size_t n) : data(d), size(n) {}
    explicit ByteSpan(const Blob &b) : data(b.data()), size(b.size()) {}

    bool empty() const { return size == 0; }
};

} // namespace lp

#endif // LP_UTIL_TYPES_HH
