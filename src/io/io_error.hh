/**
 * @file
 * The io layer's exception type. Every throw in a read/write path
 * carries the failing path, the role of the file ("library",
 * "campaign manifest", ...), and the errno context formatted through
 * strerror — so a fault-injection test (or an operator's log) sees
 * *which* file failed and *why*, not a bare "short read".
 *
 * transient() distinguishes errors worth a bounded retry (EINTR,
 * EAGAIN) from hard failures; the low-level read/write loops retry
 * transients themselves, and the campaign engine retries transient
 * shard-open failures with backoff before marking cells failed.
 */

#ifndef LP_IO_IO_ERROR_HH
#define LP_IO_IO_ERROR_HH

#include <cstring>
#include <stdexcept>
#include <string>

#include "util/failpoint.hh"
#include "util/log.hh"

namespace lp
{

class IoError : public std::runtime_error
{
  public:
    IoError(const std::string &msg, int err)
        : std::runtime_error(msg), err_(err)
    {
    }

    /** The errno at the failure site (0 when not errno-driven). */
    int errnum() const { return err_; }

    /** True when a bounded retry could plausibly succeed. */
    bool transient() const { return transientErrno(err_); }

  private:
    int err_;
};

/**
 * "cannot <verb> <what> '<path>': <strerror>" — the standard io-layer
 * failure message. @p err == 0 omits the strerror suffix.
 */
inline std::string
ioErrorMsg(const char *verb, const char *what, const std::string &path,
           int err)
{
    if (err == 0)
        return strfmt("cannot %s %s '%s'", verb, what, path.c_str());
    return strfmt("cannot %s %s '%s': %s", verb, what, path.c_str(),
                  std::strerror(err));
}

/** Throw an IoError built by ioErrorMsg(). */
[[noreturn]] inline void
throwIoError(const char *verb, const char *what,
             const std::string &path, int err)
{
    throw IoError(ioErrorMsg(verb, what, path, err), err);
}

} // namespace lp

#endif // LP_IO_IO_ERROR_HH
