#include "io/mapped_file.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/log.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LP_HAVE_MMAP 0
#endif

namespace lp
{

bool
mmapSupported()
{
    return LP_HAVE_MMAP != 0;
}

bool
mmapDisabledByEnv()
{
    const char *v = std::getenv("LP_NO_MMAP");
    return v && v[0] != '\0' && v[0] != '0';
}

bool
hugepagesRequestedByEnv()
{
    const char *v = std::getenv("LP_HUGEPAGES");
    return v && v[0] != '\0' && v[0] != '0';
}

#if LP_HAVE_MMAP

namespace
{

std::size_t
pageSize()
{
    static const std::size_t ps = []() {
        const long v = ::sysconf(_SC_PAGESIZE);
        return v > 0 ? static_cast<std::size_t>(v)
                     : std::size_t{4096};
    }();
    return ps;
}

/** RAII fd so no throw path leaks the descriptor. */
struct FdGuard
{
    int fd;
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

} // namespace

MappedFile
MappedFile::map(const std::string &path)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.mmap.open");
        if (o.fail)
            throwIoError("open for mapping", "file", path, o.err);
    }
    int fd = -1;
    int transientLeft = 64;
    while ((fd = ::open(path.c_str(), O_RDONLY)) < 0) {
        const int err = errno;
        if (transientErrno(err) && transientLeft-- > 0)
            continue;
        throwIoError("open for mapping", "file", path, err);
    }
    FdGuard g{fd};
    struct stat st;
    if (::fstat(g.fd, &st) != 0 || st.st_size < 0)
        throwIoError("stat", "file", path, errno);
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0)
        return MappedFile(nullptr, 0);
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.mmap.map");
        if (o.fail)
            throw IoError(
                strfmt("cannot map file '%s' (%zu bytes): %s",
                       path.c_str(), size, std::strerror(o.err)),
                o.err);
    }
    void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, g.fd, 0);
    if (p == MAP_FAILED) {
        const int err = errno;
        throw IoError(strfmt("cannot map file '%s' (%zu bytes): %s",
                             path.c_str(), size, std::strerror(err)),
                      err);
    }
    return MappedFile(static_cast<std::uint8_t *>(p), size);
}

void
MappedFile::unmap() noexcept
{
    if (data_)
        ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
}

void
MappedFile::adviseSequential() const
{
#if defined(POSIX_MADV_SEQUENTIAL)
    if (data_)
        ::posix_madvise(data_, size_, POSIX_MADV_SEQUENTIAL);
#endif
}

bool
MappedFile::adviseHugepage() const
{
#if defined(MADV_HUGEPAGE)
    // MADV_HUGEPAGE is a Linux madvise() extension, not in the
    // posix_madvise() namespace.
    return data_ && ::madvise(data_, size_, MADV_HUGEPAGE) == 0;
#else
    return false;
#endif
}

void
MappedFile::willNeed(std::size_t offset, std::size_t len) const
{
#if defined(POSIX_MADV_WILLNEED)
    if (!data_ || offset >= size_)
        return;
    len = std::min(len, size_ - offset);
    // Round outward to page boundaries: prefetching a byte means
    // prefetching its page.
    const std::size_t ps = pageSize();
    const std::size_t lo = offset - offset % ps;
    const std::size_t hi = offset + len;
    ::posix_madvise(data_ + lo, hi - lo, POSIX_MADV_WILLNEED);
#else
    (void)offset;
    (void)len;
#endif
}

void
MappedFile::dontNeed(std::size_t offset, std::size_t len) const
{
#if defined(POSIX_MADV_DONTNEED)
    if (!data_ || offset >= size_)
        return;
    len = std::min(len, size_ - offset);
    // Round inward: a page straddling the range boundary may still
    // back a live neighbouring record.
    const std::size_t ps = pageSize();
    const std::size_t lo =
        offset % ps ? offset + (ps - offset % ps) : offset;
    const std::size_t hi = (offset + len) - (offset + len) % ps;
    if (hi > lo)
        ::posix_madvise(data_ + lo, hi - lo, POSIX_MADV_DONTNEED);
#else
    (void)offset;
    (void)len;
#endif
}

#else // !LP_HAVE_MMAP

MappedFile
MappedFile::map(const std::string &path)
{
    throw std::runtime_error(
        strfmt("cannot map '%s': platform has no mmap", path.c_str()));
}

void
MappedFile::unmap() noexcept
{
    data_ = nullptr;
    size_ = 0;
}

void
MappedFile::adviseSequential() const
{
}

bool
MappedFile::adviseHugepage() const
{
    return false;
}

void
MappedFile::willNeed(std::size_t, std::size_t) const
{
}

void
MappedFile::dontNeed(std::size_t, std::size_t) const
{
}

#endif // LP_HAVE_MMAP

MappedFile::~MappedFile()
{
    unmap();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        unmap();
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

} // namespace lp
