/**
 * @file
 * Crash-safe file publication. AtomicFileWriter writes `<path>.tmp`,
 * fsyncs it, renames it over the final path, and fsyncs the parent
 * directory — the full write-temp → fsync → rename → dir-fsync
 * discipline — so a reader never observes a torn file: the target is
 * either the old complete content or the new complete content, even
 * across a crash or power loss at any point. An uncommitted writer
 * (error path, exception unwinding) removes its temp file in the
 * destructor; tempFileName() lets directory scans ignore or sweep
 * temps a crashed process left behind.
 *
 * The checksum footer (appendChecksumFooter / checksummedPayload)
 * adds end-to-end torn-write detection for small metadata files (the
 * LibrarySet index): 16 trailing bytes — footer magic + FNV-1a of the
 * payload — make any truncation or corruption detectable on read, so
 * recovery can distinguish "index is stale/torn, rescan the shards"
 * from "index is fine".
 *
 * Every write syscall retries transient errnos (EINTR, bounded
 * EAGAIN) and continues after short writes; failpoint sites
 * (io.open.write, io.write, io.fsync, io.rename, io.dirsync) cover
 * each step for fault-injection tests.
 */

#ifndef LP_IO_ATOMIC_FILE_HH
#define LP_IO_ATOMIC_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/types.hh"

namespace lp
{

/** FNV-1a over a byte range (the footer and ledger checksum). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size);

/** Bytes appendChecksumFooter() adds (footer magic + checksum). */
constexpr std::size_t checksumFooterBytes = 16;

/** Append the 16-byte integrity footer to @p payload. */
void appendChecksumFooter(Blob &payload);

/**
 * If @p data ends in a valid checksum footer, set @p payloadSize to
 * the payload length (footer stripped) and return true. False means
 * there is no (intact) footer: a torn write, corruption, or a legacy
 * footer-less file.
 */
bool checksummedPayload(const std::uint8_t *data, std::size_t size,
                        std::size_t *payloadSize);

/**
 * True when @p data ends in the footer MAGIC (whether or not the
 * checksum verifies). Distinguishes "corrupt footer — reject" from
 * "no footer at all — a legacy footer-less file".
 */
bool checksumFooterPresent(const std::uint8_t *data, std::size_t size);

class AtomicFileWriter
{
  public:
    /**
     * Start writing `<path>.tmp`. @p what names the file's role in
     * error messages ("library", "library-set index"). Throws IoError
     * when the temp file cannot be created.
     */
    AtomicFileWriter(std::string path, const char *what);

    /** Abandon an uncommitted write: close and unlink the temp. */
    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Append bytes (transients retried; throws IoError on failure). */
    void write(const void *data, std::size_t size);

    /**
     * Flush + fsync the temp, rename it over the final path, and
     * fsync the directory. After commit() returns, the file at the
     * final path is durably the new content. Throws IoError (and
     * cleans up the temp) on any failure.
     */
    void commit();

    /** The temp path this writer stages into (`<path>.tmp`). */
    const std::string &tempPath() const { return tmp_; }

    /** The temp name a final path stages through. */
    static std::string tempFileName(const std::string &path)
    {
        return path + ".tmp";
    }

    /** True when @p fileName looks like a staging temp. */
    static bool isTempFileName(const std::string &fileName);

  private:
    void discard() noexcept;

    std::string path_;
    std::string tmp_;
    const char *what_;
    std::FILE *f_ = nullptr;
    bool committed_ = false;
};

/** One-shot convenience: write @p size bytes atomically to @p path. */
void writeFileAtomic(const std::string &path, const std::uint8_t *data,
                     std::size_t size, const char *what);

/**
 * Fsync the directory containing @p path so a just-renamed entry is
 * durable. Best-effort on platforms without directory fsync.
 */
void syncParentDir(const std::string &path);

} // namespace lp

#endif // LP_IO_ATOMIC_FILE_HH
