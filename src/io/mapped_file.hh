/**
 * @file
 * RAII read-only memory mapping. A MappedFile exposes a whole file as
 * one contiguous byte range without copying it into the heap — the
 * kernel pages bytes in on first touch and can drop clean pages under
 * memory pressure, which is what lets a library (or a fleet of them)
 * larger than RAM back the replay engine.
 *
 * The mapping carries paging hints: sequential readahead for the
 * full-scan paths (contentHash, save), and willNeed()/dontNeed()
 * windows the resident-budget replay mode uses to prefetch ahead of
 * the claim counter and release behind the fold barrier.
 *
 * Platforms without mmap (or runs with LP_NO_MMAP=1 in the
 * environment) report mmapSupported() == false; callers fall back to
 * the owned-buffer path (see io/source.hh). map() on such a platform
 * throws rather than silently copying, so the fallback decision stays
 * with the caller.
 */

#ifndef LP_IO_MAPPED_FILE_HH
#define LP_IO_MAPPED_FILE_HH

#include <cstddef>
#include <string>

#include "util/types.hh"

namespace lp
{

/**
 * True when this build can mmap files at all (compile-time platform
 * support). Independent of the LP_NO_MMAP override.
 */
bool mmapSupported();

/** True when the environment (LP_NO_MMAP=1) disables mapping. */
bool mmapDisabledByEnv();

/**
 * True when the environment (LP_HUGEPAGES=1) asks for transparent
 * hugepage backing on mapped library files. Off by default: THP
 * trades page-fault count for fault latency and hurts sparse access
 * patterns, so it is an explicit knob, measured in ablation_storage.
 */
bool hugepagesRequestedByEnv();

class MappedFile
{
  public:
    /** An empty, unmapped handle. */
    MappedFile() = default;

    /**
     * Map @p path read-only in its entirety. Throws on a missing
     * file, a map failure, or an mmap-less platform (check
     * mmapSupported() first to fall back instead). An empty file maps
     * to a valid zero-length handle.
     */
    static MappedFile map(const std::string &path);

    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool mapped() const { return data_ != nullptr; }

    /** Hint: the whole file will be read front to back. */
    void adviseSequential() const;

    /**
     * Ask the kernel to back the mapping with transparent hugepages
     * (MADV_HUGEPAGE), cutting TLB pressure and fault count on the
     * big sequential scans a replay run makes over a library file.
     * Returns true when the hint was applied, false where the
     * platform lacks it — purely advisory either way.
     */
    bool adviseHugepage() const;

    /** Hint: [offset, offset+len) is needed soon — start paging in. */
    void willNeed(std::size_t offset, std::size_t len) const;

    /**
     * Hint: [offset, offset+len) is done with — the kernel may drop
     * the pages. Rounded *inward* to page boundaries so a partial
     * page shared with a still-live neighbour is never dropped.
     * Purely advisory: a released range reads back correctly (it just
     * faults in again).
     */
    void dontNeed(std::size_t offset, std::size_t len) const;

  private:
    MappedFile(std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    void unmap() noexcept;

    std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace lp

#endif // LP_IO_MAPPED_FILE_HH
