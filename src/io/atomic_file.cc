#include "io/atomic_file.hh"

#include <cerrno>
#include <cstring>

#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/retry.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define LP_HAVE_FSYNC 0
#endif

namespace lp
{

namespace
{

// "LPFOOT1\n" little-endian: identifies the 16-byte integrity footer.
constexpr std::uint64_t kFooterMagic = 0x0a31'544f'4f46'504cull;

void
putU64le(std::uint8_t *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64le(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i)
        h = (h ^ data[i]) * 0x100000001b3ull;
    return h;
}

void
appendChecksumFooter(Blob &payload)
{
    std::uint8_t footer[checksumFooterBytes];
    putU64le(footer, kFooterMagic);
    putU64le(footer + 8, fnv1a(payload.data(), payload.size()));
    payload.insert(payload.end(), footer,
                   footer + checksumFooterBytes);
}

bool
checksummedPayload(const std::uint8_t *data, std::size_t size,
                   std::size_t *payloadSize)
{
    if (size < checksumFooterBytes)
        return false;
    const std::size_t n = size - checksumFooterBytes;
    if (getU64le(data + n) != kFooterMagic)
        return false;
    if (getU64le(data + n + 8) != fnv1a(data, n))
        return false;
    *payloadSize = n;
    return true;
}

bool
checksumFooterPresent(const std::uint8_t *data, std::size_t size)
{
    return size >= checksumFooterBytes &&
           getU64le(data + size - checksumFooterBytes) ==
               kFooterMagic;
}

AtomicFileWriter::AtomicFileWriter(std::string path, const char *what)
    : path_(std::move(path)), tmp_(tempFileName(path_)), what_(what)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.open.write");
        if (o.fail)
            throwIoError("create temp for", what_, tmp_, o.err);
    }
    f_ = std::fopen(tmp_.c_str(), "wb");
    if (!f_)
        throwIoError("create temp for", what_, tmp_, errno);
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (!committed_)
        discard();
}

void
AtomicFileWriter::discard() noexcept
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    std::remove(tmp_.c_str());
}

bool
AtomicFileWriter::isTempFileName(const std::string &fileName)
{
    const char *suffix = ".tmp";
    const std::size_t n = std::strlen(suffix);
    return fileName.size() > n &&
           fileName.compare(fileName.size() - n, n, suffix) == 0;
}

void
AtomicFileWriter::write(const void *data, std::size_t size)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    TransientRetry retry;
    while (size > 0) {
        std::size_t want = size;
        if (failpointsArmed()) {
            const FailpointOutcome o = failpointFire("io.write");
            if (o.fail) {
                if (retry.shouldRetry(o.err))
                    continue;
                const int err = o.err;
                discard();
                throwIoError("write", what_, tmp_, err);
            }
            if (o.shortOp && want > 1)
                want /= 2;
        }
        const std::size_t n = std::fwrite(p, 1, want, f_);
        p += n;
        size -= n;
        if (n == want)
            continue;
        const int err = errno;
        if (retry.shouldRetry(err)) {
            std::clearerr(f_);
            continue;
        }
        discard();
        throwIoError("write", what_, tmp_, err ? err : EIO);
    }
}

void
AtomicFileWriter::commit()
{
    if (std::fflush(f_) != 0) {
        const int err = errno;
        discard();
        throwIoError("flush", what_, tmp_, err);
    }
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.fsync");
        if (o.fail) {
            const int err = o.err;
            discard();
            throwIoError("sync", what_, tmp_, err);
        }
    }
#if LP_HAVE_FSYNC
    {
        TransientRetry retry;
        while (::fsync(::fileno(f_)) != 0) {
            const int err = errno;
            if (!retry.shouldRetry(err)) {
                discard();
                throwIoError("sync", what_, tmp_, err);
            }
        }
    }
#endif
    {
        std::FILE *f = f_;
        f_ = nullptr;
        if (std::fclose(f) != 0) {
            const int err = errno;
            discard();
            throwIoError("close", what_, tmp_, err);
        }
    }
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.rename");
        if (o.fail) {
            const int err = o.err;
            discard();
            throwIoError("publish", what_, path_, err);
        }
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
        const int err = errno;
        discard();
        throwIoError("publish", what_, path_, err);
    }
    committed_ = true;
    // The rename is visible; make it durable. A failure here is
    // reported (the caller's durability contract is broken) but the
    // temp is gone — the file at path_ is complete either way.
    syncParentDir(path_);
}

void
syncParentDir(const std::string &path)
{
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.dirsync");
        if (o.fail)
            throwIoError("sync directory of", "file", path, o.err);
    }
#if LP_HAVE_FSYNC
    std::string dir = path;
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return; // best-effort: an unreadable parent is not an error
    TransientRetry retry;
    while (::fsync(fd) != 0) {
        const int err = errno;
        if (!retry.shouldRetry(err)) {
            ::close(fd);
            throwIoError("sync directory of", "file", path, err);
        }
    }
    ::close(fd);
#endif
}

void
writeFileAtomic(const std::string &path, const std::uint8_t *data,
                std::size_t size, const char *what)
{
    AtomicFileWriter w(path, what);
    w.write(data, size);
    w.commit();
}

} // namespace lp
