/**
 * @file
 * Pluggable backing storage for on-disk library containers. A
 * LibrarySource owns the bytes of one container file and exposes them
 * as a single contiguous range; LivePointLibrary parses records as
 * zero-copy spans into that range regardless of which backend holds
 * it:
 *
 *  - **OwnedBufferSource** — the whole file slurped into one heap
 *    Blob (the PR-3 behaviour, and the LP_NO_MMAP / mmap-less
 *    fallback). Resident memory equals file size.
 *  - **MappedFileSource** — the file mmap'ed read-only. Resident
 *    memory is whatever the kernel keeps paged in; prefetch/release
 *    hints let the replay engine stream a library larger than RAM
 *    through a bounded window.
 *
 * openLibrarySource() picks the backend: an explicit request, or
 * (auto) mmap when the platform supports it and LP_NO_MMAP is unset,
 * falling back to the owned buffer otherwise — including when a
 * particular mmap attempt fails at runtime.
 */

#ifndef LP_IO_SOURCE_HH
#define LP_IO_SOURCE_HH

#include <memory>
#include <string>

#include "io/mapped_file.hh"
#include "util/types.hh"

namespace lp
{

/** How a library container's bytes are held in memory. */
enum class StorageBackend
{
    autoSelect, //!< mmap when available, owned buffer otherwise
    buffer,     //!< read the whole file into the heap
    mapped      //!< mmap read-only (throws where unsupported)
};

/** Human-readable backend name ("auto" / "owned-buffer" / "mmap"). */
const char *storageBackendName(StorageBackend b);

class LibrarySource
{
  public:
    virtual ~LibrarySource() = default;

    virtual const std::uint8_t *data() const = 0;
    virtual std::size_t size() const = 0;

    /** Backend name for diagnostics ("owned-buffer" / "mmap"). */
    virtual const char *kind() const = 0;

    /** True when the bytes are a file mapping, not heap storage. */
    virtual bool mapped() const { return false; }

    /** True when the LP_HUGEPAGES hint was requested and applied. */
    virtual bool hugepagesApplied() const { return false; }

    /**
     * Heap bytes this source pins regardless of access pattern. A
     * mapping pins none (the kernel pages on demand); an owned buffer
     * pins its whole size.
     */
    virtual std::size_t pinnedBytes() const { return size(); }

    /** Hint: [offset, offset+len) will be read soon. */
    virtual void prefetch(std::size_t offset, std::size_t len) const
    {
        (void)offset;
        (void)len;
    }

    /** Hint: [offset, offset+len) will not be read again soon. */
    virtual void release(std::size_t offset, std::size_t len) const
    {
        (void)offset;
        (void)len;
    }
};

/** The whole container file in one heap buffer. */
class OwnedBufferSource final : public LibrarySource
{
  public:
    explicit OwnedBufferSource(Blob data) : data_(std::move(data)) {}

    const std::uint8_t *data() const override { return data_.data(); }
    std::size_t size() const override { return data_.size(); }
    const char *kind() const override { return "owned-buffer"; }

  private:
    Blob data_;
};

/** The container file mmap'ed read-only. */
class MappedFileSource final : public LibrarySource
{
  public:
    explicit MappedFileSource(MappedFile file) : file_(std::move(file))
    {
        file_.adviseSequential();
        if (hugepagesRequestedByEnv())
            hugepages_ = file_.adviseHugepage();
    }

    /** True when the LP_HUGEPAGES hint was requested and applied. */
    bool hugepagesApplied() const override { return hugepages_; }

    const std::uint8_t *data() const override { return file_.data(); }
    std::size_t size() const override { return file_.size(); }
    const char *kind() const override { return "mmap"; }
    bool mapped() const override { return true; }
    std::size_t pinnedBytes() const override { return 0; }

    void prefetch(std::size_t offset, std::size_t len) const override
    {
        file_.willNeed(offset, len);
    }

    void release(std::size_t offset, std::size_t len) const override
    {
        file_.dontNeed(offset, len);
    }

  private:
    MappedFile file_;
    bool hugepages_ = false;
};

/**
 * Open @p path under @p backend. autoSelect maps when the platform
 * can and LP_NO_MMAP is unset, and degrades to the owned buffer when
 * the mmap attempt itself fails; an explicit `mapped` request
 * propagates the failure instead. Throws when the file cannot be
 * read at all.
 */
std::shared_ptr<const LibrarySource>
openLibrarySource(const std::string &path, StorageBackend backend);

/**
 * Read all of @p path into a heap buffer, throwing on a missing file
 * or short read; @p what names the file's role in error messages
 * ("library", "library-set index").
 */
Blob readWholeFile(const std::string &path, const char *what);

} // namespace lp

#endif // LP_IO_SOURCE_HH
