#include "io/source.hh"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/log.hh"

namespace lp
{

Blob
readWholeFile(const std::string &path, const char *what)
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec)
        throw std::runtime_error(
            strfmt("cannot open %s '%s'", what, path.c_str()));
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error(
            strfmt("cannot open %s '%s'", what, path.c_str()));
    Blob data(static_cast<std::size_t>(size));
    const bool ok = data.empty() ||
                    std::fread(data.data(), 1, data.size(), f) ==
                        data.size();
    std::fclose(f);
    if (!ok)
        throw std::runtime_error(
            strfmt("short read from %s '%s'", what, path.c_str()));
    return data;
}

const char *
storageBackendName(StorageBackend b)
{
    switch (b) {
    case StorageBackend::buffer:
        return "owned-buffer";
    case StorageBackend::mapped:
        return "mmap";
    case StorageBackend::autoSelect:
    default:
        return "auto";
    }
}

std::shared_ptr<const LibrarySource>
openLibrarySource(const std::string &path, StorageBackend backend)
{
    const bool wantMap =
        backend == StorageBackend::mapped ||
        (backend == StorageBackend::autoSelect && mmapSupported() &&
         !mmapDisabledByEnv());
    if (wantMap) {
        try {
            return std::make_shared<MappedFileSource>(
                MappedFile::map(path));
        } catch (const std::exception &) {
            // A runtime map failure (exotic filesystem, exhausted
            // address space) degrades gracefully under autoSelect;
            // an explicit mmap request surfaces it.
            if (backend == StorageBackend::mapped)
                throw;
        }
    }
    return std::make_shared<OwnedBufferSource>(
        readWholeFile(path, "library"));
}

} // namespace lp
