#include "io/source.hh"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/log.hh"
#include "util/retry.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LP_HAVE_POSIX_IO 0
#endif

namespace lp
{

Blob
readWholeFile(const std::string &path, const char *what)
{
#if LP_HAVE_POSIX_IO
    if (failpointsArmed()) {
        const FailpointOutcome o = failpointFire("io.open.read");
        if (o.fail)
            throwIoError("open", what, path, o.err);
    }
    int fd = -1;
    {
        TransientRetry retry;
        while ((fd = ::open(path.c_str(), O_RDONLY)) < 0) {
            const int err = errno;
            if (!retry.shouldRetry(err))
                throwIoError("open", what, path, err);
        }
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        const int err = errno;
        ::close(fd);
        throwIoError("stat", what, path, err);
    }
    Blob data(static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    TransientRetry retry;
    while (got < data.size()) {
        std::size_t want = data.size() - got;
        if (failpointsArmed()) {
            const FailpointOutcome o = failpointFire("io.read");
            if (o.fail) {
                if (retry.shouldRetry(o.err))
                    continue;
                ::close(fd);
                throwIoError("read", what, path, o.err);
            }
            // A short read: deliver only part of the request once;
            // the loop reads the remainder — which is exactly the
            // resilience the retry loop exists to prove.
            if (o.shortOp && want > 1)
                want /= 2;
        }
        const ::ssize_t n = ::read(fd, data.data() + got, want);
        if (n < 0) {
            const int err = errno;
            if (retry.shouldRetry(err))
                continue;
            ::close(fd);
            throwIoError("read", what, path, err);
        }
        if (n == 0) {
            // EOF before the stat size: the file shrank under us.
            ::close(fd);
            throw IoError(
                strfmt("unexpected end of %s '%s': got %zu of %zu "
                       "bytes",
                       what, path.c_str(), got, data.size()),
                0);
        }
        got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return data;
#else
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec)
        throwIoError("open", what, path, ec.value());
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throwIoError("open", what, path, errno);
    Blob data(static_cast<std::size_t>(size));
    std::size_t got = 0;
    while (got < data.size()) {
        const std::size_t n = std::fread(data.data() + got, 1,
                                         data.size() - got, f);
        if (n == 0) {
            const int err = errno;
            std::fclose(f);
            throwIoError("read", what, path, err ? err : EIO);
        }
        got += n;
    }
    std::fclose(f);
    return data;
#endif
}

const char *
storageBackendName(StorageBackend b)
{
    switch (b) {
    case StorageBackend::buffer:
        return "owned-buffer";
    case StorageBackend::mapped:
        return "mmap";
    case StorageBackend::autoSelect:
    default:
        return "auto";
    }
}

std::shared_ptr<const LibrarySource>
openLibrarySource(const std::string &path, StorageBackend backend)
{
    const bool wantMap =
        backend == StorageBackend::mapped ||
        (backend == StorageBackend::autoSelect && mmapSupported() &&
         !mmapDisabledByEnv());
    if (wantMap) {
        try {
            return std::make_shared<MappedFileSource>(
                MappedFile::map(path));
        } catch (const std::exception &) {
            // A runtime map failure (exotic filesystem, exhausted
            // address space) degrades gracefully under autoSelect;
            // an explicit mmap request surfaces it.
            if (backend == StorageBackend::mapped)
                throw;
        }
    }
    return std::make_shared<OwnedBufferSource>(
        readWholeFile(path, "library"));
}

} // namespace lp
