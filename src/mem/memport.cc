#include "mem/memport.hh"

#include <cstring>

namespace lp
{

SparseMemory::Page &
SparseMemory::page(Addr a)
{
    const std::uint64_t idx = a / pageBytes;
    auto it = pages_.find(idx);
    if (it == pages_.end())
        it = pages_.emplace(idx, std::make_unique<Page>()).first;
    return *it->second;
}

std::uint64_t
SparseMemory::read64(Addr a)
{
    // Accesses are 8-aligned by construction; straddling reads take
    // the slow path.
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::uint64_t v;
        std::memcpy(&v, &page(a).data[a % pageBytes], 8);
        return v;
    }
    std::uint8_t tmp[8];
    readBytes(a, tmp, 8);
    std::uint64_t v;
    std::memcpy(&v, tmp, 8);
    return v;
}

void
SparseMemory::write64(Addr a, std::uint64_t v)
{
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::memcpy(&page(a).data[a % pageBytes], &v, 8);
        return;
    }
    std::uint8_t tmp[8];
    std::memcpy(tmp, &v, 8);
    writeBytes(a, tmp, 8);
}

void
SparseMemory::readBytes(Addr a, std::uint8_t *out, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(out, &page(a).data[off], chunk);
        a += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
SparseMemory::writeBytes(Addr a, const std::uint8_t *data, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(&page(a).data[off], data, chunk);
        a += chunk;
        data += chunk;
        n -= chunk;
    }
}

std::uint64_t
SparseMemory::footprintBytes() const
{
    return pages_.size() * pageBytes;
}

MemoryImage::MemoryImage(unsigned blockBytes) : blockBytes_(blockBytes) {}

void
MemoryImage::captureBeforeAccess(SparseMemory &mem, Addr a)
{
    const Addr base = a - (a % blockBytes_);
    auto it = blocks_.lower_bound(base);
    if (it != blocks_.end() && it->first == base)
        return;
    std::vector<std::uint8_t> data(blockBytes_);
    mem.readBytes(base, data.data(), data.size());
    blocks_.emplace_hint(it, base, std::move(data));
}

bool
MemoryImage::contains(Addr a) const
{
    return blocks_.count(a - (a % blockBytes_)) != 0;
}

std::uint64_t
MemoryImage::payloadBytes() const
{
    return static_cast<std::uint64_t>(blocks_.size()) * blockBytes_;
}

void
MemoryImage::applyTo(SparseMemory &mem) const
{
    for (const auto &kv : blocks_)
        mem.writeBytes(kv.first, kv.second.data(), kv.second.size());
}

void
MemoryImage::forEach(
    const std::function<void(Addr, const std::vector<std::uint8_t> &)> &fn)
    const
{
    for (const auto &kv : blocks_)
        fn(kv.first, kv.second);
}

void
MemoryImage::serialize(DerWriter &w) const
{
    w.beginSequence();
    w.putUint(blockBytes_);
    w.putUint(blocks_.size());
    for (const auto &kv : blocks_) {
        w.putUint(kv.first);
        w.putBytes(kv.second.data(), kv.second.size());
    }
    w.endSequence();
}

MemoryImage
MemoryImage::deserialize(DerReader &r)
{
    DerReader seq = r.getSequence();
    MemoryImage img(static_cast<unsigned>(seq.getUint()));
    const std::uint64_t count = seq.getUint();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr base = seq.getUint();
        img.blocks_.emplace(base, seq.getBytes());
    }
    return img;
}

} // namespace lp
