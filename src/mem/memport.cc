#include "mem/memport.hh"

#include <cstring>

namespace lp
{

SparseMemory::Page &
SparseMemory::page(Addr a)
{
    const std::uint64_t idx = a / pageBytes;
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
        it = pages_.emplace(idx, std::make_unique<Page>()).first;
        it->second->epoch = epoch_;
    }
    Page &p = *it->second;
    if (p.epoch != epoch_) {
        // First touch since a reset(): zero the recycled page.
        std::memset(p.data, 0, pageBytes);
        p.epoch = epoch_;
    }
    return p;
}

std::uint64_t
SparseMemory::read64(Addr a)
{
    // Accesses are 8-aligned by construction; straddling reads take
    // the slow path.
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::uint64_t v;
        std::memcpy(&v, &page(a).data[a % pageBytes], 8);
        return v;
    }
    std::uint8_t tmp[8];
    readBytes(a, tmp, 8);
    std::uint64_t v;
    std::memcpy(&v, tmp, 8);
    return v;
}

void
SparseMemory::write64(Addr a, std::uint64_t v)
{
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::memcpy(&page(a).data[a % pageBytes], &v, 8);
        return;
    }
    std::uint8_t tmp[8];
    std::memcpy(tmp, &v, 8);
    writeBytes(a, tmp, 8);
}

void
SparseMemory::readBytes(Addr a, std::uint8_t *out, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(out, &page(a).data[off], chunk);
        a += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
SparseMemory::writeBytes(Addr a, const std::uint8_t *data, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(&page(a).data[off], data, chunk);
        a += chunk;
        data += chunk;
        n -= chunk;
    }
}

void
SparseMemory::reset()
{
    ++epoch_;
}

std::uint64_t
SparseMemory::footprintBytes() const
{
    return pages_.size() * pageBytes;
}

SparseMemory
SparseMemory::clone() const
{
    SparseMemory out;
    out.pages_.reserve(pages_.size());
    for (const auto &kv : pages_) {
        if (kv.second->epoch != epoch_)
            continue; // logically zero: first touch re-creates it
        auto p = std::make_unique<Page>();
        std::memcpy(p->data, kv.second->data, pageBytes);
        out.pages_.emplace(kv.first, std::move(p));
    }
    return out;
}

OverlayMemPort::OverlayMemPort(SparseMemory &base,
                               std::size_t reserveWrites)
    : base_(base)
{
    writes_.reserve(reserveWrites);
}

std::uint64_t
OverlayMemPort::read64(Addr a)
{
    const auto it = writes_.find(a);
    return it == writes_.end() ? base_.read64(a) : it->second;
}

void
OverlayMemPort::write64(Addr a, std::uint64_t v)
{
    writes_[a] = v;
}

MemoryImage::MemoryImage(unsigned blockBytes) : blockBytes_(blockBytes) {}

void
MemoryImage::captureBeforeAccess(SparseMemory &mem, Addr a)
{
    const Addr base = a - (a % blockBytes_);
    auto it = blocks_.lower_bound(base);
    if (it != blocks_.end() && it->first == base)
        return;
    std::vector<std::uint8_t> data(blockBytes_);
    mem.readBytes(base, data.data(), data.size());
    blocks_.emplace_hint(it, base, std::move(data));
}

bool
MemoryImage::contains(Addr a) const
{
    return blocks_.count(a - (a % blockBytes_)) != 0;
}

std::uint64_t
MemoryImage::payloadBytes() const
{
    return static_cast<std::uint64_t>(blocks_.size()) * blockBytes_;
}

void
MemoryImage::applyTo(SparseMemory &mem) const
{
    for (const auto &kv : blocks_)
        mem.writeBytes(kv.first, kv.second.data(), kv.second.size());
}

void
MemoryImage::forEach(
    const std::function<void(Addr, const std::vector<std::uint8_t> &)> &fn)
    const
{
    for (const auto &kv : blocks_)
        fn(kv.first, kv.second);
}

void
MemoryImage::serialize(DerWriter &w) const
{
    w.beginSequence();
    w.putUint(blockBytes_);
    w.putUint(blocks_.size());
    for (const auto &kv : blocks_) {
        w.putUint(kv.first);
        w.putBytes(kv.second.data(), kv.second.size());
    }
    w.endSequence();
}

MemoryImage
MemoryImage::deserialize(DerReader &r)
{
    MemoryImage img;
    deserializeInto(r, img);
    return img;
}

void
MemoryImage::deserializeInto(DerReader &r, MemoryImage &out)
{
    DerReader seq = r.getSequence();
    out.blockBytes_ = static_cast<unsigned>(seq.getUint());
    // Recycle the previous point's payload buffers — block addresses
    // differ point to point, so the map nodes must be rebuilt, but
    // the byte vectors (the bulk of the image) are reused.
    std::vector<std::vector<std::uint8_t>> spare;
    spare.reserve(out.blocks_.size());
    for (auto &kv : out.blocks_)
        spare.push_back(std::move(kv.second));
    out.blocks_.clear();
    const std::uint64_t count = seq.getUint();
    // Blocks were serialized in address order; an end hint keeps each
    // insertion O(1).
    auto hint = out.blocks_.end();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr base = seq.getUint();
        std::vector<std::uint8_t> buf;
        if (!spare.empty()) {
            buf = std::move(spare.back());
            spare.pop_back();
        }
        seq.getBytes(buf);
        hint = out.blocks_.emplace_hint(hint, base, std::move(buf));
    }
}

} // namespace lp
