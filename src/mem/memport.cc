#include "mem/memport.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lp
{

SparseMemory::Page &
SparseMemory::page(Addr a)
{
    const std::uint64_t idx = a / pageBytes;
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
        it = pages_.emplace(idx, std::make_unique<Page>()).first;
        it->second->epoch = epoch_;
    }
    Page &p = *it->second;
    if (p.epoch != epoch_) {
        // First touch since a reset(): zero the recycled page.
        std::memset(p.data, 0, pageBytes);
        p.epoch = epoch_;
    }
    return p;
}

std::uint64_t
SparseMemory::read64(Addr a)
{
    // Accesses are 8-aligned by construction; straddling reads take
    // the slow path.
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::uint64_t v;
        std::memcpy(&v, &page(a).data[a % pageBytes], 8);
        return v;
    }
    std::uint8_t tmp[8];
    readBytes(a, tmp, 8);
    std::uint64_t v;
    std::memcpy(&v, tmp, 8);
    return v;
}

void
SparseMemory::write64(Addr a, std::uint64_t v)
{
    if ((a % pageBytes) + 8 <= pageBytes) {
        std::memcpy(&page(a).data[a % pageBytes], &v, 8);
        return;
    }
    std::uint8_t tmp[8];
    std::memcpy(tmp, &v, 8);
    writeBytes(a, tmp, 8);
}

void
SparseMemory::readBytes(Addr a, std::uint8_t *out, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(out, &page(a).data[off], chunk);
        a += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
SparseMemory::writeBytes(Addr a, const std::uint8_t *data, std::size_t n)
{
    while (n) {
        const std::size_t off = a % pageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageBytes - off);
        std::memcpy(&page(a).data[off], data, chunk);
        a += chunk;
        data += chunk;
        n -= chunk;
    }
}

void
SparseMemory::reset()
{
    ++epoch_;
}

std::uint64_t
SparseMemory::footprintBytes() const
{
    return pages_.size() * pageBytes;
}

SparseMemory
SparseMemory::clone() const
{
    SparseMemory out;
    out.pages_.reserve(pages_.size());
    for (const auto &kv : pages_) {
        if (kv.second->epoch != epoch_)
            continue; // logically zero: first touch re-creates it
        auto p = std::make_unique<Page>();
        std::memcpy(p->data, kv.second->data, pageBytes);
        out.pages_.emplace(kv.first, std::move(p));
    }
    return out;
}

namespace
{

/** Mix an (8-aligned) word address into a table hash. */
inline std::size_t
overlayHash(Addr a)
{
    std::uint64_t h = (a >> 3) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
}

} // namespace

OverlayMemPort::OverlayMemPort(SparseMemory &base,
                               std::size_t reserveWrites)
    : base_(base)
{
    // Power-of-two capacity with load factor <= 1/2.
    std::size_t cap = 16;
    while (cap < reserveWrites * 2)
        cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
}

/**
 * Index of the slot holding @p a, or of the first free slot in its
 * probe chain. Within one epoch the table is insert-only, so linear
 * probing needs no tombstones: a stale-epoch slot is simply free.
 */
std::size_t
OverlayMemPort::probe(Addr a) const
{
    std::size_t i = overlayHash(a) & mask_;
    while (slots_[i].epoch == epoch_ && slots_[i].addr != a)
        i = (i + 1) & mask_;
    return i;
}

std::uint64_t
OverlayMemPort::read64(Addr a)
{
    const Slot &s = slots_[probe(a)];
    return s.epoch == epoch_ ? s.val : base_.read64(a);
}

void
OverlayMemPort::write64(Addr a, std::uint64_t v)
{
    Slot &s = slots_[probe(a)];
    if (s.epoch != epoch_) {
        if ((count_ + 1) * 2 > slots_.size()) {
            grow();
            write64(a, v);
            return;
        }
        ++count_;
        s.addr = a;
        s.epoch = epoch_;
    }
    s.val = v;
}

void
OverlayMemPort::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot &s : old) {
        if (s.epoch != epoch_)
            continue;
        std::size_t i = overlayHash(s.addr) & mask_;
        while (slots_[i].epoch == epoch_)
            i = (i + 1) & mask_;
        slots_[i] = s;
    }
}

void
OverlayMemPort::clear()
{
    count_ = 0;
    if (++epoch_ == 0) {
        // Epoch counter wrapped: stale stamps could alias the fresh
        // epoch, so wipe the table once every 2^32 windows.
        std::fill(slots_.begin(), slots_.end(), Slot{});
        epoch_ = 1;
    }
}

MemoryImage::MemoryImage(unsigned blockBytes) : blockBytes_(blockBytes) {}

void
MemoryImage::captureBeforeAccess(SparseMemory &mem, Addr a)
{
    if (flat_)
        throw std::logic_error("MemoryImage: capture into replay image");
    const Addr base = a - (a % blockBytes_);
    auto it = blocks_.lower_bound(base);
    if (it != blocks_.end() && it->first == base)
        return;
    std::vector<std::uint8_t> data(blockBytes_);
    mem.readBytes(base, data.data(), data.size());
    blocks_.emplace_hint(it, base, std::move(data));
}

bool
MemoryImage::contains(Addr a) const
{
    const Addr base = a - (a % blockBytes_);
    if (flat_)
        return std::binary_search(flatAddrs_.begin(), flatAddrs_.end(),
                                  base);
    return blocks_.count(base) != 0;
}

std::uint64_t
MemoryImage::payloadBytes() const
{
    return static_cast<std::uint64_t>(blockCount()) * blockBytes_;
}

void
MemoryImage::applyTo(SparseMemory &mem) const
{
    if (flat_) {
        // Runs of address-adjacent blocks are contiguous in the
        // payload buffer, so they collapse into single writes.
        const std::size_t n = flatAddrs_.size();
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i + 1;
            while (j < n &&
                   flatAddrs_[j] == flatAddrs_[j - 1] + blockBytes_)
                ++j;
            mem.writeBytes(flatAddrs_[i],
                           flatPayload_.data() + i * blockBytes_,
                           (j - i) * blockBytes_);
            i = j;
        }
        return;
    }
    for (const auto &kv : blocks_)
        mem.writeBytes(kv.first, kv.second.data(), kv.second.size());
}

void
MemoryImage::forEach(
    const std::function<void(Addr, const std::vector<std::uint8_t> &)> &fn)
    const
{
    if (flat_) {
        std::vector<std::uint8_t> tmp(blockBytes_);
        for (std::size_t i = 0; i < flatAddrs_.size(); ++i) {
            std::memcpy(tmp.data(),
                        flatPayload_.data() + i * blockBytes_,
                        blockBytes_);
            fn(flatAddrs_[i], tmp);
        }
        return;
    }
    for (const auto &kv : blocks_)
        fn(kv.first, kv.second);
}

void
MemoryImage::serialize(DerWriter &w) const
{
    w.beginSequence();
    w.putUint(blockBytes_);
    w.putUint(blockCount());
    if (flat_) {
        for (std::size_t i = 0; i < flatAddrs_.size(); ++i) {
            w.putUint(flatAddrs_[i]);
            w.putBytes(flatPayload_.data() + i * blockBytes_,
                       blockBytes_);
        }
    } else {
        for (const auto &kv : blocks_) {
            w.putUint(kv.first);
            w.putBytes(kv.second.data(), kv.second.size());
        }
    }
    w.endSequence();
}

MemoryImage
MemoryImage::deserialize(DerReader &r)
{
    MemoryImage img;
    deserializeInto(r, img);
    return img;
}

void
MemoryImage::deserializeInto(DerReader &r, MemoryImage &out)
{
    DerReader seq = r.getSequence();
    out.blockBytes_ = static_cast<unsigned>(seq.getUint());
    // Replay-path storage: one sorted address array plus a contiguous
    // payload buffer, both recycled point to point (the previous
    // decode-once design rebuilt a map node per block per point).
    out.flat_ = true;
    out.blocks_.clear();
    const std::uint64_t count = seq.getUint();
    out.flatAddrs_.clear();
    out.flatAddrs_.reserve(count);
    out.flatPayload_.resize(count * out.blockBytes_);
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr base = seq.getUint();
        if (!out.flatAddrs_.empty() && base <= out.flatAddrs_.back())
            throw std::runtime_error("memory image: blocks unordered");
        out.flatAddrs_.push_back(base);
        const ByteSpan b = seq.getBytesSpan();
        if (b.size != out.blockBytes_)
            throw std::runtime_error("memory image: block size mismatch");
        std::memcpy(out.flatPayload_.data() + i * out.blockBytes_,
                    b.data, b.size);
    }
}

} // namespace lp
