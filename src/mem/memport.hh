/**
 * @file
 * Flat simulated memory: a sparse page-granular store, the port
 * abstraction the detailed core loads/stores through, and the
 * MemoryImage — the restricted live-state payload of a live-point
 * (the blocks a detailed window touches, captured as of window start).
 */

#ifndef LP_MEM_MEMPORT_HH
#define LP_MEM_MEMPORT_HH

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "codec/der.hh"
#include "util/types.hh"

namespace lp
{

/** Sparse flat memory, zero-filled on first touch; 4KB pages. */
class SparseMemory
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    std::uint64_t read64(Addr a);
    void write64(Addr a, std::uint64_t v);

    void readBytes(Addr a, std::uint8_t *out, std::size_t n);
    void writeBytes(Addr a, const std::uint8_t *data, std::size_t n);

    /**
     * Return to the all-zero initial state while keeping every page
     * allocated, so a pooled replay context reuses its storage across
     * live-points instead of reconstructing the map. O(1): pages are
     * lazily zeroed on their first touch after the reset, so a reset
     * never pays for pages the next point won't reference.
     */
    void reset();

    /**
     * Bytes of memory touched so far (page granularity). On a pooled
     * memory this is a high-water mark: pages recycled across reset()
     * epochs stay counted.
     */
    std::uint64_t footprintBytes() const;

    /**
     * Deep copy of the current logical contents. Pages that are
     * stale under the reset() epoch (i.e. logically zero) are
     * dropped, so the clone's footprint is the live state only. The
     * parallel library builder snapshots the architectural memory at
     * shard boundaries with this.
     */
    SparseMemory clone() const;

  private:
    struct Page
    {
        std::uint64_t epoch = 0; //!< reset generation last zeroed for
        std::uint8_t data[pageBytes] = {};
    };

    Page &page(Addr a);

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    std::uint64_t epoch_ = 0;
};

/** Abstract load/store port into simulated memory. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    virtual std::uint64_t read64(Addr a) = 0;
    virtual void write64(Addr a, std::uint64_t v) = 0;
};

/** Port backed directly by a SparseMemory. */
class DirectMemPort : public MemPort
{
  public:
    explicit DirectMemPort(SparseMemory &mem) : mem_(mem) {}
    std::uint64_t read64(Addr a) override { return mem_.read64(a); }
    void write64(Addr a, std::uint64_t v) override { mem_.write64(a, v); }

  private:
    SparseMemory &mem_;
};

/**
 * A write-private view of a base memory: a detailed window runs on
 * top of the live functional memory without perturbing it (all
 * accesses are 8-aligned 8-byte, so a word-granular overlay is
 * exact). The write set is a flat open-addressing hash table with
 * epoch-stamped slots: every read64 the core issues probes it, so
 * lookups stay in one or two contiguous cache lines, writes allocate
 * nothing once the table has grown to the window's footprint, and
 * clear() is an O(1) epoch bump.
 */
class OverlayMemPort : public MemPort
{
  public:
    explicit OverlayMemPort(SparseMemory &base,
                            std::size_t reserveWrites = 4096);

    std::uint64_t read64(Addr a) override;
    void write64(Addr a, std::uint64_t v) override;

    /** Drop the private writes, keeping the table's capacity. */
    void clear();

  private:
    struct Slot
    {
        Addr addr = 0;
        std::uint64_t val = 0;
        std::uint32_t epoch = 0; //!< live iff == epoch_
    };

    std::size_t probe(Addr a) const;
    void grow();

    SparseMemory &base_;
    std::vector<Slot> slots_; //!< power-of-two size
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
    std::uint32_t epoch_ = 1;
};

/**
 * The memory slice of a live-point: fixed-size blocks captured at
 * first touch (i.e. holding their contents as of capture start).
 * Ordered storage keeps serialization canonical.
 */
class MemoryImage
{
  public:
    explicit MemoryImage(unsigned blockBytes = 64);

    unsigned blockBytes() const { return blockBytes_; }

    /**
     * Record the block containing @p a if it is not captured yet,
     * copying its current contents from @p mem. Called by the
     * functional simulator before applying each access.
     */
    void captureBeforeAccess(SparseMemory &mem, Addr a);

    /** True when the block containing @p a is part of the image. */
    bool contains(Addr a) const;

    /** Total bytes of captured block payload. */
    std::uint64_t payloadBytes() const;

    /** Number of captured blocks. */
    std::size_t blockCount() const
    {
        return flat_ ? flatAddrs_.size() : blocks_.size();
    }

    /** Write every captured block into @p mem. */
    void applyTo(SparseMemory &mem) const;

    /** Visit blocks in address order. */
    void
    forEach(const std::function<void(Addr, const std::vector<std::uint8_t> &)>
                &fn) const;

    void serialize(DerWriter &w) const;
    static MemoryImage deserialize(DerReader &r);

    /** Deserialize into @p out, reusing what storage it can. */
    static void deserializeInto(DerReader &r, MemoryImage &out);

  private:
    unsigned blockBytes_;
    /**
     * Capture-time storage: an ordered map so incremental first-touch
     * capture stays cheap and serialization is canonical.
     */
    std::map<Addr, std::vector<std::uint8_t>> blocks_;
    /**
     * Replay-time storage, used after deserializeInto(): a sorted
     * flat address array plus one contiguous payload buffer. Loading
     * the next point reuses both buffers — zero allocations per point
     * in steady state — and applyTo() can coalesce adjacent blocks
     * into single writes.
     */
    bool flat_ = false;
    std::vector<Addr> flatAddrs_;
    std::vector<std::uint8_t> flatPayload_;
};

} // namespace lp

#endif // LP_MEM_MEMPORT_HH
