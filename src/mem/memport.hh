/**
 * @file
 * Flat simulated memory: a sparse page-granular store, the port
 * abstraction the detailed core loads/stores through, and the
 * MemoryImage — the restricted live-state payload of a live-point
 * (the blocks a detailed window touches, captured as of window start).
 */

#ifndef LP_MEM_MEMPORT_HH
#define LP_MEM_MEMPORT_HH

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "codec/der.hh"
#include "util/types.hh"

namespace lp
{

/** Sparse flat memory, zero-filled on first touch; 4KB pages. */
class SparseMemory
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    std::uint64_t read64(Addr a);
    void write64(Addr a, std::uint64_t v);

    void readBytes(Addr a, std::uint8_t *out, std::size_t n);
    void writeBytes(Addr a, const std::uint8_t *data, std::size_t n);

    /** Bytes of memory touched so far (page granularity). */
    std::uint64_t footprintBytes() const;

  private:
    struct Page
    {
        std::uint8_t data[pageBytes] = {};
    };

    Page &page(Addr a);

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

/** Abstract load/store port into simulated memory. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    virtual std::uint64_t read64(Addr a) = 0;
    virtual void write64(Addr a, std::uint64_t v) = 0;
};

/** Port backed directly by a SparseMemory. */
class DirectMemPort : public MemPort
{
  public:
    explicit DirectMemPort(SparseMemory &mem) : mem_(mem) {}
    std::uint64_t read64(Addr a) override { return mem_.read64(a); }
    void write64(Addr a, std::uint64_t v) override { mem_.write64(a, v); }

  private:
    SparseMemory &mem_;
};

/**
 * The memory slice of a live-point: fixed-size blocks captured at
 * first touch (i.e. holding their contents as of capture start).
 * Ordered storage keeps serialization canonical.
 */
class MemoryImage
{
  public:
    explicit MemoryImage(unsigned blockBytes = 64);

    unsigned blockBytes() const { return blockBytes_; }

    /**
     * Record the block containing @p a if it is not captured yet,
     * copying its current contents from @p mem. Called by the
     * functional simulator before applying each access.
     */
    void captureBeforeAccess(SparseMemory &mem, Addr a);

    /** True when the block containing @p a is part of the image. */
    bool contains(Addr a) const;

    /** Total bytes of captured block payload. */
    std::uint64_t payloadBytes() const;

    /** Number of captured blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Write every captured block into @p mem. */
    void applyTo(SparseMemory &mem) const;

    /** Visit blocks in address order. */
    void
    forEach(const std::function<void(Addr, const std::vector<std::uint8_t> &)>
                &fn) const;

    void serialize(DerWriter &w) const;
    static MemoryImage deserialize(DerReader &r);

  private:
    unsigned blockBytes_;
    std::map<Addr, std::vector<std::uint8_t>> blocks_;
};

} // namespace lp

#endif // LP_MEM_MEMPORT_HH
