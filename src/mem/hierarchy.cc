#include "mem/hierarchy.hh"

namespace lp
{

MemHierarchy::MemHierarchy(const MemHierarchyConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i, "l1i"), l1d_(cfg.l1d, "l1d"),
      l2_(cfg.l2, "l2"), itlb_(cfg.itlb, "itlb"), dtlb_(cfg.dtlb, "dtlb")
{
}

void
MemHierarchy::warmFetch(Addr a)
{
    itlb_.access(a, false);
    l1i_.access(a, false);
    l2_.access(a, false);
}

void
MemHierarchy::warmData(Addr a, bool write)
{
    dtlb_.access(a, false);
    l1d_.access(a, write);
    l2_.access(a, write);
}

Cycles
MemHierarchy::timedFetch(Addr a)
{
    Cycles lat = cfg_.l1Latency;
    if (!itlb_.access(a, false).hit)
        lat += cfg_.tlbMissLatency;
    if (!l1i_.access(a, false).hit) {
        if (l2_.access(a, false).hit)
            lat += cfg_.l2Latency;
        else
            lat += cfg_.l2Latency + cfg_.memLatency;
    }
    return lat;
}

Cycles
MemHierarchy::timedData(Addr a, bool write, bool *missOut)
{
    Cycles lat = cfg_.l1Latency;
    if (!dtlb_.access(a, false).hit)
        lat += cfg_.tlbMissLatency;
    const bool l1Miss = !l1d_.access(a, write).hit;
    if (l1Miss) {
        if (l2_.access(a, write).hit)
            lat += cfg_.l2Latency;
        else
            lat += cfg_.l2Latency + cfg_.memLatency;
    }
    if (missOut)
        *missOut = l1Miss;
    return lat;
}

void
MemHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    itlb_.reset();
    dtlb_.reset();
}

} // namespace lp
