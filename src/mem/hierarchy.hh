/**
 * @file
 * The two-level memory hierarchy (split L1, unified L2, I/D TLBs).
 *
 * Warming accesses are *unfiltered*: every reference touches every
 * level, so each array's warm state is independent of the other
 * arrays' geometries. That independence is what lets a live-point
 * built at the library-maximum geometry reconstruct any smaller
 * configuration exactly. Timed accesses (the detailed core) are
 * filtered normally — L2 only sees L1 misses — and return latencies.
 */

#ifndef LP_MEM_HIERARCHY_HH
#define LP_MEM_HIERARCHY_HH

#include "cache/cache.hh"
#include "util/types.hh"

namespace lp
{

struct MemHierarchyConfig
{
    CacheGeometry l1i{32 * 1024, 2, 64};
    CacheGeometry l1d{32 * 1024, 2, 64};
    CacheGeometry l2{1ull << 20, 4, 128};
    CacheGeometry itlb{64 * 4096, 4, 4096};  //!< 64 entries
    CacheGeometry dtlb{128 * 4096, 4, 4096}; //!< 128 entries
    unsigned l1dPorts = 2;
    unsigned mshrs = 8;
    std::uint64_t storeBufferEntries = 16;
    Cycles l1Latency = 1;
    Cycles l2Latency = 12;
    Cycles memLatency = 100;
    Cycles tlbMissLatency = 30;
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyConfig &cfg);

    const MemHierarchyConfig &config() const { return cfg_; }

    CacheModel &l1i() { return l1i_; }
    CacheModel &l1d() { return l1d_; }
    CacheModel &l2() { return l2_; }
    CacheModel &itlb() { return itlb_; }
    CacheModel &dtlb() { return dtlb_; }

    /** Unfiltered warming access for an instruction fetch. */
    void warmFetch(Addr a);

    /** Unfiltered warming access for a data reference. */
    void warmData(Addr a, bool write);

    /** Timed, filtered fetch: returns the access latency. */
    Cycles timedFetch(Addr a);

    /**
     * Timed, filtered data access: returns the access latency and,
     * when @p missOut is non-null, whether the L1 missed (the MSHR
     * occupancy condition).
     */
    Cycles timedData(Addr a, bool write, bool *missOut = nullptr);

    void reset();

  private:
    MemHierarchyConfig cfg_;
    CacheModel l1i_;
    CacheModel l1d_;
    CacheModel l2_;
    CacheModel itlb_;
    CacheModel dtlb_;
};

} // namespace lp

#endif // LP_MEM_HIERARCHY_HH
