/**
 * @file
 * The campaign service: a job-queue scheduler, supervisor, and
 * restart-recovery layer over CampaignEngine. One service owns one
 * LibrarySet fleet store (opened with openRecover, so a degraded set
 * serves what it can) and one worker-slot budget; submitted JobSpecs
 * queue, run concurrently under that budget, and persist everything
 * they need to resume into per-job directories:
 *
 *     <jobsDir>/job-<id>/spec.der         the encoded JobSpec
 *     <jobsDir>/job-<id>/manifest.ledger  campaign barrier ledger
 *     <jobsDir>/job-<id>/result.json      final report (done jobs)
 *     <jobsDir>/job-<id>/state            one state token, written
 *                                         atomically, always last
 *     <jobsDir>/service.jsonl             structured event log
 *
 * Guarantees:
 *  - **Bit-identity.** A job's result is bit-identical to running the
 *    same grid standalone (same spec, seed, block size) — including a
 *    job whose daemon was SIGKILLed mid-run and restarted: recovery
 *    re-enqueues it and the manifest ledger resumes it at the last
 *    durable barrier.
 *  - **Admission control.** submit() rejects-with-retry-after when
 *    the queue is at maxQueueDepth or when the aggregate resident
 *    estimate (each job counts its largest shard, because a campaign
 *    streams one shard at a time) would exceed maxResidentBytes.
 *  - **Supervision.** A supervisor thread watches each running job's
 *    progress heartbeat; a job stalled past stuckTimeoutMs gets its
 *    failStuck flag raised, which aborts only hang-parked workers
 *    (ReplayControl::failStuck) — the stuck cell fails with reason
 *    `cell_stuck` and every other cell of every job completes.
 *  - **Graceful degradation.** A job naming a quarantined shard still
 *    runs; the campaign marks those cells failed-with-reason
 *    (`shard_quarantined`) and the job completes `done`.
 *  - **Cooperative cancellation.** cancel() stops a running job at
 *    the next block barrier, after its manifest write — the stop is a
 *    valid resume point, and resume() continues it bit-identically.
 */

#ifndef LP_SVC_SERVICE_HH
#define LP_SVC_SERVICE_HH

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/library_set.hh"
#include "svc/job.hh"
#include "svc/proto.hh"

namespace lp
{

class ResultStore;

struct ServiceConfig
{
    std::string jobsDir; //!< job directories + structured log
    std::string setDir;  //!< LibrarySet fleet store (openRecover)

    /** Total simulation-worker budget across concurrent jobs. */
    unsigned workerSlots = 4;

    /** Queued (not yet running) jobs beyond this are rejected. */
    std::size_t maxQueueDepth = 8;

    /** Aggregate resident-bytes admission bound; 0 = unlimited. */
    std::uint64_t maxResidentBytes = 0;

    /** Heartbeat stall that marks a job stuck; 0 = watchdog off. */
    std::uint64_t stuckTimeoutMs = 0;

    /** Supervisor poll period. */
    std::uint64_t supervisorPeriodMs = 25;

    /** retryAfterMs hint returned with admission rejections. */
    std::uint64_t retryAfterMs = 250;

    /** Structured log path; "" = <jobsDir>/service.jsonl. */
    std::string logPath;

    /**
     * Fleet result store: every finished job publishes its completed
     * cells here, and every job memoizes against it before replaying
     * (see CampaignOptions::resultStore). "" = <jobsDir>/results.lpres.
     * A corrupt store file is moved aside and the service starts with
     * an empty store — it is a regenerable cache, never a reason to
     * refuse service.
     */
    std::string resultStorePath;
};

/** What submit()/resume() decided. */
struct SubmitOutcome
{
    bool accepted = false;
    bool retry = false; //!< admission full: retry after retryAfterMs
    std::uint64_t id = 0;
    std::uint64_t retryAfterMs = 0;
    std::string error; //!< rejection / retry detail
};

struct JobStatusInfo
{
    bool found = false;
    JobState state = JobState::queued;
    std::uint64_t progress = 0; //!< folded-replay heartbeat counter
    std::string detail;         //!< error / cancel reason ("" if none)
};

class CampaignService
{
  public:
    /**
     * Open the fleet set, scan @p cfg.jobsDir for jobs a previous
     * incarnation left behind (terminal jobs are reloaded as results;
     * queued/running jobs re-enqueue and resume from their
     * manifests), and start the scheduler and supervisor threads.
     */
    explicit CampaignService(const ServiceConfig &cfg);

    /** Stops accepting, cancels what runs, and joins (resumable). */
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    SubmitOutcome submit(const JobSpec &spec);

    /**
     * Request cancellation. A queued job cancels immediately; a
     * running job drains to its next block barrier. False only when
     * @p id is unknown.
     */
    bool cancel(std::uint64_t id, const std::string &reason);

    /** Re-enqueue a cancelled/failed job; resumes from its manifest. */
    SubmitOutcome resume(std::uint64_t id);

    JobStatusInfo status(std::uint64_t id) const;

    /**
     * Terminal outcome of @p id: its state and, for done jobs, the
     * campaign JSON report. False when unknown or not yet terminal.
     */
    bool result(std::uint64_t id, JobState *state,
                std::string *json) const;

    /** Block until @p id is terminal; false on timeout/unknown. */
    bool waitForJob(std::uint64_t id, std::uint64_t timeoutMs = 0);

    /** Stop accepting, run the queue dry, stop the threads. */
    void drain();

    const LibrarySet &set() const { return set_; }
    const ServiceConfig &config() const { return cfg_; }

    /** The shared fleet result store (memoization + queries). */
    const ResultStore &resultStore() const;

    /**
     * Answer a cross-campaign result query from the store with zero
     * simulation: a JSON object listing the stored cell records (and
     * matched-pair deltas), optionally filtered by workload shard
     * name (@p workload, "" = any) and config digest (@p configDigest,
     * 0 = any). Shard names resolve through the fleet set; a stored
     * record whose library is no longer in the set reports its raw
     * content hash instead of a name.
     */
    std::string queryResults(const std::string &workload,
                             std::uint64_t configDigest) const;

    /** All job ids, ascending (for status listings and tests). */
    std::vector<std::uint64_t> jobIds() const;

  private:
    struct Job;

    void recoverJobs();
    void schedulerLoop();
    void supervisorLoop();
    void runJob(Job *j);
    void startJobLocked(Job *j);
    void writeJobState(const Job &j, JobState s) const;
    std::uint64_t residentEstimate(const JobSpec &spec) const;
    void shutdown(bool cancelRunning);
    void logEvent(const std::string &event, const Job *j,
                  const std::string &detail);

    ServiceConfig cfg_;
    LibrarySet set_;
    std::unique_ptr<ResultStore> store_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::map<std::size_t, unsigned> shardRefs_; //!< loaded-shard users
    std::uint64_t nextId_ = 1;
    unsigned runningSlots_ = 0;
    bool draining_ = false; //!< no new submissions
    bool stop_ = false;     //!< scheduler/supervisor exit

    std::mutex logM_;
    std::FILE *log_ = nullptr;

    std::thread scheduler_;
    std::thread supervisor_;
};

} // namespace lp

#endif // LP_SVC_SERVICE_HH
