#include "svc/proto.hh"

#include <cerrno>
#include <cstring>

#include "codec/der.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "util/failpoint.hh"
#include "util/log.hh"
#include "util/retry.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LP_HAVE_SOCKETS 1
#else
#define LP_HAVE_SOCKETS 0
#endif

namespace lp
{

namespace
{

constexpr std::size_t kFrameHeaderBytes = 32;

void
putU64le(std::uint8_t *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64le(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

#if LP_HAVE_SOCKETS

void
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    TransientRetry retry;
    while (size > 0) {
        if (failpointsArmed()) {
            const FailpointOutcome o = failpointFire("svc.write");
            if (o.fail) {
                if (retry.shouldRetry(o.err))
                    continue;
                throwIoError("write", "service socket", "peer", o.err);
            }
        }
        const ::ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            const int err = errno;
            if (retry.shouldRetry(err))
                continue;
            throwIoError("write", "service socket", "peer", err);
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly @p size bytes. Returns false on EOF before the first
 * byte when @p eofOk (a peer that closed between frames); EOF
 * mid-frame always throws (a torn frame).
 */
bool
readAll(int fd, std::uint8_t *data, std::size_t size, bool eofOk)
{
    std::size_t got = 0;
    TransientRetry retry;
    while (got < size) {
        if (failpointsArmed()) {
            const FailpointOutcome o = failpointFire("svc.read");
            if (o.fail) {
                if (retry.shouldRetry(o.err))
                    continue;
                throwIoError("read", "service socket", "peer", o.err);
            }
        }
        const ::ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            const int err = errno;
            if (retry.shouldRetry(err))
                continue;
            throwIoError("read", "service socket", "peer", err);
        }
        if (n == 0) {
            if (got == 0 && eofOk)
                return false;
            throw IoError(
                strfmt("service socket: torn frame (EOF after %zu of "
                       "%zu bytes)",
                       got, size),
                0);
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

#endif // LP_HAVE_SOCKETS

} // namespace

void
sendFrame(int fd, MsgType type, MsgStatus status, const Blob &payload)
{
#if LP_HAVE_SOCKETS
    std::uint8_t hdr[kFrameHeaderBytes];
    putU64le(hdr, kSvcMagic);
    putU64le(hdr + 8,
             static_cast<std::uint64_t>(type) |
                 (static_cast<std::uint64_t>(status) << 32));
    putU64le(hdr + 16, payload.size());
    putU64le(hdr + 24, fnv1a(payload.data(), payload.size()));
    writeAll(fd, hdr, sizeof(hdr));
    if (!payload.empty())
        writeAll(fd, payload.data(), payload.size());
#else
    (void)fd;
    (void)type;
    (void)status;
    (void)payload;
    throw std::runtime_error("service sockets require POSIX");
#endif
}

bool
recvFrame(int fd, Frame &out)
{
#if LP_HAVE_SOCKETS
    std::uint8_t hdr[kFrameHeaderBytes];
    if (!readAll(fd, hdr, sizeof(hdr), /*eofOk=*/true))
        return false;
    if (getU64le(hdr) != kSvcMagic)
        throw IoError("service socket: bad frame magic", 0);
    const std::uint64_t tw = getU64le(hdr + 8);
    out.type = static_cast<MsgType>(tw & 0xffffffffu);
    out.status = static_cast<MsgStatus>(tw >> 32);
    const std::uint64_t len = getU64le(hdr + 16);
    const std::uint64_t sum = getU64le(hdr + 24);
    // A frame is one request or reply; anything huge is a protocol
    // error, not a message (and must not drive an allocation).
    if (len > (64ull << 20))
        throw IoError("service socket: oversized frame", 0);
    out.payload.resize(static_cast<std::size_t>(len));
    if (len)
        readAll(fd, out.payload.data(), out.payload.size(),
                /*eofOk=*/false);
    if (fnv1a(out.payload.data(), out.payload.size()) != sum)
        throw IoError("service socket: frame checksum mismatch", 0);
    return true;
#else
    (void)fd;
    (void)out;
    throw std::runtime_error("service sockets require POSIX");
#endif
}

Blob
encodeJobSpec(const JobSpec &spec)
{
    DerWriter w;
    w.beginSequence();
    w.putString(spec.name);
    w.beginSequence();
    for (const JobWorkloadSpec &wl : spec.workloads) {
        w.beginSequence();
        w.putString(wl.shard);
        w.putString(wl.profile);
        w.putUint(wl.tinyInsts);
        w.putUint(wl.tinySeed);
        w.endSequence();
    }
    w.endSequence();
    w.beginSequence();
    for (const JobConfigSpec &c : spec.configs) {
        w.beginSequence();
        w.putString(c.preset);
        w.putString(c.name);
        w.putUint(c.memLatency);
        w.putUint(c.l2Latency);
        w.putUint(c.l2SizeBytes);
        w.endSequence();
    }
    w.endSequence();
    w.putDouble(spec.level);
    w.putDouble(spec.relativeError);
    w.putUint(spec.stopAtConfidence ? 1 : 0);
    w.putUint(spec.approxWrongPath ? 1 : 0);
    w.putUint(spec.shuffleSeed);
    w.putUint(spec.threads);
    w.putUint(spec.decodeThreads);
    w.putUint(spec.blockSize);
    w.putUint(spec.maxFoldedReplays);
    w.putUint(spec.residentBudgetBytes);
    w.putUint(spec.deadlineMs);
    w.endSequence();
    return w.finish();
}

JobSpec
decodeJobSpec(const Blob &payload)
{
    JobSpec spec;
    DerReader top(payload);
    DerReader s = top.getSequence();
    spec.name = s.getString();
    {
        DerReader ws = s.getSequence();
        spec.workloads.clear();
        while (!ws.atEnd()) {
            DerReader e = ws.getSequence();
            JobWorkloadSpec wl;
            wl.shard = e.getString();
            wl.profile = e.getString();
            wl.tinyInsts = e.getUint();
            wl.tinySeed = e.getUint();
            spec.workloads.push_back(std::move(wl));
        }
    }
    {
        DerReader cs = s.getSequence();
        spec.configs.clear();
        while (!cs.atEnd()) {
            DerReader e = cs.getSequence();
            JobConfigSpec c;
            c.preset = e.getString();
            c.name = e.getString();
            c.memLatency = e.getUint();
            c.l2Latency = e.getUint();
            c.l2SizeBytes = e.getUint();
            spec.configs.push_back(std::move(c));
        }
    }
    spec.level = s.getDouble();
    spec.relativeError = s.getDouble();
    spec.stopAtConfidence = s.getUint() != 0;
    spec.approxWrongPath = s.getUint() != 0;
    spec.shuffleSeed = s.getUint();
    spec.threads = static_cast<std::uint32_t>(s.getUint());
    spec.decodeThreads = static_cast<std::uint32_t>(s.getUint());
    spec.blockSize = s.getUint();
    spec.maxFoldedReplays = s.getUint();
    spec.residentBudgetBytes = s.getUint();
    spec.deadlineMs = s.getUint();
    return spec;
}

} // namespace lp
