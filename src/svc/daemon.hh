/**
 * @file
 * The campaign service daemon: a Unix-domain-socket front end over
 * CampaignService. The daemon binds a stream socket, accepts one
 * connection at a time (the control plane is tiny; jobs run in the
 * service's own threads), and answers proto.hh frames until a drain
 * request or stop() shuts it down. A stale socket file from a killed
 * daemon is unlinked at bind time; recovery of in-flight jobs is the
 * service's job (the daemon just restarts it on the same jobsDir).
 */

#ifndef LP_SVC_DAEMON_HH
#define LP_SVC_DAEMON_HH

#include <atomic>
#include <string>

#include "svc/service.hh"

namespace lp
{

class SvcDaemon
{
  public:
    /** Open the service and bind @p socketPath (unlinking a stale one). */
    SvcDaemon(const ServiceConfig &cfg, std::string socketPath);

    /** Close the socket (the service shuts down via its own dtor). */
    ~SvcDaemon();

    SvcDaemon(const SvcDaemon &) = delete;
    SvcDaemon &operator=(const SvcDaemon &) = delete;

    /**
     * Accept-and-serve until a drain request completes or stop() is
     * called from another thread (or a signal handler flips the stop
     * flag). Returns after the listener closes; in-flight jobs were
     * drained (drain request) or cancelled-resumably (stop()).
     */
    void run();

    /** Ask run() to return at its next accept timeout. */
    void stop() { stop_.store(true, std::memory_order_relaxed); }

    CampaignService &service() { return svc_; }
    const std::string &socketPath() const { return path_; }

  private:
    void serveConnection(int fd);
    bool handleFrame(int fd, const Frame &req); //!< false = drain

    CampaignService svc_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
};

} // namespace lp

#endif // LP_SVC_DAEMON_HH
