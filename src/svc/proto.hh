/**
 * @file
 * The campaign service wire protocol. Requests and replies travel
 * over a Unix domain socket as length-prefixed checksummed frames:
 *
 *     bytes 0..7    magic "LPSVC1\n\0" (little-endian u64)
 *     bytes 8..11   message type (MsgType, little-endian u32)
 *     bytes 12..15  status (MsgStatus; 0 in requests)
 *     bytes 16..23  payload length
 *     bytes 24..31  fnv1a checksum of the payload
 *     bytes 32..    payload (DER, see below)
 *
 * The checksum makes a torn or corrupted frame detectable instead of
 * silently mis-parsed: a reader that sees a bad magic or checksum
 * fails the connection, never guesses. Socket reads and writes retry
 * transient errnos through TransientRetry (the same bounded
 * backoff+jitter policy file I/O uses) and carry `svc.read` /
 * `svc.write` failpoints so fault sweeps can exercise the paths.
 *
 * Payloads are DER (codec/der.hh), one message shape per type — see
 * the encode/decode helpers below. A JobSpec is the self-contained
 * description of a campaign job: which shards of the daemon's fleet
 * set to replay, how to regenerate each shard's program (profiles are
 * deterministic functions of their numeric parameters), the
 * configuration grid, and the run/stop/deadline options. The daemon
 * persists the encoded spec in the job directory, so a restarted
 * daemon can rebuild and resume every in-flight job from disk alone.
 */

#ifndef LP_SVC_PROTO_HH
#define LP_SVC_PROTO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace lp
{

/** Frame magic: "LPSVC1\n\0" little-endian. */
constexpr std::uint64_t kSvcMagic = 0x000a'3143'5653'504cull;

enum class MsgType : std::uint32_t
{
    submit = 1, //!< req: JobSpec; ok: {id}; retry: {error, retryAfterMs}
    status = 2, //!< req: {id}; ok: {id, state, progress, detail}
    result = 3, //!< req: {id}; ok: {state, resultJson}
    cancel = 4, //!< req: {id, reason}; ok: {found}
    drain = 5,  //!< req: {}; ok after the daemon stops accepting
    resume = 6, //!< req: {id}; ok: {id} — re-enqueue a stopped job

    /**
     * Cross-campaign result-store query, answered with zero
     * simulation. req: {workload ("" = any), configDigest (0 = any)};
     * ok: {json} — see CampaignService::queryResults.
     */
    query = 7
};

enum class MsgStatus : std::uint32_t
{
    ok = 0,
    error = 1,     //!< payload: {message}
    retryLater = 2 //!< payload: {message, retryAfterMs}
};

struct Frame
{
    MsgType type = MsgType::status;
    MsgStatus status = MsgStatus::ok;
    Blob payload;
};

/** Write one frame to @p fd (blocking, transient-retried). */
void sendFrame(int fd, MsgType type, MsgStatus status,
               const Blob &payload);

/**
 * Read one frame from @p fd. Returns false on clean EOF at a frame
 * boundary; throws IoError on I/O failure or a corrupt frame.
 */
bool recvFrame(int fd, Frame &out);

/** One workload row of a job: a shard plus its program recipe. */
struct JobWorkloadSpec
{
    std::string shard; //!< shard name in the daemon's LibrarySet

    /**
     * Suite profile name (workload/profile.hh), or "" for the tiny
     * synthetic profile parameterized below. Programs are
     * deterministic functions of the profile, so the daemon
     * regenerates exactly the program the library was built from.
     */
    std::string profile;
    std::uint64_t tinyInsts = 0; //!< tinyProfile target instructions
    std::uint64_t tinySeed = 0;  //!< tinyProfile seed
};

/** One configuration column: a preset plus sweep overrides. */
struct JobConfigSpec
{
    std::string preset; //!< "eight" | "sixteen"
    std::string name;   //!< display name ("" = preset default)
    std::uint64_t memLatency = 0;  //!< cycles; 0 = preset default
    std::uint64_t l2Latency = 0;   //!< cycles; 0 = preset default
    std::uint64_t l2SizeBytes = 0; //!< 0 = preset default
};

/** A complete campaign job description (the submit payload). */
struct JobSpec
{
    std::string name; //!< human label for logs and status

    std::vector<JobWorkloadSpec> workloads;
    std::vector<JobConfigSpec> configs;

    double level = 0.997;        //!< confidence level
    double relativeError = 0.03; //!< confidence half-width target
    bool stopAtConfidence = true;
    bool approxWrongPath = false;
    std::uint64_t shuffleSeed = 0;
    std::uint32_t threads = 1;       //!< simulation workers
    std::uint32_t decodeThreads = 0; //!< 0 = auto
    std::uint64_t blockSize = 0;     //!< 0 = default fold block
    std::uint64_t maxFoldedReplays = 0;
    std::uint64_t residentBudgetBytes = 0;

    /** Wall-clock budget from job start, ms; 0 = unlimited. */
    std::uint64_t deadlineMs = 0;
};

Blob encodeJobSpec(const JobSpec &spec);
JobSpec decodeJobSpec(const Blob &payload);

} // namespace lp

#endif // LP_SVC_PROTO_HH
