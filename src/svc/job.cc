#include "svc/job.hh"

namespace lp
{

const char *
jobStateToken(JobState s)
{
    switch (s) {
    case JobState::queued:
        return "queued";
    case JobState::running:
        return "running";
    case JobState::draining:
        return "draining";
    case JobState::done:
        return "done";
    case JobState::failed:
        return "failed";
    case JobState::cancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
jobStateFromToken(const std::string &token, JobState *out)
{
    static const JobState all[] = {
        JobState::queued, JobState::running,   JobState::draining,
        JobState::done,   JobState::failed,    JobState::cancelled};
    for (JobState s : all) {
        if (token == jobStateToken(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

} // namespace lp
