#include "svc/service.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "core/campaign.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "store/result_store.hh"
#include "uarch/config.hh"
#include "util/cancel.hh"
#include "util/log.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace lp
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
nowWallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
makeDir(const std::string &path, const char *what)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return;
    throwIoError("create", what, path, errno);
}

bool
readSmallFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out->clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

std::string
trimToken(const std::string &s)
{
    std::size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

/** The bundle a job runs from; programs must outlive the engine. */
struct MaterializedJob
{
    std::deque<Program> programs;
    std::vector<CampaignWorkload> workloads;
    std::vector<CoreConfig> configs;
    CampaignOptions opt;
};

CoreConfig
materializeConfig(const JobConfigSpec &c)
{
    CoreConfig cfg;
    if (c.preset.empty() || c.preset == "eight")
        cfg = CoreConfig::eightWay();
    else if (c.preset == "sixteen")
        cfg = CoreConfig::sixteenWay();
    else
        throw std::runtime_error(
            strfmt("unknown config preset '%s'", c.preset.c_str()));
    if (c.memLatency)
        cfg.mem.memLatency = c.memLatency;
    if (c.l2Latency)
        cfg.mem.l2Latency = c.l2Latency;
    if (c.l2SizeBytes)
        cfg.mem.l2.sizeBytes = c.l2SizeBytes;
    if (!c.name.empty())
        cfg.name = c.name;
    return cfg;
}

} // namespace

struct CampaignService::Job
{
    std::uint64_t id = 0;
    JobSpec spec;
    std::string dir;
    JobState state = JobState::queued;
    bool cancelRequested = false;
    std::string detail;     //!< failure / cancellation detail
    std::string resultJson; //!< campaign report once done
    std::vector<std::size_t> shards;
    std::uint64_t residentEstimate = 0;
    unsigned slots = 1;
    ReplayControl control;
    std::thread thread;

    // Supervisor bookkeeping (valid while running).
    std::uint64_t lastProgress = 0;
    Clock::time_point lastChange{};
};

CampaignService::CampaignService(const ServiceConfig &cfg)
    : cfg_(cfg), set_(LibrarySet::openRecover(cfg.setDir))
{
    makeDir(cfg_.jobsDir, "service jobs directory");
    const std::string logPath = cfg_.logPath.empty()
                                    ? cfg_.jobsDir + "/service.jsonl"
                                    : cfg_.logPath;
    log_ = std::fopen(logPath.c_str(), "ab");
    if (!log_)
        throwIoError("open", "service log", logPath, errno);
    if (set_.recovery().degraded) {
        for (const std::string &note : set_.recovery().notes)
            logEvent("set_degraded", nullptr, note);
    }
    const std::string storePath =
        cfg_.resultStorePath.empty() ? cfg_.jobsDir + "/results.lpres"
                                     : cfg_.resultStorePath;
    store_ = std::make_unique<ResultStore>();
    try {
        store_->open(storePath);
        if (store_->supersededRecords() > 0)
            store_->compact();
        logEvent("result_store", nullptr,
                 strfmt("%zu cells, %zu pairs", store_->cellCount(),
                        store_->pairCount()));
    } catch (const std::exception &e) {
        // The store is a regenerable cache: a corrupt file is moved
        // aside (evidence for forensics) and the service starts
        // empty; the next save() writes a fresh valid store.
        const std::string aside = storePath + ".corrupt";
        std::rename(storePath.c_str(), aside.c_str());
        store_ = std::make_unique<ResultStore>();
        store_->open(storePath);
        logEvent("result_store_corrupt", nullptr,
                 strfmt("%s (moved aside to %s)", e.what(),
                        aside.c_str()));
    }
    recoverJobs();
    scheduler_ = std::thread([this] { schedulerLoop(); });
    supervisor_ = std::thread([this] { supervisorLoop(); });
    logEvent("service_start", nullptr,
             strfmt("slots=%u queue=%zu", cfg_.workerSlots,
                    cfg_.maxQueueDepth));
}

CampaignService::~CampaignService()
{
    shutdown(/*cancelRunning=*/true);
    if (log_)
        std::fclose(log_);
}

void
CampaignService::logEvent(const std::string &event, const Job *j,
                          const std::string &detail)
{
    std::string line =
        strfmt("{\"ts_ms\": %llu, \"event\": \"%s\"",
               static_cast<unsigned long long>(nowWallMs()),
               jsonEscape(event).c_str());
    if (j) {
        line += strfmt(", \"job\": %llu, \"state\": \"%s\"",
                       static_cast<unsigned long long>(j->id),
                       jobStateToken(j->state));
    }
    if (!detail.empty())
        line += strfmt(", \"detail\": \"%s\"",
                       jsonEscape(detail).c_str());
    line += "}\n";
    std::lock_guard<std::mutex> lk(logM_);
    std::fwrite(line.data(), 1, line.size(), log_);
    std::fflush(log_);
}

void
CampaignService::writeJobState(const Job &j, JobState s) const
{
    const std::string token = std::string(jobStateToken(s)) + "\n";
    writeFileAtomic(j.dir + "/state",
                    reinterpret_cast<const std::uint8_t *>(token.data()),
                    token.size(), "job state");
}

std::uint64_t
CampaignService::residentEstimate(const JobSpec &spec) const
{
    // A campaign streams set-backed workloads one shard at a time, so
    // a job's resident footprint is bounded by its largest shard (the
    // service keeps shards of *concurrent* jobs resident, so the
    // admission sum is over jobs).
    std::uint64_t mx = 0;
    for (const JobWorkloadSpec &w : spec.workloads) {
        const std::size_t i = set_.find(w.shard);
        if (i != LibrarySet::npos)
            mx = std::max(mx, set_.fileBytes(i));
    }
    return mx;
}

void
CampaignService::recoverJobs()
{
    DIR *d = ::opendir(cfg_.jobsDir.c_str());
    if (!d)
        throwIoError("scan", "service jobs directory", cfg_.jobsDir,
                     errno);
    std::vector<std::uint64_t> ids;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind("job-", 0) != 0)
            continue;
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(name.c_str() + 4, &end, 10);
        if (!end || *end != '\0' || v == 0)
            continue;
        ids.push_back(v);
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());

    for (std::uint64_t id : ids) {
        const std::string dir =
            cfg_.jobsDir + strfmt("/job-%llu",
                                  static_cast<unsigned long long>(id));
        std::string specBytes;
        if (!readSmallFile(dir + "/spec.der", &specBytes)) {
            logEvent("recover_skipped", nullptr,
                     strfmt("job-%llu has no spec",
                            static_cast<unsigned long long>(id)));
            continue;
        }
        auto j = std::make_unique<Job>();
        j->id = id;
        j->dir = dir;
        try {
            Blob blob(specBytes.begin(), specBytes.end());
            j->spec = decodeJobSpec(blob);
        } catch (const std::exception &e) {
            logEvent("recover_skipped", nullptr,
                     strfmt("job-%llu spec undecodable: %s",
                            static_cast<unsigned long long>(id),
                            e.what()));
            continue;
        }
        j->slots = std::max(1u, j->spec.threads);
        j->residentEstimate = residentEstimate(j->spec);
        for (const JobWorkloadSpec &w : j->spec.workloads) {
            const std::size_t i = set_.find(w.shard);
            if (i != LibrarySet::npos)
                j->shards.push_back(i);
        }

        std::string stateTok;
        JobState s = JobState::queued;
        if (readSmallFile(dir + "/state", &stateTok))
            jobStateFromToken(trimToken(stateTok), &s);
        if (s == JobState::done) {
            readSmallFile(dir + "/result.json", &j->resultJson);
            j->state = JobState::done;
        } else if (jobStateTerminal(s)) {
            j->state = s;
        } else {
            // queued / running / draining: the previous incarnation
            // died with this job in flight. Re-enqueue; the manifest
            // ledger resumes it bit-identically.
            j->state = JobState::queued;
            writeJobState(*j, JobState::queued);
            logEvent("recovered", j.get(), "re-enqueued after restart");
        }
        nextId_ = std::max(nextId_, id + 1);
        jobs_.emplace(id, std::move(j));
    }
}

SubmitOutcome
CampaignService::submit(const JobSpec &spec)
{
    SubmitOutcome out;
    if (spec.workloads.empty() || spec.configs.empty()) {
        out.error = "a job needs at least one workload and one config";
        return out;
    }
    for (const JobConfigSpec &c : spec.configs) {
        if (!c.preset.empty() && c.preset != "eight" &&
            c.preset != "sixteen") {
            out.error =
                strfmt("unknown config preset '%s'", c.preset.c_str());
            return out;
        }
    }
    for (const JobWorkloadSpec &w : spec.workloads) {
        if (set_.find(w.shard) == LibrarySet::npos) {
            out.error = strfmt("shard '%s' is not in the fleet set",
                               w.shard.c_str());
            return out;
        }
    }

    std::unique_lock<std::mutex> lk(m_);
    if (draining_ || stop_) {
        out.error = "service is draining";
        return out;
    }
    std::size_t queued = 0;
    std::uint64_t resident = 0;
    for (const auto &kv : jobs_) {
        const Job &j = *kv.second;
        if (j.state == JobState::queued)
            ++queued;
        if (!jobStateTerminal(j.state))
            resident += j.residentEstimate;
    }
    if (queued >= cfg_.maxQueueDepth) {
        out.retry = true;
        out.retryAfterMs = cfg_.retryAfterMs;
        out.error = strfmt("queue full (%zu queued)", queued);
        return out;
    }
    const std::uint64_t estimate = residentEstimate(spec);
    if (cfg_.maxResidentBytes &&
        resident + estimate > cfg_.maxResidentBytes &&
        resident != 0) {
        // resident == 0 means this job alone exceeds the budget; let
        // it run (it still streams shard by shard) rather than wedge.
        out.retry = true;
        out.retryAfterMs = cfg_.retryAfterMs;
        out.error = strfmt(
            "resident budget full (%llu + %llu > %llu bytes)",
            static_cast<unsigned long long>(resident),
            static_cast<unsigned long long>(estimate),
            static_cast<unsigned long long>(cfg_.maxResidentBytes));
        return out;
    }

    auto j = std::make_unique<Job>();
    j->id = nextId_++;
    j->spec = spec;
    j->dir = cfg_.jobsDir +
             strfmt("/job-%llu", static_cast<unsigned long long>(j->id));
    j->slots = std::max(1u, spec.threads);
    j->residentEstimate = estimate;
    for (const JobWorkloadSpec &w : spec.workloads)
        j->shards.push_back(set_.find(w.shard));

    makeDir(j->dir, "job directory");
    const Blob enc = encodeJobSpec(spec);
    writeFileAtomic(j->dir + "/spec.der", enc.data(), enc.size(),
                    "job spec");
    writeJobState(*j, JobState::queued);

    out.accepted = true;
    out.id = j->id;
    logEvent("submitted", j.get(), spec.name);
    jobs_.emplace(j->id, std::move(j));
    cv_.notify_all();
    return out;
}

bool
CampaignService::cancel(std::uint64_t id, const std::string &reason)
{
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &j = *it->second;
    if (j.state == JobState::queued) {
        j.state = JobState::cancelled;
        j.detail = reason.empty() ? "cancelled" : reason;
        writeJobState(j, JobState::cancelled);
        logEvent("cancelled", &j, j.detail);
        cv_.notify_all();
    } else if (j.state == JobState::running && !j.cancelRequested) {
        j.cancelRequested = true;
        j.control.cancel.requestCancel(
            reason.empty() ? "cancel requested" : reason);
        logEvent("draining", &j, reason);
    }
    return true;
}

SubmitOutcome
CampaignService::resume(std::uint64_t id)
{
    SubmitOutcome out;
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        out.error = strfmt("no job %llu",
                           static_cast<unsigned long long>(id));
        return out;
    }
    Job &j = *it->second;
    if (draining_ || stop_) {
        out.error = "service is draining";
        return out;
    }
    if (!jobStateTerminal(j.state) || j.state == JobState::done) {
        out.error = strfmt("job %llu is %s, not resumable",
                           static_cast<unsigned long long>(id),
                           jobStateToken(j.state));
        return out;
    }
    if (j.thread.joinable())
        j.thread.join(); // it already reached a terminal state
    j.control.cancel.reset();
    j.control.failStuck.store(false, std::memory_order_relaxed);
    j.cancelRequested = false;
    j.detail.clear();
    j.state = JobState::queued;
    writeJobState(j, JobState::queued);
    logEvent("resumed", &j, "");
    out.accepted = true;
    out.id = id;
    cv_.notify_all();
    return out;
}

JobStatusInfo
CampaignService::status(std::uint64_t id) const
{
    JobStatusInfo info;
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return info;
    const Job &j = *it->second;
    info.found = true;
    info.state = (j.state == JobState::running && j.cancelRequested)
                     ? JobState::draining
                     : j.state;
    info.progress =
        j.control.progress.load(std::memory_order_relaxed);
    info.detail = j.detail;
    return info;
}

bool
CampaignService::result(std::uint64_t id, JobState *state,
                        std::string *json) const
{
    std::unique_lock<std::mutex> lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    const Job &j = *it->second;
    if (!jobStateTerminal(j.state))
        return false;
    *state = j.state;
    *json = j.state == JobState::done ? j.resultJson : j.detail;
    return true;
}

bool
CampaignService::waitForJob(std::uint64_t id, std::uint64_t timeoutMs)
{
    std::unique_lock<std::mutex> lk(m_);
    auto terminal = [&] {
        auto it = jobs_.find(id);
        return it != jobs_.end() && jobStateTerminal(it->second->state);
    };
    if (jobs_.find(id) == jobs_.end())
        return false;
    if (timeoutMs == 0) {
        cv_.wait(lk, terminal);
        return true;
    }
    return cv_.wait_for(lk, std::chrono::milliseconds(timeoutMs),
                        terminal);
}

const ResultStore &
CampaignService::resultStore() const
{
    return *store_;
}

std::string
CampaignService::queryResults(const std::string &workload,
                              std::uint64_t configDigest) const
{
    std::uint64_t libFilter = 0;
    if (!workload.empty()) {
        const std::size_t i = set_.find(workload);
        if (i == LibrarySet::npos)
            return strfmt(
                "{\"error\": \"shard '%s' is not in the fleet set\"}\n",
                jsonEscape(workload).c_str());
        libFilter = set_.contentHash(i);
    }
    // libHash -> shard name, so rows read like the fleet set.
    std::unordered_map<std::uint64_t, std::string> names;
    for (std::size_t i = 0; i < set_.size(); ++i)
        names.emplace(set_.contentHash(i), set_.name(i));
    auto libLabel = [&](std::uint64_t h) {
        auto it = names.find(h);
        if (it != names.end())
            return jsonEscape(it->second);
        return strfmt("lib-%016llx",
                      static_cast<unsigned long long>(h));
    };

    std::string out = "{\n  \"cells\": [";
    std::size_t nCells = 0;
    for (const CellRecord &c : store_->cells()) {
        if (libFilter && c.key.libHash != libFilter)
            continue;
        if (configDigest && c.key.configDigest != configDigest)
            continue;
        out += nCells ? ",\n    " : "\n    ";
        out += strfmt(
            "{\"workload\": \"%s\", \"config_digest\": \"%016llx\", "
            "\"shuffle_seed\": %llu, \"block_size\": %llu, "
            "\"stop_at_confidence\": %s, \"approx_wrong_path\": %s, "
            "\"lib_points\": %llu, \"processed\": %llu, "
            "\"unavailable_loads\": %llu, \"converged\": %s, "
            "\"cpi\": %.17g, \"cpi_bits\": \"%016llx\"}",
            libLabel(c.key.libHash).c_str(),
            static_cast<unsigned long long>(c.key.configDigest),
            static_cast<unsigned long long>(c.key.shuffleSeed),
            static_cast<unsigned long long>(c.key.blockSize),
            c.key.stopAtConfidence ? "true" : "false",
            c.key.approxWrongPath ? "true" : "false",
            static_cast<unsigned long long>(c.libPoints),
            static_cast<unsigned long long>(c.processed),
            static_cast<unsigned long long>(c.unavailableLoads),
            c.converged ? "true" : "false",
            bitsFromDouble(c.cpiBits),
            static_cast<unsigned long long>(c.cpiBits));
        ++nCells;
    }
    out += nCells ? "\n  ],\n" : "],\n";
    out += "  \"pairs\": [";
    std::size_t nPairs = 0;
    for (const PairRecord &p : store_->pairs()) {
        if (libFilter && p.libHash != libFilter)
            continue;
        if (configDigest && p.baseDigest != configDigest &&
            p.testDigest != configDigest)
            continue;
        out += nPairs ? ",\n    " : "\n    ";
        out += strfmt(
            "{\"workload\": \"%s\", \"base_digest\": \"%016llx\", "
            "\"test_digest\": \"%016llx\", \"n\": %llu, "
            "\"mean_delta\": %.17g}",
            libLabel(p.libHash).c_str(),
            static_cast<unsigned long long>(p.baseDigest),
            static_cast<unsigned long long>(p.testDigest),
            static_cast<unsigned long long>(p.delta.n),
            p.delta.n ? p.delta.mean : 0.0);
        ++nPairs;
    }
    out += nPairs ? "\n  ],\n" : "],\n";
    out += strfmt("  \"cell_count\": %zu,\n  \"pair_count\": %zu\n}\n",
                  nCells, nPairs);
    return out;
}

std::vector<std::uint64_t>
CampaignService::jobIds() const
{
    std::unique_lock<std::mutex> lk(m_);
    std::vector<std::uint64_t> ids;
    ids.reserve(jobs_.size());
    for (const auto &kv : jobs_)
        ids.push_back(kv.first);
    return ids;
}

void
CampaignService::startJobLocked(Job *j)
{
    j->state = JobState::running;
    j->cancelRequested = false;
    j->lastProgress =
        j->control.progress.load(std::memory_order_relaxed);
    j->lastChange = Clock::now();
    runningSlots_ += j->slots;
    for (std::size_t s : j->shards)
        ++shardRefs_[s];
    writeJobState(*j, JobState::running);
    logEvent("started", j, "");
    j->thread = std::thread([this, j] { runJob(j); });
}

void
CampaignService::schedulerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    while (!stop_) {
        // Reap threads of jobs that reached a terminal state (their
        // thread is at its very end; join returns immediately).
        for (auto &kv : jobs_) {
            Job &j = *kv.second;
            if (jobStateTerminal(j.state) && j.thread.joinable())
                j.thread.join();
        }
        Job *next = nullptr;
        for (auto &kv : jobs_) {
            Job &j = *kv.second;
            if (j.state != JobState::queued)
                continue;
            // Admit under the slot budget; an oversized job runs
            // alone rather than starving forever.
            if (runningSlots_ == 0 ||
                runningSlots_ + j.slots <= cfg_.workerSlots) {
                next = &j;
                break;
            }
        }
        if (next) {
            startJobLocked(next);
            continue;
        }
        cv_.wait_for(lk, std::chrono::milliseconds(20));
    }
}

void
CampaignService::supervisorLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    while (!stop_) {
        const Clock::time_point now = Clock::now();
        for (auto &kv : jobs_) {
            Job &j = *kv.second;
            if (j.state != JobState::running)
                continue;
            const std::uint64_t p =
                j.control.progress.load(std::memory_order_relaxed);
            if (p != j.lastProgress) {
                j.lastProgress = p;
                j.lastChange = now;
                continue;
            }
            if (cfg_.stuckTimeoutMs == 0 ||
                j.control.failStuck.load(std::memory_order_relaxed))
                continue;
            const auto stalled =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - j.lastChange)
                    .count();
            if (stalled >= 0 &&
                static_cast<std::uint64_t>(stalled) >=
                    cfg_.stuckTimeoutMs) {
                // Raising failStuck aborts only hang-parked workers
                // (ReplayControl::failStuck), so a healthy job that
                // is merely slow is unaffected.
                j.control.failStuck.store(true,
                                          std::memory_order_relaxed);
                logEvent("stuck_detected", &j,
                         strfmt("no progress for %lld ms",
                                static_cast<long long>(stalled)));
            }
        }
        cv_.wait_for(lk,
                     std::chrono::milliseconds(cfg_.supervisorPeriodMs));
    }
}

void
CampaignService::runJob(Job *j)
{
    JobState final = JobState::failed;
    std::string detail;
    std::string resultJson;
    try {
        MaterializedJob mat;
        const JobSpec &spec = j->spec;
        for (const JobWorkloadSpec &w : spec.workloads) {
            const WorkloadProfile prof =
                w.profile.empty()
                    ? tinyProfile(w.tinyInsts ? w.tinyInsts : 200'000,
                                  w.tinySeed ? w.tinySeed : 1)
                    : findProfile(w.profile);
            mat.programs.push_back(generateProgram(prof));
            CampaignWorkload cw;
            cw.name = w.shard;
            cw.prog = &mat.programs.back();
            cw.set = &set_;
            cw.shard = set_.find(w.shard);
            mat.workloads.push_back(cw);
        }
        for (const JobConfigSpec &c : spec.configs)
            mat.configs.push_back(materializeConfig(c));

        CampaignOptions &o = mat.opt;
        o.spec.level = spec.level;
        o.spec.relativeError = spec.relativeError;
        o.stopAtConfidence = spec.stopAtConfidence;
        o.approxWrongPath = spec.approxWrongPath;
        o.shuffleSeed = spec.shuffleSeed;
        o.threads = std::max(1u, spec.threads);
        o.decodeThreads = spec.decodeThreads;
        o.blockSize = static_cast<std::size_t>(spec.blockSize);
        o.maxFoldedReplays = spec.maxFoldedReplays;
        o.manifestPath = j->dir + "/manifest.ledger";
        o.residentBudgetBytes = spec.residentBudgetBytes;
        // Concurrent jobs share shards through the service's
        // refcounts; a job must never unload a shard under another.
        o.unloadFinishedShards = false;
        o.control = &j->control;
        o.deadline = Deadline::inMs(spec.deadlineMs);
        // Cells another job already published resolve from the store
        // without replaying (bit-identical by the engine contract).
        o.resultStore = store_.get();

        CampaignEngine engine(mat.workloads, mat.configs, mat.opt);
        const CampaignResult res = engine.run();
        if (res.cancelled) {
            final = JobState::cancelled;
            detail = res.cancelReason;
        } else {
            final = JobState::done;
            resultJson = engine.jsonReport(res);
            writeFileAtomic(
                j->dir + "/result.json",
                reinterpret_cast<const std::uint8_t *>(
                    resultJson.data()),
                resultJson.size(), "job result");
            // Publish the finished cells so a re-submitted or widened
            // grid memoizes them; a failed save only costs the cache.
            const std::size_t published = engine.publish(res, *store_);
            try {
                store_->save();
                logEvent("published", j,
                         strfmt("%zu records", published));
            } catch (const std::exception &e) {
                logEvent("store_save_failed", j, e.what());
            }
        }
    } catch (const std::exception &e) {
        final = JobState::failed;
        detail = e.what();
    }
    // The state token is written last: a crash before this line
    // leaves `running` on disk, and recovery re-runs the job from
    // its manifest.
    try {
        writeJobState(*j, final);
    } catch (const std::exception &e) {
        final = JobState::failed;
        detail = strfmt("state write failed: %s", e.what());
    }

    std::unique_lock<std::mutex> lk(m_);
    j->state = final;
    j->detail = detail;
    j->resultJson = std::move(resultJson);
    runningSlots_ -= j->slots;
    for (std::size_t s : j->shards) {
        auto it = shardRefs_.find(s);
        if (it != shardRefs_.end() && --it->second == 0) {
            shardRefs_.erase(it);
            if (set_.isLoaded(s))
                set_.unload(s);
        }
    }
    logEvent("finished", j, detail);
    cv_.notify_all();
}

void
CampaignService::drain()
{
    shutdown(/*cancelRunning=*/false);
}

void
CampaignService::shutdown(bool cancelRunning)
{
    {
        std::unique_lock<std::mutex> lk(m_);
        if (stop_)
            return;
        draining_ = true;
        if (cancelRunning) {
            for (auto &kv : jobs_) {
                Job &j = *kv.second;
                if (j.state == JobState::queued) {
                    j.state = JobState::cancelled;
                    j.detail = "service shutdown";
                    writeJobState(j, JobState::cancelled);
                } else if (j.state == JobState::running &&
                           !j.cancelRequested) {
                    j.cancelRequested = true;
                    j.control.cancel.requestCancel("service shutdown");
                }
            }
            cv_.notify_all();
        }
        cv_.wait(lk, [&] {
            for (const auto &kv : jobs_)
                if (!jobStateTerminal(kv.second->state))
                    return false;
            return true;
        });
        stop_ = true;
        cv_.notify_all();
    }
    if (scheduler_.joinable())
        scheduler_.join();
    if (supervisor_.joinable())
        supervisor_.join();
    std::unique_lock<std::mutex> lk(m_);
    for (auto &kv : jobs_)
        if (kv.second->thread.joinable())
            kv.second->thread.join();
    logEvent("service_stop", nullptr, "");
}

} // namespace lp
