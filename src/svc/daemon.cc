#include "svc/daemon.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "codec/der.hh"
#include "io/io_error.hh"
#include "util/log.hh"
#include "util/retry.hh"

namespace lp
{

namespace
{

Blob
encodeError(const std::string &msg)
{
    DerWriter w;
    w.beginSequence();
    w.putString(msg);
    w.endSequence();
    return w.finish();
}

Blob
encodeRetry(const std::string &msg, std::uint64_t retryAfterMs)
{
    DerWriter w;
    w.beginSequence();
    w.putString(msg);
    w.putUint(retryAfterMs);
    w.endSequence();
    return w.finish();
}

Blob
encodeId(std::uint64_t id)
{
    DerWriter w;
    w.beginSequence();
    w.putUint(id);
    w.endSequence();
    return w.finish();
}

} // namespace

SvcDaemon::SvcDaemon(const ServiceConfig &cfg, std::string socketPath)
    : svc_(cfg), path_(std::move(socketPath))
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            strfmt("socket path too long: '%s'", path_.c_str()));
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throwIoError("create", "service socket", path_, errno);
    ::unlink(path_.c_str()); // a stale socket from a killed daemon
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd_, 8) < 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throwIoError("bind", "service socket", path_, err);
    }
}

SvcDaemon::~SvcDaemon()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    ::unlink(path_.c_str());
}

void
SvcDaemon::run()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd p{listenFd_, POLLIN, 0};
        const int r = ::poll(&p, 1, 200);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throwIoError("poll", "service socket", path_, errno);
        }
        if (r == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (transientErrno(errno) || errno == ECONNABORTED)
                continue;
            throwIoError("accept", "service socket", path_, errno);
        }
        serveConnection(fd);
    }
}

void
SvcDaemon::serveConnection(int fd)
{
    try {
        Frame req;
        while (recvFrame(fd, req)) {
            if (!handleFrame(fd, req)) {
                // drain completed: close out and stop accepting
                stop_.store(true, std::memory_order_relaxed);
                break;
            }
        }
    } catch (const std::exception &e) {
        warn("service connection failed: %s", e.what());
    }
    ::close(fd);
}

bool
SvcDaemon::handleFrame(int fd, const Frame &req)
{
    try {
        switch (req.type) {
        case MsgType::submit: {
            const JobSpec spec = decodeJobSpec(req.payload);
            const SubmitOutcome out = svc_.submit(spec);
            if (out.accepted)
                sendFrame(fd, MsgType::submit, MsgStatus::ok,
                          encodeId(out.id));
            else if (out.retry)
                sendFrame(fd, MsgType::submit, MsgStatus::retryLater,
                          encodeRetry(out.error, out.retryAfterMs));
            else
                sendFrame(fd, MsgType::submit, MsgStatus::error,
                          encodeError(out.error));
            return true;
        }
        case MsgType::status: {
            DerReader r(req.payload);
            DerReader s = r.getSequence();
            const std::uint64_t id = s.getUint();
            const JobStatusInfo info = svc_.status(id);
            if (!info.found) {
                sendFrame(fd, MsgType::status, MsgStatus::error,
                          encodeError("no such job"));
                return true;
            }
            DerWriter w;
            w.beginSequence();
            w.putUint(id);
            w.putString(jobStateToken(info.state));
            w.putUint(info.progress);
            w.putString(info.detail);
            w.endSequence();
            sendFrame(fd, MsgType::status, MsgStatus::ok, w.finish());
            return true;
        }
        case MsgType::result: {
            DerReader r(req.payload);
            DerReader s = r.getSequence();
            const std::uint64_t id = s.getUint();
            JobState state;
            std::string json;
            if (!svc_.result(id, &state, &json)) {
                sendFrame(fd, MsgType::result, MsgStatus::error,
                          encodeError("job unknown or not terminal"));
                return true;
            }
            DerWriter w;
            w.beginSequence();
            w.putString(jobStateToken(state));
            w.putString(json);
            w.endSequence();
            sendFrame(fd, MsgType::result, MsgStatus::ok, w.finish());
            return true;
        }
        case MsgType::cancel: {
            DerReader r(req.payload);
            DerReader s = r.getSequence();
            const std::uint64_t id = s.getUint();
            const std::string reason = s.getString();
            const bool found = svc_.cancel(id, reason);
            DerWriter w;
            w.beginSequence();
            w.putUint(found ? 1 : 0);
            w.endSequence();
            sendFrame(fd, MsgType::cancel, MsgStatus::ok, w.finish());
            return true;
        }
        case MsgType::resume: {
            DerReader r(req.payload);
            DerReader s = r.getSequence();
            const std::uint64_t id = s.getUint();
            const SubmitOutcome out = svc_.resume(id);
            if (out.accepted)
                sendFrame(fd, MsgType::resume, MsgStatus::ok,
                          encodeId(out.id));
            else
                sendFrame(fd, MsgType::resume, MsgStatus::error,
                          encodeError(out.error));
            return true;
        }
        case MsgType::query: {
            DerReader r(req.payload);
            DerReader s = r.getSequence();
            const std::string workload = s.getString();
            const std::uint64_t digest = s.getUint();
            DerWriter w;
            w.beginSequence();
            w.putString(svc_.queryResults(workload, digest));
            w.endSequence();
            sendFrame(fd, MsgType::query, MsgStatus::ok, w.finish());
            return true;
        }
        case MsgType::drain: {
            svc_.drain();
            sendFrame(fd, MsgType::drain, MsgStatus::ok, Blob());
            return false;
        }
        }
        sendFrame(fd, req.type, MsgStatus::error,
                  encodeError("unknown message type"));
        return true;
    } catch (const IoError &) {
        throw; // the connection itself failed; caller closes it
    } catch (const std::exception &e) {
        sendFrame(fd, req.type, MsgStatus::error,
                  encodeError(e.what()));
        return true;
    }
}

} // namespace lp
