/**
 * @file
 * Client side of the campaign service protocol: one persistent
 * connection to a daemon's Unix socket, one method per request type.
 * connect() retries a not-yet-listening daemon with bounded backoff
 * (startup races are the common case for a supervised daemon), and
 * every reply's frame checksum is verified by recvFrame before a
 * payload byte is trusted.
 */

#ifndef LP_SVC_CLIENT_HH
#define LP_SVC_CLIENT_HH

#include <string>

#include "svc/proto.hh"
#include "svc/job.hh"
#include "util/retry.hh"

namespace lp
{

/** The decoded outcome of a client request. */
struct SvcReply
{
    bool ok = false;
    bool retry = false;         //!< daemon said retry later
    std::uint64_t id = 0;       //!< submit/resume
    std::uint64_t retryAfterMs = 0;
    std::string state;          //!< status/result: job state token
    std::uint64_t progress = 0; //!< status
    std::string detail;         //!< status detail / error message
    std::string resultJson;     //!< result: report (or failure text)
};

class SvcClient
{
  public:
    /**
     * Connect to the daemon at @p socketPath, retrying
     * ENOENT/ECONNREFUSED for up to @p connectTimeoutMs (a daemon
     * that is still binding). Throws IoError when the timeout lapses.
     */
    explicit SvcClient(const std::string &socketPath,
                       std::uint64_t connectTimeoutMs = 2000);
    ~SvcClient();

    SvcClient(const SvcClient &) = delete;
    SvcClient &operator=(const SvcClient &) = delete;

    SvcReply submit(const JobSpec &spec);

    /**
     * submit(), honoring the daemon's admission back-pressure with a
     * bounded, deterministic retry loop: on a retry-later reply the
     * client sleeps the larger of the daemon's retryAfterMs hint and
     * the policy's (deterministically jittered) exponential backoff,
     * then resubmits, for at most @p policy.attempts retries. Returns
     * the final reply — still retry=true if the budget lapsed, so the
     * caller always terminates.
     */
    SvcReply submitWithRetry(const JobSpec &spec,
                             const RetryPolicy &policy = {});

    /**
     * Query the daemon's result store (zero simulation): stored cell
     * records and pair deltas as JSON, filtered by workload shard
     * name ("" = any) and config digest (0 = any).
     */
    SvcReply query(const std::string &workload = "",
                   std::uint64_t configDigest = 0);

    SvcReply status(std::uint64_t id);
    SvcReply result(std::uint64_t id);
    SvcReply cancel(std::uint64_t id, const std::string &reason);
    SvcReply resume(std::uint64_t id);

    /** Blocks until the daemon has run its queue dry. */
    SvcReply drain();

    /**
     * Poll status until @p id is terminal (done/failed/cancelled) or
     * @p timeoutMs lapses (0 = wait forever). Returns the final
     * status reply.
     */
    SvcReply waitForJob(std::uint64_t id, std::uint64_t timeoutMs = 0,
                        std::uint64_t pollMs = 20);

  private:
    SvcReply roundTrip(MsgType type, const Blob &payload);

    int fd_ = -1;
};

} // namespace lp

#endif // LP_SVC_CLIENT_HH
