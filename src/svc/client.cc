#include "svc/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "codec/der.hh"
#include "io/io_error.hh"
#include "util/log.hh"

namespace lp
{

namespace
{

Blob
encodeId(std::uint64_t id)
{
    DerWriter w;
    w.beginSequence();
    w.putUint(id);
    w.endSequence();
    return w.finish();
}

} // namespace

SvcClient::SvcClient(const std::string &socketPath,
                     std::uint64_t connectTimeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            strfmt("socket path too long: '%s'", socketPath.c_str()));
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(connectTimeoutMs);
    for (;;) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            throwIoError("create", "service socket", socketPath,
                         errno);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return;
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        // A daemon that has not bound yet shows as ENOENT or
        // ECONNREFUSED; anything else (or a lapsed budget) is final.
        const bool startupRace =
            err == ENOENT || err == ECONNREFUSED || err == EINTR;
        if (!startupRace ||
            std::chrono::steady_clock::now() >= deadline)
            throwIoError("connect", "service socket", socketPath, err);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

SvcClient::~SvcClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SvcReply
SvcClient::roundTrip(MsgType type, const Blob &payload)
{
    sendFrame(fd_, type, MsgStatus::ok, payload);
    Frame reply;
    if (!recvFrame(fd_, reply))
        throw IoError("service socket: daemon closed mid-request", 0);
    SvcReply out;
    if (reply.status == MsgStatus::error) {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.detail = s.getString();
        return out;
    }
    if (reply.status == MsgStatus::retryLater) {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.retry = true;
        out.detail = s.getString();
        out.retryAfterMs = s.getUint();
        return out;
    }
    out.ok = true;
    switch (reply.type) {
    case MsgType::submit:
    case MsgType::resume: {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.id = s.getUint();
        break;
    }
    case MsgType::status: {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.id = s.getUint();
        out.state = s.getString();
        out.progress = s.getUint();
        out.detail = s.getString();
        break;
    }
    case MsgType::result: {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.state = s.getString();
        out.resultJson = s.getString();
        break;
    }
    case MsgType::query: {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.resultJson = s.getString();
        break;
    }
    case MsgType::cancel: {
        DerReader r(reply.payload);
        DerReader s = r.getSequence();
        out.ok = s.getUint() != 0;
        break;
    }
    case MsgType::drain:
        break;
    }
    return out;
}

SvcReply
SvcClient::submit(const JobSpec &spec)
{
    return roundTrip(MsgType::submit, encodeJobSpec(spec));
}

SvcReply
SvcClient::submitWithRetry(const JobSpec &spec,
                           const RetryPolicy &policy)
{
    // Same backoff shape and jitter stream as TransientRetry, but the
    // "transient" signal is the daemon's retry-later reply and the
    // daemon's own retryAfterMs hint is the delay floor.
    Rng rng(policy.seed, "lp-retry-jitter");
    SvcReply rep = submit(spec);
    for (int used = 0; rep.retry && used < policy.attempts; ++used) {
        std::uint64_t delayUs = policy.baseDelayUs;
        for (int i = 0; i < used && delayUs < policy.maxDelayUs; ++i)
            delayUs *= 2;
        if (delayUs > policy.maxDelayUs)
            delayUs = policy.maxDelayUs;
        const std::uint64_t half = delayUs / 2;
        delayUs = delayUs - delayUs / 4 + rng.nextBounded(half ? half : 1);
        delayUs = std::max(delayUs, rep.retryAfterMs * 1000);
        std::this_thread::sleep_for(std::chrono::microseconds(delayUs));
        rep = submit(spec);
    }
    return rep;
}

SvcReply
SvcClient::query(const std::string &workload,
                 std::uint64_t configDigest)
{
    DerWriter w;
    w.beginSequence();
    w.putString(workload);
    w.putUint(configDigest);
    w.endSequence();
    return roundTrip(MsgType::query, w.finish());
}

SvcReply
SvcClient::status(std::uint64_t id)
{
    return roundTrip(MsgType::status, encodeId(id));
}

SvcReply
SvcClient::result(std::uint64_t id)
{
    return roundTrip(MsgType::result, encodeId(id));
}

SvcReply
SvcClient::cancel(std::uint64_t id, const std::string &reason)
{
    DerWriter w;
    w.beginSequence();
    w.putUint(id);
    w.putString(reason);
    w.endSequence();
    return roundTrip(MsgType::cancel, w.finish());
}

SvcReply
SvcClient::resume(std::uint64_t id)
{
    return roundTrip(MsgType::resume, encodeId(id));
}

SvcReply
SvcClient::drain()
{
    return roundTrip(MsgType::drain, Blob());
}

SvcReply
SvcClient::waitForJob(std::uint64_t id, std::uint64_t timeoutMs,
                      std::uint64_t pollMs)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    for (;;) {
        SvcReply st = status(id);
        if (!st.ok)
            return st;
        JobState s;
        if (jobStateFromToken(st.state, &s) && jobStateTerminal(s))
            return st;
        if (timeoutMs &&
            std::chrono::steady_clock::now() >= deadline) {
            st.ok = false;
            st.detail = "timed out waiting for job";
            return st;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

} // namespace lp
