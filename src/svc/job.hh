/**
 * @file
 * Job lifecycle vocabulary for the campaign service. A job moves
 *
 *     queued -> running -> done | failed | cancelled
 *                  \-> draining -> cancelled      (cancel requested)
 *
 * `draining` is a running job whose cancellation has been requested
 * but which has not yet reached the block barrier where it stops; it
 * is reported, never persisted (a draining job on disk is just
 * `running`). Terminal states are durable: the state token is the
 * last thing written to the job directory, so a restarted daemon
 * trusts it. A `cancelled` (or `failed`) job keeps its manifest and
 * can be re-enqueued with resume — the campaign ledger makes the
 * continuation bit-identical to an uninterrupted run.
 */

#ifndef LP_SVC_JOB_HH
#define LP_SVC_JOB_HH

#include <string>

namespace lp
{

enum class JobState
{
    queued,   //!< accepted, waiting for worker slots
    running,  //!< campaign in progress
    draining, //!< running, cancellation requested (reported only)
    done,     //!< campaign finished; result.json written
    failed,   //!< the job itself failed (not merely some cells)
    cancelled //!< stopped at a barrier by cancel/deadline; resumable
};

/** Stable on-disk / on-wire token for @p s (e.g. "running"). */
const char *jobStateToken(JobState s);

/** Inverse of jobStateToken(); false when @p token is unknown. */
bool jobStateFromToken(const std::string &token, JobState *out);

/** True for states a job never leaves without a resume request. */
inline bool
jobStateTerminal(JobState s)
{
    return s == JobState::done || s == JobState::failed ||
           s == JobState::cancelled;
}

} // namespace lp

#endif // LP_SVC_JOB_HH
