/**
 * @file
 * create_library — command-line tool that generates a live-point
 * library for a named benchmark of the SPEC2K-analog suite and saves
 * it to disk (the paper's Figure 6, steps 1-3: size the sample, run
 * the one-time full-warming creation pass, shuffle).
 *
 * With --set <dir>, the shuffled library is appended to a sharded
 * fleet store (LibrarySet) instead of written as a standalone file —
 * run it once per benchmark to grow a multi-workload set a campaign
 * can open lazily, shard by shard.
 *
 * Checkpoint-economics options: --dict trains a shared per-library
 * compression dictionary, --delta delta-encodes consecutive points
 * against their predecessor (both cut bytes/point, neither changes a
 * single decoded bit), and --restricted stores only the live state
 * the 8-way Table 1 baseline consumes (the restricted tier) instead
 * of the full 16-way maxima — smaller, but it no longer serves the
 * 16-way configuration.
 *
 * Usage: create_library <benchmark> [output.lpl] [--n <windows>]
 *                       [--set <dir>] [--dict] [--delta]
 *                       [--restricted]
 *        create_library --list
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "core/builder.hh"
#include "core/library_set.hh"
#include "core/runners.hh"
#include "uarch/config.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace lp;

static int
run(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <benchmark> [output.lpl] [--n N]\n"
                     "       %s --list\n",
                     argv[0], argv[0]);
        return 1;
    }
    if (std::strcmp(argv[1], "--list") == 0) {
        std::printf("available benchmarks:\n");
        for (const WorkloadProfile &p : spec2kSuite())
            std::printf("  %-10s %6.0fM instructions, %4llu MiB "
                        "footprint\n",
                        p.name.c_str(),
                        static_cast<double>(p.targetInsts) / 1e6,
                        static_cast<unsigned long long>(
                            p.footprintBytes >> 20));
        return 0;
    }

    const std::string name = argv[1];
    std::string output = name + ".lpl";
    std::string setDir;
    std::uint64_t forcedN = 0;
    bool dict = false;
    bool delta = false;
    bool restricted = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc)
            forcedN = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc)
            setDir = argv[++i];
        else if (std::strcmp(argv[i], "--dict") == 0)
            dict = true;
        else if (std::strcmp(argv[i], "--delta") == 0)
            delta = true;
        else if (std::strcmp(argv[i], "--restricted") == 0)
            restricted = true;
        else
            output = argv[i];
    }

    const WorkloadProfile profile = findProfile(name);
    inform("generating synthetic benchmark '%s'...", name.c_str());
    const Program prog = generateProgram(profile);
    const InstCount length = measureProgramLength(prog);
    inform("%s: %.1fM dynamic instructions",
           name.c_str(), static_cast<double>(length) / 1e6);

    const CoreConfig cfg8 = CoreConfig::eightWay();
    const CoreConfig cfg16 = CoreConfig::sixteenWay();

    // Step 1: measure baseline variance, choose the sample size.
    std::uint64_t n = forcedN;
    if (n == 0) {
        inform("step 1: measuring baseline CPI variance (pilot)...");
        const SampleDesign pilot = SampleDesign::systematic(
            length, 40, 1000, cfg8.detailedWarming);
        const SampledEstimate e = runSmarts(prog, cfg8, pilot);
        ConfidenceSpec spec;
        n = requiredSampleSize(e.stat.cov(), spec);
        const std::uint64_t fit = SampleDesign::maxCount(
            length, 1000, cfg16.detailedWarming);
        if (n > fit) {
            warn("required n=%llu capped to %llu (benchmark length)",
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(fit));
            n = fit;
        }
        inform("pilot cov=%.3f -> n=%llu", e.stat.cov(),
               static_cast<unsigned long long>(n));
    }

    // Step 2: creation pass. The library stores warm state for both
    // Table 1 predictors and the 16-way cache maxima, so it serves
    // both configurations and everything smaller.
    const SampleDesign design = SampleDesign::systematic(
        length, n, 1000, cfg16.detailedWarming);
    LivePointBuilderConfig bc;
    bc.maxL1i = cfg16.mem.l1i;
    bc.maxL1d = cfg16.mem.l1d;
    bc.maxL2 = cfg16.mem.l2;
    bc.maxItlb = cfg16.mem.itlb;
    bc.maxDtlb = cfg16.mem.dtlb;
    bc.bpredConfigs = {cfg8.bpred, cfg16.bpred};
    if (restricted) {
        // Store only the live state the 8-way baseline consumes —
        // the restricted tier. Replaying the baseline stays exact
        // (LRU inclusion); the 16-way configuration is no longer
        // served by this library.
        bc = restrictedBuilderConfig({cfg8}, bc);
        inform("restricted tier: L2 maxima %lluKB %u-way",
               static_cast<unsigned long long>(
                   bc.maxL2.sizeBytes / 1024),
               bc.maxL2.assoc);
    }
    bc.sharedDictionary = dict;
    bc.deltaEncode = delta;
    LivePointBuilder builder(bc);
    inform("step 2: creating %llu live-points (one full-warming "
           "pass)...",
           static_cast<unsigned long long>(n));
    LivePointLibrary lib = builder.build(prog, design);
    inform("created in %.1fs: %.1f MB compressed (%.1f MB raw)",
           builder.stats().wallSeconds,
           static_cast<double>(lib.totalCompressedBytes()) / 1048576.0,
           static_cast<double>(lib.totalUncompressedBytes()) /
               1048576.0);

    // Step 3: shuffle on disk — standalone container, or appended as
    // one shard of a fleet store.
    Rng rng(profile.seed, "library-shuffle");
    lib.shuffle(rng);
    if (!setDir.empty()) {
        LibrarySetWriter writer(setDir);
        writer.addShard(name, lib);
        inform("step 3: shuffled library appended to set %s "
               "(%zu shard(s) total)",
               setDir.c_str(), writer.shards());
    } else {
        lib.save(output);
        inform("step 3: shuffled library written to %s",
               output.c_str());
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // I/O failures (a full disk, an injected LP_FAILPOINTS fault)
    // carry path + strerror context — report and exit cleanly
    // instead of aborting through std::terminate.
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "create_library: %s\n", e.what());
        return 1;
    }
}
