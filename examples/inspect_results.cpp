/**
 * @file
 * inspect_results — answer cross-campaign questions from a fleet
 * result store with zero simulation: which (workload, config) cells
 * have converged results, at what CPI and confidence, and how pairs
 * of configurations compare on the same live points.
 *
 * Usage: inspect_results <store.lpres> [options]
 *   --set <dir>        resolve library hashes to shard names through
 *                      a fleet set index (metadata only; no shard is
 *                      opened, nothing is simulated)
 *   --workload <name>  only cells of this shard (needs --set) or of
 *                      a 16-digit hex content hash
 *   --config <hex>     only cells/pairs touching this config digest
 *   --json             machine-readable output (same escaping rules
 *                      as the campaign report)
 *   --compact          rewrite the store dropping superseded
 *                      duplicate-key records, then report as usual
 *
 * The text view prints each cell's CPI with the confidence half-width
 * the stored fold state yields under the cell's own recorded spec —
 * recomputed from the store alone, which is the point: a populated
 * store answers "is this design point settled?" without replaying a
 * single live point.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "core/library_set.hh"
#include "core/sample.hh"
#include "store/result_store.hh"
#include "util/log.hh"

using namespace lp;

namespace
{

std::string
libLabel(const std::unordered_map<std::uint64_t, std::string> &names,
         std::uint64_t hash)
{
    auto it = names.find(hash);
    if (it != names.end())
        return it->second;
    return strfmt("lib-%016llx", static_cast<unsigned long long>(hash));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string storePath, setDir, workload, configHex;
    bool json = false, compact = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&]() -> std::string {
            if (i + 1 >= argc)
                panic("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--set")
            setDir = need();
        else if (a == "--workload")
            workload = need();
        else if (a == "--config")
            configHex = need();
        else if (a == "--json")
            json = true;
        else if (a == "--compact")
            compact = true;
        else if (!a.empty() && a[0] == '-')
            panic("unknown flag '%s'", a.c_str());
        else if (storePath.empty())
            storePath = a;
        else
            panic("unexpected argument '%s'", a.c_str());
    }
    if (storePath.empty()) {
        std::fprintf(stderr,
                     "usage: inspect_results <store.lpres> [--set dir] "
                     "[--workload w] [--config hex] [--json] "
                     "[--compact]\n");
        return 2;
    }

    try {
        ResultStore store;
        store.open(storePath);
        const std::size_t superseded = store.supersededRecords();
        if (compact && superseded > 0) {
            const std::size_t dropped = store.compact();
            store.save();
            if (!json)
                std::printf("compacted: %zu superseded records "
                            "dropped\n",
                            dropped);
        }

        std::unordered_map<std::uint64_t, std::string> names;
        if (!setDir.empty()) {
            const LibrarySet set = LibrarySet::openRecover(setDir);
            for (std::size_t i = 0; i < set.size(); ++i)
                names.emplace(set.contentHash(i), set.name(i));
        }

        // Resolve the workload filter: a shard name through --set,
        // else a literal hex content hash.
        std::uint64_t libFilter = 0;
        if (!workload.empty()) {
            for (const auto &kv : names) {
                if (kv.second == workload) {
                    libFilter = kv.first;
                    break;
                }
            }
            if (libFilter == 0)
                libFilter =
                    std::strtoull(workload.c_str(), nullptr, 16);
            if (libFilter == 0)
                panic("workload '%s' matches no shard and is not a "
                      "hex hash",
                      workload.c_str());
        }
        const std::uint64_t digestFilter =
            configHex.empty()
                ? 0
                : std::strtoull(configHex.c_str(), nullptr, 16);

        std::size_t nCells = 0, nPairs = 0;
        std::string cellsJson, pairsJson;
        if (!json)
            std::printf("%-20s %-16s %9s %9s %12s %9s %s\n", "workload",
                        "config", "points", "folded", "cpi",
                        "rel-hw", "state");
        for (const CellRecord &c : store.cells()) {
            if (libFilter && c.key.libHash != libFilter)
                continue;
            if (digestFilter && c.key.configDigest != digestFilter)
                continue;
            ConfidenceSpec spec;
            if (c.key.stopAtConfidence) {
                spec.level = bitsFromDouble(c.key.levelBits);
                spec.relativeError = bitsFromDouble(c.key.relErrBits);
            }
            OnlineEstimator est(spec);
            est.fold(RunningStat::fromState(c.stat));
            const OnlineSnapshot snap = est.snapshot();
            const std::string label = libLabel(names, c.key.libHash);
            if (json) {
                cellsJson += nCells ? ",\n    " : "\n    ";
                cellsJson += strfmt(
                    "{\"workload\": \"%s\", \"config_digest\": "
                    "\"%016llx\", \"lib_points\": %llu, "
                    "\"processed\": %llu, \"cpi\": %.17g, "
                    "\"cpi_bits\": \"%016llx\", "
                    "\"rel_half_width\": %.6g, \"level\": %.6g, "
                    "\"converged\": %s, \"stop_at_confidence\": %s, "
                    "\"approx_wrong_path\": %s, \"shuffle_seed\": "
                    "%llu, \"block_size\": %llu, "
                    "\"unavailable_loads\": %llu}",
                    jsonEscape(label).c_str(),
                    static_cast<unsigned long long>(
                        c.key.configDigest),
                    static_cast<unsigned long long>(c.libPoints),
                    static_cast<unsigned long long>(c.processed),
                    bitsFromDouble(c.cpiBits),
                    static_cast<unsigned long long>(c.cpiBits),
                    snap.relHalfWidth, spec.level,
                    c.converged ? "true" : "false",
                    c.key.stopAtConfidence ? "true" : "false",
                    c.key.approxWrongPath ? "true" : "false",
                    static_cast<unsigned long long>(
                        c.key.shuffleSeed),
                    static_cast<unsigned long long>(c.key.blockSize),
                    static_cast<unsigned long long>(
                        c.unavailableLoads));
            } else {
                std::printf(
                    "%-20s %-16llx %9llu %9llu %12.6f %8.4f%% %s\n",
                    label.c_str(),
                    static_cast<unsigned long long>(
                        c.key.configDigest),
                    static_cast<unsigned long long>(c.libPoints),
                    static_cast<unsigned long long>(c.processed),
                    bitsFromDouble(c.cpiBits),
                    snap.relHalfWidth * 100.0,
                    c.converged ? "converged" : "complete");
            }
            ++nCells;
        }

        if (!json)
            std::printf("\n%-20s %-16s %-16s %9s %14s\n", "workload",
                        "base", "test", "pairs", "mean-delta");
        for (const PairRecord &p : store.pairs()) {
            if (libFilter && p.libHash != libFilter)
                continue;
            if (digestFilter && p.baseDigest != digestFilter &&
                p.testDigest != digestFilter)
                continue;
            const RunningStat delta = RunningStat::fromState(p.delta);
            const std::string label = libLabel(names, p.libHash);
            if (json) {
                pairsJson += nPairs ? ",\n    " : "\n    ";
                pairsJson += strfmt(
                    "{\"workload\": \"%s\", \"base_digest\": "
                    "\"%016llx\", \"test_digest\": \"%016llx\", "
                    "\"n\": %llu, \"mean_delta\": %.17g}",
                    jsonEscape(label).c_str(),
                    static_cast<unsigned long long>(p.baseDigest),
                    static_cast<unsigned long long>(p.testDigest),
                    static_cast<unsigned long long>(delta.count()),
                    delta.count() ? delta.mean() : 0.0);
            } else {
                std::printf("%-20s %-16llx %-16llx %9llu %14.6g\n",
                            label.c_str(),
                            static_cast<unsigned long long>(
                                p.baseDigest),
                            static_cast<unsigned long long>(
                                p.testDigest),
                            static_cast<unsigned long long>(
                                delta.count()),
                            delta.count() ? delta.mean() : 0.0);
            }
            ++nPairs;
        }

        if (json) {
            std::printf("{\n  \"store\": \"%s\",\n"
                        "  \"superseded_records\": %zu,\n"
                        "  \"cells\": [%s%s],\n"
                        "  \"pairs\": [%s%s],\n"
                        "  \"cell_count\": %zu,\n"
                        "  \"pair_count\": %zu\n}\n",
                        jsonEscape(storePath).c_str(), superseded,
                        cellsJson.c_str(), nCells ? "\n  " : "",
                        pairsJson.c_str(), nPairs ? "\n  " : "",
                        nCells, nPairs);
        } else {
            std::printf("\n%zu cells, %zu pairs", nCells, nPairs);
            if (superseded > 0)
                std::printf(" (%zu superseded records%s)", superseded,
                            compact ? ", compacted" : "");
            std::printf("\n");
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "inspect_results: %s\n", e.what());
        return 1;
    }
}
