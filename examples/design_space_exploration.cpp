/**
 * @file
 * design_space_exploration — the workflow the paper's conclusion
 * motivates: sweep a microarchitectural design space (here: L2 size x
 * memory latency x issue width) against the 8-way baseline using one
 * reusable live-point library, matched-pair comparison, and online
 * early termination. Design points that do not differ measurably from
 * the baseline are discarded after a handful of measurements; only
 * genuinely different points get a full-confidence comparison.
 *
 * Usage: design_space_exploration [library.lpl]
 *   With no argument, builds a small demo library in memory.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/builder.hh"
#include "core/runners.hh"
#include "uarch/config.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace lp;

namespace
{

/** Build a small in-memory demo library. */
LivePointLibrary
demoLibrary(Program &prog)
{
    WorkloadProfile p = tinyProfile(3'000'000, 99);
    p.name = "dse-demo";
    p.footprintBytes = 4 << 20;
    prog = generateProgram(p);
    const InstCount length = measureProgramLength(prog);
    const CoreConfig cfg = CoreConfig::eightWay();
    const std::uint64_t n = std::min<std::uint64_t>(
        400, SampleDesign::maxCount(length, 1000, cfg.detailedWarming));
    const SampleDesign design =
        SampleDesign::systematic(length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc;
    bc.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bc);
    LivePointLibrary lib = builder.build(prog, design);
    Rng rng(4, "dse-shuffle");
    lib.shuffle(rng);
    return lib;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    Program prog;
    LivePointLibrary lib;
    if (argc > 1) {
        lib = LivePointLibrary::load(argv[1]);
        const WorkloadProfile p = findProfile(lib.benchmark());
        prog = generateProgram(p);
    } else {
        std::printf("building a demo library (pass a .lpl file to use "
                    "a real one)...\n");
        lib = demoLibrary(prog);
    }
    std::printf("library '%s': %zu live-points\n\n",
                lib.benchmark().c_str(), lib.size());

    const CoreConfig base = CoreConfig::eightWay();

    struct Point
    {
        std::string name;
        CoreConfig cfg;
    };
    std::vector<Point> space;
    for (std::uint64_t l2 : {512ull << 10, 1ull << 20, 2ull << 20}) {
        for (Cycles memLat : {80ull, 100ull, 140ull}) {
            CoreConfig c = base;
            c.mem.l2.sizeBytes = l2;
            c.mem.memLatency = memLat;
            c.name = strfmt("L2=%lluKB,mem=%llucy",
                            static_cast<unsigned long long>(l2 >> 10),
                            static_cast<unsigned long long>(memLat));
            space.push_back({c.name, c});
        }
    }

    LivePointRunOptions opt;
    opt.stopAtConfidence = true; // online early termination

    std::printf("%-24s %10s %9s %8s  %s\n", "design point", "dCPI",
                "rel", "pairs", "verdict");
    for (const Point &pt : space) {
        const MatchedPairOutcome r =
            runMatchedPair(prog, lib, base, pt.cfg, opt);
        const char *verdict =
            !r.result.significant
                ? "~ no measurable difference"
                : (r.result.meanDelta < 0 ? "+ faster than baseline"
                                          : "- slower than baseline");
        std::printf("%-24s %+10.4f %8.2f%% %8zu  %s\n", pt.name.c_str(),
                    r.result.meanDelta, 100 * r.result.relDelta,
                    r.processed, verdict);
    }
    std::printf("\nno-impact points resolve after ~%u pairs (the "
                "matched-pair minimum); different points run until "
                "their delta is significant at 99.7%% confidence.\n",
                static_cast<unsigned>(minCltSample));
    return 0;
}
