/**
 * @file
 * design_space_exploration — the workflow the paper's conclusion
 * motivates, on the campaign engine: sweep a microarchitectural
 * design space (here: L2 size x memory latency) against the 8-way
 * baseline using one reusable live-point library. The whole grid runs
 * as a single campaign: every design point replays from the same
 * decode of each live-point (decode-once fan-out), pairing is exact
 * by construction (common random numbers), cells retire independently
 * when they reach the confidence target, and the run checkpoints to a
 * manifest — kill it and rerun, and it picks up where it stopped.
 *
 * Usage: design_space_exploration [library.lpl [manifest]]
 *   With no argument (or "-"), builds a small demo library in memory;
 *   the demo build is seeded, so a manifest stays valid across runs.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/builder.hh"
#include "core/campaign.hh"
#include "core/runners.hh"
#include "uarch/config.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace lp;

namespace
{

/** Build a small in-memory demo library. */
LivePointLibrary
demoLibrary(Program &prog)
{
    WorkloadProfile p = tinyProfile(3'000'000, 99);
    p.name = "dse-demo";
    p.footprintBytes = 4 << 20;
    prog = generateProgram(p);
    const InstCount length = measureProgramLength(prog);
    const CoreConfig cfg = CoreConfig::eightWay();
    const std::uint64_t n = std::min<std::uint64_t>(
        400, SampleDesign::maxCount(length, 1000, cfg.detailedWarming));
    const SampleDesign design =
        SampleDesign::systematic(length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc;
    bc.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bc);
    LivePointLibrary lib = builder.build(prog, design);
    Rng rng(4, "dse-shuffle");
    lib.shuffle(rng);
    return lib;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    Program prog;
    LivePointLibrary lib;
    if (argc > 1 && std::string(argv[1]) != "-") {
        lib = LivePointLibrary::load(argv[1]);
        const WorkloadProfile p = findProfile(lib.benchmark());
        prog = generateProgram(p);
    } else {
        std::printf("building a demo library (pass a .lpl file to use "
                    "a real one)...\n");
        lib = demoLibrary(prog);
    }
    std::printf("library '%s': %zu live-points\n\n",
                lib.benchmark().c_str(), lib.size());

    // Design space: the baseline first (index 0, the delta reference),
    // then the L2-size x memory-latency sweep.
    std::vector<CoreConfig> space;
    space.push_back(CoreConfig::eightWay());
    for (std::uint64_t l2 : {512ull << 10, 1ull << 20, 2ull << 20}) {
        for (Cycles memLat : {80ull, 100ull, 140ull}) {
            CoreConfig c = space.front();
            c.mem.l2.sizeBytes = l2;
            c.mem.memLatency = memLat;
            c.name = strfmt("L2=%lluKB,mem=%llucy",
                            static_cast<unsigned long long>(l2 >> 10),
                            static_cast<unsigned long long>(memLat));
            // The (1MB, 100cy) point IS the baseline: keeping it in
            // the sweep shows common random numbers at work — its
            // delta prints as exactly zero.
            space.push_back(c);
        }
    }

    CampaignOptions opt;
    opt.stopAtConfidence = true; // cells retire independently
    opt.spec = ConfidenceSpec{0.997, 0.03};
    if (argc > 2) {
        opt.manifestPath = argv[2];
        std::printf("checkpointing to '%s' (kill and rerun to "
                    "resume)\n\n", argv[2]);
    }

    CampaignEngine engine({{lib.benchmark(), &prog, &lib}}, space, opt);
    const CampaignResult r = engine.run();

    const double z = confidenceZ(opt.spec.level);
    const double baseCpi = r.cells[0].cpi();
    std::printf("%-24s %10s %9s %8s  %s\n", "design point", "dCPI",
                "rel", "pairs", "verdict");
    for (std::size_t c = 1; c < space.size(); ++c) {
        const CampaignPair *p = r.pair(0, 0, c);
        const double hw = p->delta.halfWidth(z);
        const bool significant = p->delta.count() >= minCltSample &&
                                 std::fabs(p->meanDelta()) > hw;
        const char *verdict =
            !significant
                ? "~ no measurable difference"
                : (p->meanDelta() < 0 ? "+ faster than baseline"
                                      : "- slower than baseline");
        std::printf("%-24s %+10.4f %8.2f%% %8llu  %s\n",
                    space[c].name.c_str(), p->meanDelta(),
                    baseCpi != 0.0 ? 100 * p->meanDelta() / baseCpi
                                   : 0.0,
                    static_cast<unsigned long long>(p->delta.count()),
                    verdict);
    }
    std::printf("\none campaign, %zu cells: %llu points decoded once "
                "each, %.2f replays per decode; %zu cells retired at "
                "their confidence target early, migrating %llu "
                "replays to the rest.\n",
                r.cells.size(),
                static_cast<unsigned long long>(r.pointsDecoded),
                static_cast<double>(r.replaysExecuted) /
                    static_cast<double>(std::max<std::uint64_t>(
                        r.pointsDecoded, 1)),
                r.retirements,
                static_cast<unsigned long long>(r.migratedReplays));
    if (!opt.manifestPath.empty())
        std::printf("manifest retained at '%s'; delete it to start "
                    "the sweep over.\n", opt.manifestPath.c_str());
    return 0;
}
