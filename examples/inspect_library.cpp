/**
 * @file
 * inspect_library — dump the contents of a live-point library file:
 * header metadata, the active storage backend with its resident and
 * mapped byte accounting, aggregate sizes, and per-section byte
 * breakdowns (the Figure 7 view of your own library). With --verify,
 * walks every record and cross-checks its decode against the index
 * table (rawSize, windowIndex) and the canonical re-encoding —
 * exiting nonzero if any record is damaged — and reports per-record
 * decode latency (avg/min/max ns) plus aggregate decode MB/s, the
 * quick health read on the codec hot path. Useful when deciding the
 * maximum cache/predictor configuration a library should bake in,
 * and as an integrity pass over archived libraries.
 *
 * The backend follows the io layer's selection: mmap where the
 * platform allows, the owned-buffer path under LP_NO_MMAP=1.
 *
 * Usage: inspect_library <library.lpl> [--points N] [--verify]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "core/library.hh"
#include "stats/running_stat.hh"
#include "util/log.hh"

using namespace lp;

static int
run(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <library.lpl> [--points N] "
                     "[--verify]\n",
                     argv[0]);
        return 1;
    }
    std::size_t showPoints = 5;
    bool verify = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc)
            showPoints = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--verify") == 0)
            verify = true;
    }

    const LivePointLibrary lib = LivePointLibrary::load(argv[1]);
    const SampleDesign &d = lib.design();

    std::printf("library            %s\n", argv[1]);
    std::printf("storage backend    %s (%.2f MB backing, %.2f MB "
                "pinned heap%s)\n",
                lib.storageKind().c_str(),
                static_cast<double>(lib.backingBytes()) / 1048576.0,
                static_cast<double>(lib.pinnedBytes()) / 1048576.0,
                lib.mappedBacking() ? ", paged on demand" : "");
    std::printf("benchmark          %s\n", lib.benchmark().c_str());
    std::printf("live-points        %zu\n", lib.size());
    std::printf("benchmark length   %.1fM instructions\n",
                static_cast<double>(d.benchLength) / 1e6);
    std::printf("window             %llu warm + %llu measure "
                "instructions\n",
                static_cast<unsigned long long>(d.warmLen),
                static_cast<unsigned long long>(d.measureLen));
    std::printf("sampling period    %llu instructions\n",
                static_cast<unsigned long long>(d.period()));
    std::printf("compressed size    %.2f MB (%.2f MB raw, %.1f:1)\n",
                static_cast<double>(lib.totalCompressedBytes()) / 1048576.0,
                static_cast<double>(lib.totalUncompressedBytes()) /
                    1048576.0,
                static_cast<double>(lib.totalUncompressedBytes()) /
                    static_cast<double>(
                        std::max<std::uint64_t>(
                            lib.totalCompressedBytes(), 1)));
    if (!lib.dictionary().empty() || lib.deltaCount() > 0)
        std::printf("checkpoint econ    %.1f KB shared dictionary, "
                    "%zu/%zu delta records\n",
                    static_cast<double>(lib.dictionary().size()) /
                        1024.0,
                    lib.deltaCount(), lib.size());

    if (lib.size() == 0)
        return 0;

    // --verify: decode every record, letting the library's
    // index-table cross-checks (rawSize, windowIndex) fire, and
    // additionally require the decoded point to re-encode to exactly
    // the stored raw bytes (the encoding is canonical, so any
    // payload damage that still parses shows up here).
    if (verify) {
        LivePointDecodeScratch scratch;
        LivePoint pt;
        std::size_t bad = 0;
        RunningStat decodeNs;
        std::uint64_t decodedBytes = 0;
        double decodeSeconds = 0.0;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            try {
                const auto t0 = std::chrono::steady_clock::now();
                lib.decodeInto(i, scratch, pt);
                const double dt =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                decodeNs.add(dt * 1e9);
                decodeSeconds += dt;
                decodedBytes += lib.rawSize(i);
                if (pt.serialize() != scratch.payload)
                    throw std::runtime_error(
                        "re-encode differs from stored bytes");
            } catch (const std::exception &e) {
                ++bad;
                std::fprintf(stderr, "record %zu: BAD (%s)\n", i,
                             e.what());
            }
        }
        std::printf("\nverify             %zu/%zu records ok "
                    "(decode + rawSize/windowIndex/re-encode "
                    "cross-checks)\n",
                    lib.size() - bad, lib.size());
        std::printf("decode time        %.0f ns/record avg (min %.0f, "
                    "max %.0f), %.1f MB/s aggregate\n",
                    decodeNs.mean(), decodeNs.min(), decodeNs.max(),
                    decodeSeconds > 0.0
                        ? static_cast<double>(decodedBytes) /
                              decodeSeconds / 1e6
                        : 0.0);
        if (bad)
            return 1;
    }

    // Aggregate per-section statistics over the whole library.
    RunningStat total;
    RunningStat memData;
    RunningStat l2Tags;
    RunningStat bpred;
    LivePointDecodeScratch firstScratch;
    LivePoint first;
    lib.decodeInto(0, firstScratch, first);
    std::printf("\nmaximum geometry   L2 %lluKB %u-way (line %llu); "
                "%zu predictor image(s):\n",
                static_cast<unsigned long long>(
                    first.l2.maxGeometry().sizeBytes / 1024),
                first.l2.maxGeometry().assoc,
                static_cast<unsigned long long>(
                    first.l2.maxGeometry().lineBytes),
                first.bpredImages.size());
    for (const auto &kv : first.bpredImages)
        std::printf("                   - %s\n", kv.first.c_str());

    LivePointDecodeScratch scratch;
    LivePoint pt;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        lib.decodeInto(i, scratch, pt);
        const LivePointBreakdown b = pt.breakdown();
        total.add(static_cast<double>(b.total));
        memData.add(static_cast<double>(b.memData));
        l2Tags.add(static_cast<double>(b.l2Tags));
        bpred.add(static_cast<double>(b.bpred));
    }
    std::printf("\nper-point (uncompressed) bytes  avg        min        "
                "max\n");
    auto row = [](const char *label, const RunningStat &s) {
        std::printf("  %-22s %10.0f %10.0f %10.0f\n", label, s.mean(),
                    s.min(), s.max());
    };
    row("total", total);
    row("memory data", memData);
    row("L2 tags", l2Tags);
    row("branch predictors", bpred);

    std::printf("\nfirst %zu points (in stored order):\n",
                std::min(showPoints, lib.size()));
    std::printf("  %6s %12s %12s %10s %6s\n", "rec", "window idx",
                "win start", "zipped B", "enc");
    for (std::size_t i = 0; i < std::min(showPoints, lib.size()); ++i) {
        lib.decodeInto(i, scratch, pt);
        const std::uint8_t f = lib.recordFlags(i);
        std::printf("  %6zu %12llu %12llu %10zu %6s\n", i,
                    static_cast<unsigned long long>(pt.index),
                    static_cast<unsigned long long>(pt.windowStart),
                    lib.compressedSize(i),
                    (f & LivePointLibrary::kFlagDelta)  ? "delta"
                    : (f & LivePointLibrary::kFlagDict) ? "dict"
                                                        : "plain");
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // A corrupt or unreadable library throws with path + strerror
    // context — report and exit cleanly instead of aborting.
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "inspect_library: %s\n", e.what());
        return 1;
    }
}
