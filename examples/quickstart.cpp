/**
 * @file
 * Quickstart: the complete live-point workflow on a small synthetic
 * benchmark, mirroring the paper's five-step procedure (Figure 6):
 *
 *   1. measure the target-metric variance to size the sample,
 *   2. create the live-point library (one full-warming pass),
 *   3. shuffle the library,
 *   4. run the baseline estimate with online confidence reporting,
 *   5. run a matched-pair comparison against a modified design.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/builder.hh"
#include "core/runners.hh"
#include "uarch/config.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace lp;

    // A small workload (~3M instructions) so the example runs in
    // seconds; swap in lp::findProfile("gcc-2") etc. for the suite.
    WorkloadProfile profile = tinyProfile(3'000'000, /*seed=*/7);
    profile.name = "quickstart";
    const Program prog = generateProgram(profile);
    const InstCount length = measureProgramLength(prog);
    std::printf("benchmark '%s': %llu dynamic instructions\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(length));

    const CoreConfig cfg = CoreConfig::eightWay();

    // Step 1: pilot estimate of CPI variability -> required sample size.
    ConfidenceSpec spec;            // 99.7% confidence of +/-3% error
    SampleDesign pilot = SampleDesign::systematic(
        length, 40, 1000, cfg.detailedWarming);
    const SampledEstimate pilotRun = runSmarts(prog, cfg, pilot);
    std::uint64_t n = requiredSampleSize(pilotRun.stat.cov(), spec);
    // The pilot's cov is itself a noisy estimate, and a library is a
    // reusable asset (Section 6): build headroom over the point
    // estimate so online stopping, not library exhaustion, ends the
    // run.
    n += n / 2;
    const std::uint64_t fit = SampleDesign::maxCount(
        length, 1000, cfg.detailedWarming);
    if (n > fit) {
        std::printf("        (capping n=%llu to the %llu windows this "
                    "short demo benchmark can hold; confidence will be "
                    "reported accordingly)\n",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(fit));
        n = fit;
    }
    std::printf("step 1: pilot cov=%.3f -> sample size n=%llu\n",
                pilotRun.stat.cov(), static_cast<unsigned long long>(n));

    // Step 2: one full-warming pass creates the live-point library.
    SampleDesign design = SampleDesign::systematic(
        length, n, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bcfg;
    bcfg.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bcfg);
    LivePointLibrary lib = builder.build(prog, design);
    std::printf("step 2: %zu live-points, %.1f KB compressed "
                "(%.1f KB raw), created in %.2fs\n",
                lib.size(),
                lib.totalCompressedBytes() / 1024.0,
                lib.totalUncompressedBytes() / 1024.0,
                builder.stats().wallSeconds);

    // Step 3: shuffle so any prefix is an unbiased random sub-sample.
    Rng shuffleRng(1234, "shuffle");
    lib.shuffle(shuffleRng);
    std::printf("step 3: library shuffled\n");

    // Step 4: baseline estimate with online stopping.
    LivePointRunOptions opt;
    opt.spec = spec;
    opt.stopAtConfidence = true;
    const LivePointRunResult base = runLivePoints(prog, lib, cfg, opt);
    std::printf("step 4: CPI = %.4f +/- %.2f%% after %zu/%zu "
                "live-points (%.2fs)\n",
                base.cpi(), 100.0 * base.finalSnapshot.relHalfWidth,
                base.processed, lib.size(), base.wallSeconds);

    // Step 5: matched-pair comparison against a larger L2.
    CoreConfig bigger = cfg;
    bigger.name = "8-way+2MB-L2";
    bigger.mem.l2.sizeBytes = 2 * 1024 * 1024;
    const MatchedPairOutcome cmp =
        runMatchedPair(prog, lib, cfg, bigger, opt);
    std::printf("step 5: delta CPI = %+.4f (%.2f%% of base) +/- %.4f "
                "after %zu pairs; %s\n",
                cmp.result.meanDelta, 100.0 * cmp.result.relDelta,
                cmp.result.deltaHalfWidth, cmp.processed,
                cmp.result.significant ? "significant"
                                       : "no significant difference");
    std::printf("        matched-pair sample size %llu vs absolute "
                "%llu (%.1fx reduction)\n",
                static_cast<unsigned long long>(cmp.pairedSampleSize),
                static_cast<unsigned long long>(cmp.absoluteSampleSize),
                cmp.pairedSampleSize
                    ? static_cast<double>(cmp.absoluteSampleSize) /
                          static_cast<double>(cmp.pairedSampleSize)
                    : 0.0);
    return 0;
}
