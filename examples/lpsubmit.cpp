/**
 * @file
 * lpsubmit — client for the lpserved campaign service daemon.
 *
 * Usage: lpsubmit [--socket <path>] <command> ...
 *   submit [--name X] --workload SHARD[:PROFILE] ...
 *          [--tiny INSTS:SEED] --config PRESET[:NAME[:MEM[:L2LAT[:L2KB]]]] ...
 *          [--threads N] [--deadline-ms N] [--level L] [--rel R]
 *          [--seed N] [--block N] [--budget N]
 *          [--retries N]
 *            submit a job; prints its id. `--tiny` sets the synthetic
 *            program recipe used by workloads without a PROFILE.
 *            Admission rejections are retried with bounded,
 *            deterministic backoff that honors the daemon's
 *            retry-after hint (at most N retries, default 64);
 *            exit 3 when the budget lapses while the daemon is busy.
 *   status <id>        print state, progress, detail
 *   wait <id> [ms]     poll until the job is terminal
 *   result <id>        print the campaign JSON report (done jobs)
 *   cancel <id> [why]  drain the job to its next barrier
 *   resume <id>        re-enqueue a cancelled/failed job
 *   query [WORKLOAD] [DIGEST]
 *                      list the daemon's result store (zero
 *                      simulation), optionally filtered by workload
 *                      shard name and/or hex config digest
 *   drain              run the daemon's queue dry and stop it
 *
 * The socket defaults to LP_SVC_SOCKET.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hh"
#include "util/log.hh"

using namespace lp;

namespace
{

std::vector<std::string>
splitColon(const std::string &s)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t next = s.find(':', pos);
        if (next == std::string::npos) {
            parts.push_back(s.substr(pos));
            break;
        }
        parts.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return parts;
}

std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *envSock = std::getenv("LP_SVC_SOCKET");
    std::string socketPath = envSock ? envSock : "";
    int i = 1;
    if (i + 1 < argc && std::string(argv[i]) == "--socket") {
        socketPath = argv[i + 1];
        i += 2;
    }
    if (i >= argc) {
        std::fprintf(stderr, "lpsubmit: no command (see header)\n");
        return 2;
    }
    if (socketPath.empty()) {
        std::fprintf(stderr,
                     "lpsubmit: --socket or LP_SVC_SOCKET required\n");
        return 2;
    }
    const std::string cmd = argv[i++];

    try {
        SvcClient client(socketPath);

        if (cmd == "submit") {
            JobSpec spec;
            std::uint64_t tinyInsts = 0, tinySeed = 0;
            RetryPolicy retry;
            for (; i < argc; ++i) {
                const std::string a = argv[i];
                auto need = [&]() -> std::string {
                    if (i + 1 >= argc)
                        panic("flag %s needs a value", a.c_str());
                    return argv[++i];
                };
                if (a == "--name")
                    spec.name = need();
                else if (a == "--workload") {
                    const auto p = splitColon(need());
                    JobWorkloadSpec w;
                    w.shard = p[0];
                    if (p.size() > 1)
                        w.profile = p[1];
                    spec.workloads.push_back(w);
                } else if (a == "--tiny") {
                    const auto p = splitColon(need());
                    tinyInsts = toU64(p[0]);
                    tinySeed = p.size() > 1 ? toU64(p[1]) : 1;
                } else if (a == "--config") {
                    const auto p = splitColon(need());
                    JobConfigSpec c;
                    c.preset = p[0];
                    if (p.size() > 1)
                        c.name = p[1];
                    if (p.size() > 2)
                        c.memLatency = toU64(p[2]);
                    if (p.size() > 3)
                        c.l2Latency = toU64(p[3]);
                    if (p.size() > 4)
                        c.l2SizeBytes = toU64(p[4]) << 10;
                    spec.configs.push_back(c);
                } else if (a == "--threads")
                    spec.threads =
                        static_cast<std::uint32_t>(toU64(need()));
                else if (a == "--deadline-ms")
                    spec.deadlineMs = toU64(need());
                else if (a == "--level")
                    spec.level = std::atof(need().c_str());
                else if (a == "--rel")
                    spec.relativeError = std::atof(need().c_str());
                else if (a == "--seed")
                    spec.shuffleSeed = toU64(need());
                else if (a == "--block")
                    spec.blockSize = toU64(need());
                else if (a == "--budget")
                    spec.maxFoldedReplays = toU64(need());
                else if (a == "--retries")
                    retry.attempts = static_cast<int>(toU64(need()));
                else
                    panic("unknown submit flag '%s'", a.c_str());
            }
            for (JobWorkloadSpec &w : spec.workloads) {
                if (w.profile.empty()) {
                    w.tinyInsts = tinyInsts;
                    w.tinySeed = tinySeed;
                }
            }
            if (spec.configs.empty())
                spec.configs.push_back(JobConfigSpec{"eight", "", 0, 0, 0});
            const SvcReply r = client.submitWithRetry(spec, retry);
            if (r.ok) {
                std::printf("%llu\n",
                            static_cast<unsigned long long>(r.id));
                return 0;
            }
            if (r.retry) {
                std::fprintf(stderr,
                             "lpsubmit: daemon still busy after %d "
                             "retries (%s)\n",
                             retry.attempts, r.detail.c_str());
                return 3;
            }
            std::fprintf(stderr, "lpsubmit: rejected: %s\n",
                         r.detail.c_str());
            return 1;
        }

        if (cmd == "status" || cmd == "wait") {
            if (i >= argc)
                panic("lpsubmit %s: job id required", cmd.c_str());
            const std::uint64_t id = toU64(argv[i++]);
            const SvcReply r =
                cmd == "wait"
                    ? client.waitForJob(
                          id, i < argc ? toU64(argv[i]) : 0)
                    : client.status(id);
            if (!r.ok) {
                std::fprintf(stderr, "lpsubmit: %s\n",
                             r.detail.c_str());
                return 1;
            }
            std::printf("job %llu: %s (progress %llu)%s%s\n",
                        static_cast<unsigned long long>(id),
                        r.state.c_str(),
                        static_cast<unsigned long long>(r.progress),
                        r.detail.empty() ? "" : " — ",
                        r.detail.c_str());
            return 0;
        }

        if (cmd == "result") {
            if (i >= argc)
                panic("lpsubmit result: job id required");
            const SvcReply r = client.result(toU64(argv[i]));
            if (!r.ok) {
                std::fprintf(stderr, "lpsubmit: %s\n",
                             r.detail.c_str());
                return 1;
            }
            if (r.state != "done") {
                std::fprintf(stderr, "lpsubmit: job is %s: %s\n",
                             r.state.c_str(), r.resultJson.c_str());
                return 1;
            }
            std::fputs(r.resultJson.c_str(), stdout);
            return 0;
        }

        if (cmd == "cancel") {
            if (i >= argc)
                panic("lpsubmit cancel: job id required");
            const std::uint64_t id = toU64(argv[i++]);
            const std::string why =
                i < argc ? argv[i] : "cancelled by lpsubmit";
            const SvcReply r = client.cancel(id, why);
            std::printf(r.ok ? "cancelling job %llu\n"
                             : "no job %llu\n",
                        static_cast<unsigned long long>(id));
            return r.ok ? 0 : 1;
        }

        if (cmd == "resume") {
            if (i >= argc)
                panic("lpsubmit resume: job id required");
            const SvcReply r = client.resume(toU64(argv[i]));
            if (!r.ok) {
                std::fprintf(stderr, "lpsubmit: %s\n",
                             r.detail.c_str());
                return 1;
            }
            std::printf("resumed job %llu\n",
                        static_cast<unsigned long long>(r.id));
            return 0;
        }

        if (cmd == "query") {
            const std::string workload = i < argc ? argv[i++] : "";
            const std::uint64_t digest =
                i < argc ? std::strtoull(argv[i], nullptr, 16) : 0;
            const SvcReply r = client.query(workload, digest);
            if (!r.ok) {
                std::fprintf(stderr, "lpsubmit: %s\n",
                             r.detail.c_str());
                return 1;
            }
            std::fputs(r.resultJson.c_str(), stdout);
            return 0;
        }

        if (cmd == "drain") {
            client.drain();
            std::printf("daemon drained\n");
            return 0;
        }

        std::fprintf(stderr, "lpsubmit: unknown command '%s'\n",
                     cmd.c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lpsubmit: %s\n", e.what());
        return 1;
    }
}
