/**
 * @file
 * lpserved — the campaign service daemon. Owns one LibrarySet fleet
 * store and a worker-slot budget, accepts JobSpecs over a Unix domain
 * socket (see src/svc/proto.hh), schedules them concurrently,
 * supervises stuck workers, and recovers in-flight jobs across
 * restarts from their manifest ledgers.
 *
 * Usage: lpserved --set <dir> [options]
 *   --socket <path>      listen socket   (LP_SVC_SOCKET)
 *   --jobs <dir>         job directories (LP_SVC_JOBS_DIR)
 *   --set <dir>          fleet store     (LP_SVC_SET)
 *   --slots <n>          worker budget   (LP_SVC_WORKER_SLOTS)
 *   --queue <n>          max queued jobs (LP_SVC_MAX_QUEUE)
 *   --resident <bytes>   admission bound (LP_SVC_MAX_RESIDENT_BYTES)
 *   --stuck-ms <ms>      watchdog stall  (LP_SVC_STUCK_TIMEOUT_MS)
 *   --period-ms <ms>     watchdog period (LP_SVC_SUPERVISOR_PERIOD_MS)
 *   --results <path>     fleet result store (LP_SVC_RESULTS;
 *                        default <jobs>/results.lpres)
 *
 * Flags override the LP_SVC_* environment; defaults are a socket and
 * jobs directory beside the set. Runs until `lpsubmit drain` (or
 * SIGINT/SIGTERM, which cancels running jobs resumably).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/daemon.hh"
#include "util/log.hh"

using namespace lp;

namespace
{

SvcDaemon *gDaemon = nullptr;

void
onSignal(int)
{
    if (gDaemon)
        gDaemon->stop();
}

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? v : fallback;
}

std::uint64_t
envOrU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceConfig cfg;
    cfg.setDir = envOr("LP_SVC_SET", "");
    cfg.jobsDir = envOr("LP_SVC_JOBS_DIR", "");
    std::string socketPath = envOr("LP_SVC_SOCKET", "");
    cfg.workerSlots = static_cast<unsigned>(
        envOrU64("LP_SVC_WORKER_SLOTS", cfg.workerSlots));
    cfg.maxQueueDepth = static_cast<std::size_t>(
        envOrU64("LP_SVC_MAX_QUEUE", cfg.maxQueueDepth));
    cfg.maxResidentBytes =
        envOrU64("LP_SVC_MAX_RESIDENT_BYTES", cfg.maxResidentBytes);
    cfg.stuckTimeoutMs =
        envOrU64("LP_SVC_STUCK_TIMEOUT_MS", cfg.stuckTimeoutMs);
    cfg.supervisorPeriodMs = envOrU64("LP_SVC_SUPERVISOR_PERIOD_MS",
                                      cfg.supervisorPeriodMs);
    cfg.resultStorePath = envOr("LP_SVC_RESULTS", "");

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        auto need = [&]() -> const char * {
            if (!val)
                panic("flag %s needs a value", a.c_str());
            ++i;
            return val;
        };
        if (a == "--set")
            cfg.setDir = need();
        else if (a == "--jobs")
            cfg.jobsDir = need();
        else if (a == "--socket")
            socketPath = need();
        else if (a == "--slots")
            cfg.workerSlots =
                static_cast<unsigned>(std::strtoull(need(), nullptr, 10));
        else if (a == "--queue")
            cfg.maxQueueDepth = static_cast<std::size_t>(
                std::strtoull(need(), nullptr, 10));
        else if (a == "--resident")
            cfg.maxResidentBytes = std::strtoull(need(), nullptr, 10);
        else if (a == "--stuck-ms")
            cfg.stuckTimeoutMs = std::strtoull(need(), nullptr, 10);
        else if (a == "--period-ms")
            cfg.supervisorPeriodMs = std::strtoull(need(), nullptr, 10);
        else if (a == "--results")
            cfg.resultStorePath = need();
        else
            panic("unknown flag '%s'", a.c_str());
    }
    if (cfg.setDir.empty())
        panic("lpserved: --set <dir> (or LP_SVC_SET) is required");
    if (cfg.jobsDir.empty())
        cfg.jobsDir = cfg.setDir + "/jobs";
    if (socketPath.empty())
        socketPath = cfg.setDir + "/lpserved.sock";

    try {
        SvcDaemon daemon(cfg, socketPath);
        gDaemon = &daemon;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::printf("lpserved: set '%s', %zu shards, %u worker slots, "
                    "listening on '%s'\n",
                    cfg.setDir.c_str(), daemon.service().set().size(),
                    cfg.workerSlots, socketPath.c_str());
        std::fflush(stdout);
        daemon.run();
        gDaemon = nullptr;
        std::printf("lpserved: stopped\n");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lpserved: %s\n", e.what());
        return 1;
    }
    return 0;
}
