/**
 * @file
 * online_monitoring — live view of a sampled simulation (paper
 * Section 6.1): processes a shuffled live-point library and prints the
 * running CPI estimate with its confidence interval as measurements
 * accumulate, the way a simulator developer would watch a run converge
 * (the paper notes this mode made their implement-debug-test loop
 * under an hour on the Liberty Simulation Environment).
 *
 * Usage: online_monitoring [library.lpl]
 */

#include <cstdio>

#include "core/builder.hh"
#include "core/library.hh"
#include "core/runners.hh"
#include "mem/memport.hh"
#include "uarch/config.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace lp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    Program prog;
    LivePointLibrary lib;
    if (argc > 1) {
        lib = LivePointLibrary::load(argv[1]);
        prog = generateProgram(findProfile(lib.benchmark()));
    } else {
        std::printf("building a demo library (pass a .lpl file to use "
                    "a real one)...\n");
        WorkloadProfile p = tinyProfile(3'000'000, 123);
        p.name = "monitor-demo";
        prog = generateProgram(p);
        const InstCount length = measureProgramLength(prog);
        const CoreConfig cfg = CoreConfig::eightWay();
        const std::uint64_t n = std::min<std::uint64_t>(
            500,
            SampleDesign::maxCount(length, 1000, cfg.detailedWarming));
        const SampleDesign design = SampleDesign::systematic(
            length, n, 1000, cfg.detailedWarming);
        LivePointBuilderConfig bc;
        bc.bpredConfigs = {cfg.bpred};
        LivePointBuilder builder(bc);
        lib = builder.build(prog, design);
    }

    const CoreConfig cfg = CoreConfig::eightWay();
    Rng rng(2, "monitor-shuffle");
    lib.shuffle(rng);

    // Drive the run point-by-point so we can print the live estimate.
    ConfidenceSpec spec; // 99.7% of +/-3%
    OnlineEstimator estimator(spec);
    std::printf("\n%8s %12s %14s %10s\n", "n", "CPI estimate",
                "conf. interval", "status");
    Blob scratch;
    LivePoint lp;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        lib.decodeInto(i, scratch, lp);
        SparseMemory mem;
        lp.memImage.applyTo(mem);
        DirectMemPort port(mem);
        MemHierarchy hier(cfg.mem);
        lp.l1i.reconstruct(hier.l1i());
        lp.l1d.reconstruct(hier.l1d());
        lp.l2.reconstruct(hier.l2());
        lp.itlb.reconstruct(hier.itlb());
        lp.dtlb.reconstruct(hier.dtlb());
        BranchPredictor bp(cfg.bpred);
        bp.deserialize(*lp.findBpredImage(cfg.bpred.key()));
        CoreBindings b;
        b.prog = &prog;
        b.initialRegs = lp.regs;
        b.mem = &port;
        b.hier = &hier;
        b.bp = &bp;
        b.availability = &lp.memImage;
        OoOCore core(cfg, b);
        const WindowResult w = core.measure(lp.warmLen, lp.measureLen);

        const OnlineSnapshot snap = estimator.add(w.cpi);
        const bool milestone =
            (i + 1) == minCltSample || (i + 1) % 50 == 0 ||
            snap.satisfied || i + 1 == lib.size();
        if (milestone) {
            std::printf("%8zu %12.4f %13.2f%% %10s\n", i + 1, snap.mean,
                        100 * snap.relHalfWidth,
                        !snap.valid ? "n<30"
                        : snap.satisfied ? "TARGET MET"
                                         : "running");
        }
        if (snap.satisfied) {
            std::printf("\nstopping early: +/-%.1f%% at %.1f%% "
                        "confidence reached after %zu of %zu "
                        "live-points.\n",
                        100 * spec.relativeError, 100 * spec.level,
                        i + 1, lib.size());
            return 0;
        }
    }
    std::printf("\nlibrary exhausted; final confidence +/-%.2f%%.\n",
                100 * estimator.snapshot().relHalfWidth);
    return 0;
}
