/**
 * Parallel library construction: the pipelined single-shard build is
 * bit-identical to the sequential reference, sharded builds keep the
 * architectural content of every point exact and their warm-state
 * bias inside the Fig-4 tolerance, and builder statistics are sane.
 */

#include "test_util.hh"

#include <cstdio>
#include <string>

#include "core/runners.hh"

namespace
{

/** Whole-file byte equality. */
bool
sameFileBytes(const std::string &pa, const std::string &pb)
{
    auto slurp = [](const std::string &p) {
        lp::Blob out;
        if (FILE *f = std::fopen(p.c_str(), "rb")) {
            std::fseek(f, 0, SEEK_END);
            out.resize(static_cast<std::size_t>(std::ftell(f)));
            std::fseek(f, 0, SEEK_SET);
            if (std::fread(out.data(), 1, out.size(), f) != out.size())
                out.clear();
            std::fclose(f);
        }
        return out;
    };
    const lp::Blob a = slurp(pa);
    const lp::Blob b = slurp(pb);
    return !a.empty() && a == b;
}

} // namespace

int
main()
{
    using namespace lp;
    using namespace lptest;

    const CoreConfig cfg = baseConfig();
    const TinyBench t = makeTinyBench("buildtest", 400'000, 5, 40);
    const Program &prog = t.prog;
    const SampleDesign &design = t.design;

    LivePointBuilderConfig bcSeq;
    bcSeq.bpredConfigs = {cfg.bpred};
    bcSeq.buildThreads = 1;
    bcSeq.pipelineEncode = false; // the sequential reference path
    LivePointBuilder seqBuilder(bcSeq);
    const LivePointLibrary seqLib = seqBuilder.build(prog, design);
    CHECK_EQ(seqLib.size(), design.count);
    CHECK_EQ(seqBuilder.stats().shards, 1u);
    CHECK_EQ(seqBuilder.stats().prePassInsts, 0u);
    CHECK(seqBuilder.stats().instsSimulated > 0);

    // --- Pipelined S=1: encoding off the simulating thread must not
    // change a single byte of the library. ---
    {
        LivePointBuilderConfig bc = bcSeq;
        bc.pipelineEncode = true;
        LivePointBuilder builder(bc);
        const LivePointLibrary lib = builder.build(prog, design);
        CHECK(identicalRecords(seqLib, lib));
        CHECK_EQ(lib.totalCompressedBytes(),
                 seqLib.totalCompressedBytes());
        CHECK_EQ(lib.totalUncompressedBytes(),
                 seqLib.totalUncompressedBytes());
        CHECK_EQ(builder.stats().shards, 1u);

        // ... including on disk.
        const std::string pa = "buildtest-seq.lpl";
        const std::string pb = "buildtest-pipe.lpl";
        seqLib.save(pa);
        lib.save(pb);
        CHECK(sameFileBytes(pa, pb));
        std::remove(pa.c_str());
        std::remove(pb.c_str());
    }

    // --- Sharded build (MRRL-derived prefixes): architectural
    // content exact, warm-state bias within tolerance. ---
    const LivePointRunOptions ropt;
    const LivePointRunResult seqRun =
        runLivePoints(prog, seqLib, cfg, ropt);
    for (unsigned shards : {3u, 4u}) {
        LivePointBuilderConfig bc = bcSeq;
        bc.pipelineEncode = true;
        bc.buildThreads = shards;
        LivePointBuilder builder(bc);
        const LivePointLibrary lib = builder.build(prog, design);
        CHECK_EQ(lib.size(), design.count);
        CHECK_EQ(builder.stats().shards, shards);
        CHECK(builder.stats().prePassInsts > 0);

        Blob scratchA, scratchB;
        LivePoint pa, pb;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            seqLib.decodeInto(i, scratchA, pa);
            lib.decodeInto(i, scratchB, pb);
            // Registers and the live-state image come from
            // deterministic architectural execution: exact under any
            // sharding. Only microarchitectural warm state may vary.
            CHECK_EQ(pb.index, pa.index);
            CHECK_EQ(pb.windowStart, pa.windowStart);
            CHECK(pb.regs.serialize() == pa.regs.serialize());
            DerWriter wa, wb;
            pa.memImage.serialize(wa);
            pb.memImage.serialize(wb);
            CHECK(wa.finish() == wb.finish());
        }

        // Fig-4-style bias check: the shard-built estimate must match
        // the sequential full-warming estimate within a tight relative
        // tolerance (only each shard's leading windows can differ, by
        // the MRRL coverage argument).
        const LivePointRunResult run =
            runLivePoints(prog, lib, cfg, ropt);
        CHECK_EQ(run.processed, seqRun.processed);
        CHECK(seqRun.cpi() > 0);
        const double bias =
            std::fabs(run.cpi() - seqRun.cpi()) / seqRun.cpi();
        if (bias > 0.02)
            std::fprintf(stderr,
                         "shards=%u bias %.4f (seq %.4f vs shard %.4f)\n",
                         shards, bias, seqRun.cpi(), run.cpi());
        CHECK(bias <= 0.02);
    }

    // --- Fixed warming prefix: same exactness contract. ---
    {
        LivePointBuilderConfig bc = bcSeq;
        bc.pipelineEncode = true;
        bc.buildThreads = 3;
        bc.shardPrefixInsts = 100'000;
        LivePointBuilder builder(bc);
        const LivePointLibrary lib = builder.build(prog, design);
        CHECK_EQ(lib.size(), design.count);
        Blob scratch;
        LivePoint p;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            lib.decodeInto(i, scratch, p);
            CHECK_EQ(p.windowStart, design.windowStart(i));
            CHECK_EQ(p.regs.instIndex, p.windowStart);
        }
        const LivePointRunResult run =
            runLivePoints(prog, lib, cfg, ropt);
        CHECK_REL(run.cpi(), seqRun.cpi(), 0.02);
    }

    // --- Sharded builds are themselves deterministic. ---
    {
        LivePointBuilderConfig bc = bcSeq;
        bc.pipelineEncode = true;
        bc.buildThreads = 3;
        LivePointBuilder b1(bc);
        LivePointBuilder b2(bc);
        const LivePointLibrary l1 = b1.build(prog, design);
        const LivePointLibrary l2 = b2.build(prog, design);
        CHECK(identicalRecords(l1, l2));
    }

    // --- Checkpoint economics: the dictionary+delta build obeys the
    // same contracts — S=1 pipelined bit-identical to sequential
    // (including on disk), and a sharded build stores different bytes
    // but decodes to exactly the points of the plain build at the
    // same shard count. ---
    {
        LivePointBuilderConfig bcCross = bcSeq;
        bcCross.sharedDictionary = true;
        bcCross.deltaEncode = true;
        bcCross.pipelineEncode = false;
        LivePointBuilder crossSeq(bcCross);
        const LivePointLibrary crossSeqLib = crossSeq.build(prog, design);
        CHECK(crossSeqLib.deltaCount() > 0);
        CHECK(!crossSeqLib.dictionary().empty());
        CHECK(crossSeqLib.totalCompressedBytes() <
              seqLib.totalCompressedBytes());

        LivePointBuilderConfig bcPipe = bcCross;
        bcPipe.pipelineEncode = true;
        LivePointBuilder crossPipe(bcPipe);
        const LivePointLibrary pipeLib = crossPipe.build(prog, design);
        CHECK(identicalRecords(crossSeqLib, pipeLib));
        const std::string pa = "buildtest-cross-seq.lpl";
        const std::string pb = "buildtest-cross-pipe.lpl";
        crossSeqLib.save(pa);
        pipeLib.save(pb);
        CHECK(sameFileBytes(pa, pb));
        std::remove(pa.c_str());
        std::remove(pb.c_str());

        // Every point decodes to the sequential plain build's bytes
        // (encoding never changes content).
        LivePointDecodeScratch scratch;
        Blob plainScratch;
        LivePoint pc, pp;
        for (std::size_t i = 0; i < crossSeqLib.size(); ++i) {
            crossSeqLib.decodeInto(i, scratch, pc);
            seqLib.decodeInto(i, plainScratch, pp);
            CHECK(pc.serialize() == pp.serialize());
        }

        // Sharded: delta chains restart at shard boundaries, content
        // still matches the plain sharded build point-for-point, and
        // the build stays deterministic.
        {
            LivePointBuilderConfig bcShard = bcSeq;
            bcShard.pipelineEncode = true;
            bcShard.buildThreads = 3;
            LivePointBuilder plain3(bcShard);
            const LivePointLibrary plainLib3 = plain3.build(prog, design);
            bcShard.sharedDictionary = true;
            bcShard.deltaEncode = true;
            LivePointBuilder cross3a(bcShard);
            LivePointBuilder cross3b(bcShard);
            const LivePointLibrary crossLib3 = cross3a.build(prog, design);
            CHECK(identicalRecords(crossLib3, cross3b.build(prog, design)));
            CHECK(crossLib3.deltaCount() > 0);
            for (std::size_t i = 0; i < crossLib3.size(); ++i) {
                crossLib3.decodeInto(i, scratch, pc);
                plainLib3.decodeInto(i, plainScratch, pp);
                CHECK(pc.serialize() == pp.serialize());
            }
        }
    }

    // --- Restricted live-state tier: a builder configuration derived
    // from the campaign's configurations stores less warm state, and
    // replaying a covered configuration reconstructs the *exact* same
    // state as the full-geometry library (LRU inclusion), so the
    // estimates agree exactly. ---
    {
        const LivePointBuilderConfig restricted =
            restrictedBuilderConfig({cfg, slowMemConfig()}, bcSeq);
        // Both inputs share eightWay geometry, so the cover is it.
        CHECK(restricted.maxL2 == cfg.mem.l2);
        CHECK(restricted.maxL1d == cfg.mem.l1d);
        CHECK(restricted.maxL1i == cfg.mem.l1i);
        CHECK(restricted.maxItlb == cfg.mem.itlb);
        CHECK(restricted.maxDtlb == cfg.mem.dtlb);
        CHECK_EQ(restricted.bpredConfigs.size(), 1u);
        // Distinct geometries combine into the per-level cover.
        {
            CoreConfig big = cfg;
            big.mem.l2 = CacheGeometry{2ull << 20, 2, 128};
            const LivePointBuilderConfig two =
                restrictedBuilderConfig({cfg, big}, bcSeq);
            // Covering needs max sets *and* max assoc per level:
            // 1MB/4w has 2048 sets, 2MB/2w has 8192 -> 8192 * 4 * 128.
            CHECK_EQ(two.maxL2.numSets(), 8192u);
            CHECK_EQ(two.maxL2.assoc, 4u);
            CHECK_EQ(two.maxL2.lineBytes, 128u);
            CoreConfig badLine = cfg;
            badLine.mem.l2.lineBytes = 64;
            CHECK_THROWS(restrictedBuilderConfig({cfg, badLine}, bcSeq));
            CHECK_THROWS(restrictedBuilderConfig({}, bcSeq));
        }

        LivePointBuilder rbuilder(restricted);
        const LivePointLibrary rlib = rbuilder.build(prog, design);
        CHECK(rlib.totalUncompressedBytes() <
              seqLib.totalUncompressedBytes());
        const LivePointRunResult rrun =
            runLivePoints(prog, rlib, cfg, ropt);
        CHECK_EQ(rrun.processed, seqRun.processed);
        CHECK(rrun.cpi() == seqRun.cpi()); // exact, not approximate
    }

    return TEST_MAIN_RESULT();
}
