/** Determinism of Rng, RunningStat against hand-computed values. */

#include "harness.hh"

#include "stats/running_stat.hh"
#include "util/log.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lp;

    // Same seed + stream -> identical sequences.
    {
        Rng a(42, "stream");
        Rng b(42, "stream");
        for (int i = 0; i < 1000; ++i)
            CHECK_EQ(a.next(), b.next());
    }
    // Different stream names -> different sequences.
    {
        Rng a(42, "one");
        Rng b(42, "two");
        bool anyDiff = false;
        for (int i = 0; i < 16; ++i)
            anyDiff = anyDiff || (a.next() != b.next());
        CHECK(anyDiff);
    }
    // Bounded draws stay in range and hit both halves.
    {
        Rng r(7);
        bool low = false;
        bool high = false;
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t v = r.nextBounded(100);
            CHECK(v < 100);
            low = low || v < 50;
            high = high || v >= 50;
        }
        CHECK(low);
        CHECK(high);
    }

    // RunningStat vs hand-computed values for {2, 4, 4, 4, 5, 5, 7, 9}:
    // mean 5, sample variance 32/7, min 2, max 9.
    {
        RunningStat s;
        for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
            s.add(x);
        CHECK_EQ(s.count(), 8u);
        CHECK_NEAR(s.mean(), 5.0, 1e-12);
        CHECK_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
        CHECK_NEAR(s.cov(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
        CHECK_NEAR(s.min(), 2.0, 0.0);
        CHECK_NEAR(s.max(), 9.0, 0.0);
        // Half-width at z=2: 2 * stddev / sqrt(8).
        CHECK_NEAR(s.halfWidth(2.0),
                   2.0 * std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
    }

    // RunningStat::merge (Chan et al.) against the same hand-computed
    // sample, split unevenly: {2, 4, 4} + {4, 5, 5, 7, 9}.
    {
        RunningStat a;
        for (const double x : {2.0, 4.0, 4.0})
            a.add(x);
        RunningStat b;
        for (const double x : {4.0, 5.0, 5.0, 7.0, 9.0})
            b.add(x);
        a.merge(b);
        CHECK_EQ(a.count(), 8u);
        CHECK_NEAR(a.mean(), 5.0, 1e-12);
        CHECK_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
        CHECK_NEAR(a.min(), 2.0, 0.0);
        CHECK_NEAR(a.max(), 9.0, 0.0);

        // Merging an empty accumulator is a no-op, either way.
        RunningStat empty;
        a.merge(empty);
        CHECK_EQ(a.count(), 8u);
        CHECK_NEAR(a.mean(), 5.0, 1e-12);
        RunningStat c;
        c.merge(a);
        CHECK_EQ(c.count(), 8u);
        CHECK_NEAR(c.mean(), 5.0, 1e-12);
        CHECK_NEAR(c.variance(), 32.0 / 7.0, 1e-12);

        // Single observations merge like adds: {3} + {7}.
        RunningStat d;
        d.add(3.0);
        RunningStat e;
        e.add(7.0);
        d.merge(e);
        CHECK_EQ(d.count(), 2u);
        CHECK_NEAR(d.mean(), 5.0, 1e-12);
        CHECK_NEAR(d.variance(), 8.0, 1e-12); // ((3-5)^2+(7-5)^2)/1
    }

    // Normal quantiles: well-known two-sided z values.
    CHECK_NEAR(confidenceZ(0.95), 1.959964, 1e-4);
    CHECK_NEAR(confidenceZ(0.99), 2.575829, 1e-4);
    CHECK_NEAR(confidenceZ(0.997), 2.967738, 1e-4);
    CHECK_NEAR(normalQuantile(0.5), 0.0, 1e-9);

    // strfmt round-trips formatting.
    CHECK(strfmt("%s-%d", "x", 7) == "x-7");

    return TEST_MAIN_RESULT();
}
