/** Determinism of Rng, RunningStat against hand-computed values. */

#include "harness.hh"

#include "stats/running_stat.hh"
#include "util/log.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lp;

    // Same seed + stream -> identical sequences.
    {
        Rng a(42, "stream");
        Rng b(42, "stream");
        for (int i = 0; i < 1000; ++i)
            CHECK_EQ(a.next(), b.next());
    }
    // Different stream names -> different sequences.
    {
        Rng a(42, "one");
        Rng b(42, "two");
        bool anyDiff = false;
        for (int i = 0; i < 16; ++i)
            anyDiff = anyDiff || (a.next() != b.next());
        CHECK(anyDiff);
    }
    // Bounded draws stay in range and hit both halves.
    {
        Rng r(7);
        bool low = false;
        bool high = false;
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t v = r.nextBounded(100);
            CHECK(v < 100);
            low = low || v < 50;
            high = high || v >= 50;
        }
        CHECK(low);
        CHECK(high);
    }

    // RunningStat vs hand-computed values for {2, 4, 4, 4, 5, 5, 7, 9}:
    // mean 5, sample variance 32/7, min 2, max 9.
    {
        RunningStat s;
        for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
            s.add(x);
        CHECK_EQ(s.count(), 8u);
        CHECK_NEAR(s.mean(), 5.0, 1e-12);
        CHECK_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
        CHECK_NEAR(s.cov(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
        CHECK_NEAR(s.min(), 2.0, 0.0);
        CHECK_NEAR(s.max(), 9.0, 0.0);
        // Half-width at z=2: 2 * stddev / sqrt(8).
        CHECK_NEAR(s.halfWidth(2.0),
                   2.0 * std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
    }

    // Normal quantiles: well-known two-sided z values.
    CHECK_NEAR(confidenceZ(0.95), 1.959964, 1e-4);
    CHECK_NEAR(confidenceZ(0.99), 2.575829, 1e-4);
    CHECK_NEAR(confidenceZ(0.997), 2.967738, 1e-4);
    CHECK_NEAR(normalQuantile(0.5), 0.0, 1e-9);

    // strfmt round-trips formatting.
    CHECK(strfmt("%s-%d", "x", 7) == "x-7");

    return TEST_MAIN_RESULT();
}
