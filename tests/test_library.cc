/**
 * Library round-trips: build -> save -> load -> byte-identical
 * records, deterministic shuffling, breakdown accounting.
 */

#include "harness.hh"

#include <cstdio>

#include "core/builder.hh"
#include "core/library.hh"
#include "uarch/config.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace lp;

    WorkloadProfile profile = tinyProfile(400'000, 5);
    profile.name = "libtest";
    const Program prog = generateProgram(profile);
    const InstCount length = measureProgramLength(prog);
    const CoreConfig cfg = CoreConfig::eightWay();

    const SampleDesign design = SampleDesign::systematic(
        length, 40, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc;
    bc.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bc);
    LivePointLibrary lib = builder.build(prog, design);

    CHECK_EQ(lib.size(), design.count);
    CHECK(lib.benchmark() == "libtest");
    CHECK(lib.design() == design);
    CHECK(lib.totalCompressedBytes() > 0);
    CHECK(lib.totalUncompressedBytes() > lib.totalCompressedBytes());
    CHECK(builder.stats().points == design.count);

    // Same build twice -> byte-identical libraries.
    {
        LivePointBuilder builder2(bc);
        const LivePointLibrary lib2 = builder2.build(prog, design);
        CHECK_EQ(lib.totalCompressedBytes(),
                 lib2.totalCompressedBytes());
        for (std::size_t i = 0; i < lib.size(); ++i)
            CHECK(lib.get(i).serialize() == lib2.get(i).serialize());
    }

    // Points carry consistent metadata and a usable predictor image.
    {
        const LivePoint p = lib.get(lib.size() / 2);
        CHECK_EQ(p.windowStart,
                 design.windowStart(lib.size() / 2));
        CHECK_EQ(p.regs.instIndex, p.windowStart);
        CHECK_EQ(p.warmLen, design.warmLen);
        CHECK(p.findBpredImage(cfg.bpred.key()) != nullptr);
        CHECK(p.findBpredImage("comb-nonexistent") == nullptr);
        CHECK(p.memImage.blockCount() > 0);
        const LivePointBreakdown b = p.breakdown();
        CHECK(b.total > 0);
        CHECK(b.memData > 0);
        CHECK(b.l2Tags > 0);
        CHECK(b.bpred > 0);
    }

    // Save -> load -> identical content.
    const std::string path = "libtest-roundtrip.lpl";
    lib.save(path);
    const LivePointLibrary loaded = LivePointLibrary::load(path);
    CHECK(loaded.design() == lib.design());
    CHECK(loaded.benchmark() == lib.benchmark());
    CHECK_EQ(loaded.size(), lib.size());
    CHECK_EQ(loaded.totalCompressedBytes(), lib.totalCompressedBytes());
    CHECK_EQ(loaded.totalUncompressedBytes(),
             lib.totalUncompressedBytes());
    for (std::size_t i = 0; i < lib.size(); ++i) {
        CHECK_EQ(loaded.compressedSize(i), lib.compressedSize(i));
        CHECK(loaded.get(i).serialize() == lib.get(i).serialize());
    }
    std::remove(path.c_str());

    // Shuffling is a seed-deterministic permutation.
    {
        LivePointLibrary a = lib;
        LivePointLibrary b = lib;
        Rng ra(77, "shuffle");
        Rng rb(77, "shuffle");
        a.shuffle(ra);
        b.shuffle(rb);
        bool permuted = false;
        std::uint64_t sumA = 0;
        std::uint64_t sumB = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const LivePoint pa = a.get(i);
            const LivePoint pb = b.get(i);
            CHECK_EQ(pa.index, pb.index);
            // The metadata index travels with the record.
            CHECK_EQ(a.windowIndex(i), pa.index);
            permuted = permuted || pa.index != i;
            sumA += pa.index;
            sumB += pb.index;
        }
        CHECK(permuted);
        // Still a permutation of 0..n-1.
        const std::uint64_t n = a.size();
        CHECK_EQ(sumA, n * (n - 1) / 2);
        CHECK_EQ(sumB, n * (n - 1) / 2);
    }

    return TEST_MAIN_RESULT();
}
