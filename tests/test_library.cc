/**
 * Library round-trips: build -> save -> load -> byte-identical
 * records, deterministic shuffling, breakdown accounting.
 */

#include "harness.hh"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/builder.hh"
#include "core/library.hh"
#include "uarch/config.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace lp;

    WorkloadProfile profile = tinyProfile(400'000, 5);
    profile.name = "libtest";
    const Program prog = generateProgram(profile);
    const InstCount length = measureProgramLength(prog);
    const CoreConfig cfg = CoreConfig::eightWay();

    const SampleDesign design = SampleDesign::systematic(
        length, 40, 1000, cfg.detailedWarming);
    LivePointBuilderConfig bc;
    bc.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bc);
    LivePointLibrary lib = builder.build(prog, design);

    CHECK_EQ(lib.size(), design.count);
    CHECK(lib.benchmark() == "libtest");
    CHECK(lib.design() == design);
    CHECK(lib.totalCompressedBytes() > 0);
    CHECK(lib.totalUncompressedBytes() > lib.totalCompressedBytes());
    CHECK(builder.stats().points == design.count);

    // Same build twice -> byte-identical libraries.
    {
        LivePointBuilder builder2(bc);
        const LivePointLibrary lib2 = builder2.build(prog, design);
        CHECK_EQ(lib.totalCompressedBytes(),
                 lib2.totalCompressedBytes());
        for (std::size_t i = 0; i < lib.size(); ++i)
            CHECK(lib.get(i).serialize() == lib2.get(i).serialize());
    }

    // Points carry consistent metadata and a usable predictor image.
    {
        const LivePoint p = lib.get(lib.size() / 2);
        CHECK_EQ(p.windowStart,
                 design.windowStart(lib.size() / 2));
        CHECK_EQ(p.regs.instIndex, p.windowStart);
        CHECK_EQ(p.warmLen, design.warmLen);
        CHECK(p.findBpredImage(cfg.bpred.key()) != nullptr);
        CHECK(p.findBpredImage("comb-nonexistent") == nullptr);
        CHECK(p.memImage.blockCount() > 0);
        const LivePointBreakdown b = p.breakdown();
        CHECK(b.total > 0);
        CHECK(b.memData > 0);
        CHECK(b.l2Tags > 0);
        CHECK(b.bpred > 0);
    }

    // Save -> load -> identical content (LPLIB3, the default).
    const std::string path = "libtest-roundtrip.lpl";
    lib.save(path);
    const LivePointLibrary loaded = LivePointLibrary::load(path);
    CHECK(loaded.design() == lib.design());
    CHECK(loaded.benchmark() == lib.benchmark());
    CHECK_EQ(loaded.size(), lib.size());
    CHECK_EQ(loaded.totalCompressedBytes(), lib.totalCompressedBytes());
    CHECK_EQ(loaded.totalUncompressedBytes(),
             lib.totalUncompressedBytes());
    for (std::size_t i = 0; i < lib.size(); ++i) {
        CHECK_EQ(loaded.compressedSize(i), lib.compressedSize(i));
        CHECK_EQ(loaded.windowIndex(i), lib.windowIndex(i));
        CHECK(loaded.get(i).serialize() == lib.get(i).serialize());
    }
    std::remove(path.c_str());

    // Format compatibility: a library written by the legacy LPLIB2
    // writer loads through the same magic-dispatched load() with
    // point-for-point equality.
    {
        const std::string p2 = "libtest-lpl2.lpl";
        lib.save(p2, LivePointLibrary::Format::lpl2);
        const LivePointLibrary old = LivePointLibrary::load(p2);
        CHECK(old.design() == lib.design());
        CHECK(old.benchmark() == lib.benchmark());
        CHECK_EQ(old.size(), lib.size());
        CHECK_EQ(old.totalCompressedBytes(),
                 lib.totalCompressedBytes());
        Blob scratchA, scratchB;
        LivePoint pa, pb;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            CHECK_EQ(old.compressedSize(i), lib.compressedSize(i));
            CHECK_EQ(old.windowIndex(i), lib.windowIndex(i));
            old.decodeInto(i, scratchA, pa);
            lib.decodeInto(i, scratchB, pb);
            CHECK(pa.serialize() == pb.serialize());
        }
        std::remove(p2.c_str());
    }

    // Zero-copy spans: a loaded library's records point into one
    // backing buffer, in stored order, and survive a library move.
    {
        const std::string p3 = "libtest-span.lpl";
        lib.save(p3);
        LivePointLibrary span = LivePointLibrary::load(p3);
        const std::uint8_t *base = span.record(0).data;
        for (std::size_t i = 1; i < span.size(); ++i) {
            const ByteSpan prev = span.record(i - 1);
            CHECK(span.record(i).data == prev.data + prev.size);
        }
        const LivePointLibrary moved = std::move(span);
        CHECK(moved.record(0).data == base);
        CHECK(moved.get(0).serialize() == lib.get(0).serialize());
        std::remove(p3.c_str());
    }

    // Malformed container files raise, never crash or leak.
    {
        const std::string pbad = "libtest-bad.lpl";
        lib.save(pbad);
        std::filesystem::resize_file(pbad, 80); // truncate mid-table
        bool threw = false;
        try {
            LivePointLibrary::load(pbad);
        } catch (const std::exception &) {
            threw = true;
        }
        CHECK(threw);
        std::remove(pbad.c_str());
        bool threwMissing = false;
        try {
            LivePointLibrary::load("libtest-does-not-exist.lpl");
        } catch (const std::exception &) {
            threwMissing = true;
        }
        CHECK(threwMissing);
    }

    // Shuffling is a seed-deterministic permutation.
    {
        LivePointLibrary a = lib;
        LivePointLibrary b = lib;
        Rng ra(77, "shuffle");
        Rng rb(77, "shuffle");
        a.shuffle(ra);
        b.shuffle(rb);
        bool permuted = false;
        std::uint64_t sumA = 0;
        std::uint64_t sumB = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const LivePoint pa = a.get(i);
            const LivePoint pb = b.get(i);
            CHECK_EQ(pa.index, pb.index);
            // The metadata index travels with the record.
            CHECK_EQ(a.windowIndex(i), pa.index);
            permuted = permuted || pa.index != i;
            sumA += pa.index;
            sumB += pb.index;
        }
        CHECK(permuted);
        // Still a permutation of 0..n-1.
        const std::uint64_t n = a.size();
        CHECK_EQ(sumA, n * (n - 1) / 2);
        CHECK_EQ(sumB, n * (n - 1) / 2);
    }

    return TEST_MAIN_RESULT();
}
