/**
 * Library round-trips: build -> save -> load -> byte-identical
 * records, deterministic shuffling, breakdown accounting — and
 * container robustness: every header and record-table field of a
 * saved library corrupted in place, and the file truncated at every
 * section boundary, must produce a clean load error, never a crash.
 * Every load-facing check runs through each storage backend (owned
 * buffer and mmap): the backends must be indistinguishable except in
 * how the bytes are held. Also the sharded fleet store (LibrarySet):
 * streaming writes, lazy opens, index metadata, and integrity
 * failures.
 */

#include "test_util.hh"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "core/builder.hh"
#include "core/library.hh"
#include "core/library_set.hh"
#include "uarch/config.hh"

namespace
{

/** Read a whole file. */
lp::Blob
slurpFile(const std::string &path)
{
    lp::Blob out;
    if (FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fseek(f, 0, SEEK_END);
        out.resize(static_cast<std::size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        if (!out.empty() &&
            std::fread(out.data(), 1, out.size(), f) != out.size())
            out.clear();
        std::fclose(f);
    }
    return out;
}

/** Overwrite a whole file. */
void
spewFile(const std::string &path, const lp::Blob &data)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    CHECK(f != nullptr);
    if (!data.empty())
        CHECK(std::fwrite(data.data(), 1, data.size(), f) ==
              data.size());
    std::fclose(f);
}

} // namespace

int
main()
{
    using namespace lp;
    using namespace lptest;

    const CoreConfig cfg = CoreConfig::eightWay();
    TinyLib t = buildTinyLibrary("libtest", 400'000, 5, 40);
    const Program &prog = t.prog;
    const SampleDesign &design = t.design;
    LivePointLibrary &lib = t.lib;

    // Every backend the build supports; each load-facing check runs
    // against all of them.
    std::vector<StorageBackend> backends{StorageBackend::buffer};
    if (mmapSupported() && !mmapDisabledByEnv())
        backends.push_back(StorageBackend::mapped);

    // An in-memory build holds its records in the append arena.
    CHECK(lib.storageKind() == "arena");
    CHECK(!lib.mappedBacking());
    CHECK_EQ(lib.backingBytes(), 0u);
    CHECK(lib.pinnedBytes() >= lib.totalCompressedBytes());

    CHECK_EQ(lib.size(), design.count);
    CHECK(lib.benchmark() == "libtest");
    CHECK(lib.design() == design);
    CHECK(lib.totalCompressedBytes() > 0);
    CHECK(lib.totalUncompressedBytes() > lib.totalCompressedBytes());

    // Same build twice -> byte-identical libraries, equal content
    // hashes; shuffling changes the stored order and so the hash.
    {
        const TinyLib again =
            buildTinyLibrary("libtest", 400'000, 5, 40);
        CHECK_EQ(lib.totalCompressedBytes(),
                 again.lib.totalCompressedBytes());
        for (std::size_t i = 0; i < lib.size(); ++i)
            CHECK(lib.get(i).serialize() ==
                  again.lib.get(i).serialize());
        CHECK_EQ(lib.contentHash(), again.lib.contentHash());
        LivePointLibrary shuffled = lib;
        Rng rng(3, "hash-shuffle");
        shuffled.shuffle(rng);
        CHECK(shuffled.contentHash() != lib.contentHash());
    }

    // Points carry consistent metadata and a usable predictor image.
    {
        const LivePoint p = lib.get(lib.size() / 2);
        CHECK_EQ(p.windowStart,
                 design.windowStart(lib.size() / 2));
        CHECK_EQ(p.regs.instIndex, p.windowStart);
        CHECK_EQ(p.warmLen, design.warmLen);
        CHECK(p.findBpredImage(cfg.bpred.key()) != nullptr);
        CHECK(p.findBpredImage("comb-nonexistent") == nullptr);
        CHECK(p.memImage.blockCount() > 0);
        const LivePointBreakdown b = p.breakdown();
        CHECK(b.total > 0);
        CHECK(b.memData > 0);
        CHECK(b.l2Tags > 0);
        CHECK(b.bpred > 0);
    }

    // Save -> load -> identical content (LPLIB3, the default).
    const std::string path = "libtest-roundtrip.lpl";
    lib.save(path);
    const LivePointLibrary loaded = LivePointLibrary::load(path);
    CHECK(loaded.design() == lib.design());
    CHECK(loaded.benchmark() == lib.benchmark());
    CHECK_EQ(loaded.size(), lib.size());
    CHECK_EQ(loaded.totalCompressedBytes(), lib.totalCompressedBytes());
    CHECK_EQ(loaded.totalUncompressedBytes(),
             lib.totalUncompressedBytes());
    for (std::size_t i = 0; i < lib.size(); ++i) {
        CHECK_EQ(loaded.compressedSize(i), lib.compressedSize(i));
        CHECK_EQ(loaded.windowIndex(i), lib.windowIndex(i));
        CHECK(loaded.get(i).serialize() == lib.get(i).serialize());
    }

    // Backend matrix: the same container through every backend (and
    // both formats) must be record-identical, hash-identical, and
    // decode-identical — only the self-description differs.
    {
        const std::string p2fmt = "libtest-backends.lpl2";
        lib.save(p2fmt, LivePointLibrary::Format::lpl2);
        for (const StorageBackend backend : backends) {
            for (const std::string &file : {path, p2fmt}) {
                const LivePointLibrary b =
                    LivePointLibrary::load(file, backend);
                CHECK(b.storageKind() ==
                      storageBackendName(backend));
                CHECK_EQ(b.mappedBacking(),
                         backend == StorageBackend::mapped);
                CHECK_EQ(b.backingBytes(),
                         std::filesystem::file_size(file));
                // A mapped library pins no heap for its records; a
                // buffered one pins the whole file.
                CHECK_EQ(b.pinnedBytes(),
                         backend == StorageBackend::mapped
                             ? 0u
                             : b.backingBytes());
                CHECK(identicalRecords(b, loaded));
                CHECK_EQ(b.contentHash(), lib.contentHash());
                for (std::size_t i = 0; i < lib.size(); ++i)
                    CHECK_EQ(b.rawSize(i), lib.rawSize(i));
                Blob scratch;
                LivePoint pt;
                for (const std::size_t i :
                     {std::size_t{0}, lib.size() / 2,
                      lib.size() - 1}) {
                    // Prefetch/release hints around a decode must
                    // never change its result.
                    b.prefetchRecord(i);
                    b.decodeInto(i, scratch, pt);
                    b.releaseRecord(i);
                    CHECK(pt.serialize() == lib.get(i).serialize());
                }
            }
        }
        // autoSelect picks mmap exactly when available and enabled.
        const LivePointLibrary a = LivePointLibrary::load(path);
        CHECK_EQ(a.mappedBacking(),
                 mmapSupported() && !mmapDisabledByEnv());
        std::remove(p2fmt.c_str());
    }
    std::remove(path.c_str());

    // Format compatibility: a library written by the legacy LPLIB2
    // writer loads through the same magic-dispatched load() with
    // point-for-point equality.
    {
        const std::string p2 = "libtest-lpl2.lpl";
        lib.save(p2, LivePointLibrary::Format::lpl2);
        const LivePointLibrary old = LivePointLibrary::load(p2);
        CHECK(old.design() == lib.design());
        CHECK(old.benchmark() == lib.benchmark());
        CHECK_EQ(old.size(), lib.size());
        CHECK_EQ(old.totalCompressedBytes(),
                 lib.totalCompressedBytes());
        Blob scratchA, scratchB;
        LivePoint pa, pb;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            CHECK_EQ(old.compressedSize(i), lib.compressedSize(i));
            CHECK_EQ(old.windowIndex(i), lib.windowIndex(i));
            old.decodeInto(i, scratchA, pa);
            lib.decodeInto(i, scratchB, pb);
            CHECK(pa.serialize() == pb.serialize());
        }
        std::remove(p2.c_str());
    }

    // Zero-copy spans: a loaded library's records point into one
    // backing buffer, in stored order, and survive a library move.
    {
        const std::string p3 = "libtest-span.lpl";
        lib.save(p3);
        LivePointLibrary span = LivePointLibrary::load(p3);
        const std::uint8_t *base = span.record(0).data;
        for (std::size_t i = 1; i < span.size(); ++i) {
            const ByteSpan prev = span.record(i - 1);
            CHECK(span.record(i).data == prev.data + prev.size);
        }
        const LivePointLibrary moved = std::move(span);
        CHECK(moved.record(0).data == base);
        CHECK(moved.get(0).serialize() == lib.get(0).serialize());
        std::remove(p3.c_str());
    }

    // Malformed container files raise, never crash or leak.
    {
        const std::string pbad = "libtest-bad.lpl";
        lib.save(pbad);
        std::filesystem::resize_file(pbad, 80); // truncate mid-table
        CHECK_THROWS(LivePointLibrary::load(pbad));
        std::remove(pbad.c_str());
        CHECK_THROWS(
            LivePointLibrary::load("libtest-does-not-exist.lpl"));
    }

    // LPLIB3 robustness: corrupting any header field or any
    // record-table field, or truncating at any section boundary, must
    // produce a clean load error — identically through every storage
    // backend (the checks live above the backend, so neither path may
    // diverge).
    for (const StorageBackend backend : backends) {
        const std::string pbad = "libtest-corrupt.lpl";
        lib.save(pbad);
        const Blob good = slurpFile(pbad);
        CHECK(good.size() > 64 + lib.size() * 32);
        CHECK((LivePointLibrary::load(pbad, backend), true));

        // Header fields at offsets 8..56: version, count, metaOffset,
        // metaSize, tableOffset, dataOffset, fileSize. Each corrupted
        // two ways: off-by-one and absurd.
        for (std::size_t off = 8; off < 64; off += 8) {
            for (const std::uint8_t how : {0, 1}) {
                Blob bad = good;
                if (how == 0)
                    bad[off] ^= 0x01;
                else
                    for (std::size_t j = 0; j < 8; ++j)
                        bad[off + j] = 0xff;
                spewFile(pbad, bad);
                CHECK_THROWS(LivePointLibrary::load(pbad, backend));
            }
        }
        // Magic corruption falls through to the LPLIB2 parser, which
        // must reject it too.
        {
            Blob bad = good;
            bad[0] ^= 0xff;
            spewFile(pbad, bad);
            CHECK_THROWS(LivePointLibrary::load(pbad, backend));
        }

        // Record-table fields: offset / size / rawSize / index of the
        // first, a middle, and the last record. Offset and size are
        // layout (any bit flip must be caught); rawSize and index are
        // accounting, so the *detectable* corruption is layout-scale;
        // flip them together with a size so the table stays
        // inconsistent.
        const std::size_t tableAt = [&good]() {
            std::size_t v = 0;
            for (unsigned j = 0; j < 8; ++j)
                v |= static_cast<std::size_t>(good[40 + j]) << (8 * j);
            return v;
        }();
        for (const std::size_t rec :
             {std::size_t{0}, lib.size() / 2, lib.size() - 1}) {
            for (const std::size_t field : {0, 8}) {
                Blob bad = good;
                bad[tableAt + rec * 32 + field] ^= 0x01;
                spewFile(pbad, bad);
                CHECK_THROWS(LivePointLibrary::load(pbad, backend));
            }
            // rawSize and index are accounting, not layout: the file
            // still loads, but decoding the record must fail the
            // cross-check instead of returning a silently wrong
            // point.
            for (const std::size_t field : {16, 24}) {
                Blob bad = good;
                bad[tableAt + rec * 32 + field] ^= 0x01;
                spewFile(pbad, bad);
                const LivePointLibrary damaged =
                    LivePointLibrary::load(pbad, backend);
                CHECK_THROWS(damaged.get(rec));
            }
        }

        // Truncation at every section boundary (and just around
        // them), plus an appended byte: the size bookkeeping must
        // catch each.
        const std::size_t dataAt = [&good]() {
            std::size_t v = 0;
            for (unsigned j = 0; j < 8; ++j)
                v |= static_cast<std::size_t>(good[48 + j]) << (8 * j);
            return v;
        }();
        for (const std::size_t cut :
             {std::size_t{0}, std::size_t{7}, std::size_t{63},
              std::size_t{64}, tableAt - 1, tableAt, tableAt + 32,
              dataAt - 1, dataAt, dataAt + 1,
              (dataAt + good.size()) / 2, good.size() - 1}) {
            Blob bad(good.begin(),
                     good.begin() + static_cast<std::ptrdiff_t>(cut));
            spewFile(pbad, bad);
            CHECK_THROWS(LivePointLibrary::load(pbad, backend));
        }
        {
            Blob bad = good;
            bad.push_back(0);
            spewFile(pbad, bad);
            CHECK_THROWS(LivePointLibrary::load(pbad, backend));
        }

        // The pristine bytes still load after all of the above (the
        // corruption harness itself is sound).
        spewFile(pbad, good);
        CHECK((LivePointLibrary::load(pbad, backend), true));
        std::remove(pbad.c_str());
    }

    // LPLIB2 robustness: magic corruption and truncation at every
    // record boundary must raise cleanly through the DER layer, via
    // every backend.
    for (const StorageBackend backend : backends) {
        const std::string pbad = "libtest-corrupt2.lpl";
        lib.save(pbad, LivePointLibrary::Format::lpl2);
        const Blob good = slurpFile(pbad);
        {
            Blob bad = good;
            bad[4] ^= 0xff; // inside the magic's LEB content
            spewFile(pbad, bad);
            CHECK_THROWS(LivePointLibrary::load(pbad, backend));
        }
        for (std::size_t cut = 0; cut < good.size();
             cut += 1 + good.size() / 64) {
            Blob bad(good.begin(),
                     good.begin() + static_cast<std::ptrdiff_t>(cut));
            spewFile(pbad, bad);
            CHECK_THROWS(LivePointLibrary::load(pbad, backend));
        }
        std::remove(pbad.c_str());
    }

    // Checkpoint economics: a shared-dictionary + delta library
    // (LPLIB4) decodes point-for-point identically to the plain
    // build, stores fewer bytes, and survives save/load/shuffle
    // through every backend with strict corruption detection.
    {
        TinyLib tc = buildTinyLibrary(
            "libtest", 400'000, 5, 40, {cfg}, 0,
            [](LivePointBuilderConfig &bc) {
                bc.sharedDictionary = true;
                bc.deltaEncode = true;
            });
        LivePointLibrary &clib = tc.lib;
        CHECK(!clib.dictionary().empty());
        CHECK(clib.deltaCount() > 0);
        CHECK(clib.deltaCount() < clib.size()); // keyframes remain
        CHECK(clib.totalCompressedBytes() < lib.totalCompressedBytes());
        for (std::size_t i = 0; i < lib.size(); ++i) {
            CHECK(clib.get(i).serialize() == lib.get(i).serialize());
            CHECK_EQ(clib.rawSize(i), lib.rawSize(i));
            // The budget charge covers the record plus its chain.
            CHECK(clib.chargeBytes(i) >=
                  clib.compressedSize(i) + clib.rawSize(i));
        }

        // The scratch decoder in stored order (the replay producer
        // pattern, chain cache hot) and in random order (cold chain
        // walks) must both reproduce the plain build's points.
        {
            LivePointDecodeScratch scratch;
            LivePoint p;
            for (std::size_t i = 0; i < clib.size(); ++i) {
                clib.decodeInto(i, scratch, p);
                CHECK(p.serialize() == lib.get(i).serialize());
            }
            Rng rng(11, "lpl4-order");
            for (int k = 0; k < 40; ++k) {
                const std::size_t i = rng.nextBounded(clib.size());
                clib.decodeInto(i, scratch, p);
                CHECK(p.serialize() == lib.get(i).serialize());
            }
        }

        // autoSelect writes LPLIB4 (a plain library stays LPLIB3);
        // the legacy formats cannot represent dictionary/delta.
        const std::string p4 = "libtest-lpl4.lpl";
        clib.save(p4);
        {
            const Blob head = slurpFile(p4);
            CHECK(head.size() > 80);
            CHECK(std::memcmp(head.data(), "LPLIB4\n", 7) == 0);
            const std::string p3 = "libtest-magic3.lpl";
            lib.save(p3);
            const Blob plainHead = slurpFile(p3);
            CHECK(std::memcmp(plainHead.data(), "LPLIB3\n", 7) == 0);
            std::remove(p3.c_str());
        }
        CHECK_THROWS(clib.save("libtest-nope.lpl",
                               LivePointLibrary::Format::lpl3));
        CHECK_THROWS(clib.save("libtest-nope.lpl",
                               LivePointLibrary::Format::lpl2));

        for (const StorageBackend backend : backends) {
            const LivePointLibrary b =
                LivePointLibrary::load(p4, backend);
            CHECK(identicalRecords(b, clib));
            CHECK_EQ(b.contentHash(), clib.contentHash());
            CHECK_EQ(b.deltaCount(), clib.deltaCount());
            CHECK(b.dictionary() == clib.dictionary());
            LivePointDecodeScratch scratch;
            LivePoint p;
            for (std::size_t i = 0; i < b.size(); ++i) {
                CHECK_EQ(b.recordFlags(i), clib.recordFlags(i));
                CHECK_EQ(b.chargeBytes(i), clib.chargeBytes(i));
                b.prefetchRecord(i);
                b.decodeInto(i, scratch, p);
                b.releaseRecord(i);
                CHECK(p.serialize() == lib.get(i).serialize());
            }
        }

        // Shuffle -> save -> reload: delta chains link records by
        // file position, not view position, so the permuted library
        // must decode identically (matched via its window indices).
        {
            LivePointLibrary sh = clib;
            Rng rng(21, "lpl4-shuffle");
            sh.shuffle(rng);
            CHECK_EQ(sh.deltaCount(), clib.deltaCount());
            const std::string psh = "libtest-lpl4-shuffled.lpl";
            sh.save(psh);
            for (const StorageBackend backend : backends) {
                const LivePointLibrary b =
                    LivePointLibrary::load(psh, backend);
                CHECK(identicalRecords(b, sh));
                CHECK_EQ(b.contentHash(), sh.contentHash());
                LivePointDecodeScratch scratch;
                LivePoint p;
                for (std::size_t i = 0; i < b.size(); ++i) {
                    CHECK_EQ(b.windowIndex(i), sh.windowIndex(i));
                    b.decodeInto(i, scratch, p);
                    CHECK(p.serialize() ==
                          lib.get(b.windowIndex(i)).serialize());
                }
            }
            std::remove(psh.c_str());
        }

        // Corruption strictness: a flipped byte in the dictionary, a
        // delta record's stream, or a record's table metadata must be
        // rejected at load or at decode — never a silently different
        // point (every dict/delta record carries a raw checksum).
        {
            const Blob good = slurpFile(p4);
            auto u64At = [&good](std::size_t off) {
                std::size_t v = 0;
                for (unsigned j = 0; j < 8; ++j)
                    v |= static_cast<std::size_t>(good[off + j])
                         << (8 * j);
                return v;
            };
            const std::size_t count = u64At(16);
            const std::size_t dictAt = u64At(40);
            const std::size_t dictSize = u64At(48);
            const std::size_t tableAt = u64At(56);
            const std::size_t dataAt = u64At(64);
            CHECK(dictSize > 0);
            CHECK_EQ(count, clib.size());
            const std::string pbad = "libtest-lpl4-bad.lpl";

            // The file must fail loudly: load throws, or at least one
            // decode throws — and no decode may return wrong bytes.
            auto mustFail = [&](const Blob &bad) {
                spewFile(pbad, bad);
                for (const StorageBackend backend : backends) {
                    LivePointDecodeScratch scratch;
                    LivePoint p;
                    bool anyThrew = false;
                    bool wrongBytes = false;
                    try {
                        const LivePointLibrary damaged =
                            LivePointLibrary::load(pbad, backend);
                        for (std::size_t i = 0; i < damaged.size();
                             ++i) {
                            try {
                                damaged.decodeInto(i, scratch, p);
                                if (p.serialize() !=
                                    lib.get(damaged.windowIndex(i))
                                        .serialize())
                                    wrongBytes = true;
                            } catch (const std::exception &) {
                                anyThrew = true;
                            }
                        }
                    } catch (const std::exception &) {
                        anyThrew = true;
                    }
                    CHECK(anyThrew);
                    CHECK(!wrongBytes);
                }
            };

            // The dictionary section (a single flipped byte is only
            // detectable if some record's match reads it, so corrupt
            // all of it — any dictionary-primed record then fails its
            // raw checksum).
            {
                Blob bad = good;
                for (std::size_t j = 0; j < dictSize; ++j)
                    bad[dictAt + j] ^= 0x5a;
                mustFail(bad);
            }
            // A delta record's compressed stream.
            {
                std::size_t deltaRow = count;
                for (std::size_t i = 0; i < count; ++i)
                    if (good[tableAt + i * 56 + 32] &
                        LivePointLibrary::kFlagDelta) {
                        deltaRow = i;
                        break;
                    }
                CHECK(deltaRow < count);
                const std::size_t off =
                    u64At(tableAt + deltaRow * 56);
                const std::size_t sz =
                    u64At(tableAt + deltaRow * 56 + 8);
                Blob bad = good;
                bad[dataAt + off + sz / 2] ^= 0x01;
                mustFail(bad);
                // Its raw checksum, its base link, and its flags.
                bad = good;
                bad[tableAt + deltaRow * 56 + 48] ^= 0x01;
                mustFail(bad);
                bad = good;
                bad[tableAt + deltaRow * 56 + 40] ^= 0x01;
                mustFail(bad);
                bad = good;
                bad[tableAt + deltaRow * 56 + 32] |= 0x80;
                mustFail(bad);
            }
            // Truncation at the section boundaries.
            for (const std::size_t cut :
                 {std::size_t{40}, dictAt, tableAt, dataAt,
                  good.size() - 1}) {
                const Blob bad(
                    good.begin(),
                    good.begin() + static_cast<std::ptrdiff_t>(cut));
                spewFile(pbad, bad);
                for (const StorageBackend backend : backends)
                    CHECK_THROWS(LivePointLibrary::load(pbad, backend));
            }
            // Pristine bytes still load and decode (harness sanity).
            spewFile(pbad, good);
            {
                const LivePointLibrary ok =
                    LivePointLibrary::load(pbad);
                CHECK(ok.get(0).serialize() == lib.get(0).serialize());
            }
            std::remove(pbad.c_str());
        }
        std::remove(p4.c_str());

        // Dictionary-only and delta-only variants round-trip too.
        for (const int mode : {0, 1}) {
            TinyLib tv = buildTinyLibrary(
                "libtest", 400'000, 5, 40, {cfg}, 0,
                [mode](LivePointBuilderConfig &bc) {
                    bc.sharedDictionary = mode == 0;
                    bc.deltaEncode = mode == 1;
                });
            CHECK_EQ(tv.lib.dictionary().empty(), mode == 1);
            CHECK_EQ(tv.lib.deltaCount() > 0, mode == 1);
            const std::string pv = "libtest-lpl4-variant.lpl";
            tv.lib.save(pv);
            const LivePointLibrary b = LivePointLibrary::load(pv);
            CHECK(identicalRecords(b, tv.lib));
            LivePointDecodeScratch scratch;
            LivePoint p;
            for (std::size_t i = 0; i < b.size(); ++i) {
                b.decodeInto(i, scratch, p);
                CHECK(p.serialize() == lib.get(i).serialize());
            }
            std::remove(pv.c_str());
        }
    }

    // Shuffling is a seed-deterministic permutation.
    {
        LivePointLibrary a = lib;
        LivePointLibrary b = lib;
        Rng ra(77, "shuffle");
        Rng rb(77, "shuffle");
        a.shuffle(ra);
        b.shuffle(rb);
        bool permuted = false;
        std::uint64_t sumA = 0;
        std::uint64_t sumB = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const LivePoint pa = a.get(i);
            const LivePoint pb = b.get(i);
            CHECK_EQ(pa.index, pb.index);
            // The metadata index travels with the record.
            CHECK_EQ(a.windowIndex(i), pa.index);
            permuted = permuted || pa.index != i;
            sumA += pa.index;
            sumB += pb.index;
        }
        CHECK(permuted);
        // Still a permutation of 0..n-1.
        const std::uint64_t n = a.size();
        CHECK_EQ(sumA, n * (n - 1) / 2);
        CHECK_EQ(sumB, n * (n - 1) / 2);
    }

    // The sharded fleet store: streaming writes leave a valid set
    // after every append, opens are lazy and metadata-only, the index
    // carries point counts and content hashes, and integrity breaks
    // (unknown name, swapped shard, corrupt index) fail loudly.
    {
        const std::string dir = "libtest-set";
        std::filesystem::remove_all(dir);

        const TinyLib other =
            buildTinyLibrary("libtest-b", 300'000, 9, 24);
        {
            LibrarySetWriter writer(dir);
            writer.addShard("wl-a", lib);
            CHECK_EQ(writer.shards(), 1u);
            // The set on disk is already valid mid-build.
            const LibrarySet partial = LibrarySet::open(dir);
            CHECK_EQ(partial.size(), 1u);
        }
        {
            // Reopening the writer appends; duplicate names throw.
            LibrarySetWriter writer(dir);
            CHECK_EQ(writer.shards(), 1u);
            CHECK_THROWS(writer.addShard("wl-a", other.lib));
            writer.addShard("wl-b", other.lib);
            CHECK_EQ(writer.shards(), 2u);
        }
        {
            // The builder's streaming entry: build a shard straight
            // into the set. Builds are deterministic, so it must
            // byte-match the separately built library.
            LibrarySetWriter writer(dir);
            LivePointBuilderConfig bc;
            bc.bpredConfigs = {CoreConfig::eightWay().bpred};
            LivePointBuilder shardBuilder(bc);
            const BuilderStats st = shardBuilder.buildInto(
                writer, "wl-c", other.prog, other.design);
            CHECK_EQ(st.points, other.lib.size());
            CHECK_EQ(writer.shards(), 3u);
            const LibrarySet reopened = LibrarySet::open(dir);
            CHECK(identicalRecords(reopened.shard(reopened.find("wl-c")),
                                   other.lib));
        }

        for (const StorageBackend backend : backends) {
            const LibrarySet set = LibrarySet::open(dir, backend);
            CHECK_EQ(set.size(), 3u);
            CHECK_EQ(set.loadedCount(), 0u); // open touches no shard
            CHECK_EQ(set.find("wl-a"), 0u);
            CHECK_EQ(set.find("wl-b"), 1u);
            CHECK_EQ(set.find("wl-missing"), LibrarySet::npos);
            CHECK_EQ(set.points(0), lib.size());
            CHECK_EQ(set.points(1), other.lib.size());
            // Index metadata matches the libraries without opening.
            CHECK_EQ(set.contentHash(0), lib.contentHash());
            CHECK_EQ(set.contentHash(1), other.lib.contentHash());
            CHECK_EQ(set.loadedCount(), 0u);

            const LivePointLibrary &s0 = set.shard(0);
            CHECK(set.isLoaded(0));
            CHECK(!set.isLoaded(1));
            CHECK_EQ(set.loadedCount(), 1u);
            CHECK(identicalRecords(s0, lib));
            CHECK_EQ(s0.mappedBacking(),
                     backend == StorageBackend::mapped);
            CHECK(set.fileBytes(0) > 0);
            if (backend == StorageBackend::mapped) {
                CHECK_EQ(set.mappedBytes(), s0.backingBytes());
                CHECK_EQ(set.pinnedBytes(), 0u);
            } else {
                CHECK_EQ(set.mappedBytes(), 0u);
                CHECK_EQ(set.pinnedBytes(), s0.backingBytes());
            }
            CHECK(identicalRecords(set.shard(1), other.lib));
            CHECK_EQ(set.loadedCount(), 2u);
            set.unload(0);
            CHECK(!set.isLoaded(0));
            CHECK_EQ(set.loadedCount(), 1u);
            // A reopened shard is the same library again.
            CHECK(identicalRecords(set.shard(0), lib));
        }

        // Integrity: a shard file swapped behind the index must fail
        // the open-time cross-check, not replay different points.
        {
            const LibrarySet set = LibrarySet::open(dir);
            const Blob shardB = slurpFile(set.shardPath(1));
            const Blob shardA = slurpFile(set.shardPath(0));
            spewFile(set.shardPath(0), shardB);
            CHECK_THROWS(set.shard(0));
            spewFile(set.shardPath(0), shardA);
            CHECK((set.shard(0), true));
        }

        // A missing or corrupt index fails cleanly.
        CHECK_THROWS(LibrarySet::open("libtest-no-such-set"));
        {
            const std::string idx =
                dir + "/" + LibrarySet::indexFileName();
            const Blob good = slurpFile(idx);
            Blob bad = good;
            bad[bad.size() / 2] ^= 0xff;
            spewFile(idx, bad);
            bool threw = false;
            try {
                (void)LibrarySet::open(dir);
            } catch (const std::exception &) {
                threw = true;
            }
            // A flipped byte may land in a name string (still
            // parseable); flip the magic instead for a guaranteed
            // failure.
            bad = good;
            bad[2] ^= 0xff;
            spewFile(idx, bad);
            try {
                (void)LibrarySet::open(dir);
            } catch (const std::exception &) {
                threw = true;
            }
            CHECK(threw);
            spewFile(idx, good);
            CHECK((LibrarySet::open(dir), true));
        }

        // An LPLIB4 (dictionary+delta) shard flows through the fleet
        // store unchanged: save picks the format, open dispatches on
        // the magic, the index hash still matches, and the decoded
        // points equal the plain build of the same benchmark.
        {
            const std::string dir4 = "libtest-set-lpl4";
            std::filesystem::remove_all(dir4);
            const TinyLib cross = buildTinyLibrary(
                "libtest-b", 300'000, 9, 24,
                {CoreConfig::eightWay()}, 0,
                [](LivePointBuilderConfig &bc) {
                    bc.sharedDictionary = true;
                    bc.deltaEncode = true;
                });
            CHECK(cross.lib.deltaCount() > 0);
            {
                LibrarySetWriter writer(dir4);
                writer.addShard("wl-cross", cross.lib);
            }
            const LibrarySet set4 = LibrarySet::open(dir4);
            CHECK_EQ(set4.contentHash(0), cross.lib.contentHash());
            const LivePointLibrary &s4 = set4.shard(0);
            CHECK(identicalRecords(s4, cross.lib));
            CHECK(s4.deltaCount() > 0);
            LivePointDecodeScratch sa;
            Blob sb;
            LivePoint pa, pb;
            for (std::size_t i = 0; i < s4.size(); ++i) {
                s4.decodeInto(i, sa, pa);
                other.lib.decodeInto(i, sb, pb);
                CHECK(pa.serialize() == pb.serialize());
            }
            std::filesystem::remove_all(dir4);
        }

        std::filesystem::remove_all(dir);
    }

    return TEST_MAIN_RESULT();
}
