/**
 * The campaign engine's contracts: decode-once fan-out is
 * bit-identical per cell to running each configuration separately
 * (at every thread count), common-random-numbers pairing reproduces
 * runMatchedPair's deltas exactly, per-cell confidence stopping
 * matches the standalone runner's stopping point, and a campaign
 * stopped mid-run (budget barrier = what a kill leaves behind in the
 * manifest) resumes to the uninterrupted result bit-for-bit.
 */

#include "test_util.hh"

#include <cstdio>
#include <filesystem>

#include "core/campaign.hh"
#include "core/library_set.hh"
#include "core/runners.hh"

int
main()
{
    using namespace lp;
    using namespace lptest;

    // The design space: the 8-way baseline plus three one-parameter
    // variants (the sec-6.2 sensitivity-study shape).
    std::vector<CoreConfig> cfgs;
    cfgs.push_back(baseConfig());
    {
        CoreConfig c = baseConfig();
        c.name = "mem-140";
        c.mem.memLatency = 140;
        cfgs.push_back(c);
    }
    {
        CoreConfig c = baseConfig();
        c.name = "l2-512K";
        c.mem.l2.sizeBytes = 512 * 1024;
        cfgs.push_back(c);
    }
    cfgs.push_back(slowMemConfig());

    const TinyLib w0 =
        buildTinyLibrary("camp-a", 500'000, 17, 64, cfgs, 11);
    const TinyLib w1 = buildTinyLibrary("camp-b", 300'000, 23, 32, cfgs);

    const std::vector<CampaignWorkload> grid{
        {"camp-a", &w0.prog, &w0.lib},
        {"camp-b", &w1.prog, &w1.lib},
    };

    // Distinct configurations must have distinct digests; renaming
    // must not change one.
    {
        CHECK(configDigest(cfgs[0]) != configDigest(cfgs[1]));
        CHECK(configDigest(cfgs[0]) != configDigest(cfgs[3]));
        CoreConfig renamed = cfgs[0];
        renamed.name = "alias";
        CHECK_EQ(configDigest(renamed), configDigest(cfgs[0]));
    }

    // (a) Without stopping: every cell is bit-identical to a
    // standalone runLivePoints of that (workload, config), and every
    // pair delta is bit-identical to runMatchedPair — the decode-once
    // fan-out changes scheduling, never results.
    CampaignOptions copt;
    copt.blockSize = 8;
    copt.shuffleSeed = 5;
    CampaignEngine engine(grid, cfgs, copt);
    const CampaignResult base = engine.run();
    CHECK_EQ(base.cells.size(), grid.size() * cfgs.size());
    CHECK_EQ(base.pairs.size(),
             grid.size() * cfgs.size() * (cfgs.size() - 1) / 2);
    for (std::size_t w = 0; w < grid.size(); ++w) {
        const TinyLib &t = w == 0 ? w0 : w1;
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            LivePointRunOptions opt;
            opt.blockSize = copt.blockSize;
            opt.shuffleSeed = copt.shuffleSeed;
            const LivePointRunResult ref =
                runLivePoints(t.prog, t.lib, cfgs[c], opt);
            const CampaignCell &cell =
                base.cell(w, c, cfgs.size());
            CHECK_EQ(cell.processed, ref.processed);
            CHECK_NEAR(cell.cpi(), ref.cpi(), 0.0);
            CHECK_NEAR(cell.estimate.relHalfWidth,
                       ref.finalSnapshot.relHalfWidth, 0.0);
            CHECK_EQ(cell.unavailableLoads, ref.unavailableLoads);
            CHECK(!cell.converged);
        }
        for (std::size_t c = 1; c < cfgs.size(); ++c) {
            LivePointRunOptions opt;
            opt.blockSize = copt.blockSize;
            opt.shuffleSeed = copt.shuffleSeed;
            const MatchedPairOutcome mp =
                runMatchedPair(t.prog, t.lib, cfgs[0], cfgs[c], opt);
            const CampaignPair *p = base.pair(w, 0, c);
            CHECK(p != nullptr);
            CHECK_EQ(p->delta.count(),
                     static_cast<std::uint64_t>(mp.processed));
            CHECK_NEAR(p->meanDelta(), mp.result.meanDelta, 0.0);
            CHECK_NEAR(p->delta.halfWidth(confidenceZ(opt.spec.level)),
                       mp.result.deltaHalfWidth, 0.0);
        }
    }
    // The slow-memory variant must read slower than baseline on both
    // workloads (sanity that the grid measured something real).
    for (std::size_t w = 0; w < grid.size(); ++w)
        CHECK(base.pair(w, 0, 3)->meanDelta() > 0.0);

    // Decode-once accounting: a 4-config campaign decodes each point
    // once, not once per config.
    CHECK_EQ(base.pointsDecoded,
             static_cast<std::uint64_t>(w0.lib.size() + w1.lib.size()));
    CHECK_EQ(base.foldedReplays,
             static_cast<std::uint64_t>(
                 (w0.lib.size() + w1.lib.size()) * cfgs.size()));

    // (b) Thread-count invariance of the whole grid, pairs included.
    for (const unsigned threads : {2u, 4u}) {
        CampaignOptions opt = copt;
        opt.threads = threads;
        const CampaignResult r = CampaignEngine(grid, cfgs, opt).run();
        for (std::size_t i = 0; i < base.cells.size(); ++i) {
            CHECK_EQ(r.cells[i].processed, base.cells[i].processed);
            CHECK_NEAR(r.cells[i].cpi(), base.cells[i].cpi(), 0.0);
            CHECK_NEAR(r.cells[i].estimate.relHalfWidth,
                       base.cells[i].estimate.relHalfWidth, 0.0);
        }
        for (std::size_t i = 0; i < base.pairs.size(); ++i) {
            CHECK_EQ(r.pairs[i].delta.count(),
                     base.pairs[i].delta.count());
            CHECK_NEAR(r.pairs[i].meanDelta(),
                       base.pairs[i].meanDelta(), 0.0);
        }
    }

    // (c) Per-cell confidence stopping matches the standalone
    // runner's stopping point exactly, and retired cells free work
    // (migration) deterministically at every thread count.
    {
        CampaignOptions opt = copt;
        opt.stopAtConfidence = true;
        opt.spec = ConfidenceSpec{0.95, 0.15};
        const CampaignResult stopped =
            CampaignEngine(grid, cfgs, opt).run();
        bool anyEarly = false;
        for (std::size_t w = 0; w < grid.size(); ++w) {
            const TinyLib &t = w == 0 ? w0 : w1;
            for (std::size_t c = 0; c < cfgs.size(); ++c) {
                LivePointRunOptions ropt;
                ropt.blockSize = opt.blockSize;
                ropt.shuffleSeed = opt.shuffleSeed;
                ropt.stopAtConfidence = true;
                ropt.spec = opt.spec;
                const LivePointRunResult ref =
                    runLivePoints(t.prog, t.lib, cfgs[c], ropt);
                const CampaignCell &cell =
                    stopped.cell(w, c, cfgs.size());
                CHECK_EQ(cell.processed, ref.processed);
                CHECK_NEAR(cell.cpi(), ref.cpi(), 0.0);
                anyEarly = anyEarly || cell.processed < t.lib.size();
            }
        }
        CHECK(anyEarly);
        CHECK(stopped.retirements > 0);
        CHECK(stopped.migratedReplays > 0);
        for (const unsigned threads : {2u, 4u}) {
            CampaignOptions topt = opt;
            topt.threads = threads;
            const CampaignResult r =
                CampaignEngine(grid, cfgs, topt).run();
            CHECK_EQ(r.retirements, stopped.retirements);
            CHECK_EQ(r.migratedReplays, stopped.migratedReplays);
            for (std::size_t i = 0; i < stopped.cells.size(); ++i) {
                CHECK_EQ(r.cells[i].processed,
                         stopped.cells[i].processed);
                CHECK_NEAR(r.cells[i].cpi(), stopped.cells[i].cpi(),
                           0.0);
            }
        }
    }

    // (d) Kill + resume: a campaign stopped at a mid-run barrier (the
    // state a kill leaves in the manifest) resumes to the
    // uninterrupted result bit-for-bit, without re-replaying finished
    // work.
    {
        const std::string manifest = "campaign-test.manifest";
        std::remove(manifest.c_str());

        CampaignOptions opt = copt;
        opt.manifestPath = manifest;
        // Stop partway through workload 0 (budget in folded replays).
        opt.maxFoldedReplays = 24 * cfgs.size();
        const CampaignResult killed =
            CampaignEngine(grid, cfgs, opt).run();
        CHECK(killed.budgetExhausted);
        CHECK(killed.cell(0, 0, cfgs.size()).processed < w0.lib.size());
        CHECK_EQ(killed.cell(1, 0, cfgs.size()).processed, 0u);

        CampaignOptions ropt = copt;
        ropt.manifestPath = manifest;
        const CampaignResult resumed =
            CampaignEngine(grid, cfgs, ropt).run();
        CHECK(resumed.restoredReplays > 0);
        CHECK_EQ(resumed.restoredReplays, killed.foldedReplays);
        for (std::size_t i = 0; i < base.cells.size(); ++i) {
            CHECK_EQ(resumed.cells[i].processed,
                     base.cells[i].processed);
            CHECK_NEAR(resumed.cells[i].cpi(), base.cells[i].cpi(),
                       0.0);
            CHECK_NEAR(resumed.cells[i].estimate.relHalfWidth,
                       base.cells[i].estimate.relHalfWidth, 0.0);
        }
        for (std::size_t i = 0; i < base.pairs.size(); ++i) {
            CHECK_EQ(resumed.pairs[i].delta.count(),
                     base.pairs[i].delta.count());
            CHECK_NEAR(resumed.pairs[i].meanDelta(),
                       base.pairs[i].meanDelta(), 0.0);
            CHECK_NEAR(resumed.pairs[i].delta.variance(),
                       base.pairs[i].delta.variance(), 0.0);
        }

        // A different campaign must refuse the manifest.
        {
            CampaignOptions wrong = ropt;
            wrong.shuffleSeed = 99;
            CHECK_THROWS(CampaignEngine(grid, cfgs, wrong).run());
            std::vector<CoreConfig> fewer(cfgs.begin(),
                                          cfgs.begin() + 2);
            CHECK_THROWS(CampaignEngine(grid, fewer, ropt).run());
        }
        std::remove(manifest.c_str());
    }

    // (f) The sharded fleet store as a campaign source: a set-backed
    // grid must reproduce the resident-library campaign bit for bit
    // (cells and pairs, at several thread counts, with and without a
    // resident budget), open shards lazily, release them as
    // workloads finish, and interoperate with manifests written by
    // the resident-library campaign (the index hash equals the
    // library hash).
    {
        const std::string setDir = "campaign-test-set";
        std::filesystem::remove_all(setDir);
        {
            LibrarySetWriter writer(setDir);
            writer.addShard("camp-a", w0.lib);
            writer.addShard("camp-b", w1.lib);
        }
        const LibrarySet set = LibrarySet::open(setDir);
        CHECK_EQ(set.contentHash(0), w0.lib.contentHash());
        CHECK_EQ(set.contentHash(1), w1.lib.contentHash());

        std::vector<CampaignWorkload> setGrid(2);
        setGrid[0].name = "camp-a";
        setGrid[0].prog = &w0.prog;
        setGrid[0].set = &set;
        setGrid[0].shard = 0;
        setGrid[1].name = "camp-b";
        setGrid[1].prog = &w1.prog;
        setGrid[1].set = &set;
        setGrid[1].shard = 1;

        // Constructing the engine reads only index metadata.
        CampaignEngine setEngine(setGrid, cfgs, copt);
        CHECK_EQ(set.loadedCount(), 0u);

        for (const unsigned threads : {1u, 2u}) {
            for (const std::uint64_t budget :
                 {std::uint64_t{0}, std::uint64_t{256 * 1024}}) {
                CampaignOptions opt = copt;
                opt.threads = threads;
                opt.residentBudgetBytes = budget;
                const CampaignResult r =
                    CampaignEngine(setGrid, cfgs, opt).run();
                // Finished shards were unloaded behind the run.
                CHECK_EQ(set.loadedCount(), 0u);
                for (std::size_t i = 0; i < base.cells.size(); ++i) {
                    CHECK_EQ(r.cells[i].processed,
                             base.cells[i].processed);
                    CHECK_NEAR(r.cells[i].cpi(), base.cells[i].cpi(),
                               0.0);
                    CHECK_NEAR(r.cells[i].estimate.relHalfWidth,
                               base.cells[i].estimate.relHalfWidth,
                               0.0);
                }
                for (std::size_t i = 0; i < base.pairs.size(); ++i) {
                    CHECK_EQ(r.pairs[i].delta.count(),
                             base.pairs[i].delta.count());
                    CHECK_NEAR(r.pairs[i].meanDelta(),
                               base.pairs[i].meanDelta(), 0.0);
                }
                if (budget)
                    CHECK(r.peakResidentBytes > 0);
            }
        }

        // Manifest interop + resume: kill a resident-library
        // campaign at its budget barrier, resume it set-backed. The
        // resumed half must only open the unfinished shards' files
        // and finish bit-identical to the uninterrupted run.
        {
            const std::string manifest = "campaign-test-set.manifest";
            std::remove(manifest.c_str());
            CampaignOptions opt = copt;
            opt.manifestPath = manifest;
            opt.maxFoldedReplays = 24 * cfgs.size();
            const CampaignResult killed =
                CampaignEngine(grid, cfgs, opt).run();
            CHECK(killed.budgetExhausted);

            CampaignOptions ropt2 = copt;
            ropt2.manifestPath = manifest;
            const CampaignResult resumed =
                CampaignEngine(setGrid, cfgs, ropt2).run();
            CHECK_EQ(resumed.restoredReplays, killed.foldedReplays);
            for (std::size_t i = 0; i < base.cells.size(); ++i) {
                CHECK_EQ(resumed.cells[i].processed,
                         base.cells[i].processed);
                CHECK_NEAR(resumed.cells[i].cpi(),
                           base.cells[i].cpi(), 0.0);
            }
            std::remove(manifest.c_str());
        }

        std::filesystem::remove_all(setDir);
    }

    // (e) The JSON report is written and structurally sane.
    {
        const std::string json = engine.jsonReport(base);
        CHECK(json.find("\"cells\"") != std::string::npos);
        CHECK(json.find("\"pairs\"") != std::string::npos);
        CHECK(json.find("\"decode_fanout\"") != std::string::npos);
        CHECK(json.find("camp-a") != std::string::npos);
        CHECK(json.find("slow-mem") != std::string::npos);
    }

    return TEST_MAIN_RESULT();
}
