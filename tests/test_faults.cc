/**
 * Durability and fault injection: the failpoint framework's trigger
 * semantics, atomic-write publication (temp cleanup, checksum
 * footers), transient-errno retry loops, LibrarySet torn-index
 * recovery and shard quarantine, the campaign manifest ledger's
 * truncation/corruption recovery at many byte offsets, and a
 * fork-based crash matrix: campaigns killed at every barrier and
 * mid-append failpoint must resume bit-identical to the
 * uninterrupted run.
 */

#include "test_util.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/campaign.hh"
#include "core/library_set.hh"
#include "core/runners.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "io/source.hh"
#include "util/failpoint.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_TEST_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define LP_TEST_FORK 0
#endif

namespace
{

using namespace lp;
using namespace lptest;

Blob
readBytes(const std::string &path)
{
    return readWholeFile(path, "test file");
}

void
writeBytes(const std::string &path, const std::uint8_t *data,
           std::size_t size)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    CHECK(f != nullptr);
    if (!f)
        return;
    CHECK_EQ(std::fwrite(data, 1, size, f), size);
    std::fclose(f);
}

/** Arm one site programmatically. */
void
arm(const char *site, FailpointSpec::Trigger trig, std::uint64_t n,
    FailpointSpec::Action action, int err = EIO)
{
    FailpointSpec spec;
    spec.trigger = trig;
    spec.n = n;
    spec.action = action;
    spec.err = err;
    armFailpoint(site, spec);
}

/** Two campaign results agree bit for bit (cells and pairs). */
void
checkSameGrid(const CampaignResult &a, const CampaignResult &b)
{
    CHECK_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        CHECK_EQ(a.cells[i].processed, b.cells[i].processed);
        CHECK_NEAR(a.cells[i].cpi(), b.cells[i].cpi(), 0.0);
        CHECK_NEAR(a.cells[i].estimate.relHalfWidth,
                   b.cells[i].estimate.relHalfWidth, 0.0);
        CHECK_EQ(a.cells[i].converged, b.cells[i].converged);
        CHECK(!a.cells[i].failed);
        CHECK(!b.cells[i].failed);
    }
    CHECK_EQ(a.pairs.size(), b.pairs.size());
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
        CHECK_EQ(a.pairs[i].delta.count(), b.pairs[i].delta.count());
        CHECK_NEAR(a.pairs[i].meanDelta(), b.pairs[i].meanDelta(),
                   0.0);
    }
}

} // namespace

int
main()
{
    using namespace lp;
    using namespace lptest;

    // ---- Failpoint framework semantics -----------------------------
    {
        CHECK(!failpointsArmed());
        arm("t.a", FailpointSpec::Trigger::nth, 2,
            FailpointSpec::Action::error, EIO);
        CHECK(failpointsArmed());
        // hit:2 fires on exactly the second hit.
        CHECK(!failpointFire("t.a").fail);
        FailpointOutcome o = failpointFire("t.a");
        CHECK(o.fail);
        CHECK_EQ(o.err, EIO);
        CHECK(!failpointFire("t.a").fail);
        CHECK_EQ(failpointHits("t.a"), 3u);

        // every:2 fires on hits 2, 4, 6, ...
        arm("t.b", FailpointSpec::Trigger::every, 2,
            FailpointSpec::Action::error, EINTR);
        CHECK(!failpointFire("t.b").fail);
        CHECK(failpointFire("t.b").fail);
        CHECK(!failpointFire("t.b").fail);
        CHECK(failpointFire("t.b").fail);

        // An unarmed site never fires, even while others are armed.
        CHECK(!failpointFire("t.unarmed").fail);

        // shortOp is reported distinctly from fail.
        arm("t.c", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::shortOp);
        o = failpointFire("t.c");
        CHECK(o.shortOp);
        CHECK(!o.fail);

        disarmFailpoint("t.a");
        CHECK(!failpointFire("t.a").fail);
        CHECK(failpointsArmed()); // t.b, t.c still armed
        disarmAllFailpoints();
        CHECK(!failpointsArmed());

        // The LP_FAILPOINTS grammar: valid specs arm, typos throw.
        armFailpointsFromSpec(
            "io.read=hit:3:err:EINTR;io.fsync=every:2:crash");
        CHECK(failpointsArmed());
        disarmAllFailpoints();
        CHECK_THROWS(armFailpointsFromSpec("io.read=hit:3:bogus"));
        CHECK_THROWS(armFailpointsFromSpec("io.read"));
        CHECK_THROWS(armFailpointsFromSpec("io.read=hit:zero:crash"));
        CHECK_THROWS(armFailpointsFromSpec("io.read=hit:0:crash"));
        disarmAllFailpoints();

        CHECK(transientErrno(EINTR));
        CHECK(transientErrno(EAGAIN));
        CHECK(!transientErrno(EIO));
        CHECK(!transientErrno(ENOSPC));
    }

    // ---- Atomic publication and the checksum footer ----------------
    {
        const std::string path = "faults-atomic.bin";
        const std::string tmp = AtomicFileWriter::tempFileName(path);
        std::filesystem::remove(path);
        std::filesystem::remove(tmp);
        const std::uint8_t payload[] = {1, 2, 3, 4, 5};

        writeFileAtomic(path, payload, sizeof(payload), "test file");
        CHECK(std::filesystem::exists(path));
        CHECK(!std::filesystem::exists(tmp));
        const Blob back = readBytes(path);
        CHECK_EQ(back.size(), sizeof(payload));

        // An uncommitted writer leaves nothing behind.
        {
            AtomicFileWriter w("faults-uncommitted.bin", "test file");
            w.write(payload, sizeof(payload));
        }
        CHECK(!std::filesystem::exists("faults-uncommitted.bin"));
        CHECK(!std::filesystem::exists("faults-uncommitted.bin.tmp"));

        // A failed rename keeps the old content and removes the temp.
        arm("io.rename", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EACCES);
        const std::uint8_t other[] = {9, 9};
        CHECK_THROWS(
            writeFileAtomic(path, other, sizeof(other), "test file"));
        disarmAllFailpoints();
        CHECK(!std::filesystem::exists(tmp));
        CHECK_EQ(readBytes(path).size(), sizeof(payload));

        // A transient write error is retried to success; a hard one
        // throws IoError carrying the errno and cleans the temp up.
        arm("io.write", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EINTR);
        writeFileAtomic(path, other, sizeof(other), "test file");
        disarmAllFailpoints();
        CHECK_EQ(readBytes(path).size(), sizeof(other));

        arm("io.write", FailpointSpec::Trigger::every, 1,
            FailpointSpec::Action::error, EIO);
        bool threwIo = false;
        try {
            writeFileAtomic(path, payload, sizeof(payload),
                            "test file");
        } catch (const IoError &e) {
            threwIo = true;
            CHECK_EQ(e.errnum(), EIO);
            CHECK(!e.transient());
            CHECK(std::string(e.what()).find(path) !=
                  std::string::npos);
        }
        disarmAllFailpoints();
        CHECK(threwIo);
        CHECK(!std::filesystem::exists(tmp));

        // Footer round trip, and detection of any corrupt byte.
        Blob data(payload, payload + sizeof(payload));
        appendChecksumFooter(data);
        CHECK_EQ(data.size(), sizeof(payload) + checksumFooterBytes);
        std::size_t got = 0;
        CHECK(checksummedPayload(data.data(), data.size(), &got));
        CHECK_EQ(got, sizeof(payload));
        for (std::size_t i = 0; i < data.size(); ++i) {
            Blob bad = data;
            bad[i] ^= 0x40;
            CHECK(!checksummedPayload(bad.data(), bad.size(), &got));
        }
        CHECK(!checksummedPayload(data.data(), checksumFooterBytes - 1,
                                  &got));

        std::filesystem::remove(path);
    }

    // ---- Read-path retry loops -------------------------------------
    {
        const std::string path = "faults-read.bin";
        Blob content(4096);
        for (std::size_t i = 0; i < content.size(); ++i)
            content[i] = static_cast<std::uint8_t>(i * 7);
        writeBytes(path, content.data(), content.size());

        // A transient read error and a short read both recover to the
        // full, correct content.
        arm("io.read", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EINTR);
        Blob back = readBytes(path);
        disarmAllFailpoints();
        CHECK_EQ(back.size(), content.size());
        CHECK(std::equal(back.begin(), back.end(), content.begin()));

        arm("io.read", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::shortOp);
        back = readBytes(path);
        disarmAllFailpoints();
        CHECK_EQ(back.size(), content.size());
        CHECK(std::equal(back.begin(), back.end(), content.begin()));

        // A persistent transient is bounded: it must fail cleanly,
        // not spin forever.
        arm("io.read", FailpointSpec::Trigger::every, 1,
            FailpointSpec::Action::error, EINTR);
        CHECK_THROWS(readBytes(path));
        disarmAllFailpoints();

        // Hard errors carry path + strerror context.
        arm("io.open.read", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EACCES);
        bool threw = false;
        try {
            readBytes(path);
        } catch (const IoError &e) {
            threw = true;
            const std::string msg = e.what();
            CHECK(msg.find(path) != std::string::npos);
            CHECK(msg.find(std::strerror(EACCES)) !=
                  std::string::npos);
        }
        disarmAllFailpoints();
        CHECK(threw);
        std::filesystem::remove(path);
    }

    // Shared fixtures for the storage and campaign suites.
    std::vector<CoreConfig> cfgs{baseConfig(), slowMemConfig()};
    const TinyLib w0 = buildTinyLibrary("flt-a", 250'000, 31, 24, cfgs);
    const TinyLib w1 = buildTinyLibrary("flt-b", 200'000, 37, 16, cfgs);

    // ---- Library save faults ---------------------------------------
    {
        const std::string path = "faults-lib.lpl";
        std::filesystem::remove(path);
        arm("library.save", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, ENOSPC);
        CHECK_THROWS(w0.lib.save(path));
        disarmAllFailpoints();
        CHECK(!std::filesystem::exists(path));
        CHECK(!std::filesystem::exists(path + ".tmp"));

        // A hard write error mid-container leaves no temp either.
        arm("io.write", FailpointSpec::Trigger::nth, 2,
            FailpointSpec::Action::error, EIO);
        CHECK_THROWS(w0.lib.save(path));
        disarmAllFailpoints();
        CHECK(!std::filesystem::exists(path + ".tmp"));

        // And a clean save round-trips.
        w0.lib.save(path);
        const LivePointLibrary lib =
            LivePointLibrary::load(path, StorageBackend::buffer);
        CHECK_EQ(lib.contentHash(), w0.lib.contentHash());
        std::filesystem::remove(path);
    }

    // ---- LibrarySet: torn-index recovery and quarantine ------------
    const std::string setDir = "faults-set";
    std::filesystem::remove_all(setDir);
    {
        LibrarySetWriter writer(setDir);
        writer.addShard("flt-a", w0.lib);
        writer.addShard("flt-b", w1.lib);
    }
    const std::string idxPath =
        setDir + "/" + LibrarySet::indexFileName();
    const Blob idxBytes = readBytes(idxPath);

    {
        // Healthy strict open as the reference.
        const LibrarySet healthy = LibrarySet::open(setDir);
        CHECK_EQ(healthy.size(), 2u);
        CHECK(!healthy.recovery().degraded);

        // Truncation at EVERY byte: strict open rejects cleanly —
        // except the one cut that removes exactly the 16-byte footer,
        // which leaves a byte-complete legacy (footer-less) index
        // whose content is still correct. openRecover always yields
        // the full entry table, rebuilt from the shards when the
        // index was unreadable.
        for (std::size_t cut = 0; cut < idxBytes.size(); ++cut) {
            writeBytes(idxPath, idxBytes.data(), cut);
            const bool legacyOk =
                cut + checksumFooterBytes == idxBytes.size();
            bool strictOk = true;
            try {
                const LibrarySet s = LibrarySet::open(setDir);
                CHECK_EQ(s.size(), 2u);
            } catch (const std::exception &) {
                strictOk = false;
            }
            CHECK_EQ(strictOk, legacyOk);
            const LibrarySet rec = LibrarySet::openRecover(setDir);
            CHECK_EQ(rec.recovery().degraded, !legacyOk);
            CHECK_EQ(rec.recovery().indexRebuilt, !legacyOk);
            CHECK_EQ(rec.size(), 2u);
            const std::size_t a = rec.find("flt-a");
            const std::size_t b = rec.find("flt-b");
            CHECK(a != LibrarySet::npos);
            CHECK(b != LibrarySet::npos);
            if (a == LibrarySet::npos || b == LibrarySet::npos)
                break; // one detailed failure is enough
            CHECK(!rec.quarantined(a));
            CHECK_EQ(rec.points(a), w0.lib.size());
            CHECK_EQ(rec.contentHash(a), w0.lib.contentHash());
            CHECK_EQ(rec.points(b), w1.lib.size());
            if (lpTestFailures)
                break;
        }
        // Byte-flip corruption (sampled): same contract.
        for (std::size_t i = 0; i < idxBytes.size(); i += 7) {
            Blob bad = idxBytes;
            bad[i] ^= 0x20;
            writeBytes(idxPath, bad.data(), bad.size());
            bool strictOk = true;
            try {
                LibrarySet::open(setDir);
            } catch (const std::exception &) {
                strictOk = false;
            }
            // The checksum footer covers every payload byte: strict
            // open must never silently accept a flipped index.
            CHECK(!strictOk);
            const LibrarySet rec = LibrarySet::openRecover(setDir);
            CHECK_EQ(rec.size(), 2u);
            if (lpTestFailures)
                break;
        }
        // A missing index recovers too.
        std::filesystem::remove(idxPath);
        const LibrarySet rec = LibrarySet::openRecover(setDir);
        CHECK_EQ(rec.size(), 2u);
        CHECK(rec.recovery().indexRebuilt);
        // Restore the healthy index.
        writeBytes(idxPath, idxBytes.data(), idxBytes.size());
        CHECK_EQ(LibrarySet::open(setDir).size(), 2u);
    }

    {
        // Orphaned staging temps are ignored by recovery scans and
        // swept by the writer.
        const std::string stray = setDir + "/stray.lpl.tmp";
        const std::string strayIdx = idxPath + ".tmp";
        const std::uint8_t junk[] = {0xde, 0xad};
        writeBytes(stray, junk, sizeof(junk));
        writeBytes(strayIdx, junk, sizeof(junk));
        const LibrarySet rec = LibrarySet::openRecover(setDir);
        CHECK_EQ(rec.size(), 2u);
        {
            LibrarySetWriter writer(setDir);
            CHECK_EQ(writer.shards(), 2u);
        }
        CHECK(!std::filesystem::exists(stray));
        CHECK(!std::filesystem::exists(strayIdx));

        // Reopening a torn-index set and appending repairs the index
        // on disk.
        writeBytes(idxPath, idxBytes.data(), idxBytes.size() / 2);
        const TinyLib w2 =
            buildTinyLibrary("flt-c", 150'000, 41, 8, cfgs);
        {
            LibrarySetWriter writer(setDir);
            CHECK_EQ(writer.shards(), 2u);
            writer.addShard("flt-c", w2.lib);
        }
        const LibrarySet set = LibrarySet::open(setDir); // strict again
        CHECK_EQ(set.size(), 3u);
        CHECK_EQ(set.contentHash(set.find("flt-a")),
                 w0.lib.contentHash());
    }

    // Rebuild a clean two-shard set for the campaign suites.
    std::filesystem::remove_all(setDir);
    {
        LibrarySetWriter writer(setDir);
        writer.addShard("flt-a", w0.lib);
        writer.addShard("flt-b", w1.lib);
    }

    // ---- Campaign fixtures -----------------------------------------
    const std::vector<CampaignWorkload> grid{
        {"flt-a", &w0.prog, &w0.lib, nullptr, 0},
        {"flt-b", &w1.prog, &w1.lib, nullptr, 0},
    };
    CampaignOptions copt;
    copt.blockSize = 4;
    copt.shuffleSeed = 3;
    const CampaignResult baseline =
        CampaignEngine(grid, cfgs, copt).run();
    CHECK_EQ(baseline.failedCells, 0u);

    const std::string ledgerPath = "faults-ledger";
    auto runWithManifest = [&]() {
        CampaignOptions o = copt;
        o.manifestPath = ledgerPath;
        return CampaignEngine(grid, cfgs, o).run();
    };

    // ---- Manifest ledger: truncation and corruption ----------------
    {
        std::filesystem::remove(ledgerPath);
        const CampaignResult first = runWithManifest();
        checkSameGrid(first, baseline);
        const Blob ledger = readBytes(ledgerPath);
        CHECK(ledger.size() > 16u);
        CHECK_EQ(ledger[0], 'L'); // ledger, not legacy DER

        // A completed ledger resumes to the identical grid without
        // replaying anything.
        const CampaignResult resumed = runWithManifest();
        checkSameGrid(resumed, baseline);
        CHECK_EQ(resumed.restoredReplays, baseline.foldedReplays);

        // Truncate at many offsets (all header bytes, then sampled):
        // recovery must resume from the last intact barrier record
        // and land bit-identical — never crash, never corrupt.
        std::vector<std::size_t> cuts;
        for (std::size_t c = 0; c <= 17 && c < ledger.size(); ++c)
            cuts.push_back(c);
        for (std::size_t c = 18; c < ledger.size(); c += 7)
            cuts.push_back(c);
        cuts.push_back(ledger.size() - 1);
        for (const std::size_t cut : cuts) {
            writeBytes(ledgerPath, ledger.data(), cut);
            const CampaignResult r = runWithManifest();
            checkSameGrid(r, baseline);
            if (lpTestFailures)
                break;
        }

        // Flip one byte at sampled offsets: the run must either
        // complete bit-identical (recovery truncated the damage) or
        // reject cleanly (damaged ledger header).
        for (std::size_t i = 0; i < ledger.size(); i += 11) {
            Blob bad = ledger;
            bad[i] ^= 0x01;
            writeBytes(ledgerPath, bad.data(), bad.size());
            try {
                const CampaignResult r = runWithManifest();
                checkSameGrid(r, baseline);
            } catch (const std::exception &e) {
                CHECK(std::string(e.what()).find(ledgerPath) !=
                      std::string::npos);
            }
            if (lpTestFailures)
                break;
        }
        std::filesystem::remove(ledgerPath);
    }

    // ---- Manifest write faults: retry vs abort ---------------------
    {
        std::filesystem::remove(ledgerPath);
        // One transient append error: retried invisibly.
        arm("campaign.ledger.frame", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EINTR);
        const CampaignResult r = runWithManifest();
        disarmAllFailpoints();
        checkSameGrid(r, baseline);

        // A persistent transient exhausts the bounded retries and
        // still fails cleanly rather than hanging.
        std::filesystem::remove(ledgerPath);
        arm("campaign.ledger.frame", FailpointSpec::Trigger::every, 1,
            FailpointSpec::Action::error, EINTR);
        CHECK_THROWS(runWithManifest());
        disarmAllFailpoints();

        // A hard checkpoint failure aborts the campaign loudly —
        // replaying without durability would betray the manifest's
        // contract.
        std::filesystem::remove(ledgerPath);
        arm("campaign.ledger.sync", FailpointSpec::Trigger::nth, 2,
            FailpointSpec::Action::error, EIO);
        CHECK_THROWS(runWithManifest());
        disarmAllFailpoints();
        // ... and what it left on disk still resumes cleanly.
        const CampaignResult after = runWithManifest();
        checkSameGrid(after, baseline);
        std::filesystem::remove(ledgerPath);
    }

    // ---- Replay faults are contained per workload ------------------
    {
        // The first decode of the run fails (injected codec fault):
        // that workload's cells carry the reason, the other workload
        // finishes untouched and bit-identical.
        arm("codec.decompress", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error);
        const CampaignResult r = CampaignEngine(grid, cfgs, copt).run();
        disarmAllFailpoints();
        CHECK_EQ(r.failedCells, cfgs.size());
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const CampaignCell &cell = r.cell(0, c, cfgs.size());
            CHECK(cell.failed);
            CHECK(cell.failureReason.find("codec.decompress") !=
                  std::string::npos);
            const CampaignCell &ok = r.cell(1, c, cfgs.size());
            CHECK(!ok.failed);
            CHECK_EQ(ok.processed,
                     baseline.cell(1, c, cfgs.size()).processed);
            CHECK_NEAR(ok.cpi(),
                       baseline.cell(1, c, cfgs.size()).cpi(), 0.0);
        }
        const std::string report =
            CampaignEngine(grid, cfgs, copt).jsonReport(r);
        CHECK(report.find("\"failed\": true") != std::string::npos);
        CHECK(report.find("codec.decompress") != std::string::npos);
    }

    // ---- Set-backed campaigns: quarantine and transient retries ----
    {
        LibrarySet set = LibrarySet::openRecover(setDir);
        std::vector<CampaignWorkload> setGrid(2);
        setGrid[0] = {"flt-a", &w0.prog, nullptr, &set,
                      set.find("flt-a")};
        setGrid[1] = {"flt-b", &w1.prog, nullptr, &set,
                      set.find("flt-b")};

        // A transient shard-open error is retried with backoff: the
        // campaign completes with no failed cells.
        arm("set.shard.load", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EINTR);
        CampaignResult r = CampaignEngine(setGrid, cfgs, copt).run();
        disarmAllFailpoints();
        CHECK_EQ(r.failedCells, 0u);
        checkSameGrid(r, baseline);

        // A persistently failing shard open fails that workload's
        // cells with the reason; the campaign keeps going.
        set.unload(setGrid[0].shard);
        set.unload(setGrid[1].shard);
        arm("set.shard.load", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::error, EIO);
        r = CampaignEngine(setGrid, cfgs, copt).run();
        disarmAllFailpoints();
        CHECK_EQ(r.failedCells, cfgs.size());
        CHECK(r.cell(0, 0, cfgs.size()).failed);
        CHECK(!r.cell(1, 0, cfgs.size()).failed);

        // A torn shard container quarantines on recovering open; its
        // cells fail with the quarantine reason, the healthy workload
        // is unaffected — the campaign never aborts.
        const std::string shardB = set.shardPath(set.find("flt-b"));
        const Blob shardBytes = readBytes(shardB);
        writeBytes(shardB, shardBytes.data(), shardBytes.size() / 2);
        const LibrarySet degraded = LibrarySet::openRecover(setDir);
        CHECK(degraded.recovery().degraded);
        const std::size_t qa = degraded.find("flt-a");
        std::size_t qb = LibrarySet::npos;
        for (std::size_t i = 0; i < degraded.size(); ++i)
            if (degraded.quarantined(i))
                qb = i;
        CHECK(qb != LibrarySet::npos);
        CHECK(!degraded.quarantined(qa));
        if (qb != LibrarySet::npos) {
            CHECK_THROWS(degraded.shard(qb));
            std::vector<CampaignWorkload> dgrid(2);
            dgrid[0] = {"flt-a", &w0.prog, nullptr, &degraded, qa};
            dgrid[1] = {"flt-b", &w1.prog, nullptr, &degraded, qb};
            const CampaignResult dr =
                CampaignEngine(dgrid, cfgs, copt).run();
            CHECK_EQ(dr.failedCells, cfgs.size());
            for (std::size_t c = 0; c < cfgs.size(); ++c) {
                CHECK(dr.cell(1, c, cfgs.size()).failed);
                CHECK(!dr.cell(1, c, cfgs.size())
                           .failureReason.empty());
                CHECK(!dr.cell(0, c, cfgs.size()).failed);
                CHECK_NEAR(dr.cell(0, c, cfgs.size()).cpi(),
                           baseline.cell(0, c, cfgs.size()).cpi(),
                           0.0);
            }
        }
        // Restore the shard for later suites.
        writeBytes(shardB, shardBytes.data(), shardBytes.size());
    }

#if LP_TEST_FORK
    // ---- The crash matrix ------------------------------------------
    // Fork a child campaign, kill it (real _exit, no unwinding) at
    // every barrier and at every mid-append failpoint, resume in the
    // parent, and require bit-identity with the uninterrupted run.
    {
        const char *sites[] = {
            "campaign.barrier",
            "campaign.ledger.frame",
            "campaign.ledger.payload",
            "campaign.ledger.sync",
        };
        int crashes = 0;
        int completions = 0;
        // The grid checkpoints 10 barriers (6 for flt-a, 4 for
        // flt-b); hits 1..7 kill the child mid-run, 11 and 12 never
        // fire so the child completes — both matrix outcomes run.
        const std::uint64_t hits[] = {1, 2, 3, 4, 5, 6, 7, 11, 12};
        for (const char *site : sites) {
            for (const std::uint64_t hit : hits) {
                std::filesystem::remove(ledgerPath);
                std::fflush(stdout);
                std::fflush(stderr);
                const pid_t pid = ::fork();
                CHECK(pid >= 0);
                if (pid == 0) {
                    // Child: arm the kill and run. Exit codes only —
                    // never return into the parent's harness.
                    arm(site, FailpointSpec::Trigger::nth, hit,
                        FailpointSpec::Action::crash);
                    try {
                        CampaignOptions o = copt;
                        o.manifestPath = ledgerPath;
                        CampaignEngine(grid, cfgs, o).run();
                    } catch (...) {
                        ::_exit(99);
                    }
                    ::_exit(0);
                }
                int status = 0;
                CHECK_EQ(::waitpid(pid, &status, 0), pid);
                CHECK(WIFEXITED(status));
                const int code =
                    WIFEXITED(status) ? WEXITSTATUS(status) : -1;
                // Either the child died at the failpoint, or the hit
                // count exceeded the barrier count and it finished.
                CHECK(code == failpointCrashStatus || code == 0);
                code == failpointCrashStatus ? ++crashes
                                             : ++completions;
                const CampaignResult r = runWithManifest();
                checkSameGrid(r, baseline);
                if (lpTestFailures)
                    break;
            }
            if (lpTestFailures)
                break;
        }
        // The matrix must actually have exercised both outcomes.
        CHECK(crashes > 0);
        CHECK(completions > 0);
        std::filesystem::remove(ledgerPath);
    }

    // ---- Crash mid-shard-write: the writer sweeps and repairs ------
    {
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        CHECK(pid >= 0);
        if (pid == 0) {
            arm("io.write", FailpointSpec::Trigger::nth, 2,
                FailpointSpec::Action::crash);
            try {
                LibrarySetWriter writer(setDir);
                const TinyLib w3 =
                    buildTinyLibrary("flt-d", 150'000, 43, 8, cfgs);
                writer.addShard("flt-d", w3.lib);
            } catch (...) {
                ::_exit(99);
            }
            ::_exit(0);
        }
        int status = 0;
        CHECK_EQ(::waitpid(pid, &status, 0), pid);
        CHECK(WIFEXITED(status) &&
              WEXITSTATUS(status) == failpointCrashStatus);

        // The kill left an orphaned temp and no index entry; the set
        // still opens strict, and a writer reopen sweeps the temp.
        bool orphan = false;
        for (const auto &de :
             std::filesystem::directory_iterator(setDir))
            orphan = orphan ||
                     AtomicFileWriter::isTempFileName(
                         de.path().filename().string());
        CHECK(orphan);
        CHECK_EQ(LibrarySet::open(setDir).size(), 2u);
        {
            LibrarySetWriter writer(setDir);
            CHECK_EQ(writer.shards(), 2u);
        }
        for (const auto &de :
             std::filesystem::directory_iterator(setDir))
            CHECK(!AtomicFileWriter::isTempFileName(
                de.path().filename().string()));
    }
#endif // LP_TEST_FORK

    std::filesystem::remove_all(setDir);
    return TEST_MAIN_RESULT();
}
