/**
 * Hot-path guarantees of the replay core:
 *
 *  - Steady-state replay performs ZERO heap allocations per point.
 *    The test binary overrides global operator new/delete with a
 *    counter, warms a pooled ReplayContext over a full library pass
 *    (growing every recycled buffer to its high-water mark), then
 *    asserts that a second full pass — decode, image apply, warm-state
 *    reconstruction, detailed simulation — never enters the allocator.
 *  - The SoA CacheModel is behaviourally identical to the simple
 *    AoS true-LRU reference model it replaced: per-access hit and
 *    writeback results and final tag/recency/dirty state match on
 *    randomized streams across associativities (including odd assoc,
 *    which exercises the vectorized scan's scalar tail).
 *  - The flat epoch-stamped OverlayMemPort matches a map-based
 *    reference overlay through growth and O(1) clear() epochs.
 *  - A MemoryImage decoded into flat replay storage re-serializes
 *    byte-identically and applies the same bytes to memory as the
 *    capture-time map form.
 */

#include "test_util.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <unordered_map>

#include "core/replay.hh"
#include "mem/memport.hh"

// --- global allocation counter -------------------------------------

static std::atomic<std::uint64_t> gAllocs{0};

void *
operator new(std::size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace lp;

/** The pre-SoA AoS cache model, kept verbatim as the test oracle. */
class RefCache
{
  public:
    explicit RefCache(const CacheGeometry &geom) : geom_(geom)
    {
        sets_.resize(std::max<std::uint64_t>(geom_.numSets(), 1));
    }

    AccessResult access(Addr a, bool write)
    {
        const Addr tag = a - (a % geom_.lineBytes);
        auto &set = sets_[(a / geom_.lineBytes) % sets_.size()];
        ++clock_;
        AccessResult res;
        for (CacheLine &line : set) {
            if (line.tag == tag) {
                line.lastAccess = clock_;
                line.dirty = line.dirty || write;
                res.hit = true;
                return res;
            }
        }
        if (set.size() >= geom_.assoc) {
            std::size_t victim = 0;
            for (std::size_t i = 1; i < set.size(); ++i)
                if (set[i].lastAccess < set[victim].lastAccess)
                    victim = i;
            res.writeback = set[victim].dirty;
            set[victim] = CacheLine{tag, clock_, write};
        } else {
            set.push_back(CacheLine{tag, clock_, write});
        }
        return res;
    }

    const std::vector<CacheLine> &linesOfSet(std::uint64_t s) const
    {
        return sets_[s];
    }

    std::uint64_t numSets() const { return sets_.size(); }

  private:
    CacheGeometry geom_;
    std::vector<std::vector<CacheLine>> sets_;
    std::uint64_t clock_ = 0;
};

/** Full-state comparison: tags, recency stamps, and dirty bits. */
bool
sameCacheState(const CacheModel &a, const RefCache &b)
{
    if (a.numSets() != b.numSets())
        return false;
    for (std::uint64_t s = 0; s < a.numSets(); ++s) {
        auto keyed = [](const std::vector<CacheLine> &lines) {
            std::vector<std::tuple<std::uint64_t, Addr, bool>> v;
            for (const CacheLine &l : lines)
                v.emplace_back(l.lastAccess, l.tag, l.dirty);
            std::sort(v.begin(), v.end());
            return v;
        };
        if (keyed(a.linesOfSet(s)) != keyed(b.linesOfSet(s)))
            return false;
    }
    return true;
}

void
cacheEquivalence()
{
    const CacheGeometry geoms[] = {
        {16 * 1024, 1, 64}, {32 * 1024, 2, 64},  {64 * 1024, 3, 64},
        {64 * 1024, 4, 128}, {256 * 1024, 8, 64},
    };
    for (const CacheGeometry &g : geoms) {
        CacheModel soa(g, "soa");
        RefCache ref(g);
        Rng rng(g.assoc * 1000 + 7, "hotpath-cache");
        for (int i = 0; i < 200'000; ++i) {
            // Mix a hot region with cold sweeps so hits, misses,
            // evictions, and writebacks all occur.
            const Addr a = rng.nextBool(0.7)
                               ? rng.nextBounded(g.sizeBytes / 2)
                               : rng.nextBounded(64ull << 20);
            const bool write = rng.nextBool(0.3);
            const AccessResult rs = soa.access(a, write);
            const AccessResult rr = ref.access(a, write);
            CHECK_EQ(static_cast<int>(rs.hit), static_cast<int>(rr.hit));
            CHECK_EQ(static_cast<int>(rs.writeback),
                     static_cast<int>(rr.writeback));
            if (lpTestFailures)
                return; // one divergence floods the log otherwise
        }
        CHECK(sameCacheState(soa, ref));

        // probe() agrees with membership and never perturbs state.
        Rng rng2(g.assoc, "hotpath-probe");
        for (int i = 0; i < 1000; ++i) {
            const Addr a = rng2.nextBounded(64ull << 20);
            const Addr line = a - (a % g.lineBytes);
            bool inRef = false;
            for (const CacheLine &l :
                 ref.linesOfSet((a / g.lineBytes) % ref.numSets()))
                inRef = inRef || l.tag == line;
            CHECK_EQ(static_cast<int>(soa.probe(a)),
                     static_cast<int>(inRef));
        }
        CHECK(sameCacheState(soa, ref));

        // copyStateFrom() reproduces the full state.
        CacheModel copy(g, "copy");
        copy.copyStateFrom(soa);
        CHECK(sameCacheState(copy, ref));
        CHECK_EQ(copy.accessClock(), soa.accessClock());
    }
}

void
overlayEquivalence()
{
    SparseMemory base;
    for (Addr a = 0; a < 4096; a += 8)
        base.write64(a, a * 3 + 1);

    // Tiny initial reserve so the test crosses several growth steps.
    OverlayMemPort ov(base, 4);
    std::unordered_map<Addr, std::uint64_t> ref;
    Rng rng(99, "hotpath-overlay");
    for (int epoch = 0; epoch < 5; ++epoch) {
        for (int i = 0; i < 20'000; ++i) {
            const Addr a = rng.nextBounded(1 << 20) & ~7ull;
            if (rng.nextBool(0.6)) {
                const std::uint64_t v = rng.next();
                ov.write64(a, v);
                ref[a] = v;
            } else {
                const auto it = ref.find(a);
                const std::uint64_t expect =
                    it != ref.end() ? it->second : base.read64(a);
                CHECK_EQ(ov.read64(a), expect);
            }
            if (lpTestFailures)
                return;
        }
        ov.clear();
        ref.clear();
        // After a clear, every read falls through to the base again.
        for (Addr a = 0; a < 4096; a += 512)
            CHECK_EQ(ov.read64(a), base.read64(a));
    }
}

void
memoryImageFlatPath()
{
    SparseMemory mem;
    MemoryImage captured(64);
    Rng rng(5, "hotpath-image");
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.nextBounded(1 << 18) & ~7ull;
        mem.write64(a, rng.next());
        captured.captureBeforeAccess(mem, a);
    }
    DerWriter w;
    captured.serialize(w);
    const Blob bytes = w.finish();

    MemoryImage flat;
    {
        DerReader r(bytes);
        MemoryImage::deserializeInto(r, flat);
    }
    CHECK_EQ(flat.blockCount(), captured.blockCount());
    CHECK_EQ(flat.payloadBytes(), captured.payloadBytes());

    // Flat storage re-serializes byte-identically (canonical order).
    DerWriter w2;
    flat.serialize(w2);
    CHECK(w2.finish() == bytes);

    // contains() and applyTo() agree between the two forms.
    SparseMemory a1;
    SparseMemory a2;
    captured.applyTo(a1);
    flat.applyTo(a2);
    Rng rng2(6, "hotpath-image-2");
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng2.nextBounded(1 << 18) & ~7ull;
        CHECK_EQ(static_cast<int>(captured.contains(a)),
                 static_cast<int>(flat.contains(a)));
        CHECK_EQ(a1.read64(a), a2.read64(a));
        if (lpTestFailures)
            return;
    }

    // A replay image must reject capture attempts.
    CHECK_THROWS(flat.captureBeforeAccess(mem, 0));
}

/**
 * The satellite contract: once warm, replay allocates nothing — not
 * in decode, not in live-state apply, not in warm-state
 * reconstruction, not in the timing loop.
 */
void
zeroAllocSteadyState()
{
    const lptest::TinyLib t = lptest::buildTinyLibrary(
        "hotpath", 60'000, 31, 6,
        {lptest::baseConfig(), lptest::slowMemConfig()});
    const std::size_t n = t.lib.size();
    CHECK(n >= 4);

    // Single-configuration path.
    {
        ReplayContext ctx(t.prog, lptest::baseConfig());
        Blob scratch;
        LivePoint point;
        std::vector<WindowResult> warm(n);
        for (std::size_t i = 0; i < n; ++i) {
            t.lib.decodeInto(i, scratch, point);
            warm[i] = ctx.simulate(point);
        }
        const std::uint64_t before =
            gAllocs.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i) {
            t.lib.decodeInto(i, scratch, point);
            const WindowResult r = ctx.simulate(point);
            CHECK_EQ(r.cycles, warm[i].cycles); // pooled = warm pass
        }
        const std::uint64_t after =
            gAllocs.load(std::memory_order_relaxed);
        CHECK_EQ(after - before, 0u);
    }

    // Decode-once fan-out path (shared-geometry stash, overlay).
    {
        ReplayContext ctx(t.prog,
                          std::vector<CoreConfig>{
                              lptest::baseConfig(),
                              lptest::slowMemConfig()});
        Blob scratch;
        LivePoint point;
        for (std::size_t i = 0; i < n; ++i) {
            t.lib.decodeInto(i, scratch, point);
            ctx.loadPoint(point);
            ctx.replay(0);
            ctx.replay(1);
        }
        const std::uint64_t before =
            gAllocs.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i) {
            t.lib.decodeInto(i, scratch, point);
            ctx.loadPoint(point);
            ctx.replay(0);
            ctx.replay(1);
        }
        const std::uint64_t after =
            gAllocs.load(std::memory_order_relaxed);
        CHECK_EQ(after - before, 0u);
    }
}

} // namespace

int
main()
{
    cacheEquivalence();
    overlayEquivalence();
    memoryImageFlatPath();
    zeroAllocSteadyState();
    return TEST_MAIN_RESULT();
}
